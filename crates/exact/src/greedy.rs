//! Approximation baselines: greedy dominating set and local-ratio
//! weighted vertex cover.
//!
//! These are the centralized comparators referenced throughout the paper's
//! related-work discussion: the greedy `(ln Δ + 1)`-approximation for MDS
//! and the Bar-Yehuda–Even local-ratio 2-approximation for weighted vertex
//! cover \[BE83\].

use pga_graph::{Graph, VertexWeights};

/// Greedy minimum dominating set: repeatedly pick the vertex that
/// dominates the most still-uncovered vertices.
///
/// Guarantees an `(H_{Δ+1} ≤ ln Δ + 2)`-approximation.
pub fn greedy_mds(g: &Graph) -> Vec<bool> {
    let n = g.num_nodes();
    let mut covered = vec![false; n];
    let mut chosen = vec![false; n];
    let mut num_covered = 0;
    while num_covered < n {
        // Pick the vertex covering the most uncovered vertices; ties to
        // the smallest id for determinism.
        let mut best = usize::MAX;
        let mut best_gain = 0usize;
        for v in g.nodes() {
            let gain = std::iter::once(v)
                .chain(g.neighbors(v).iter().copied())
                .filter(|u| !covered[u.index()])
                .count();
            if gain > best_gain {
                best_gain = gain;
                best = v.index();
            }
        }
        debug_assert!(best != usize::MAX, "some vertex must cover something");
        chosen[best] = true;
        let v = pga_graph::NodeId::from_index(best);
        for u in std::iter::once(v).chain(g.neighbors(v).iter().copied()) {
            if !covered[u.index()] {
                covered[u.index()] = true;
                num_covered += 1;
            }
        }
    }
    chosen
}

/// Greedy *weighted* dominating set: repeatedly pick the vertex minimizing
/// weight per newly dominated vertex.
pub fn greedy_mwds(g: &Graph, w: &VertexWeights) -> Vec<bool> {
    assert!(w.matches(g));
    let n = g.num_nodes();
    let mut covered = vec![false; n];
    let mut chosen = vec![false; n];
    let mut num_covered = 0;
    while num_covered < n {
        let mut best = usize::MAX;
        let mut best_ratio = f64::INFINITY;
        for v in g.nodes() {
            if chosen[v.index()] {
                continue;
            }
            let gain = std::iter::once(v)
                .chain(g.neighbors(v).iter().copied())
                .filter(|u| !covered[u.index()])
                .count();
            if gain == 0 {
                continue;
            }
            let ratio = w[v] as f64 / gain as f64;
            if ratio < best_ratio {
                best_ratio = ratio;
                best = v.index();
            }
        }
        debug_assert!(best != usize::MAX);
        chosen[best] = true;
        let v = pga_graph::NodeId::from_index(best);
        for u in std::iter::once(v).chain(g.neighbors(v).iter().copied()) {
            if !covered[u.index()] {
                covered[u.index()] = true;
                num_covered += 1;
            }
        }
    }
    chosen
}

/// Local-ratio 2-approximation for minimum weighted vertex cover \[BE83\].
///
/// Scans the edges; for each edge subtracts `min` of the residual weights
/// from both endpoints; vertices driven to residual 0 form the cover.
pub fn local_ratio_mwvc(g: &Graph, w: &VertexWeights) -> Vec<bool> {
    assert!(w.matches(g));
    let mut residual: Vec<u64> = w.as_slice().to_vec();
    for (u, v) in g.edges() {
        let e = residual[u.index()].min(residual[v.index()]);
        residual[u.index()] -= e;
        residual[v.index()] -= e;
    }
    // Zero-residual vertices cover every edge: for each edge, the min
    // endpoint hit zero when it was processed.
    residual.iter().map(|&r| r == 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mds::mds_size;
    use crate::wvc::mwvc_weight;
    use pga_graph::cover::{is_dominating_set, is_vertex_cover, set_size, set_weight};
    use pga_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn greedy_mds_valid_and_bounded() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..10 {
            let g = generators::gnp(16, 0.2, &mut rng);
            let s = greedy_mds(&g);
            assert!(is_dominating_set(&g, &s));
            let opt = mds_size(&g);
            let delta = g.max_degree().max(1);
            let bound = ((delta as f64).ln() + 2.0) * opt as f64;
            assert!(
                set_size(&s) as f64 <= bound.max(opt as f64),
                "greedy {} vs bound {bound}",
                set_size(&s)
            );
        }
    }

    #[test]
    fn greedy_mds_star_optimal() {
        let g = generators::star(10);
        assert_eq!(set_size(&greedy_mds(&g)), 1);
    }

    #[test]
    fn greedy_mwds_valid() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::gnp(15, 0.25, &mut rng);
        let w = VertexWeights::random(15, 1..10, &mut rng);
        let s = greedy_mwds(&g, &w);
        assert!(is_dominating_set(&g, &s));
    }

    #[test]
    fn greedy_mwds_prefers_cheap() {
        let g = generators::star(5);
        let w = VertexWeights::from_vec(vec![1, 9, 9, 9, 9]);
        let s = greedy_mwds(&g, &w);
        assert_eq!(set_weight(&s, w.as_slice()), 1);
    }

    #[test]
    fn local_ratio_is_2_approx() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..15 {
            let g = generators::gnp(12, 0.3, &mut rng);
            let w = VertexWeights::random(12, 1..20, &mut rng);
            let c = local_ratio_mwvc(&g, &w);
            assert!(is_vertex_cover(&g, &c));
            let opt = mwvc_weight(&g, &w);
            assert!(
                set_weight(&c, w.as_slice()) <= 2 * opt,
                "local ratio exceeded 2·OPT"
            );
        }
    }

    #[test]
    fn local_ratio_isolated_vertices_excluded() {
        let g = pga_graph::Graph::empty(4);
        let w = VertexWeights::uniform(4);
        let c = local_ratio_mwvc(&g, &w);
        assert_eq!(set_size(&c), 0);
    }
}
