//! Cheap lower bounds for MVC and MDS, usable at sizes where the exact
//! solvers are not.
//!
//! The benchmark harness uses these to bound approximation ratios from
//! below on large instances:
//!
//! * matching lower bound for vertex cover (factor-2 tight),
//! * the clique-decomposition bound that powers Lemma 5: disjoint
//!   `G²`-cliques of sizes `s₁, …, s_k` force any cover to pay
//!   `Σ (sᵢ − 1)`,
//! * disjoint closed-2-neighborhood packing for `G²`-MDS.

use pga_graph::matching::maximal_matching;
use pga_graph::power::two_hop_neighborhood;
use pga_graph::{Graph, NodeId};

/// Matching lower bound for `MVC(g)`.
pub fn vc_matching_bound(g: &Graph) -> usize {
    maximal_matching(g).len()
}

/// Clique-harvest lower bound for `MVC(G²)` computed on `G`: greedily pick
/// vertex-disjoint neighborhoods `N(c)` (largest first); each is a clique
/// of `G²`, so any cover pays `|N(c) ∩ picked| − 1` per block.
///
/// This mirrors exactly how Algorithm 1's Phase I charges the optimum
/// (Lemma 5), making it the natural certificate to report next to the
/// algorithm's output.
pub fn square_vc_clique_bound(g: &Graph) -> usize {
    let n = g.num_nodes();
    let mut order: Vec<NodeId> = g.nodes().collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    let mut used = vec![false; n];
    let mut bound = 0;
    for c in order {
        let block: Vec<NodeId> = g
            .neighbors(c)
            .iter()
            .copied()
            .filter(|u| !used[u.index()])
            .collect();
        if block.len() >= 2 {
            bound += block.len() - 1;
            for u in block {
                used[u.index()] = true;
            }
        }
    }
    bound
}

/// The better of the two `MVC(G²)` lower bounds (matching on the square
/// is computed via a matching in `G²`'s edge set streamed from `G`,
/// approximated here by a matching on `G` itself — always valid since
/// `E(G) ⊆ E(G²)`).
pub fn square_vc_bound(g: &Graph) -> usize {
    vc_matching_bound(g).max(square_vc_clique_bound(g))
}

/// Packing lower bound for `MDS(G²)`: a set of vertices with pairwise
/// `G`-distance > 4 needs pairwise-distinct dominators, so any `G²`-MDS
/// is at least as large as the packing. Greedy construction.
pub fn square_mds_packing_bound(g: &Graph) -> usize {
    let n = g.num_nodes();
    let mut blocked = vec![false; n];
    let mut count = 0;
    for v in g.nodes() {
        if blocked[v.index()] {
            continue;
        }
        count += 1;
        // Block everything within distance 4 = two applications of the
        // 2-hop neighborhood.
        let two = two_hop_neighborhood(g, v);
        blocked[v.index()] = true;
        for &u in &two {
            blocked[u.index()] = true;
            for w in two_hop_neighborhood(g, u) {
                blocked[w.index()] = true;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mds::mds_size;
    use crate::vc::mvc_size;
    use pga_graph::generators;
    use pga_graph::power::square;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn vc_bounds_below_optimum() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let g = generators::gnp(16, 0.2, &mut rng);
            let opt = mvc_size(&square(&g));
            assert!(vc_matching_bound(&g) <= opt);
            assert!(square_vc_clique_bound(&g) <= opt, "clique bound invalid");
            assert!(square_vc_bound(&g) <= opt);
        }
    }

    #[test]
    fn clique_bound_tight_on_star() {
        // Star: N(center) is a clique of size n−1 in G²; bound = n−2,
        // optimum = n−2... the square of a star is K_n: opt = n−1. The
        // clique bound gives n−2 — off by one, but far better than the
        // matching bound of 1 on G.
        let g = generators::star(12);
        assert_eq!(square_vc_clique_bound(&g), 10);
        assert_eq!(vc_matching_bound(&g), 1);
        assert_eq!(mvc_size(&square(&g)), 11);
    }

    #[test]
    fn mds_packing_below_optimum() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..15 {
            let g = generators::gnp(16, 0.15, &mut rng);
            let opt = mds_size(&square(&g));
            assert!(square_mds_packing_bound(&g) <= opt);
        }
    }

    #[test]
    fn mds_packing_on_long_path() {
        // P_n: G²-balls have radius 2, so a distance-5 packing has
        // ~n/5 vertices and OPT(G²-MDS) = ⌈n/5⌉.
        let g = generators::path(25);
        let bound = square_mds_packing_bound(&g);
        let opt = mds_size(&square(&g));
        assert_eq!(opt, 5);
        assert!(
            bound >= 3,
            "packing should capture most of OPT, got {bound}"
        );
        assert!(bound <= opt);
    }

    #[test]
    fn empty_graph_bounds() {
        let g = pga_graph::Graph::empty(5);
        assert_eq!(vc_matching_bound(&g), 0);
        assert_eq!(square_vc_clique_bound(&g), 0);
        // every isolated vertex needs itself in any dominating set
        assert_eq!(square_mds_packing_bound(&g), 5);
    }
}
