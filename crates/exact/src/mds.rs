//! Exact minimum (weighted) dominating set via set-cover branch and bound.
//!
//! To solve a dominating set problem on a power graph `G^r`, precompute the
//! power with [`pga_graph::power::power`] and pass it here — domination is
//! always interpreted on the graph given.
//!
//! Zero-weight vertices are chosen up front in the weighted variant: they
//! dominate for free, exactly as the paper exploits for its merged path
//! gadgets (`A*[3]` has weight 0 in the Theorem 35 construction).

use crate::bitset::BitSet;
use pga_graph::{Graph, VertexWeights};

/// Exact minimum dominating set of `g` as a membership vector.
///
/// # Example
///
/// ```
/// use pga_graph::generators;
/// use pga_exact::mds::mds_size;
///
/// assert_eq!(mds_size(&generators::star(8)), 1);
/// assert_eq!(mds_size(&generators::path(3)), 1);
/// assert_eq!(mds_size(&generators::path(7)), 3);
/// ```
pub fn solve_mds(g: &Graph) -> Vec<bool> {
    solve_mwds(g, &VertexWeights::uniform(g.num_nodes()))
}

/// Size of a minimum dominating set of `g`.
pub fn mds_size(g: &Graph) -> usize {
    solve_mds(g).iter().filter(|&&b| b).count()
}

/// Decides whether `g` has a dominating set of size at most `budget`.
pub fn solve_mds_with_budget(g: &Graph, budget: usize) -> Option<Vec<bool>> {
    solve_mwds_with_budget(g, &VertexWeights::uniform(g.num_nodes()), budget as u64)
}

/// Exact minimum-weight dominating set of `(g, w)`.
pub fn solve_mwds(g: &Graph, w: &VertexWeights) -> Vec<bool> {
    assert!(w.matches(g), "weights must match the graph");
    let mut solver = MdsSolver::new(g, w);
    solver.best_cost = w.total().saturating_add(1);
    solver.run();
    solver
        .best
        .map(|b| b.to_membership())
        .unwrap_or_else(|| vec![true; g.num_nodes()])
}

/// Weight of a minimum-weight dominating set of `(g, w)`.
pub fn mwds_weight(g: &Graph, w: &VertexWeights) -> u64 {
    w.subset_weight(&solve_mwds(g, w))
}

/// Decides whether `(g, w)` has a dominating set of weight at most
/// `budget`, returning one if so.
pub fn solve_mwds_with_budget(g: &Graph, w: &VertexWeights, budget: u64) -> Option<Vec<bool>> {
    assert!(w.matches(g), "weights must match the graph");
    let mut solver = MdsSolver::new(g, w);
    solver.best_cost = budget.saturating_add(1);
    solver.run();
    solver.best.map(|b| b.to_membership())
}

struct MdsSolver {
    n: usize,
    /// `dom[v]`: closed neighborhood of `v` — the vertices that choosing
    /// `v` dominates.
    dom: Vec<BitSet>,
    w: Vec<u64>,
    best: Option<BitSet>,
    best_cost: u64,
}

impl MdsSolver {
    fn new(g: &Graph, w: &VertexWeights) -> Self {
        let n = g.num_nodes();
        let mut dom = vec![BitSet::new(n); n];
        for v in g.nodes() {
            dom[v.index()].insert(v.index());
            for &u in g.neighbors(v) {
                dom[v.index()].insert(u.index());
            }
        }
        MdsSolver {
            n,
            dom,
            w: w.as_slice().to_vec(),
            best: None,
            best_cost: u64::MAX,
        }
    }

    fn run(&mut self) {
        let mut chosen = BitSet::new(self.n);
        let mut covered = BitSet::new(self.n);
        let mut cost = 0u64;
        // Zero-weight vertices dominate for free.
        for v in 0..self.n {
            if self.w[v] == 0 {
                chosen.insert(v);
                covered.union_with(&self.dom[v]);
            }
        }
        // Dominance elimination: `u` is never needed as a dominator when
        // some `v` covers a superset at no greater weight (the classic
        // set-cover reduction). The strictness of the tie-breaking makes
        // the elimination relation acyclic, so every eliminated vertex
        // keeps a surviving witness. This is what collapses the paper's
        // dangling-path tails: `DP[4]`, `DP[5]` are dominated by `DP[3]`,
        // leaving `DP[5]` with a unique dominator and forcing `DP[3]`
        // into every solution by unit propagation.
        let mut forbidden = BitSet::new(self.n);
        for u in 0..self.n {
            if chosen.contains(u) {
                continue;
            }
            for v in 0..self.n {
                if v == u {
                    continue;
                }
                if !self.dom[u].is_subset(&self.dom[v]) {
                    continue;
                }
                let equal = self.dom[u] == self.dom[v];
                let eliminate = if equal {
                    self.w[v] < self.w[u] || (self.w[v] == self.w[u] && v < u)
                } else {
                    self.w[v] <= self.w[u]
                };
                if eliminate {
                    forbidden.insert(u);
                    break;
                }
            }
        }
        self.branch(&mut chosen, &mut covered, &forbidden, &mut cost);
    }

    /// Greedy disjoint-group lower bound: repeatedly pick an uncovered
    /// vertex, charge the cheapest allowed dominator, and discard every
    /// vertex sharing a dominator with it.
    fn lower_bound(&self, covered: &BitSet, forbidden: &BitSet) -> u64 {
        let mut remaining = BitSet::full(self.n);
        remaining.difference_with(covered);
        let mut lb = 0u64;
        while let Some(x) = remaining.first() {
            remaining.remove(x);
            let mut cheapest = u64::MAX;
            // Union of coverage of all allowed dominators of x.
            let mut blocked = BitSet::new(self.n);
            for d in self.dom[x].iter() {
                if forbidden.contains(d) {
                    continue;
                }
                cheapest = cheapest.min(self.w[d]);
                blocked.union_with(&self.dom[d]);
            }
            if cheapest == u64::MAX {
                // x cannot be dominated at all: infeasible branch.
                return u64::MAX;
            }
            lb = lb.saturating_add(cheapest);
            remaining.difference_with(&blocked);
        }
        lb
    }

    fn branch(
        &mut self,
        chosen: &mut BitSet,
        covered: &mut BitSet,
        forbidden: &BitSet,
        cost: &mut u64,
    ) {
        if *cost >= self.best_cost {
            return;
        }
        // All covered: record.
        let mut uncovered = BitSet::full(self.n);
        uncovered.difference_with(covered);
        let Some(_) = uncovered.first() else {
            if *cost < self.best_cost {
                self.best_cost = *cost;
                self.best = Some(chosen.clone());
            }
            return;
        };

        let lb = self.lower_bound(covered, forbidden);
        if lb == u64::MAX || cost.saturating_add(lb) >= self.best_cost {
            return;
        }

        // Branch on the uncovered vertex with the fewest allowed
        // dominators (fail-first).
        let mut pivot = usize::MAX;
        let mut pivot_doms: Vec<usize> = Vec::new();
        let mut best_count = usize::MAX;
        for x in uncovered.iter() {
            let doms: Vec<usize> = self.dom[x]
                .iter()
                .filter(|&d| !forbidden.contains(d))
                .collect();
            if doms.len() < best_count {
                best_count = doms.len();
                pivot = x;
                pivot_doms = doms;
                if best_count <= 1 {
                    break;
                }
            }
        }
        debug_assert!(pivot != usize::MAX);
        if pivot_doms.is_empty() {
            return; // infeasible
        }

        // Order dominators: cheapest per newly-covered vertex first.
        pivot_doms.sort_by_key(|&d| {
            let mut newly = self.dom[d].clone();
            newly.difference_with(covered);
            let gain = newly.len().max(1) as u64;
            // scale to compare weight/gain without floats
            (self.w[d].saturating_mul(1024)) / gain
        });

        // Inclusion-exclusion branching: branch i chooses pivot_doms[i] and
        // forbids pivot_doms[0..i] (they were already tried).
        let mut forb = forbidden.clone();
        for &d in &pivot_doms {
            // Choose d.
            let mut newly = self.dom[d].clone();
            newly.difference_with(covered);
            chosen.insert(d);
            covered.union_with(&self.dom[d]);
            *cost += self.w[d];
            self.branch(chosen, covered, &forb, cost);
            // Undo.
            *cost -= self.w[d];
            covered.difference_with(&newly);
            chosen.remove(d);
            // Forbid d for the remaining branches.
            forb.insert(d);
        }
    }
}

/// Brute-force oracle for tiny instances (`n ≤ 20`).
pub fn solve_mds_bruteforce(g: &Graph) -> Vec<bool> {
    let n = g.num_nodes();
    assert!(n <= 20, "brute force limited to 20 vertices");
    let mut best_mask: u32 = (1u32 << n).wrapping_sub(1);
    let mut best_count = n as u32;
    let dom: Vec<u32> = (0..n)
        .map(|v| {
            let mut m = 1u32 << v;
            for &u in g.neighbors(pga_graph::NodeId::from_index(v)) {
                m |= 1 << u.index();
            }
            m
        })
        .collect();
    let all = (1u32 << n).wrapping_sub(1);
    for mask in 0..(1u32 << n) {
        if mask.count_ones() >= best_count {
            continue;
        }
        let mut cov = 0u32;
        for (v, &d) in dom.iter().enumerate() {
            if mask >> v & 1 == 1 {
                cov |= d;
            }
        }
        if cov & all == all {
            best_count = mask.count_ones();
            best_mask = mask;
        }
    }
    (0..n).map(|i| best_mask >> i & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_graph::cover::{is_dominating_set, set_size, set_weight};
    use pga_graph::generators;
    use pga_graph::power::square;
    use pga_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn known_optima() {
        assert_eq!(mds_size(&generators::star(9)), 1);
        assert_eq!(mds_size(&generators::path(3)), 1);
        assert_eq!(mds_size(&generators::path(7)), 3);
        assert_eq!(mds_size(&generators::cycle(9)), 3);
        assert_eq!(mds_size(&generators::complete(5)), 1);
        assert_eq!(mds_size(&Graph::empty(4)), 4); // isolated vertices
        assert_eq!(mds_size(&Graph::empty(0)), 0);
    }

    #[test]
    fn solution_is_dominating() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..15 {
            let g = generators::gnp(18, 0.15, &mut rng);
            let s = solve_mds(&g);
            assert!(is_dominating_set(&g, &s));
        }
    }

    #[test]
    fn matches_bruteforce_random() {
        let mut rng = StdRng::seed_from_u64(6);
        for i in 0..25 {
            let n = 6 + (i % 8);
            let g = generators::gnp(n, 0.25, &mut rng);
            let bb = set_size(&solve_mds(&g));
            let bf = set_size(&solve_mds_bruteforce(&g));
            assert_eq!(bb, bf, "n={n} i={i}");
        }
    }

    #[test]
    fn weighted_prefers_cheap_dominator() {
        // Star where the center is expensive: cover with center (cost 10)
        // vs all leaves (cost 5 × 1): leaves win.
        let g = generators::star(6);
        let mut weights = vec![1; 6];
        weights[0] = 10;
        let w = VertexWeights::from_vec(weights);
        assert_eq!(mwds_weight(&g, &w), 5);
        // Cheap center wins.
        let mut weights2 = vec![10; 6];
        weights2[0] = 1;
        let w2 = VertexWeights::from_vec(weights2);
        assert_eq!(mwds_weight(&g, &w2), 1);
    }

    #[test]
    fn zero_weight_free_domination() {
        let g = generators::star(6);
        let mut weights = vec![3; 6];
        weights[0] = 0;
        let w = VertexWeights::from_vec(weights);
        assert_eq!(mwds_weight(&g, &w), 0);
    }

    #[test]
    fn budget_mode() {
        let g = generators::cycle(9); // OPT = 3
        assert!(solve_mds_with_budget(&g, 2).is_none());
        let s = solve_mds_with_budget(&g, 3).expect("OPT fits");
        assert!(is_dominating_set(&g, &s));
        assert!(set_size(&s) <= 3);
    }

    #[test]
    fn mds_on_square_smaller() {
        // Path P7: MDS(G) = 3 but MDS(G²) = 2 (radius-2 balls).
        let g = generators::path(7);
        let g2 = square(&g);
        assert_eq!(mds_size(&g2), 2);
        // P5 squared: one center vertex dominates everything within 2 hops.
        let p5sq = square(&generators::path(5));
        assert_eq!(mds_size(&p5sq), 1);
    }

    #[test]
    fn weighted_matches_uniform_unweighted() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = generators::gnp(14, 0.2, &mut rng);
        let w = VertexWeights::uniform(14);
        assert_eq!(mwds_weight(&g, &w), set_size(&solve_mds(&g)) as u64);
    }

    #[test]
    fn weighted_budget_respects_weight() {
        let g = generators::path(4);
        let w = VertexWeights::from_vec(vec![4, 1, 1, 4]);
        // Optimal: {1, 2} with weight 2.
        assert_eq!(mwds_weight(&g, &w), 2);
        assert!(solve_mwds_with_budget(&g, &w, 1).is_none());
        let s = solve_mwds_with_budget(&g, &w, 2).expect("weight-2 DS");
        assert!(set_weight(&s, w.as_slice()) <= 2);
    }
}
