//! Exact minimum vertex cover via branch and bound.
//!
//! The solver works on bitset adjacency, applies the classic reductions
//! (isolated vertices, degree-1 vertices, neighborhood dominance) and
//! branches on a maximum-degree vertex, pruning with a greedy-matching
//! lower bound. The dominance rule is what lets the solver collapse the
//! paper's dangling-path gadgets automatically: in a pendant triangle
//! `p1 - p2 - p3` the leaf `p3` is dominated, so the solver deterministically
//! prefers `p1, p2` — exactly the normal form of Lemma 23.

use crate::bitset::BitSet;
use pga_graph::matching::two_approx_vertex_cover;
use pga_graph::{Graph, NodeId};

/// Exact minimum vertex cover of `g` as a membership vector.
///
/// # Complexity
///
/// Exponential in the worst case; intended for instances up to a few
/// hundred structured vertices.
///
/// # Example
///
/// ```
/// use pga_graph::generators;
/// use pga_exact::vc::{solve_mvc, mvc_size};
///
/// let g = generators::complete(5);
/// assert_eq!(mvc_size(&g), 4);
/// let cover = solve_mvc(&g);
/// assert_eq!(cover.iter().filter(|&&b| b).count(), 4);
/// ```
pub fn solve_mvc(g: &Graph) -> Vec<bool> {
    let mut solver = VcSolver::new(g);
    // Seed with the 2-approximation so pruning starts tight.
    let seed = BitSet::from_membership(&two_approx_vertex_cover(g));
    solver.best = Some(seed.clone());
    solver.best_size = seed.len();
    let active = BitSet::full(g.num_nodes());
    let cover = BitSet::new(g.num_nodes());
    solver.branch(active, cover, 0);
    solver
        .best
        .expect("the 2-approximation seed guarantees a solution")
        .to_membership()
}

/// Size of a minimum vertex cover of `g`.
pub fn mvc_size(g: &Graph) -> usize {
    solve_mvc(g).iter().filter(|&&b| b).count()
}

/// Decides whether `g` has a vertex cover of size at most `budget`,
/// returning one if so.
///
/// Branches exceeding `budget` are pruned, so this is typically much
/// faster than [`solve_mvc`] when the answer is "no" or when `budget` is
/// close to the optimum.
pub fn solve_mvc_with_budget(g: &Graph, budget: usize) -> Option<Vec<bool>> {
    let mut solver = VcSolver::new(g);
    solver.best = None;
    solver.best_size = budget + 1; // prune anything strictly above budget
    let active = BitSet::full(g.num_nodes());
    let cover = BitSet::new(g.num_nodes());
    solver.branch(active, cover, 0);
    solver.best.map(|b| b.to_membership())
}

struct VcSolver {
    adj: Vec<BitSet>,
    best: Option<BitSet>,
    /// Strict upper cutoff: solutions must have size `< best_size` to be
    /// recorded... (`<=` when `best` is `None`, handled by init to
    /// `budget + 1`).
    best_size: usize,
}

impl VcSolver {
    fn new(g: &Graph) -> Self {
        let n = g.num_nodes();
        let mut adj = vec![BitSet::new(n); n];
        for (u, v) in g.edges() {
            adj[u.index()].insert(v.index());
            adj[v.index()].insert(u.index());
        }
        let _ = n;
        VcSolver {
            adj,
            best: None,
            best_size: usize::MAX,
        }
    }

    fn active_degree(&self, v: usize, active: &BitSet) -> usize {
        self.adj[v].intersection_len(active)
    }

    /// Greedy matching size on the active subgraph: a lower bound on the
    /// vertex cover of what remains.
    fn matching_lower_bound(&self, active: &BitSet) -> usize {
        let mut avail = active.clone();
        let mut size = 0;
        while let Some(u) = avail.first() {
            avail.remove(u);
            let mut nb = self.adj[u].clone();
            nb.intersect_with(&avail);
            if let Some(v) = nb.first() {
                avail.remove(v);
                size += 1;
            }
        }
        size
    }

    fn branch(&mut self, mut active: BitSet, mut cover: BitSet, mut cover_size: usize) {
        // Reduction loop.
        loop {
            if cover_size >= self.best_size {
                return;
            }
            let mut changed = false;

            // Degree 0 and degree 1.
            for v in active.iter().collect::<Vec<_>>() {
                if !active.contains(v) {
                    continue;
                }
                let mut nb = self.adj[v].clone();
                nb.intersect_with(&active);
                match nb.len() {
                    0 => {
                        active.remove(v);
                        changed = true;
                    }
                    1 => {
                        let u = nb.first().expect("len 1");
                        cover.insert(u);
                        cover_size += 1;
                        active.remove(u);
                        active.remove(v);
                        changed = true;
                        if cover_size >= self.best_size {
                            return;
                        }
                    }
                    _ => {}
                }
            }

            // Dominance: for an edge {u, v}, if N(u) ⊆ N[v] then take v.
            // (Checked for low-degree u only — that is where gadgets live —
            // to keep the reduction cheap.)
            if !changed {
                'outer: for u in active.iter().collect::<Vec<_>>() {
                    if !active.contains(u) {
                        continue;
                    }
                    let mut nu = self.adj[u].clone();
                    nu.intersect_with(&active);
                    let du = nu.len();
                    if du == 0 || du > 4 {
                        continue;
                    }
                    for v in nu.iter().collect::<Vec<_>>() {
                        let mut nv = self.adj[v].clone();
                        nv.intersect_with(&active);
                        nv.insert(v); // closed neighborhood N[v]
                        if nu.is_subset(&nv) {
                            cover.insert(v);
                            cover_size += 1;
                            active.remove(v);
                            changed = true;
                            if cover_size >= self.best_size {
                                return;
                            }
                            break 'outer;
                        }
                    }
                }
            }

            if !changed {
                break;
            }
        }

        // Find a branching vertex (max active degree).
        let mut pivot = None;
        let mut max_deg = 0;
        for v in active.iter() {
            let d = self.active_degree(v, &active);
            if d > max_deg {
                max_deg = d;
                pivot = Some(v);
            }
        }

        let Some(v) = pivot else {
            // No active edges: record the solution.
            if cover_size < self.best_size {
                self.best_size = cover_size;
                self.best = Some(cover);
            }
            return;
        };

        // Prune with the matching lower bound.
        if cover_size + self.matching_lower_bound(&active) >= self.best_size {
            return;
        }

        // Branch B first when the neighborhood is large (often stronger):
        // v not in the cover ⇒ all active neighbors are.
        let mut nb = self.adj[v].clone();
        nb.intersect_with(&active);
        let nb_list: Vec<usize> = nb.iter().collect();

        // Branch A: v in the cover.
        {
            let mut a = active.clone();
            let mut c = cover.clone();
            a.remove(v);
            c.insert(v);
            self.branch(a, c, cover_size + 1);
        }

        // Branch B: N(v) in the cover, v excluded.
        {
            let mut a = active;
            let mut c = cover;
            a.remove(v);
            for &u in &nb_list {
                a.remove(u);
                c.insert(u);
            }
            self.branch(a, c, cover_size + nb_list.len());
        }
    }
}

/// Exact minimum vertex cover by exhaustive enumeration — an oracle for
/// testing the branch-and-bound solver on tiny graphs (`n ≤ ~20`).
pub fn solve_mvc_bruteforce(g: &Graph) -> Vec<bool> {
    let n = g.num_nodes();
    assert!(n <= 25, "brute force limited to 25 vertices");
    let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    let mut best_mask: u32 = (1u32 << n).wrapping_sub(1);
    if n == 0 {
        return Vec::new();
    }
    let mut best_count = n as u32;
    for mask in 0..(1u32 << n) {
        let c = mask.count_ones();
        if c >= best_count {
            continue;
        }
        if edges
            .iter()
            .all(|&(u, v)| mask >> u.index() & 1 == 1 || mask >> v.index() & 1 == 1)
        {
            best_count = c;
            best_mask = mask;
        }
    }
    (0..n).map(|i| best_mask >> i & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_graph::cover::{is_vertex_cover, set_size};
    use pga_graph::generators;
    use pga_graph::power::square;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn known_optima() {
        assert_eq!(mvc_size(&generators::path(2)), 1);
        assert_eq!(mvc_size(&generators::path(5)), 2);
        assert_eq!(mvc_size(&generators::cycle(5)), 3);
        assert_eq!(mvc_size(&generators::cycle(6)), 3);
        assert_eq!(mvc_size(&generators::complete(7)), 6);
        assert_eq!(mvc_size(&generators::star(10)), 1);
        assert_eq!(mvc_size(&generators::complete_bipartite(3, 5)), 3);
        assert_eq!(mvc_size(&Graph::empty(5)), 0);
        assert_eq!(mvc_size(&Graph::empty(0)), 0);
    }

    #[test]
    fn cover_is_valid() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let g = generators::gnp(16, 0.25, &mut rng);
            let c = solve_mvc(&g);
            assert!(is_vertex_cover(&g, &c));
        }
    }

    #[test]
    fn matches_bruteforce_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(2);
        for i in 0..30 {
            let n = 6 + (i % 9);
            let g = generators::gnp(n, 0.3, &mut rng);
            let bb = set_size(&solve_mvc(&g));
            let bf = set_size(&solve_mvc_bruteforce(&g));
            assert_eq!(bb, bf, "disagreement on n={n} iteration {i}");
        }
    }

    #[test]
    fn matches_bruteforce_on_squares() {
        // The solver is primarily used on (subgraphs of) squares.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..15 {
            let g = generators::gnp(12, 0.18, &mut rng);
            let g2 = square(&g);
            assert_eq!(
                set_size(&solve_mvc(&g2)),
                set_size(&solve_mvc_bruteforce(&g2))
            );
        }
    }

    #[test]
    fn budget_mode() {
        let g = generators::cycle(5); // OPT = 3
        assert!(solve_mvc_with_budget(&g, 2).is_none());
        let c = solve_mvc_with_budget(&g, 3).expect("OPT=3 fits budget 3");
        assert!(is_vertex_cover(&g, &c));
        assert!(set_size(&c) <= 3);
        let c4 = solve_mvc_with_budget(&g, 4).expect("larger budget also fits");
        assert!(set_size(&c4) <= 4);
    }

    #[test]
    fn pendant_triangle_normal_form() {
        // Triangle 0-1-2 with a pendant path 2-3-4: OPT = {2, 3} ∪ one of
        // {0,1}... Actually cover must cover triangle (2 vertices) and edge
        // (3,4). Taking {0 or 1?}: triangle needs 2 of {0,1,2}; picking
        // {1,2} also covers edge (2,3); then edge (3,4) needs one more.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        assert_eq!(mvc_size(&g), 3);
    }

    #[test]
    fn larger_structured_instance() {
        // Chain of 8 cliques of size 5: OPT = 8 * 4 = 32 (each clique needs
        // s-1 = 4; connector edges are covered for free by clique covers
        // that include the connector vertices).
        let g = generators::clique_chain(8, 5);
        assert_eq!(mvc_size(&g), 32);
    }

    #[test]
    fn grid_cover() {
        // 3x4 grid: known MVC size 6 (bipartite; König: max matching = 6).
        let g = generators::grid(3, 4);
        assert_eq!(mvc_size(&g), 6);
    }
}
