//! Exact minimum *weighted* vertex cover via branch and bound.
//!
//! Zero-weight vertices are taken into the cover up front — they cover
//! edges for free. This matters for the paper's lower-bound family
//! `H_{x,y}` of Theorem 20, whose path-gadget vertices all have weight 0.

use crate::bitset::BitSet;
use pga_graph::{Graph, VertexWeights};

/// Exact minimum-weight vertex cover of `(g, w)` as a membership vector.
///
/// # Panics
///
/// Panics if `w` does not match `g`.
///
/// # Example
///
/// ```
/// use pga_graph::{Graph, VertexWeights};
/// use pga_exact::wvc::solve_mwvc;
/// use pga_graph::cover::set_weight;
///
/// // Path 0-1-2; middle vertex is expensive.
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
/// let w = VertexWeights::from_vec(vec![1, 10, 1]);
/// let cover = solve_mwvc(&g, &w);
/// assert_eq!(set_weight(&cover, w.as_slice()), 2); // take both endpoints
/// ```
pub fn solve_mwvc(g: &Graph, w: &VertexWeights) -> Vec<bool> {
    assert!(w.matches(g), "weights must match the graph");
    let mut solver = WvcSolver::new(g, w);
    // Seed: all vertices (always a cover).
    solver.best_cost = w.total() + 1;
    let mut active = BitSet::full(g.num_nodes());
    let mut cover = BitSet::new(g.num_nodes());
    // Zero-weight vertices are free: include them immediately.
    for v in g.nodes() {
        if w[v] == 0 {
            cover.insert(v.index());
            active.remove(v.index());
        }
    }
    solver.branch(active, cover, 0);
    match solver.best {
        Some(b) => b.to_membership(),
        None => vec![true; g.num_nodes()],
    }
}

/// Weight of a minimum-weight vertex cover of `(g, w)`.
pub fn mwvc_weight(g: &Graph, w: &VertexWeights) -> u64 {
    let c = solve_mwvc(g, w);
    w.subset_weight(&c)
}

/// Decides whether `(g, w)` has a vertex cover of weight at most `budget`,
/// returning one if so.
pub fn solve_mwvc_with_budget(g: &Graph, w: &VertexWeights, budget: u64) -> Option<Vec<bool>> {
    assert!(w.matches(g), "weights must match the graph");
    let mut solver = WvcSolver::new(g, w);
    solver.best_cost = budget.saturating_add(1);
    let mut active = BitSet::full(g.num_nodes());
    let mut cover = BitSet::new(g.num_nodes());
    for v in g.nodes() {
        if w[v] == 0 {
            cover.insert(v.index());
            active.remove(v.index());
        }
    }
    solver.branch(active, cover, 0);
    solver.best.map(|b| b.to_membership())
}

struct WvcSolver {
    adj: Vec<BitSet>,
    w: Vec<u64>,
    best: Option<BitSet>,
    best_cost: u64,
}

impl WvcSolver {
    fn new(g: &Graph, w: &VertexWeights) -> Self {
        let n = g.num_nodes();
        let mut adj = vec![BitSet::new(n); n];
        for (u, v) in g.edges() {
            adj[u.index()].insert(v.index());
            adj[v.index()].insert(u.index());
        }
        WvcSolver {
            adj,
            w: w.as_slice().to_vec(),
            best: None,
            best_cost: u64::MAX,
        }
    }

    /// Greedy disjoint edge packing: every matched edge {u, v} forces at
    /// least `min(w(u), w(v))` of cost.
    fn packing_lower_bound(&self, active: &BitSet) -> u64 {
        let mut avail = active.clone();
        let mut lb = 0u64;
        while let Some(u) = avail.first() {
            avail.remove(u);
            let mut nb = self.adj[u].clone();
            nb.intersect_with(&avail);
            if let Some(v) = nb.first() {
                avail.remove(v);
                lb += self.w[u].min(self.w[v]);
            }
        }
        lb
    }

    fn branch(&mut self, mut active: BitSet, mut cover: BitSet, mut cost: u64) {
        // Reductions.
        loop {
            if cost >= self.best_cost {
                return;
            }
            let mut changed = false;
            for v in active.iter().collect::<Vec<_>>() {
                if !active.contains(v) {
                    continue;
                }
                let mut nb = self.adj[v].clone();
                nb.intersect_with(&active);
                match nb.len() {
                    0 => {
                        active.remove(v);
                        changed = true;
                    }
                    1 => {
                        let u = nb.first().expect("len 1");
                        // Edge {v, u}: if w(u) ≤ w(v), taking u dominates.
                        if self.w[u] <= self.w[v] {
                            cover.insert(u);
                            cost += self.w[u];
                            active.remove(u);
                            active.remove(v);
                            changed = true;
                        }
                    }
                    _ => {}
                }
            }
            if !changed {
                break;
            }
        }

        // Pick pivot: maximize active degree (ties toward higher weight,
        // which makes the exclude-branch expensive and prunable).
        let mut pivot = None;
        let mut best_key = (0usize, 0u64);
        for v in active.iter() {
            let d = self.adj[v].intersection_len(&active);
            if d > 0 && (d, self.w[v]) > best_key {
                best_key = (d, self.w[v]);
                pivot = Some(v);
            }
        }

        let Some(v) = pivot else {
            if cost < self.best_cost {
                self.best_cost = cost;
                self.best = Some(cover);
            }
            return;
        };

        if cost + self.packing_lower_bound(&active) >= self.best_cost {
            return;
        }

        let mut nb = self.adj[v].clone();
        nb.intersect_with(&active);
        let nb_list: Vec<usize> = nb.iter().collect();

        // Branch A: v in the cover.
        {
            let mut a = active.clone();
            let mut c = cover.clone();
            a.remove(v);
            c.insert(v);
            self.branch(a, c, cost + self.w[v]);
        }

        // Branch B: v excluded ⇒ all active neighbors in the cover.
        {
            let mut a = active;
            let mut c = cover;
            a.remove(v);
            let mut add = 0u64;
            for &u in &nb_list {
                a.remove(u);
                c.insert(u);
                add += self.w[u];
            }
            self.branch(a, c, cost + add);
        }
    }
}

/// Brute-force oracle for tiny weighted instances (`n ≤ 20`).
pub fn solve_mwvc_bruteforce(g: &Graph, w: &VertexWeights) -> Vec<bool> {
    let n = g.num_nodes();
    assert!(n <= 20, "brute force limited to 20 vertices");
    let edges: Vec<_> = g.edges().collect();
    let mut best_mask = (1u32 << n).wrapping_sub(1);
    let mut best_cost: u64 = w.total();
    for mask in 0..(1u32 << n) {
        let cost: u64 = (0..n)
            .filter(|&i| mask >> i & 1 == 1)
            .map(|i| w.as_slice()[i])
            .sum();
        if cost > best_cost {
            continue;
        }
        let feasible = edges
            .iter()
            .all(|&(u, v)| mask >> u.index() & 1 == 1 || mask >> v.index() & 1 == 1);
        if feasible && (cost < best_cost || mask.count_ones() < best_mask.count_ones()) {
            best_cost = cost;
            best_mask = mask;
        }
    }
    (0..n).map(|i| best_mask >> i & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_graph::cover::{is_vertex_cover, set_weight};
    use pga_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unweighted_agrees_with_vc() {
        let g = generators::cycle(7);
        let w = VertexWeights::uniform(7);
        assert_eq!(mwvc_weight(&g, &w), 4);
    }

    #[test]
    fn expensive_middle_vertex() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let w = VertexWeights::from_vec(vec![1, 100, 1]);
        assert_eq!(mwvc_weight(&g, &w), 2);
    }

    #[test]
    fn zero_weight_vertices_free() {
        // Star with a free center.
        let g = generators::star(6);
        let mut weights = vec![7; 6];
        weights[0] = 0;
        let w = VertexWeights::from_vec(weights);
        assert_eq!(mwvc_weight(&g, &w), 0);
    }

    #[test]
    fn matches_bruteforce_random() {
        let mut rng = StdRng::seed_from_u64(4);
        for i in 0..25 {
            let n = 6 + (i % 7);
            let g = generators::gnp(n, 0.35, &mut rng);
            let w = VertexWeights::random(n, 0..8, &mut rng);
            let bb = set_weight(&solve_mwvc(&g, &w), w.as_slice());
            let bf = set_weight(&solve_mwvc_bruteforce(&g, &w), w.as_slice());
            assert_eq!(bb, bf, "n={n} i={i}");
            assert!(is_vertex_cover(&g, &solve_mwvc(&g, &w)));
        }
    }

    #[test]
    fn budget_mode() {
        let g = generators::cycle(5);
        let w = VertexWeights::uniform(5); // OPT weight = 3
        assert!(solve_mwvc_with_budget(&g, &w, 2).is_none());
        let c = solve_mwvc_with_budget(&g, &w, 3).expect("fits");
        assert!(set_weight(&c, w.as_slice()) <= 3);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(3);
        let w = VertexWeights::from_vec(vec![5, 5, 5]);
        assert_eq!(mwvc_weight(&g, &w), 0);
    }
}
