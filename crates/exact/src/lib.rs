//! Exact and baseline centralized solvers for minimum vertex cover and
//! minimum dominating set, in both unweighted and vertex-weighted variants.
//!
//! The PODC 2020 paper assumes *unbounded local computation* in the CONGEST
//! model: in Algorithm 1 a leader vertex locally computes an **optimal**
//! vertex cover of the small remaining graph `G²[U]`. This crate provides
//! that local solver ([`vc::solve_mvc`]), its weighted and dominating-set
//! cousins, and the simple approximation baselines the paper compares
//! against (maximal-matching 2-approximation, greedy `ln Δ` dominating set,
//! local-ratio weighted vertex cover).
//!
//! The exact solvers are branch-and-bound over bitset adjacency with
//! standard reductions; they are intended for the graph sizes used in the
//! experiment harness (up to a few hundred vertices of structured
//! instances), not for arbitrary large graphs.
//!
//! # Example
//!
//! ```
//! use pga_graph::generators;
//! use pga_exact::vc::solve_mvc;
//!
//! let g = generators::cycle(5);
//! let cover = solve_mvc(&g);
//! assert_eq!(cover.iter().filter(|&&b| b).count(), 3); // OPT(C5) = 3
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitset;
pub mod bounds;
pub mod greedy;
pub mod mds;
pub mod vc;
pub mod wvc;
