//! A small fixed-capacity bitset used by the branch-and-bound solvers.

/// A fixed-capacity set of vertex indices backed by `u64` words.
///
/// # Example
///
/// ```
/// use pga_exact::bitset::BitSet;
///
/// let mut s = BitSet::new(100);
/// s.insert(3);
/// s.insert(77);
/// assert!(s.contains(3));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 77]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set with capacity for indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Creates a full set containing all of `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = BitSet::new(capacity);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        s.trim();
        s
    }

    fn trim(&mut self) {
        let extra = self.words.len() * 64 - self.capacity;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
    }

    /// Capacity (exclusive upper bound on indices).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts index `i`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.capacity);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Removes index `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.capacity);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Whether `i` is in the set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of elements also present in `other` (`|self ∩ other|`).
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Whether `self ∩ other` is nonempty.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// In-place union: `self |= other`.
    pub fn union_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection: `self &= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference: `self &= !other`.
    pub fn difference_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// The smallest element, if any.
    pub fn first(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterates over elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Collects into a boolean membership vector of length `capacity`.
    pub fn to_membership(&self) -> Vec<bool> {
        let mut out = vec![false; self.capacity];
        for i in self.iter() {
            out[i] = true;
        }
        out
    }

    /// Builds from a boolean membership vector.
    pub fn from_membership(set: &[bool]) -> Self {
        let mut s = BitSet::new(set.len());
        for (i, &m) in set.iter().enumerate() {
            if m {
                s.insert(i);
            }
        }
        s
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn full_respects_capacity() {
        let s = BitSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(69));
        let s64 = BitSet::full(64);
        assert_eq!(s64.len(), 64);
        let s0 = BitSet::full(0);
        assert_eq!(s0.len(), 0);
    }

    #[test]
    fn set_operations() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        for i in [1, 5, 70] {
            a.insert(i);
        }
        for i in [5, 70, 99] {
            b.insert(i);
        }
        assert_eq!(a.intersection_len(&b), 2);
        assert!(a.intersects(&b));
        assert!(!a.is_subset(&b));

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 4);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![5, 70]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1]);
        assert!(d.is_subset(&a));
    }

    #[test]
    fn first_and_iter() {
        let mut s = BitSet::new(200);
        assert_eq!(s.first(), None);
        s.insert(150);
        s.insert(63);
        s.insert(64);
        assert_eq!(s.first(), Some(63));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![63, 64, 150]);
    }

    #[test]
    fn membership_roundtrip() {
        let mv = vec![true, false, true, false, true];
        let s = BitSet::from_membership(&mv);
        assert_eq!(s.to_membership(), mv);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn debug_format_nonempty() {
        let mut s = BitSet::new(10);
        s.insert(2);
        assert_eq!(format!("{s:?}"), "{2}");
    }
}
