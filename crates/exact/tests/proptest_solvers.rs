//! Property-based tests pitting the branch-and-bound solvers against
//! brute force and against each other's bounds.

use pga_exact::bounds::{square_mds_packing_bound, square_vc_bound};
use pga_exact::greedy::{greedy_mds, greedy_mwds, local_ratio_mwvc};
use pga_exact::mds::{
    mds_size, solve_mds, solve_mds_bruteforce, solve_mwds, solve_mwds_with_budget,
};
use pga_exact::vc::{mvc_size, solve_mvc, solve_mvc_bruteforce, solve_mvc_with_budget};
use pga_exact::wvc::{mwvc_weight, solve_mwvc, solve_mwvc_bruteforce};
use pga_graph::cover::{is_dominating_set, is_vertex_cover, set_size, set_weight};
use pga_graph::power::square;
use pga_graph::{Graph, VertexWeights};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        3usize..12,
        proptest::collection::vec((0u32..12, 0u32..12), 0..30),
    )
        .prop_map(|(n, edges)| {
            let edges: Vec<(u32, u32)> = edges
                .into_iter()
                .map(|(a, b)| (a % n as u32, b % n as u32))
                .collect();
            Graph::from_edges(n, &edges)
        })
}

fn arb_weights(n: usize) -> impl Strategy<Value = VertexWeights> {
    proptest::collection::vec(0u64..12, n).prop_map(VertexWeights::from_vec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// B&B equals brute force for MVC.
    #[test]
    fn mvc_matches_bruteforce(g in arb_graph()) {
        let bb = set_size(&solve_mvc(&g));
        let bf = set_size(&solve_mvc_bruteforce(&g));
        prop_assert_eq!(bb, bf);
    }

    /// B&B equals brute force for MDS.
    #[test]
    fn mds_matches_bruteforce(g in arb_graph()) {
        let bb = set_size(&solve_mds(&g));
        let bf = set_size(&solve_mds_bruteforce(&g));
        prop_assert_eq!(bb, bf);
    }

    /// Weighted B&B equals weighted brute force.
    #[test]
    fn mwvc_matches_bruteforce((g, w) in arb_graph().prop_flat_map(|g| {
        let n = g.num_nodes();
        (Just(g), arb_weights(n))
    })) {
        let bb = set_weight(&solve_mwvc(&g, &w), w.as_slice());
        let bf = set_weight(&solve_mwvc_bruteforce(&g, &w), w.as_slice());
        prop_assert_eq!(bb, bf);
    }

    /// Budget mode is consistent with the optimum: feasible iff budget ≥
    /// OPT, and any returned solution respects the budget.
    #[test]
    fn vc_budget_consistency(g in arb_graph(), slack in 0usize..3) {
        let opt = mvc_size(&g);
        if opt > 0 {
            prop_assert!(solve_mvc_with_budget(&g, opt - 1).is_none());
        }
        let c = solve_mvc_with_budget(&g, opt + slack).expect("feasible at OPT+slack");
        prop_assert!(is_vertex_cover(&g, &c));
        prop_assert!(set_size(&c) <= opt + slack);
    }

    /// MDS budget mode consistency (weighted, uniform weights).
    #[test]
    fn mds_budget_consistency(g in arb_graph()) {
        let w = VertexWeights::uniform(g.num_nodes());
        let opt = mds_size(&g) as u64;
        if opt > 0 {
            prop_assert!(solve_mwds_with_budget(&g, &w, opt - 1).is_none());
        }
        let s = solve_mwds_with_budget(&g, &w, opt).expect("feasible at OPT");
        prop_assert!(is_dominating_set(&g, &s));
    }

    /// Greedy baselines are valid and at least the optimum.
    #[test]
    fn greedy_valid_and_above_opt(g in arb_graph()) {
        let gm = greedy_mds(&g);
        prop_assert!(is_dominating_set(&g, &gm));
        prop_assert!(set_size(&gm) >= mds_size(&g));

        let w = VertexWeights::uniform(g.num_nodes());
        let gw = greedy_mwds(&g, &w);
        prop_assert!(is_dominating_set(&g, &gw));

        let lr = local_ratio_mwvc(&g, &w);
        prop_assert!(is_vertex_cover(&g, &lr));
        prop_assert!(set_weight(&lr, w.as_slice()) <= 2 * mwvc_weight(&g, &w));
    }

    /// The cheap square bounds never exceed the exact square optima.
    #[test]
    fn square_bounds_sound(g in arb_graph()) {
        let g2 = square(&g);
        prop_assert!(square_vc_bound(&g) <= mvc_size(&g2));
        prop_assert!(square_mds_packing_bound(&g) <= mds_size(&g2));
    }

    /// Zero-weight vertices never hurt: the weighted optimum with some
    /// weights zeroed is at most the original optimum.
    #[test]
    fn zeroing_weights_monotone(g in arb_graph(), mask in any::<u16>()) {
        let n = g.num_nodes();
        let w1 = VertexWeights::from_vec(vec![3; n]);
        let zeroed: Vec<u64> = (0..n)
            .map(|i| if mask >> (i % 16) & 1 == 1 { 0 } else { 3 })
            .collect();
        let w2 = VertexWeights::from_vec(zeroed);
        prop_assert!(mwvc_weight(&g, &w2) <= mwvc_weight(&g, &w1));
        let s2 = solve_mwds(&g, &w2);
        prop_assert!(is_dominating_set(&g, &s2));
    }
}
