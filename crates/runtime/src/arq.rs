//! The reliable delivery plane: a kernel-level sliding-window ARQ
//! between the [`ExecModel`] round loop and the [`Adversary`]-faulted
//! network.
//!
//! [`run_reliable`] adds a fourth executor family next to the clean
//! engines and [`run_faulty`](crate::fault::run_faulty). Every
//! application message rides a per-link (sender → receiver) **sequence
//! number**; receivers accept frames in order (buffering out-of-order
//! arrivals), flag a **cumulative ack** back to the sender, and senders
//! **retransmit** frames unacknowledged for
//! [`ReliabilitySpec::ack_timeout_rounds`] kernel ticks, up to
//! [`ReliabilitySpec::max_retries`] times — after which the link is
//! declared **dead** and its traffic abandoned.
//!
//! # Ticks vs. application rounds
//!
//! The executor decouples the **kernel tick** (the unit the adversary,
//! the round budget, the metrics, and the probe plane are clocked on)
//! from the **application round** (the `round` the actors observe). A
//! global barrier advances the application clock only when every frame
//! of the previous application round has been accepted or abandoned,
//! so under any adversary that kills no link the actors see exactly
//! the clean run's inboxes in exactly the clean run's order — outputs
//! are **bit-identical** to the clean executors, and the entire price
//! of the faults is paid in ticks (rounds stretch), retransmissions,
//! and ack traffic. Dead links degrade delivery like permanent drops;
//! phase-level timeouts in the algorithm layer (see
//! [`ReliabilitySpec::phase_timeout_slack`]) bound the damage.
//!
//! # Accounting
//!
//! The model charges each logical send once at `step` time, exactly
//! like the clean engines (first transmission, payload lane). The
//! executor additionally charges, per actual transmission: the
//! fixed-width control lane ([`ExecModel::arq_header_charge`]) on
//! every data copy, full payload + header for every retransmission and
//! duplicated copy, and [`ExecModel::arq_ack_charge`] per ack frame.
//! Congestion accounting therefore reflects what actually traversed
//! each link, retransmits included. The per-payload peak
//! (`RoundProfile::peak_link`) stays on the payload lane: control
//! words ride beside the payload, not inside the bandwidth budget.
//!
//! # Determinism
//!
//! All ARQ state lives on the driving thread in deterministic
//! containers (`BTreeMap`/`BTreeSet`), frames are ingested in shard
//! order (ascending sender order, the sequential delivery order), and
//! adversary verdicts are pure functions of `(tick, sender, transmit
//! index)` — so outputs, metrics, and errors are bit-identical at
//! every thread count and across both codec planes, and replay from
//! `(seed, FaultSpec, ReliabilitySpec)` is exact.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::fault::{sweep_faulty, Adversary, Fate, FaultStats};
use crate::probe::{NoopProbe, Probe, RoundObs};
use crate::{
    balanced_partition, outputs, split_by_bounds, ActorId, ExecModel, KernelConfig, MsgSink,
    PackedModel, RoundProfile, Run,
};

/// Knobs of the reliable delivery plane, consumed via
/// [`RunConfig::reliability`](crate::RunConfig::reliability).
///
/// ```
/// use pga_runtime::ReliabilitySpec;
///
/// let spec = ReliabilitySpec::arq().with_phase_timeouts(2);
/// assert_eq!(spec.window, 32);
/// assert_eq!(spec.ack_timeout_rounds, 2);
/// assert_eq!(spec.phase_timeout_slack, 2);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ReliabilitySpec {
    /// Per-link sliding-window size: how many frames may be
    /// unacknowledged on one (sender, receiver) link before further
    /// frames queue at the sender.
    pub window: u32,
    /// Retransmit a frame unacknowledged for this many kernel ticks.
    /// The clean round trip is exactly 2 ticks (data out, ack back),
    /// so the default of 2 retransmits as early as possible without
    /// spurious copies on a fault-free link.
    pub ack_timeout_rounds: u32,
    /// Give up on a frame after this many retransmissions and declare
    /// the link **dead**: all of its queued and future traffic is
    /// abandoned, [`FaultStats::dead_links`] is incremented, and the
    /// application-level phase timeouts are the remaining safety net.
    pub max_retries: u32,
    /// Multiplier on the algorithms' clean-run round bounds that arms
    /// **phase-level timeouts** in the pipeline layer; `0` (default)
    /// leaves phases waiting forever. The kernel never reads this —
    /// pipelines consult it via
    /// [`ReliabilitySpec::phase_deadline`] when constructing their
    /// actors.
    pub phase_timeout_slack: u32,
}

impl Default for ReliabilitySpec {
    fn default() -> Self {
        ReliabilitySpec {
            window: 32,
            ack_timeout_rounds: 2,
            max_retries: 16,
            phase_timeout_slack: 0,
        }
    }
}

impl ReliabilitySpec {
    /// The default ARQ plan: window 32, retransmit after 2 ticks, give
    /// up (dead link) after 16 retries, no phase timeouts.
    pub fn arq() -> Self {
        Self::default()
    }

    /// Sets the sliding-window size.
    pub fn with_window(mut self, window: u32) -> Self {
        self.window = window.max(1);
        self
    }

    /// Sets the ack timeout in kernel ticks.
    pub fn with_ack_timeout(mut self, ticks: u32) -> Self {
        self.ack_timeout_rounds = ticks.max(1);
        self
    }

    /// Sets the retry budget before a link is declared dead.
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Arms phase-level timeouts with the given slack multiplier on
    /// each phase's clean-run round bound.
    pub fn with_phase_timeouts(mut self, slack: u32) -> Self {
        self.phase_timeout_slack = slack;
        self
    }

    /// The application-round deadline for a phase whose clean run is
    /// bounded by `clean_bound` rounds, or `None` when phase timeouts
    /// are not armed.
    pub fn phase_deadline(&self, clean_bound: usize) -> Option<usize> {
        (self.phase_timeout_slack > 0)
            .then(|| clean_bound.saturating_mul(self.phase_timeout_slack as usize))
    }
}

/// One unacknowledged frame at a sender.
struct Frame<M: ExecModel> {
    seq: u64,
    msg: M::Msg,
    last_tx: usize,
    retries: u32,
}

/// Per-(sender, receiver) link state: the sender's window on the left,
/// the receiver's in-order acceptance cursor on the right. Everything
/// lives on the driving thread.
struct LinkState<M: ExecModel> {
    /// Sender: next fresh sequence number.
    next_seq: u64,
    /// Sender: frames accepted by the app but waiting for window room.
    queued: VecDeque<(u64, M::Msg)>,
    /// Sender: transmitted frames awaiting acknowledgment.
    unacked: VecDeque<Frame<M>>,
    /// Receiver: next in-order sequence number to accept.
    expected: u64,
    /// Receiver: out-of-order arrivals buffered until the gap fills.
    reorder: BTreeMap<u64, M::Msg>,
    /// Declared dead (retry budget exhausted, or an endpoint crashed):
    /// all traffic is abandoned and arrivals are discarded.
    dead: bool,
}

impl<M: ExecModel> LinkState<M> {
    fn new() -> Self {
        LinkState {
            next_seq: 0,
            queued: VecDeque::new(),
            unacked: VecDeque::new(),
            expected: 0,
            reorder: BTreeMap::new(),
            dead: false,
        }
    }

    /// Abandons every frame this link still owes the application and
    /// returns how many of them counted against the global barrier.
    fn kill(&mut self) -> u64 {
        self.dead = true;
        let mut abandoned = 0u64;
        for f in self.unacked.drain(..) {
            // An unacked frame holds the barrier unless the receiver
            // already accepted it (its ack was lost in flight).
            if f.seq >= self.expected && !self.reorder.contains_key(&f.seq) {
                abandoned += 1;
            }
        }
        abandoned += self.reorder.len() as u64;
        self.reorder.clear();
        abandoned += self.queued.len() as u64;
        self.queued.clear();
        abandoned
    }
}

/// A copy in flight: delivered when the tick clock reaches `arrive`.
struct InFlight<M: ExecModel> {
    arrive: usize,
    from: u32,
    to: u32,
    payload: Payload<M>,
}

enum Payload<M: ExecModel> {
    Data {
        from_id: M::Id,
        seq: u64,
        msg: M::Msg,
    },
    /// Cumulative: every data seq `< cum` on the `from → to`-reversed
    /// link is acknowledged.
    Ack { cum: u64 },
}

/// The staging sink of the reliable executor: raw sends are collected
/// per shard (in outbox order) and handed to the driving-thread ARQ
/// pump; the model charges each logical send once, exactly like the
/// clean sinks.
struct ReliableSink<'a, M: ExecModel> {
    out: &'a mut Vec<(u32, M::Id, M::Msg)>,
}

impl<M: ExecModel> MsgSink<M> for ReliableSink<'_, M> {
    #[inline]
    fn deliver(&mut self, _model: &M, to: M::Id, from: M::Id, msg: M::Msg) -> u32 {
        self.out.push((to.index() as u32, from, msg));
        1
    }
}

/// Per-shard staging reused across ticks.
struct ShardStage<M: ExecModel> {
    out: Vec<(u32, M::Id, M::Msg)>,
    scratch: M::SendScratch,
}

impl<M: ExecModel> ShardStage<M> {
    fn new() -> Self {
        ShardStage {
            out: Vec::new(),
            scratch: M::SendScratch::default(),
        }
    }
}

/// Runs `nodes` to completion on the reliable (ARQ) executor under
/// `adversary`.
///
/// See the module docs for the tick/application-round split, the
/// accounting contract, and the determinism guarantees. A run under a
/// never-interfering adversary produces the clean executors' outputs
/// with a constant tick tail (the final ack drain); under drop, delay,
/// and duplicate faults the outputs stay bit-identical to the clean
/// run and only the metrics stretch; dead links (retry exhaustion or
/// crashes) degrade delivery like permanent drops.
///
/// # Errors
///
/// Returns the model's error exactly like the other executors: the
/// lowest-indexed actor's violation, or the round-limit error when the
/// **tick** budget runs out.
pub fn run_reliable<M>(
    model: &M,
    nodes: Vec<M::Node>,
    threads: usize,
    cfg: KernelConfig,
    spec: ReliabilitySpec,
    adversary: &dyn Adversary,
) -> Result<Run<M::Output, M::Metrics>, M::Error>
where
    M: ExecModel,
    M::Node: Send,
    M::Msg: Send,
    M::Error: Send,
{
    #[allow(clippy::disallowed_methods)] // the probed twin of this wrapper
    run_reliable_probed(model, nodes, threads, cfg, spec, adversary, &NoopProbe)
}

/// [`run_reliable`] with a [`Probe`] attached: identical outputs,
/// metrics, and errors (observer neutrality), plus per-tick telemetry
/// including retransmit/ack counters in the fault-stat deltas handed
/// to [`Probe::on_fault_event`].
///
/// # Errors
///
/// Returns the model's error like [`run_reliable`].
pub fn run_reliable_probed<M, P>(
    model: &M,
    nodes: Vec<M::Node>,
    threads: usize,
    cfg: KernelConfig,
    spec: ReliabilitySpec,
    adversary: &dyn Adversary,
    probe: &P,
) -> Result<Run<M::Output, M::Metrics>, M::Error>
where
    M: ExecModel,
    M::Node: Send,
    M::Msg: Send,
    M::Error: Send,
    P: Probe,
{
    if model.packs() {
        run_reliable_inner(
            &PackedModel(model),
            nodes,
            threads,
            cfg,
            spec,
            adversary,
            probe,
        )
    } else {
        run_reliable_inner(model, nodes, threads, cfg, spec, adversary, probe)
    }
}

/// Central ARQ bookkeeping of one run (driving thread only).
struct ArqState<M: ExecModel> {
    /// Directional link table, keyed `(sender index, receiver index)`.
    links: BTreeMap<(u32, u32), LinkState<M>>,
    /// Copies in flight on the faulted network.
    wire: Vec<InFlight<M>>,
    /// Receivers owing a cumulative ack, keyed
    /// `(receiver index, sender index)`.
    ack_pending: BTreeSet<(u32, u32)>,
    /// Frames sent by the application and not yet accepted or
    /// abandoned — the global barrier is open iff this is zero.
    outstanding: u64,
    /// Transmitted frames awaiting acknowledgment, across all links.
    unacked_total: u64,
    stats: FaultStats,
}

/// Rolls the adversary for one transmission and places the surviving
/// copies on the wire. Returns the number of copies. A free function
/// over the disjoint [`ArqState`] fields so the link pump can call it
/// while iterating the link table.
#[allow(clippy::too_many_arguments)]
fn transmit<M: ExecModel>(
    wire: &mut Vec<InFlight<M>>,
    stats: &mut FaultStats,
    adversary: &dyn Adversary,
    tick: usize,
    tx_seq: &mut [u32],
    from: u32,
    to: u32,
    payload: Payload<M>,
) -> u32 {
    let k = tx_seq[from as usize];
    tx_seq[from as usize] += 1;
    match adversary.fate(tick as u32, from, k) {
        Fate::Drop => {
            stats.dropped += 1;
            0
        }
        Fate::Deliver => {
            wire.push(InFlight {
                arrive: tick + 1,
                from,
                to,
                payload,
            });
            1
        }
        Fate::Duplicate => {
            stats.duplicated += 1;
            let copy = match &payload {
                Payload::Data { from_id, seq, msg } => Payload::Data {
                    from_id: *from_id,
                    seq: *seq,
                    msg: msg.clone(),
                },
                Payload::Ack { cum } => Payload::Ack { cum: *cum },
            };
            wire.push(InFlight {
                arrive: tick + 1,
                from,
                to,
                payload: copy,
            });
            wire.push(InFlight {
                arrive: tick + 1,
                from,
                to,
                payload,
            });
            2
        }
        Fate::Delay(d) => {
            stats.delayed += 1;
            wire.push(InFlight {
                arrive: tick + 1 + d.max(1) as usize,
                from,
                to,
                payload,
            });
            1
        }
    }
}

#[allow(clippy::too_many_lines)]
fn run_reliable_inner<M, P>(
    model: &M,
    mut nodes: Vec<M::Node>,
    threads: usize,
    cfg: KernelConfig,
    spec: ReliabilitySpec,
    adversary: &dyn Adversary,
    probe: &P,
) -> Result<Run<M::Output, M::Metrics>, M::Error>
where
    M: ExecModel,
    M::Node: Send,
    M::Msg: Send,
    M::Error: Send,
    P: Probe,
{
    let n = nodes.len();
    let mut metrics = M::Metrics::default();
    model.pre_run(&nodes, &mut metrics)?;

    let window = spec.window.max(1) as usize;
    let ack_timeout = spec.ack_timeout_rounds.max(1) as usize;
    let header = model.arq_header_charge();
    let ack_charge = model.arq_ack_charge();

    // Crash table fixed up front, exactly like the adversarial
    // executor (tick clock): a crash severs every link of the actor,
    // in-flight mail included.
    let crash: Vec<Option<u32>> = (0..n).map(|i| adversary.crash_round(i as u32)).collect();
    let mut crashed = vec![false; n];

    let (bounds, costs) = if threads > 1 && n >= 2 * threads {
        let costs: Vec<u64> = nodes
            .iter()
            .enumerate()
            .map(|(i, node)| model.actor_cost(node, i))
            .collect();
        (balanced_partition(&costs, threads), costs)
    } else {
        (vec![0, n], Vec::new())
    };
    let num_shards = bounds.len() - 1;
    let run_start = P::ENABLED.then(std::time::Instant::now);
    if P::ENABLED {
        probe.on_run_start(n, &bounds, &costs);
    }

    let mut inboxes: Vec<Vec<(M::Id, M::Msg)>> = (0..n).map(|_| Vec::new()).collect();
    let mut staging: Vec<Vec<(M::Id, M::Msg)>> = (0..n).map(|_| Vec::new()).collect();
    let mut recv: Vec<usize> = if M::TRACK_RECV {
        vec![0; n]
    } else {
        Vec::new()
    };
    let mut active = vec![true; n];
    let mut dormant = vec![false; n];
    let mut shard_state: Vec<ShardStage<M>> = (0..num_shards).map(|_| ShardStage::new()).collect();
    let mut arq: ArqState<M> = ArqState {
        links: BTreeMap::new(),
        wire: Vec::new(),
        ack_pending: BTreeSet::new(),
        outstanding: 0,
        unacked_total: 0,
        stats: FaultStats::default(),
    };
    let mut tx_seq = vec![0u32; n];
    let mut fault_seen = FaultStats::default();
    let mut tick = 0usize;
    let mut app_round = 0usize;
    let mut delivered: u64 = 0;
    let mut convergence = 0usize;

    loop {
        // Crash activation (tick clock): sever the victim's links.
        for i in 0..n {
            if !crashed[i] && matches!(crash[i], Some(r) if (r as usize) <= tick) {
                crashed[i] = true;
                arq.stats.crashed += 1;
                let v = i as u32;
                for (&(a, b), link) in arq.links.iter_mut() {
                    if (a == v || b == v) && !link.dead {
                        let abandoned = link.kill();
                        arq.outstanding -= abandoned;
                        arq.unacked_total = arq.unacked_total.saturating_sub(abandoned);
                    }
                }
            }
        }
        // Fix the per-link unacked totals after a kill sweep: `kill`
        // drains unacked wholesale, so recompute the global tally from
        // the surviving links only when a crash actually fired. (The
        // dead-link path below adjusts incrementally.)
        if arq.stats.crashed > fault_seen.crashed || tick == 0 {
            arq.unacked_total = arq
                .links
                .values()
                .map(|l| l.unacked.len() as u64)
                .sum::<u64>();
        }

        // Wire delivery: copies transmitted earlier whose arrival tick
        // is now.
        let mut delivered_now = 0u64;
        let mut i = 0;
        while i < arq.wire.len() {
            if arq.wire[i].arrive != tick {
                i += 1;
                continue;
            }
            let InFlight {
                from, to, payload, ..
            } = arq.wire.swap_remove(i);
            match payload {
                Payload::Data { from_id, seq, msg } => {
                    let link = arq
                        .links
                        .entry((from, to))
                        .or_insert_with(LinkState::<M>::new);
                    if link.dead || crashed[to as usize] {
                        arq.stats.dropped += 1;
                        continue;
                    }
                    if seq < link.expected || link.reorder.contains_key(&seq) {
                        // Stale or duplicate copy: the cumulative ack
                        // was lost — re-flag it.
                        arq.ack_pending.insert((to, from));
                        continue;
                    }
                    link.reorder.insert(seq, msg);
                    while let Some(m) = link.reorder.remove(&link.expected) {
                        if M::TRACK_RECV {
                            recv[to as usize] += model.recv_charge(&m);
                        }
                        staging[to as usize].push((from_id, m));
                        link.expected += 1;
                        arq.outstanding -= 1;
                        delivered_now += 1;
                    }
                    arq.ack_pending.insert((to, from));
                }
                Payload::Ack { cum } => {
                    // Ack for the reversed link: `from` here is the
                    // receiver acknowledging `to`'s data.
                    if let Some(link) = arq.links.get_mut(&(to, from)) {
                        while link.unacked.front().is_some_and(|f| f.seq < cum) {
                            link.unacked.pop_front();
                            arq.unacked_total -= 1;
                        }
                    }
                }
            }
        }

        // Barrier: the application clock advances only when every
        // frame of the previous application round is resolved.
        let barrier_open = arq.outstanding == 0;
        let mut quiescent = false;
        if barrier_open {
            for (i, stage) in staging.iter_mut().enumerate() {
                if !stage.is_empty() {
                    // Acceptance order can interleave senders across
                    // ticks; the stable per-sender sort restores the
                    // sequential executor's inbox order (per-link
                    // frames are already in send order).
                    stage.sort_by_key(|(from, _)| from.index());
                    std::mem::swap(&mut inboxes[i], stage);
                    stage.clear();
                }
            }
            quiescent = sweep_faulty(
                model,
                &nodes,
                &inboxes,
                &crashed,
                app_round,
                cfg.scheduling,
                &mut active,
                &mut dormant,
            );
            if quiescent
                && arq.wire.is_empty()
                && arq.unacked_total == 0
                && arq.ack_pending.is_empty()
            {
                break;
            }
        }
        if tick >= cfg.max_rounds {
            return Err(model.round_limit_error(cfg.max_rounds));
        }

        let round_start = P::ENABLED.then(std::time::Instant::now);
        if P::ENABLED {
            probe.on_round_start(tick);
        }
        let mut acc = RoundProfile::for_probe::<P>();

        // Phase A: step one application round (sharded), staging raw
        // sends — only when the barrier is open and someone is live.
        let stepped = barrier_open && !quiescent;
        if stepped {
            if num_shards == 1 {
                let shard_start = P::ENABLED.then(std::time::Instant::now);
                let st = &mut shard_state[0];
                let mut sink = ReliableSink::<M> { out: &mut st.out };
                for (i, node) in nodes.iter_mut().enumerate() {
                    if !active[i] {
                        continue;
                    }
                    model.step(
                        node,
                        i,
                        app_round,
                        &inboxes[i],
                        &mut st.scratch,
                        &mut acc,
                        &mut sink,
                    )?;
                    inboxes[i].clear();
                }
                if P::ENABLED {
                    probe.on_shard(
                        tick,
                        0,
                        shard_start.map_or(0, |t| t.elapsed().as_nanos() as u64),
                        acc.messages,
                        acc.volume,
                    );
                }
            } else {
                type ShardOut<M> = (Result<RoundProfile, <M as ExecModel>::Error>, u64);
                let shard_results: Vec<Option<ShardOut<M>>> = {
                    let bounds = &bounds;
                    let active = &active;
                    std::thread::scope(|s| {
                        let handles: Vec<_> = split_by_bounds(&mut nodes, bounds)
                            .into_iter()
                            .zip(split_by_bounds(&mut inboxes, bounds))
                            .zip(shard_state.iter_mut())
                            .enumerate()
                            .map(|(si, ((shard_nodes, shard_inboxes), st))| {
                                let base = bounds[si];
                                let act = &active[base..bounds[si + 1]];
                                if !act.iter().any(|&a| a) {
                                    return None;
                                }
                                Some(s.spawn(move || {
                                    let shard_start = P::ENABLED.then(std::time::Instant::now);
                                    let mut acc = RoundProfile::for_probe::<P>();
                                    let mut sink = ReliableSink::<M> { out: &mut st.out };
                                    let mut stepped = Ok(());
                                    for (k, node) in shard_nodes.iter_mut().enumerate() {
                                        if !act[k] {
                                            continue;
                                        }
                                        if let Err(e) = model.step(
                                            node,
                                            base + k,
                                            app_round,
                                            &shard_inboxes[k],
                                            &mut st.scratch,
                                            &mut acc,
                                            &mut sink,
                                        ) {
                                            stepped = Err(e);
                                            break;
                                        }
                                        shard_inboxes[k].clear();
                                    }
                                    let ns =
                                        shard_start.map_or(0, |t| t.elapsed().as_nanos() as u64);
                                    (stepped.map(|()| acc), ns)
                                }))
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| {
                                h.map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                            })
                            .collect()
                    })
                };
                for (si, r) in shard_results.into_iter().enumerate() {
                    let Some((r, shard_ns)) = r else { continue };
                    let p = r?;
                    if P::ENABLED {
                        probe.on_shard(tick, si, shard_ns, p.messages, p.volume);
                    }
                    acc.merge(&p);
                }
            }
            app_round += 1;
        }

        // Phase B (driving thread): ingest fresh sends in shard order
        // — ascending sender order — then pump every link.
        let exchange_start = P::ENABLED.then(std::time::Instant::now);
        tx_seq.fill(0);
        for st in shard_state.iter_mut() {
            for (to, from_id, msg) in st.out.drain(..) {
                let from = from_id.index() as u32;
                let link = arq
                    .links
                    .entry((from, to))
                    .or_insert_with(LinkState::<M>::new);
                if link.dead || crashed[to as usize] {
                    // Permanent loss: the frame is charged (it left the
                    // sender) but never traverses.
                    arq.stats.dropped += 1;
                    continue;
                }
                let seq = link.next_seq;
                link.next_seq += 1;
                link.queued.push_back((seq, msg));
                arq.outstanding += 1;
            }
        }
        // Pump: retransmit due frames, declare dead links, then open
        // the window for fresh frames — in deterministic link order.
        let mut killed: Vec<(u32, u32)> = Vec::new();
        for (&(from, to), link) in arq.links.iter_mut() {
            if link.dead {
                continue;
            }
            let mut give_up = false;
            for fi in 0..link.unacked.len() {
                let due = {
                    let f = &link.unacked[fi];
                    tick - f.last_tx >= ack_timeout
                };
                if !due {
                    continue;
                }
                if link.unacked[fi].retries >= spec.max_retries {
                    give_up = true;
                    break;
                }
                link.unacked[fi].retries += 1;
                link.unacked[fi].last_tx = tick;
                let (seq, msg) = {
                    let f = &link.unacked[fi];
                    (f.seq, f.msg.clone())
                };
                arq.stats.retransmitted += 1;
                let wire_cost = model.wire_charge(&msg);
                let copies = transmit(
                    &mut arq.wire,
                    &mut arq.stats,
                    adversary,
                    tick,
                    &mut tx_seq,
                    from,
                    to,
                    Payload::Data {
                        from_id: M::Id::from_index(from as usize),
                        seq,
                        msg,
                    },
                );
                acc.messages += 1 + u64::from(copies.saturating_sub(1));
                acc.volume += u64::from(copies.max(1)) * (wire_cost + header);
                acc.observe_size(wire_cost, copies.max(1));
            }
            if give_up {
                let before_unacked = link.unacked.len() as u64;
                let abandoned = link.kill();
                arq.outstanding -= abandoned;
                arq.unacked_total -= before_unacked;
                arq.stats.dead_links += 1;
                killed.push((to, from));
                continue;
            }
            while link.unacked.len() < window {
                let Some((seq, msg)) = link.queued.pop_front() else {
                    break;
                };
                let wire_cost = model.wire_charge(&msg);
                let copies = transmit(
                    &mut arq.wire,
                    &mut arq.stats,
                    adversary,
                    tick,
                    &mut tx_seq,
                    from,
                    to,
                    Payload::Data {
                        from_id: M::Id::from_index(from as usize),
                        seq,
                        msg: msg.clone(),
                    },
                );
                // The model charged this frame's payload at step time;
                // the executor adds the control lane and any extra
                // adversary copy.
                acc.volume += u64::from(copies.max(1)) * header;
                if copies > 1 {
                    acc.messages += u64::from(copies - 1);
                    acc.volume += u64::from(copies - 1) * wire_cost;
                    acc.observe_size(wire_cost, copies - 1);
                }
                link.unacked.push_back(Frame {
                    seq,
                    msg,
                    last_tx: tick,
                    retries: 0,
                });
                arq.unacked_total += 1;
            }
        }
        // Acks: one cumulative control frame per flagged (receiver,
        // sender) pair, in deterministic order.
        let pending: Vec<(u32, u32)> = std::mem::take(&mut arq.ack_pending).into_iter().collect();
        for (to, from) in pending {
            // `to` acknowledges data it received from `from` — the ack
            // travels to → from.
            let cum = arq.links.get(&(from, to)).map_or(0, |l| l.expected);
            arq.stats.acks += 1;
            let copies = transmit(
                &mut arq.wire,
                &mut arq.stats,
                adversary,
                tick,
                &mut tx_seq,
                to,
                from,
                Payload::Ack { cum },
            );
            acc.messages += 1;
            acc.volume += u64::from(copies.max(1)) * ack_charge;
        }
        let _ = killed;
        if P::ENABLED {
            probe.on_exchange(
                tick,
                exchange_start.map_or(0, |t| t.elapsed().as_nanos() as u64),
            );
        }

        if M::TRACK_RECV {
            model.check_recv(&recv, tick)?;
        }
        if delivered_now > 0 {
            convergence = tick + 2;
        }
        delivered += delivered_now;
        model.end_round(&acc, &recv, tick, &mut metrics);
        if P::ENABLED {
            let now = arq.stats;
            let delta = FaultStats {
                delivered: delivered_now,
                dropped: now.dropped - fault_seen.dropped,
                duplicated: now.duplicated - fault_seen.duplicated,
                delayed: now.delayed - fault_seen.delayed,
                crashed: now.crashed - fault_seen.crashed,
                retransmitted: now.retransmitted - fault_seen.retransmitted,
                acks: now.acks - fault_seen.acks,
                dead_links: now.dead_links - fault_seen.dead_links,
                degraded: 0,
            };
            probe.on_fault_event(tick, &delta, arq.wire.len());
            fault_seen = now;
            probe.on_round_end(&RoundObs {
                round: tick,
                wall_ns: round_start.map_or(0, |t| t.elapsed().as_nanos() as u64),
                messages: acc.messages,
                volume: acc.volume,
                peak_link: acc.peak_link,
                active: active.iter().filter(|&&a| a).count(),
                sizes: acc.sizes.as_deref(),
            });
        } else {
            fault_seen = arq.stats;
        }
        if M::TRACK_RECV {
            recv.fill(0);
        }
        tick += 1;
    }

    let mut stats = arq.stats;
    stats.delivered = delivered;
    model.finish(&mut metrics, &stats, convergence);
    if P::ENABLED {
        if stats.crashed > fault_seen.crashed {
            let residual = FaultStats {
                crashed: stats.crashed - fault_seen.crashed,
                ..FaultStats::default()
            };
            probe.on_fault_event(tick, &residual, arq.wire.len());
        }
        probe.on_run_end(tick, run_start.map_or(0, |t| t.elapsed().as_nanos() as u64));
    }
    Ok(Run {
        outputs: outputs(model, &nodes, app_round),
        metrics,
    })
}
