//! The synchronous round-execution kernel shared by the CONGEST and MPC
//! simulators.
//!
//! Both execution models of this workspace — the CONGEST / CONGESTED
//! CLIQUE simulator of `pga-congest` and the low-space MPC simulator of
//! `pga-mpc` — drive per-actor state machines through synchronous
//! message-passing rounds: deliver each actor's inbox, collect its
//! outbox, validate every message against the model, account metrics,
//! exchange, repeat until global quiescence. This crate holds that loop
//! **once**, in two bit-identical flavors (the single-threaded
//! [`run_sequential`] and the sharded multi-threaded [`run_sharded`]),
//! parameterized by an [`ExecModel`] that supplies only the pieces that
//! actually differ between models: per-message validation and charging,
//! metrics accumulation, the error type, and addressing.
//!
//! # Performance: arenas and quiescence
//!
//! The kernel is also where the engines' shared hot loop is tuned:
//!
//! * **Arena-backed message staging** — inbox buffers are owned by the
//!   kernel and reused across rounds (swap-and-clear), so steady-state
//!   rounds perform no per-actor buffer allocation. The sharded
//!   executor likewise reuses its per-shard exchange buckets.
//! * **Quiescence-aware scheduling** — under the default
//!   [`Scheduling::ActiveSet`] policy a round only invokes the `round`
//!   callback of actors that received a message or are not yet
//!   skippable (see below), collapsing the long quiescent tails of
//!   flooding-style runs where most actors finished early.
//!
//! # The scheduling rule
//!
//! The kernel may skip an actor's `round` callback in a given round
//! **only if** the model reports the actor as *skippable*
//! ([`Poll::skippable`]) **and** the actor's inbox for that round is
//! empty. The contract that makes this invisible: *whenever an actor
//! reports itself skippable and its inbox is empty, its `round` callback
//! must be a pure no-op — no state mutation, no outgoing messages, no
//! error.* Skipping a call that would have done nothing cannot change
//! outputs, metrics, or errors, so both scheduling policies (and both
//! executors, at every thread count) remain bit-identical.
//!
//! The user-facing traits (`pga_congest::Algorithm::can_skip`,
//! `pga_mpc::Machine::can_skip`) default `skippable` to the actor's own
//! `is_done`, which satisfies the contract for plain state machines that
//! go quiet when finished. Algorithms whose `round` has residual side
//! effects after `is_done` (round-counter resets, stale-flag clearing)
//! override `can_skip` to say so and are simply never skipped;
//! [`Scheduling::FullSweep`] disables skipping globally and is the
//! reference behavior.
//!
//! Termination is *not* affected by scheduling: the kernel stops when
//! all actors are done and no message is in flight — exactly the
//! classic loop. Under the active-set policy an actor observed done and
//! skippable with an empty inbox becomes *dormant*: its state is frozen
//! (nothing may mutate it until a message arrives), so the kernel
//! counts it as done without re-polling and wakes it on delivery. The
//! contract above therefore also requires that a skippable actor's
//! `is_done`/`can_skip` verdicts stay `true` while its state is frozen.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use pga_graph::NodeId;

/// Dense actor addressing: both vertex ids (`pga_graph::NodeId`) and MPC
/// machine ids are `0..n` indices behind a newtype.
pub trait ActorId: Copy + Eq + Send {
    /// The identifier as a dense `usize` index.
    fn index(self) -> usize;
    /// The identifier for a dense `usize` index.
    fn from_index(i: usize) -> Self;
}

impl ActorId for NodeId {
    #[inline]
    fn index(self) -> usize {
        NodeId::index(self)
    }
    #[inline]
    fn from_index(i: usize) -> Self {
        NodeId::from_index(i)
    }
}

/// Round-scheduling policy of the kernel (see the crate docs for the
/// exact rule and the no-op contract that keeps the policies
/// bit-identical).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Scheduling {
    /// Skip the `round` callback of skippable actors with empty inboxes
    /// (the default; fastest on runs with quiescent tails).
    #[default]
    ActiveSet,
    /// Invoke every actor's `round` callback every round — the classic
    /// reference behavior.
    FullSweep,
}

/// Kernel tuning knobs, supplied by the model wrappers.
#[derive(Clone, Copy, Debug)]
pub struct KernelConfig {
    /// Abort with [`ExecModel::round_limit_error`] after this many rounds.
    pub max_rounds: usize,
    /// The round-scheduling policy.
    pub scheduling: Scheduling,
}

/// One round's merged accounting, shared by both models.
///
/// The kernel accumulates one `RoundProfile` per round (per shard, then
/// merged in shard order) and hands it to [`ExecModel::end_round`]; the
/// model maps the fields onto its own metrics type. Field semantics are
/// model-defined: CONGEST charges bits and tracks the largest single
/// message per round, MPC charges words and tracks per-machine send
/// volume and declared memory.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundProfile {
    /// Messages sent this round.
    pub messages: u64,
    /// Total charged volume this round (bits or words).
    pub volume: u64,
    /// Largest single-message charge this round (CONGEST's per-edge
    /// congestion peak).
    pub peak_link: usize,
    /// Largest per-actor total outgoing charge this round (MPC's send
    /// volume peak).
    pub peak_actor_out: usize,
    /// Largest per-actor declared state size this round (MPC's memory
    /// peak).
    pub peak_state: usize,
}

impl RoundProfile {
    /// Folds another shard's partial profile into this one (sums and
    /// maxima; shard order does not matter for the result).
    pub fn merge(&mut self, other: &RoundProfile) {
        self.messages += other.messages;
        self.volume += other.volume;
        self.peak_link = self.peak_link.max(other.peak_link);
        self.peak_actor_out = self.peak_actor_out.max(other.peak_actor_out);
        self.peak_state = self.peak_state.max(other.peak_state);
    }
}

/// One actor's per-round verdict, reported by [`ExecModel::poll`].
#[derive(Clone, Copy, Debug)]
pub struct Poll {
    /// Whether the actor has terminated (the run ends when all actors
    /// are done and no message is in flight).
    pub done: bool,
    /// Whether the actor's `round` callback is a guaranteed no-op while
    /// its inbox is empty (the [`Scheduling::ActiveSet`] skip rule).
    pub skippable: bool,
}

/// Where [`ExecModel::step`] stages validated outgoing messages.
///
/// The kernel provides the implementations: a direct-delivery sink for
/// the sequential executor and a bucketing sink for the sharded one.
/// `step` must call [`MsgSink::deliver`] once per validated message, in
/// outbox order, *after* the message passed the model's checks.
pub trait MsgSink<M: ExecModel + ?Sized> {
    /// Stages `msg` from `from` for delivery to `to` next round.
    fn deliver(&mut self, model: &M, to: M::Id, from: M::Id, msg: M::Msg);
}

/// The pieces of a synchronous round-based execution model that differ
/// between CONGEST and MPC.
///
/// Implementations are thin: they own the model's context construction,
/// per-message validation/charging, and the mapping from the kernel's
/// [`RoundProfile`] onto the model's public metrics type. The kernel
/// owns the loop — termination, scheduling, staging, sharding, and the
/// exchange — so engine behavior cannot drift between models.
pub trait ExecModel: Sync {
    /// Actor addressing (vertex ids or machine ids).
    type Id: ActorId;
    /// Per-actor program state (`Algorithm` / `Machine` implementors).
    type Node;
    /// Message type exchanged by the actors.
    type Msg: Clone;
    /// Per-actor output collected at the end of the run.
    type Output;
    /// Error type aborting the run (`SimError` / `MpcError`).
    type Error;
    /// Whole-run metrics type (`Metrics` / `MpcMetrics`).
    type Metrics: Default;
    /// Per-actor validation scratch, reused across actors within a
    /// shard (CONGEST's duplicate-destination list, MPC's running send
    /// volume). `step` must reset it before use.
    type SendScratch: Default + Send;

    /// Whether the kernel must tally each destination's delivered
    /// charge every round (MPC's receive-volume cap needs it; CONGEST
    /// does not, and the tally is compiled out).
    const TRACK_RECV: bool = false;

    /// Hook before round 0 (MPC checks the initial memory footprints).
    ///
    /// # Errors
    ///
    /// An error aborts the run before any round executes.
    fn pre_run(
        &self,
        _nodes: &[Self::Node],
        _metrics: &mut Self::Metrics,
    ) -> Result<(), Self::Error> {
        Ok(())
    }

    /// Reports the actor's termination and skippability at `round`.
    fn poll(&self, node: &Self::Node, idx: usize, round: usize) -> Poll;

    /// The actor's final output (called once per actor after the run).
    fn output(&self, node: &Self::Node, idx: usize, round: usize) -> Self::Output;

    /// The model's round-budget-exhausted error.
    fn round_limit_error(&self, limit: usize) -> Self::Error;

    /// Executes one actor's round: invoke the program on `inbox`,
    /// validate and charge every outgoing message (accumulating into
    /// `acc`), and stage each accepted message via `sink.deliver` in
    /// outbox order. Model-side per-actor checks (MPC's memory budget)
    /// also happen here, after the sends, to preserve the sequential
    /// engines' error precedence.
    ///
    /// # Errors
    ///
    /// The first model violation (or program-raised error) aborts the
    /// run; the kernel surfaces the lowest-indexed actor's error.
    #[allow(clippy::too_many_arguments)]
    fn step<S: MsgSink<Self>>(
        &self,
        node: &mut Self::Node,
        idx: usize,
        round: usize,
        inbox: &[(Self::Id, Self::Msg)],
        scratch: &mut Self::SendScratch,
        acc: &mut RoundProfile,
        sink: &mut S,
    ) -> Result<(), Self::Error>;

    /// The per-message charge added to the destination's receive tally
    /// (only consulted when [`ExecModel::TRACK_RECV`] is set).
    fn recv_charge(&self, _msg: &Self::Msg) -> usize {
        0
    }

    /// Validates the per-destination receive tally after all actors
    /// stepped (MPC's receive-volume cap, checked in actor order).
    ///
    /// # Errors
    ///
    /// An error aborts the run exactly like a `step` error.
    fn check_recv(&self, _recv: &[usize], _round: usize) -> Result<(), Self::Error> {
        Ok(())
    }

    /// Folds the merged round accounting into the run metrics; `round`
    /// is the 0-based index of the round that just executed, and `recv`
    /// is the receive tally (empty unless [`ExecModel::TRACK_RECV`]).
    fn end_round(
        &self,
        acc: &RoundProfile,
        recv: &[usize],
        round: usize,
        metrics: &mut Self::Metrics,
    );
}

/// Result of a completed kernel run; the model wrappers repackage it
/// into their public report types.
#[derive(Debug)]
pub struct Run<O, M> {
    /// Per-actor outputs, indexed by actor id.
    pub outputs: Vec<O>,
    /// The model's whole-run metrics.
    pub metrics: M,
}

/// Inbox buffers: one `Vec<(from, msg)>` per actor, reused across
/// rounds.
type Inboxes<M> = Vec<Vec<(<M as ExecModel>::Id, <M as ExecModel>::Msg)>>;

/// One exchange bucket of the sharded executor: `(to, from, msg)`
/// triples destined for one shard.
type Bucket<M> = Vec<(
    <M as ExecModel>::Id,
    <M as ExecModel>::Id,
    <M as ExecModel>::Msg,
)>;

/// The direct-delivery sink of the sequential executor: messages go
/// straight into the staging inboxes (and the receive tally).
struct DirectSink<'a, M: ExecModel> {
    staging: &'a mut [Vec<(M::Id, M::Msg)>],
    recv: &'a mut [usize],
}

impl<M: ExecModel> MsgSink<M> for DirectSink<'_, M> {
    #[inline]
    fn deliver(&mut self, model: &M, to: M::Id, from: M::Id, msg: M::Msg) {
        if M::TRACK_RECV {
            self.recv[to.index()] += model.recv_charge(&msg);
        }
        self.staging[to.index()].push((from, msg));
    }
}

/// The bucketing sink of the sharded executor: messages are routed to
/// per-destination-shard buckets as `(to, from, msg)` and merged into
/// the staging inboxes in shard order afterwards.
struct BucketSink<'a, M: ExecModel> {
    buckets: &'a mut [Bucket<M>],
    shard_size: usize,
}

impl<M: ExecModel> MsgSink<M> for BucketSink<'_, M> {
    #[inline]
    fn deliver(&mut self, _model: &M, to: M::Id, from: M::Id, msg: M::Msg) {
        self.buckets[to.index() / self.shard_size].push((to, from, msg));
    }
}

/// The per-round sweep: polls every actor, refreshes the activity mask,
/// and reports global termination. Runs on the driving thread in both
/// executors — it is allocation-free and branch-cheap, so even with the
/// active-set policy the termination semantics stay exactly those of
/// the classic loop.
///
/// Under [`Scheduling::ActiveSet`] the sweep additionally maintains a
/// *dormancy* cache: an actor observed done **and** skippable with an
/// empty inbox is not re-polled in later rounds until a message arrives.
/// This is sound because a skipped actor's state is frozen (the no-op
/// contract), so by the skip contract its `done`/`skippable` verdicts
/// cannot change until mail wakes it; the quiescent tail of a run then
/// costs two flag reads per actor per round instead of a model poll.
fn sweep<M: ExecModel>(
    model: &M,
    nodes: &[M::Node],
    inboxes: &Inboxes<M>,
    round: usize,
    scheduling: Scheduling,
    active: &mut [bool],
    dormant: &mut [bool],
) -> bool {
    let mut all_done = true;
    let mut in_flight = false;
    for (i, node) in nodes.iter().enumerate() {
        let has_mail = !inboxes[i].is_empty();
        if dormant[i] && !has_mail {
            // Frozen, done, and still unmailed: counts as done without
            // a fresh poll.
            active[i] = false;
            continue;
        }
        let poll = model.poll(node, i, round);
        all_done &= poll.done;
        in_flight |= has_mail;
        match scheduling {
            Scheduling::ActiveSet => {
                active[i] = has_mail || !poll.skippable;
                dormant[i] = poll.done && poll.skippable && !has_mail;
            }
            Scheduling::FullSweep => active[i] = true,
        }
    }
    all_done && !in_flight
}

/// Collects every actor's output at the final `round`.
fn outputs<M: ExecModel>(model: &M, nodes: &[M::Node], round: usize) -> Vec<M::Output> {
    nodes
        .iter()
        .enumerate()
        .map(|(i, node)| model.output(node, i, round))
        .collect()
}

/// Runs `nodes` to completion on the single-threaded reference
/// executor.
///
/// # Errors
///
/// Returns the model's error if an actor violates the model, a program
/// aborts, or the round budget is exhausted.
pub fn run_sequential<M: ExecModel>(
    model: &M,
    mut nodes: Vec<M::Node>,
    cfg: KernelConfig,
) -> Result<Run<M::Output, M::Metrics>, M::Error> {
    let n = nodes.len();
    let mut metrics = M::Metrics::default();
    model.pre_run(&nodes, &mut metrics)?;

    let mut inboxes: Inboxes<M> = (0..n).map(|_| Vec::new()).collect();
    let mut staging: Inboxes<M> = (0..n).map(|_| Vec::new()).collect();
    let mut recv: Vec<usize> = if M::TRACK_RECV {
        vec![0; n]
    } else {
        Vec::new()
    };
    let mut active = vec![true; n];
    let mut dormant = vec![false; n];
    let mut scratch = M::SendScratch::default();
    let mut round = 0;

    loop {
        if sweep(
            model,
            &nodes,
            &inboxes,
            round,
            cfg.scheduling,
            &mut active,
            &mut dormant,
        ) {
            break;
        }
        if round >= cfg.max_rounds {
            return Err(model.round_limit_error(cfg.max_rounds));
        }

        let mut acc = RoundProfile::default();
        for (i, node) in nodes.iter_mut().enumerate() {
            if !active[i] {
                continue;
            }
            let mut sink = DirectSink::<M> {
                staging: &mut staging,
                recv: &mut recv,
            };
            model.step(
                node,
                i,
                round,
                &inboxes[i],
                &mut scratch,
                &mut acc,
                &mut sink,
            )?;
            // Consumed in place; the cleared buffer keeps its capacity
            // and becomes next round's staging arena after the swap.
            inboxes[i].clear();
        }

        if M::TRACK_RECV {
            model.check_recv(&recv, round)?;
        }
        model.end_round(&acc, &recv, round, &mut metrics);
        if M::TRACK_RECV {
            recv.fill(0);
        }
        std::mem::swap(&mut inboxes, &mut staging);
        round += 1;
    }

    Ok(Run {
        outputs: outputs(model, &nodes, round),
        metrics,
    })
}

/// Executes one round for the shard whose first actor is `base`,
/// bucketing outgoing messages by destination shard.
#[allow(clippy::too_many_arguments)]
fn run_shard_round<M: ExecModel>(
    model: &M,
    base: usize,
    shard_nodes: &mut [M::Node],
    shard_inboxes: &mut [Vec<(M::Id, M::Msg)>],
    shard_active: &[bool],
    buckets: &mut [Bucket<M>],
    scratch: &mut M::SendScratch,
    round: usize,
    shard_size: usize,
) -> Result<RoundProfile, M::Error> {
    let mut acc = RoundProfile::default();
    let mut sink = BucketSink::<M> {
        buckets,
        shard_size,
    };
    for (k, node) in shard_nodes.iter_mut().enumerate() {
        if !shard_active[k] {
            continue;
        }
        model.step(
            node,
            base + k,
            round,
            &shard_inboxes[k],
            scratch,
            &mut acc,
            &mut sink,
        )?;
        shard_inboxes[k].clear();
    }
    Ok(acc)
}

/// Runs `nodes` to completion on the sharded multi-threaded executor.
///
/// Actors are partitioned into `threads` contiguous shards; every round
/// each shard executes its actors' `round` callbacks on its own worker
/// thread into per-shard outboxes bucketed by destination shard, then
/// the buckets are drained into the (reused) staging inboxes in shard
/// order. Because shards cover ascending id ranges and each shard
/// visits its actors in id order, the concatenation is already sorted
/// by sender — next round's inboxes are **bit-identical** to the
/// sequential executor's without any sorting, for every thread count.
/// A model violation aborts with the lowest-indexed shard's error,
/// which is the lowest-indexed actor's error, matching the sequential
/// executor (though `round` callbacks of higher-id actors in other
/// shards may already have executed by then). Shards whose actors are
/// all inactive this round are not spawned at all.
///
/// Callers are expected to route `threads <= 1` (or shard sizes below
/// two actors) to [`run_sequential`]; this function falls back by
/// itself if they do not.
///
/// # Errors
///
/// Returns the model's error like [`run_sequential`].
pub fn run_sharded<M>(
    model: &M,
    mut nodes: Vec<M::Node>,
    threads: usize,
    cfg: KernelConfig,
) -> Result<Run<M::Output, M::Metrics>, M::Error>
where
    M: ExecModel,
    M::Node: Send,
    M::Msg: Send,
    M::Error: Send,
{
    let n = nodes.len();
    if threads <= 1 || n < 2 * threads {
        return run_sequential(model, nodes, cfg);
    }
    let shard_size = n.div_ceil(threads);
    let num_shards = n.div_ceil(shard_size);

    let mut metrics = M::Metrics::default();
    model.pre_run(&nodes, &mut metrics)?;

    let mut inboxes: Inboxes<M> = (0..n).map(|_| Vec::new()).collect();
    let mut staging: Inboxes<M> = (0..n).map(|_| Vec::new()).collect();
    let mut recv: Vec<usize> = if M::TRACK_RECV {
        vec![0; n]
    } else {
        Vec::new()
    };
    let mut active = vec![true; n];
    let mut dormant = vec![false; n];
    // Per-shard arenas, reused across rounds: exchange buckets (one row
    // of `num_shards` buckets per sending shard) and validation scratch.
    let mut bucket_rows: Vec<Vec<Bucket<M>>> = (0..num_shards)
        .map(|_| (0..num_shards).map(|_| Vec::new()).collect())
        .collect();
    let mut scratches: Vec<M::SendScratch> =
        (0..num_shards).map(|_| M::SendScratch::default()).collect();
    let mut round = 0;

    loop {
        if sweep(
            model,
            &nodes,
            &inboxes,
            round,
            cfg.scheduling,
            &mut active,
            &mut dormant,
        ) {
            break;
        }
        if round >= cfg.max_rounds {
            return Err(model.round_limit_error(cfg.max_rounds));
        }

        // Phase A: every shard with at least one active actor runs its
        // actors for this round on a worker thread.
        let shard_results: Vec<Option<Result<RoundProfile, M::Error>>> = std::thread::scope(|s| {
            let handles: Vec<_> = nodes
                .chunks_mut(shard_size)
                .zip(inboxes.chunks_mut(shard_size))
                .zip(bucket_rows.iter_mut())
                .zip(scratches.iter_mut())
                .zip(active.chunks(shard_size))
                .enumerate()
                .map(
                    |(si, ((((shard_nodes, shard_inboxes), buckets), scratch), act))| {
                        if act.iter().any(|&a| a) {
                            Some(s.spawn(move || {
                                run_shard_round(
                                    model,
                                    si * shard_size,
                                    shard_nodes,
                                    shard_inboxes,
                                    act,
                                    buckets,
                                    scratch,
                                    round,
                                    shard_size,
                                )
                            }))
                        } else {
                            None
                        }
                    },
                )
                .collect();
            handles
                .into_iter()
                .map(|h| h.map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p))))
                .collect()
        });

        // The lowest-indexed shard's error is the lowest-indexed
        // actor's error, exactly like the sequential executor.
        let mut acc = RoundProfile::default();
        for r in shard_results.into_iter().flatten() {
            acc.merge(&r?);
        }

        // Phase B: drain the buckets into the staging arenas, one
        // worker per destination shard, visiting sender shards in
        // ascending order so every inbox stays sorted by sender. The
        // gate is executor-owned (bucket emptiness), so it cannot drift
        // from whatever the model chooses to count in `acc.messages`.
        let staged_any = bucket_rows
            .iter()
            .any(|row| row.iter().any(|b| !b.is_empty()));
        if staged_any {
            let mut columns: Vec<Vec<&mut Bucket<M>>> = (0..num_shards)
                .map(|_| Vec::with_capacity(num_shards))
                .collect();
            for row in bucket_rows.iter_mut() {
                for (j, bucket) in row.iter_mut().enumerate() {
                    columns[j].push(bucket);
                }
            }
            let recv_chunks: Vec<&mut [usize]> = if M::TRACK_RECV {
                recv.chunks_mut(shard_size).collect()
            } else {
                Vec::new()
            };
            std::thread::scope(|s| {
                let mut recv_chunks = recv_chunks;
                for (j, (column, dst)) in columns
                    .into_iter()
                    .zip(staging.chunks_mut(shard_size))
                    .enumerate()
                {
                    let mut recv_dst = if M::TRACK_RECV {
                        Some(recv_chunks.remove(0))
                    } else {
                        None
                    };
                    s.spawn(move || {
                        let base = j * shard_size;
                        for bucket in column {
                            for (to, from, msg) in bucket.drain(..) {
                                if let Some(recv_dst) = recv_dst.as_deref_mut() {
                                    recv_dst[to.index() - base] += model.recv_charge(&msg);
                                }
                                dst[to.index() - base].push((from, msg));
                            }
                        }
                    });
                }
            });
        }

        if M::TRACK_RECV {
            model.check_recv(&recv, round)?;
        }
        model.end_round(&acc, &recv, round, &mut metrics);
        if M::TRACK_RECV {
            recv.fill(0);
        }
        std::mem::swap(&mut inboxes, &mut staging);
        round += 1;
    }

    Ok(Run {
        outputs: outputs(model, &nodes, round),
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy model used to exercise the kernel directly: actors pass a
    /// token around a ring for a fixed number of hops; message charge is
    /// the payload value, capped by the model.
    struct RingModel {
        n: usize,
        charge_cap: usize,
        recv_cap: usize,
    }

    #[derive(Clone)]
    struct Token {
        hops_left: usize,
        charge: usize,
    }

    struct RingNode {
        started: bool,
        seen: usize,
        outbound: Option<Token>,
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    enum RingError {
        TooBig { at: usize, round: usize },
        RecvOverflow { at: usize, round: usize },
        RoundLimit { limit: usize },
    }

    #[derive(Debug, Default)]
    struct RingMetrics {
        rounds: usize,
        messages: u64,
        volume: u64,
        profile: Vec<usize>,
    }

    impl ExecModel for RingModel {
        type Id = NodeId;
        type Node = RingNode;
        type Msg = Token;
        type Output = usize;
        type Error = RingError;
        type Metrics = RingMetrics;
        type SendScratch = ();

        const TRACK_RECV: bool = true;

        fn poll(&self, node: &Self::Node, _idx: usize, _round: usize) -> Poll {
            let done = node.started && node.outbound.is_none();
            Poll {
                done,
                skippable: done,
            }
        }

        fn output(&self, node: &Self::Node, _idx: usize, _round: usize) -> usize {
            node.seen
        }

        fn round_limit_error(&self, limit: usize) -> RingError {
            RingError::RoundLimit { limit }
        }

        fn step<S: MsgSink<Self>>(
            &self,
            node: &mut Self::Node,
            idx: usize,
            round: usize,
            inbox: &[(NodeId, Token)],
            _scratch: &mut (),
            acc: &mut RoundProfile,
            sink: &mut S,
        ) -> Result<(), RingError> {
            node.started = true;
            for (_, t) in inbox {
                node.seen += 1;
                if t.hops_left > 0 {
                    node.outbound = Some(Token {
                        hops_left: t.hops_left - 1,
                        charge: t.charge,
                    });
                }
            }
            if let Some(t) = node.outbound.take() {
                if t.charge > self.charge_cap {
                    return Err(RingError::TooBig { at: idx, round });
                }
                acc.messages += 1;
                acc.volume += t.charge as u64;
                acc.peak_link = acc.peak_link.max(t.charge);
                let to = NodeId::from_index((idx + 1) % self.n);
                sink.deliver(self, to, NodeId::from_index(idx), t);
            }
            Ok(())
        }

        fn recv_charge(&self, msg: &Token) -> usize {
            msg.charge
        }

        fn check_recv(&self, recv: &[usize], round: usize) -> Result<(), RingError> {
            for (i, &w) in recv.iter().enumerate() {
                if w > self.recv_cap {
                    return Err(RingError::RecvOverflow { at: i, round });
                }
            }
            Ok(())
        }

        fn end_round(
            &self,
            acc: &RoundProfile,
            _recv: &[usize],
            round: usize,
            metrics: &mut RingMetrics,
        ) {
            metrics.rounds = round + 1;
            metrics.messages += acc.messages;
            metrics.volume += acc.volume;
            metrics.profile.push(acc.peak_link);
        }
    }

    fn ring_nodes(n: usize, hops: usize, charge: usize) -> Vec<RingNode> {
        (0..n)
            .map(|i| RingNode {
                started: false,
                seen: 0,
                outbound: (i == 0).then_some(Token {
                    hops_left: hops,
                    charge,
                }),
            })
            .collect()
    }

    fn model(n: usize) -> RingModel {
        RingModel {
            n,
            charge_cap: 8,
            recv_cap: 8,
        }
    }

    fn cfg(s: Scheduling) -> KernelConfig {
        KernelConfig {
            max_rounds: 1_000,
            scheduling: s,
        }
    }

    #[test]
    fn sequential_completes_and_counts() {
        let run =
            run_sequential(&model(5), ring_nodes(5, 7, 2), cfg(Scheduling::ActiveSet)).unwrap();
        // 8 sends total (the origin's plus 7 forwards), one per round,
        // plus a final send-free round consuming the last token.
        assert_eq!(run.metrics.messages, 8);
        assert_eq!(run.metrics.rounds, 9);
        assert_eq!(run.metrics.volume, 16);
        let mut expected = vec![2; 8];
        expected.push(0);
        assert_eq!(run.metrics.profile, expected);
        assert_eq!(run.outputs.iter().sum::<usize>(), 8);
    }

    #[test]
    fn schedulings_and_executors_are_bit_identical() {
        let baseline = run_sequential(
            &model(16),
            ring_nodes(16, 40, 3),
            cfg(Scheduling::FullSweep),
        )
        .unwrap();
        for scheduling in [Scheduling::FullSweep, Scheduling::ActiveSet] {
            let seq = run_sequential(&model(16), ring_nodes(16, 40, 3), cfg(scheduling)).unwrap();
            assert_eq!(seq.outputs, baseline.outputs, "{scheduling:?}");
            assert_eq!(seq.metrics.rounds, baseline.metrics.rounds);
            assert_eq!(seq.metrics.profile, baseline.metrics.profile);
            for threads in [2, 3, 5, 8] {
                let par = run_sharded(&model(16), ring_nodes(16, 40, 3), threads, cfg(scheduling))
                    .unwrap();
                assert_eq!(par.outputs, baseline.outputs, "{scheduling:?} t={threads}");
                assert_eq!(par.metrics.rounds, baseline.metrics.rounds);
                assert_eq!(par.metrics.messages, baseline.metrics.messages);
                assert_eq!(par.metrics.volume, baseline.metrics.volume);
                assert_eq!(par.metrics.profile, baseline.metrics.profile);
            }
        }
    }

    #[test]
    fn step_errors_match_across_executors() {
        // Charge 99 exceeds the cap at the origin in round 0.
        let seq = run_sequential(&model(8), ring_nodes(8, 3, 99), cfg(Scheduling::ActiveSet))
            .unwrap_err();
        assert_eq!(seq, RingError::TooBig { at: 0, round: 0 });
        for threads in [2, 4] {
            let par = run_sharded(
                &model(8),
                ring_nodes(8, 3, 99),
                threads,
                cfg(Scheduling::ActiveSet),
            )
            .unwrap_err();
            assert_eq!(par, seq, "t={threads}");
        }
    }

    #[test]
    fn recv_errors_match_across_executors() {
        // The send passes the charge cap but overflows the destination's
        // receive cap, so the error surfaces in the post-round check.
        let tight = RingModel {
            n: 8,
            charge_cap: 8,
            recv_cap: 4,
        };
        let seq =
            run_sequential(&tight, ring_nodes(8, 2, 5), cfg(Scheduling::ActiveSet)).unwrap_err();
        assert_eq!(seq, RingError::RecvOverflow { at: 1, round: 0 });
        for threads in [2, 4] {
            let par = run_sharded(
                &tight,
                ring_nodes(8, 2, 5),
                threads,
                cfg(Scheduling::ActiveSet),
            )
            .unwrap_err();
            assert_eq!(par, seq, "t={threads}");
        }
    }

    #[test]
    fn round_limit_errors_match() {
        let tight = KernelConfig {
            max_rounds: 3,
            scheduling: Scheduling::ActiveSet,
        };
        let seq = run_sequential(&model(8), ring_nodes(8, 100, 1), tight).unwrap_err();
        assert_eq!(seq, RingError::RoundLimit { limit: 3 });
        let par = run_sharded(&model(8), ring_nodes(8, 100, 1), 4, tight).unwrap_err();
        assert_eq!(par, seq);
    }

    #[test]
    fn zero_actors_trivial() {
        let run = run_sequential(&model(1), Vec::new(), cfg(Scheduling::ActiveSet)).unwrap();
        assert_eq!(run.metrics.rounds, 0);
        assert!(run.outputs.is_empty());
    }

    #[test]
    fn sharded_falls_back_to_sequential_on_tiny_inputs() {
        // 4 actors on 8 threads: shards would hold under two actors.
        let run = run_sharded(
            &model(4),
            ring_nodes(4, 5, 1),
            8,
            cfg(Scheduling::ActiveSet),
        )
        .unwrap();
        assert_eq!(run.metrics.messages, 6);
    }
}
