//! The synchronous round-execution kernel shared by the CONGEST and MPC
//! simulators.
//!
//! Both execution models of this workspace — the CONGEST / CONGESTED
//! CLIQUE simulator of `pga-congest` and the low-space MPC simulator of
//! `pga-mpc` — drive per-actor state machines through synchronous
//! message-passing rounds: deliver each actor's inbox, collect its
//! outbox, validate every message against the model, account metrics,
//! exchange, repeat until global quiescence. This crate holds that loop
//! **once**, in two bit-identical flavors (the single-threaded
//! [`run_sequential`] and the sharded multi-threaded [`run_sharded`]),
//! parameterized by an [`ExecModel`] that supplies only the pieces that
//! actually differ between models: per-message validation and charging,
//! metrics accumulation, the error type, addressing, and the per-actor
//! cost estimate that drives load-balanced sharding.
//!
//! # The message plane: counting-sort exchange and flat inbox arenas
//!
//! The sharded executor's exchange is a two-pass counting sort, in the
//! flat-array/prefix-sum style of bulk-synchronous graph engines:
//!
//! 1. **Stage (columnar lanes)** — while a worker steps its shard's
//!    actors, every validated outgoing message is appended to the *lane*
//!    for its destination shard: destination indices in one array,
//!    `(sender, payload)` pairs in a parallel array. Appends are strictly
//!    sequential, so staging never touches per-actor buffers.
//! 2. **Group (per-lane counting sort)** — still on the sending worker,
//!    each lane is stable-sorted by destination actor: count messages
//!    per destination, prefix-sum the counts into CSR offsets, and apply
//!    the resulting permutation in place (cycle-walking swaps — moves
//!    only, no clones, no unsafe).
//! 3. **Scatter (flat inbox arena)** — one worker per *destination*
//!    shard concatenates its incoming lanes into the shard's reusable
//!    flat inbox arena: for every destination actor, in ascending
//!    sender-shard order, the lane's pre-grouped range is drained into
//!    the arena, and the actor's inbox becomes a CSR slice
//!    `arena[offs[v]..offs[v + 1]]`. No per-actor `Vec` is ever pushed;
//!    each round reuses the same arena allocation.
//!
//! **Determinism.** Within one destination's inbox the delivery order is
//! (sender shard ascending, then outbox order within the shard). Shards
//! cover ascending contiguous id ranges and each worker visits its
//! actors in id order, so that order is exactly ascending sender id then
//! outbox order — the same order the sequential executor produces —
//! which keeps every engine bit-identical without any comparison sort.
//!
//! # Packed-word lanes ([`MsgCodec`])
//!
//! CONGEST messages are `O(log n)` bits by definition, yet a naive
//! exchange moves full Rust enums through the lanes and arenas. A model
//! may instead declare a fixed-width packed representation
//! ([`ExecModel::Packed`], typically `u64` or `u128`) and enable it per
//! run ([`ExecModel::packs`]): every validated message is then encoded
//! once as it enters its lane ([`ExecModel::pack`]) and decoded once as
//! its destination's inbox slice is materialized for
//! [`ExecModel::step`], so the counting-sort exchange and the flat CSR
//! inbox arenas move `Copy` words instead of cloned enums. Validation,
//! charging, and metrics accounting all run on the *decoded* message
//! before it is packed, and the packed word round-trips exactly
//! ([`MsgCodec`]'s contract), so the packed plane is bit-identical to
//! the enum plane — same outputs, same metrics (congestion and I/O
//! profiles included), same errors — at every thread count. Models that
//! do not pack set `Packed = ()` and keep the enum plane; the sequential
//! executor always uses the enum plane (it has no exchange to compress).
//!
//! # Load-balanced sharding
//!
//! Actors are partitioned into contiguous shards by
//! [`balanced_partition`], which draws boundaries on the prefix sums of
//! the model's per-actor cost estimate ([`ExecModel::actor_cost`]:
//! adjacency degree for CONGEST vertices, resident words for MPC
//! machines). Uniform `n / threads` ranges skew badly on heavy-tailed
//! (Barabási–Albert-style) instances where the hubs concentrate in one
//! shard; cost-balanced boundaries equalize expected per-shard message
//! work instead of actor counts. Any contiguous partition preserves
//! bit-identity (see above), so balancing is purely a performance
//! choice.
//!
//! # Performance: arenas and quiescence
//!
//! * **Arena-backed message staging** — inbox storage is owned by the
//!   kernel and reused across rounds (the sequential executor swaps
//!   per-actor buffers; the sharded executor reuses its lanes and flat
//!   inbox arenas), so steady-state rounds perform no per-actor buffer
//!   allocation.
//! * **Batched round accounting** — each worker accumulates one
//!   [`RoundProfile`] for its whole shard and the kernel folds the
//!   shard profiles once per round (in shard order), instead of
//!   touching shared metrics per message.
//! * **Quiescence-aware scheduling** — under the default
//!   [`Scheduling::ActiveSet`] policy a round only invokes the `round`
//!   callback of actors that received a message or are not yet
//!   skippable (see below), collapsing the long quiescent tails of
//!   flooding-style runs where most actors finished early.
//!
//! # The scheduling rule
//!
//! The kernel may skip an actor's `round` callback in a given round
//! **only if** the model reports the actor as *skippable*
//! ([`Poll::skippable`]) **and** the actor's inbox for that round is
//! empty. The contract that makes this invisible: *whenever an actor
//! reports itself skippable and its inbox is empty, its `round` callback
//! must be a pure no-op — no state mutation, no outgoing messages, no
//! error.* Skipping a call that would have done nothing cannot change
//! outputs, metrics, or errors, so both scheduling policies (and both
//! executors, at every thread count) remain bit-identical.
//!
//! The user-facing traits (`pga_congest::Algorithm::can_skip`,
//! `pga_mpc::Machine::can_skip`) default `skippable` to the actor's own
//! `is_done`, which satisfies the contract for plain state machines that
//! go quiet when finished. Algorithms whose `round` has residual side
//! effects after `is_done` (round-counter resets, stale-flag clearing)
//! override `can_skip` to say so and are simply never skipped;
//! [`Scheduling::FullSweep`] disables skipping globally and is the
//! reference behavior.
//!
//! Termination is *not* affected by scheduling: the kernel stops when
//! all actors are done and no message is in flight — exactly the
//! classic loop. Under the active-set policy an actor observed done and
//! skippable with an empty inbox becomes *dormant*: its state is frozen
//! (nothing may mutate it until a message arrives), so the kernel
//! counts it as done without re-polling and wakes it on delivery. The
//! contract above therefore also requires that a skippable actor's
//! `is_done`/`can_skip` verdicts stay `true` while its state is frozen.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod arq;
pub mod fault;
pub mod probe;

pub use arq::{run_reliable, ReliabilitySpec};
pub use fault::{
    run_faulty, Adversary, Fate, FaultEvent, FaultSpec, FaultStats, FaultTrace, SeededAdversary,
    TraceAdversary,
};
pub use probe::{
    JsonlProbe, NoopProbe, Probe, ProbeMode, RecordingProbe, RoundObs, RoundTelemetry,
    RunTelemetry, ShardTelemetry, SizeHist,
};

use pga_graph::NodeId;

/// Dense actor addressing: both vertex ids (`pga_graph::NodeId`) and MPC
/// machine ids are `0..n` indices behind a newtype.
pub trait ActorId: Copy + Eq + Send {
    /// The identifier as a dense `usize` index.
    fn index(self) -> usize;
    /// The identifier for a dense `usize` index.
    fn from_index(i: usize) -> Self;
}

impl ActorId for NodeId {
    #[inline]
    fn index(self) -> usize {
        NodeId::index(self)
    }
    #[inline]
    fn from_index(i: usize) -> Self {
        NodeId::from_index(i)
    }
}

/// Unified message-cost accounting shared by the execution models.
///
/// One declared size, two currencies: CONGEST charges **bits** against
/// the per-edge bandwidth `B` ([`MsgCost::size_bits`], with
/// `id_bits = ⌈log₂ n⌉` passed in so identifiers cost the
/// model-correct `O(log n)` bits), and low-space MPC charges **64-bit
/// words** against the per-machine budget `S`
/// ([`MsgCost::size_words`]). The default word size derives from the
/// bit size at full-width (64-bit) identifier fields; batch-style MPC
/// messages override it directly.
pub trait MsgCost {
    /// The size of this message in bits, where node identifiers cost
    /// `id_bits` each.
    fn size_bits(&self, id_bits: usize) -> usize;

    /// The size of this message in 64-bit words (MPC's charging unit).
    fn size_words(&self) -> usize {
        self.size_bits(64).div_ceil(64).max(1)
    }
}

/// A fixed-width packed wire representation for a message type.
///
/// Implementing `MsgCodec` lets the sharded executor move `Copy` words
/// through its counting-sort lanes and flat CSR inbox arenas instead of
/// cloned enums (see the crate docs). The **contract**:
///
/// * `decode(encode(&m))` reproduces `m` exactly (observable state,
///   not just equality — the executors rely on bit-identity), and
/// * [`MsgCodec::encoded_bits`] agrees with the message's declared
///   [`MsgCost::size_bits`] for every reachable message (asserted in
///   debug builds by the model wrappers), so packed-plane accounting
///   cannot drift from enum-plane accounting.
pub trait MsgCodec: MsgCost + Sized {
    /// The packed word (`u64` for CONGEST's `O(log n)`-bit messages;
    /// wider payloads use `u128` or small fixed arrays).
    type Word: Copy + Send;

    /// Encodes this message into its packed word.
    fn encode(&self) -> Self::Word;

    /// Decodes a packed word back into the message.
    fn decode(word: Self::Word) -> Self;

    /// The exact declared size in bits of the message `word` encodes,
    /// used for congestion/volume accounting on the packed plane. The
    /// default decodes and asks [`MsgCost::size_bits`]; implementations
    /// may override with a direct bit computation.
    fn encoded_bits(word: Self::Word, id_bits: usize) -> usize {
        Self::decode(word).size_bits(id_bits)
    }
}

/// A function-pointer vtable over a [`MsgCodec`] implementation.
///
/// Model wrappers store an `Option<CodecFns<…>>` to make packing a
/// per-run choice without an extra trait bound on every generic
/// executor path: `CodecFns::new::<M>()` captures the codec of a
/// message type once, and the wrapper dispatches through plain function
/// pointers thereafter.
pub struct CodecFns<M, W> {
    /// [`MsgCodec::encode`].
    pub enc: fn(&M) -> W,
    /// [`MsgCodec::decode`].
    pub dec: fn(W) -> M,
    /// [`MsgCodec::encoded_bits`].
    pub bits: fn(W, usize) -> usize,
}

impl<M, W> Clone for CodecFns<M, W> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<M, W> Copy for CodecFns<M, W> {}

impl<M, W> std::fmt::Debug for CodecFns<M, W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CodecFns { .. }")
    }
}

impl<M: MsgCodec> CodecFns<M, M::Word> {
    /// The vtable of `M`'s [`MsgCodec`] implementation.
    pub fn new() -> Self {
        CodecFns {
            enc: M::encode,
            dec: M::decode,
            bits: M::encoded_bits,
        }
    }
}

impl<M: MsgCodec> Default for CodecFns<M, M::Word> {
    fn default() -> Self {
        Self::new()
    }
}

/// Selects which round executor drives a run.
///
/// Both executors are **bit-identical**: for the same actor states they
/// produce the same outputs, the same metrics (per-round profiles
/// included), and the same error on model violations, regardless of
/// thread count. The sequential executor is the reference oracle; the
/// sharded one exists to make large instances run as fast as the
/// hardware allows.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Engine {
    /// The single-threaded reference executor ([`run_sequential`]).
    #[default]
    Sequential,
    /// The sharded multi-threaded executor ([`run_sharded`]).
    Parallel {
        /// Number of worker shards; `0` means one per available CPU.
        threads: usize,
    },
}

impl Engine {
    /// The parallel engine with one shard per available CPU.
    pub fn parallel_auto() -> Self {
        Engine::Parallel { threads: 0 }
    }
}

/// Below this actor count, [`Engine::parallel_auto`] (threads = 0)
/// falls back to the sequential executor: worker threads are spawned
/// per round, and on small instances that fixed cost exceeds the
/// per-round compute. Explicit thread counts are always honored.
pub const PARALLEL_MIN_NODES: usize = 1024;

/// Builder-style per-run configuration consumed by the simulators' and
/// entry points' unified `_cfg` forms: the executor, the scheduling
/// policy, and whether the packed message plane is enabled.
///
/// ```
/// use pga_runtime::{Engine, RunConfig, Scheduling};
///
/// let cfg = RunConfig::new().parallel(4).codec(true);
/// assert_eq!(cfg.engine, Engine::Parallel { threads: 4 });
/// assert_eq!(cfg.scheduling, Scheduling::ActiveSet);
/// assert!(cfg.codec);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct RunConfig {
    /// The executor driving the run (default [`Engine::Sequential`]).
    pub engine: Engine,
    /// The round-scheduling policy (default [`Scheduling::ActiveSet`];
    /// both policies are bit-identical).
    pub scheduling: Scheduling,
    /// Whether the sharded exchange moves packed words instead of
    /// cloned enums (default off; requires the message type to
    /// implement [`MsgCodec`], and is bit-identical to the enum plane).
    pub codec: bool,
    /// Seeded fault-injection plan for the run (default `None` = the
    /// clean executors). `Some(spec)` routes the run through the
    /// adversarial executor ([`fault::run_faulty`]) — even
    /// [`FaultSpec::none`], which that executor reproduces bit-for-bit
    /// against the clean engines.
    pub fault: Option<FaultSpec>,
    /// Overrides the simulator's round budget for this run (default
    /// `None` keeps the simulator's own limit). Fault sweeps set a
    /// small budget so runs that an adversary starves into livelock
    /// abort quickly with the model's round-limit error.
    pub max_rounds: Option<usize>,
    /// Reliable-delivery plan for the run (default `None` = raw
    /// delivery). `Some(spec)` routes the run through the ARQ executor
    /// ([`arq::run_reliable`]), which sequences, acknowledges, and
    /// retransmits every application message over the (possibly
    /// faulted) network — composable with [`RunConfig::fault`]: with no
    /// adversary armed the ARQ run reproduces the clean outputs with a
    /// constant round tail, and under drop/delay/duplicate faults the
    /// outputs stay bit-identical to the clean run while the metrics
    /// record the price of reliability.
    pub reliability: Option<ReliabilitySpec>,
    /// Trace-sink activation policy (default [`ProbeMode::Env`]: the
    /// run streams a [`JsonlProbe`] trace to the path named by the
    /// `PGA_TRACE` environment variable, if any). Probes are read-only
    /// observers — attaching one never changes outputs, metrics, or
    /// errors.
    pub probe: ProbeMode,
    /// How the `G²` clique pipelines obtain two-hop structure before
    /// Phase 1 (default [`G2Prep::Relay`]). Both strategies induce the
    /// same cover bit for bit; the knob trades relay rounds against
    /// bitmap-materialization rounds, which favors clustered inputs.
    pub g2_prep: G2Prep,
}

/// Two-hop preprocessing strategy of the congested-clique `G²`
/// pipelines (selected via [`RunConfig::g2_prep`]).
///
/// The deterministic MVC pipeline needs each candidate's view of its
/// `G²`-neighborhood. [`G2Prep::Relay`] obtains it online, one
/// neighbor-relay round per Phase-1 iteration. [`G2Prep::Bmm`] instead
/// materializes the Boolean-matrix-product rows up front with the
/// `clique_bmm` primitive (nodes broadcast their adjacency bitmaps as
/// packed 64-bit blocks; `O(1)`–`O(log n)` rounds on clustered inputs)
/// and then runs the relay-free Phase-1 variant on the materialized
/// rows. Both strategies are proven to induce the same cover bit for
/// bit; if any row overflows the word budget, the BMM path falls back
/// to the relay protocol wholesale, preserving that guarantee.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum G2Prep {
    /// Per-iteration one-hop relay of candidacies (the default; the
    /// paper's original protocol shape).
    #[default]
    Relay,
    /// Up-front `G²`-row materialization via blocked Boolean matrix
    /// multiplication over packed bitmap words.
    Bmm,
}

impl RunConfig {
    /// The default configuration: sequential, active-set scheduling,
    /// enum message plane.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the executor.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the single-threaded reference executor.
    pub fn sequential(self) -> Self {
        self.engine(Engine::Sequential)
    }

    /// Selects the sharded executor with an explicit thread count.
    pub fn parallel(self, threads: usize) -> Self {
        self.engine(Engine::Parallel { threads })
    }

    /// Selects the sharded executor with one shard per available CPU.
    pub fn parallel_auto(self) -> Self {
        self.engine(Engine::parallel_auto())
    }

    /// Selects the round-scheduling policy.
    pub fn scheduling(mut self, scheduling: Scheduling) -> Self {
        self.scheduling = scheduling;
        self
    }

    /// Enables or disables the packed message plane.
    pub fn codec(mut self, codec: bool) -> Self {
        self.codec = codec;
        self
    }

    /// Arms the seeded adversary: the run executes under `spec`'s
    /// per-message drop/duplicate/delay decisions and per-round crash
    /// sets, deterministically — any run is exactly replayable from
    /// `(spec.seed, spec)` at every engine and thread count.
    pub fn adversary(mut self, spec: FaultSpec) -> Self {
        self.fault = Some(spec);
        self
    }

    /// Caps the run's round budget (see [`RunConfig::max_rounds`]).
    pub fn max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = Some(rounds);
        self
    }

    /// Arms the reliable delivery plane (see [`RunConfig::reliability`]
    /// and [`ReliabilitySpec`]).
    pub fn reliability(mut self, spec: ReliabilitySpec) -> Self {
        self.reliability = Some(spec);
        self
    }

    /// The application-round deadline for a phase whose clean run is
    /// bounded by `clean_bound` rounds: `Some` only when a
    /// [`ReliabilitySpec`] with phase timeouts armed is attached.
    pub fn phase_deadline(&self, clean_bound: usize) -> Option<usize> {
        self.reliability.and_then(|r| r.phase_deadline(clean_bound))
    }

    /// Selects the trace-sink activation policy (see
    /// [`RunConfig::probe`]).
    pub fn probe(mut self, mode: ProbeMode) -> Self {
        self.probe = mode;
        self
    }

    /// Selects the two-hop preprocessing strategy of the `G²` clique
    /// pipelines (see [`G2Prep`]).
    pub fn g2_prep(mut self, prep: G2Prep) -> Self {
        self.g2_prep = prep;
        self
    }

    /// Shorthand for [`RunConfig::g2_prep`]`(`[`G2Prep::Bmm`]`)`.
    pub fn bmm_prep(self) -> Self {
        self.g2_prep(G2Prep::Bmm)
    }
}

/// Round-scheduling policy of the kernel (see the crate docs for the
/// exact rule and the no-op contract that keeps the policies
/// bit-identical).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Scheduling {
    /// Skip the `round` callback of skippable actors with empty inboxes
    /// (the default; fastest on runs with quiescent tails).
    #[default]
    ActiveSet,
    /// Invoke every actor's `round` callback every round — the classic
    /// reference behavior.
    FullSweep,
}

/// Kernel tuning knobs, supplied by the model wrappers.
#[derive(Clone, Copy, Debug)]
pub struct KernelConfig {
    /// Abort with [`ExecModel::round_limit_error`] after this many rounds.
    pub max_rounds: usize,
    /// The round-scheduling policy.
    pub scheduling: Scheduling,
}

/// One round's merged accounting, shared by both models.
///
/// Each executor accumulates one `RoundProfile` per shard (the
/// sequential executor is a single shard), folds the shard profiles in
/// shard order once per round, and hands the merge to
/// [`ExecModel::end_round`]; the model maps the fields onto its own
/// metrics type. Field semantics are model-defined: CONGEST charges bits
/// and tracks the largest single message per round, MPC charges words
/// and tracks per-machine send volume and declared memory.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundProfile {
    /// Messages sent this round.
    pub messages: u64,
    /// Total charged volume this round (bits or words).
    pub volume: u64,
    /// Largest single-message charge this round (CONGEST's per-edge
    /// congestion peak).
    pub peak_link: usize,
    /// Largest per-actor total outgoing charge this round (MPC's send
    /// volume peak).
    pub peak_actor_out: usize,
    /// Largest per-actor declared state size this round (MPC's memory
    /// peak).
    pub peak_state: usize,
    /// Log-bucketed histogram of the charged message sizes this round.
    /// `None` (the default) outside probed runs: the executors allocate
    /// it only when an enabled [`Probe`] is attached, so models can
    /// call [`RoundProfile::observe_size`] unconditionally and the
    /// unprobed path pays one branch per message. Telemetry only —
    /// never read by [`ExecModel::end_round`], so metrics cannot
    /// depend on it.
    pub sizes: Option<Box<SizeHist>>,
}

impl RoundProfile {
    /// A profile whose size histogram is allocated iff the probe `P` is
    /// enabled — the executors' per-round accumulator constructor.
    fn for_probe<P: Probe>() -> Self {
        RoundProfile {
            sizes: P::ENABLED.then(Box::default),
            ..Self::default()
        }
    }

    /// Records `copies` charged copies of a `size`-unit message into the
    /// round's size histogram, when one is attached (no-op otherwise —
    /// the unprobed executors never allocate one). Models call this
    /// next to their per-message charging.
    #[inline]
    pub fn observe_size(&mut self, size: u64, copies: u32) {
        if copies == 0 {
            return;
        }
        if let Some(h) = self.sizes.as_deref_mut() {
            h.record(size, u64::from(copies));
        }
    }

    /// Folds another shard's partial profile into this one (sums and
    /// maxima; shard order does not matter for the result).
    pub fn merge(&mut self, other: &RoundProfile) {
        self.messages += other.messages;
        self.volume += other.volume;
        self.peak_link = self.peak_link.max(other.peak_link);
        self.peak_actor_out = self.peak_actor_out.max(other.peak_actor_out);
        self.peak_state = self.peak_state.max(other.peak_state);
        if let Some(o) = other.sizes.as_deref() {
            match self.sizes.as_deref_mut() {
                Some(s) => s.merge(o),
                None => self.sizes = Some(Box::new(o.clone())),
            }
        }
    }
}

/// One actor's per-round verdict, reported by [`ExecModel::poll`].
#[derive(Clone, Copy, Debug)]
pub struct Poll {
    /// Whether the actor has terminated (the run ends when all actors
    /// are done and no message is in flight).
    pub done: bool,
    /// Whether the actor's `round` callback is a guaranteed no-op while
    /// its inbox is empty (the [`Scheduling::ActiveSet`] skip rule).
    pub skippable: bool,
}

/// Where [`ExecModel::step`] stages validated outgoing messages.
///
/// The kernel provides the implementations: a direct-delivery sink for
/// the sequential executor and a columnar lane-staging sink for the
/// sharded one. `step` must call [`MsgSink::deliver`] once per validated
/// message, in outbox order, *after* the message passed the model's
/// checks.
pub trait MsgSink<M: ExecModel + ?Sized> {
    /// Stages `msg` from `from` for delivery to `to` next round and
    /// returns the number of copies that will actually traverse the
    /// network — the factor the model must charge its round accounting
    /// by.
    ///
    /// The kernel's clean sinks always return 1; the fault executor's
    /// sink returns 0 for a message the adversary drops (so dropped
    /// messages are charged at actual delivery — i.e. not at all), 2
    /// for a duplicated message, and 1 for a delayed one (a delayed
    /// message occupies its link when transmitted; the adversary merely
    /// holds it in the network before handing it over).
    #[must_use = "models must scale their round charges by the returned copy count"]
    fn deliver(&mut self, model: &M, to: M::Id, from: M::Id, msg: M::Msg) -> u32;
}

/// The pieces of a synchronous round-based execution model that differ
/// between CONGEST and MPC.
///
/// Implementations are thin: they own the model's context construction,
/// per-message validation/charging, and the mapping from the kernel's
/// [`RoundProfile`] onto the model's public metrics type. The kernel
/// owns the loop — termination, scheduling, staging, sharding, and the
/// exchange — so engine behavior cannot drift between models.
pub trait ExecModel: Sync {
    /// Actor addressing (vertex ids or machine ids).
    type Id: ActorId;
    /// Per-actor program state (`Algorithm` / `Machine` implementors).
    type Node;
    /// Message type exchanged by the actors.
    type Msg: Clone;
    /// Per-actor output collected at the end of the run.
    type Output;
    /// Error type aborting the run (`SimError` / `MpcError`).
    type Error;
    /// Whole-run metrics type (`Metrics` / `MpcMetrics`).
    type Metrics: Default;
    /// Per-actor validation scratch, reused across actors within a
    /// shard (CONGEST's duplicate-destination list, MPC's running send
    /// volume). `step` must reset it before use.
    type SendScratch: Default + Send;
    /// The fixed-width packed wire word the sharded exchange moves when
    /// [`ExecModel::packs`] is enabled (see the crate docs on packed
    /// lanes). Models that do not pack set `()` and keep the enum
    /// plane — the [`ExecModel::pack`]/[`ExecModel::unpack`] defaults
    /// are then never called.
    type Packed: Copy + Send;

    /// Whether the kernel must tally each destination's delivered
    /// charge every round (MPC's receive-volume cap needs it; CONGEST
    /// does not, and the tally is compiled out).
    const TRACK_RECV: bool = false;

    /// Whether [`run_sharded`] should move [`ExecModel::Packed`] words
    /// through its lanes and arenas instead of cloned [`ExecModel::Msg`]
    /// enums. Consulted once per run; the default keeps the enum plane.
    fn packs(&self) -> bool {
        false
    }

    /// Encodes a validated message into its packed word (only called
    /// when [`ExecModel::packs`] returns `true`; the message has
    /// already passed the model's checks and been charged).
    fn pack(&self, _msg: &Self::Msg) -> Self::Packed {
        unreachable!("ExecModel::pack called on a model that does not pack")
    }

    /// Decodes a packed word back into the message it encodes (only
    /// called when [`ExecModel::packs`] returns `true`).
    fn unpack(&self, _word: Self::Packed) -> Self::Msg {
        unreachable!("ExecModel::unpack called on a model that does not pack")
    }

    /// Hook before round 0 (MPC checks the initial memory footprints).
    ///
    /// # Errors
    ///
    /// An error aborts the run before any round executes.
    fn pre_run(
        &self,
        _nodes: &[Self::Node],
        _metrics: &mut Self::Metrics,
    ) -> Result<(), Self::Error> {
        Ok(())
    }

    /// The actor's relative per-round cost estimate, consulted once per
    /// run by [`run_sharded`] to draw cost-balanced contiguous shard
    /// boundaries (see [`balanced_partition`]).
    ///
    /// CONGEST charges a vertex its adjacency degree (message work is
    /// degree-proportional); MPC charges a machine its resident words.
    /// The estimate only steers load balancing — any value keeps the
    /// executors bit-identical. The default is uniform cost.
    fn actor_cost(&self, _node: &Self::Node, _idx: usize) -> u64 {
        1
    }

    /// Reports the actor's termination and skippability at `round`.
    fn poll(&self, node: &Self::Node, idx: usize, round: usize) -> Poll;

    /// The actor's final output (called once per actor after the run).
    fn output(&self, node: &Self::Node, idx: usize, round: usize) -> Self::Output;

    /// The model's round-budget-exhausted error.
    fn round_limit_error(&self, limit: usize) -> Self::Error;

    /// Executes one actor's round: invoke the program on `inbox`,
    /// validate and charge every outgoing message (accumulating into
    /// `acc`), and stage each accepted message via `sink.deliver` in
    /// outbox order. Model-side per-actor checks (MPC's memory budget)
    /// also happen here, after the sends, to preserve the sequential
    /// engines' error precedence.
    ///
    /// # Errors
    ///
    /// The first model violation (or program-raised error) aborts the
    /// run; the kernel surfaces the lowest-indexed actor's error.
    #[allow(clippy::too_many_arguments)]
    fn step<S: MsgSink<Self>>(
        &self,
        node: &mut Self::Node,
        idx: usize,
        round: usize,
        inbox: &[(Self::Id, Self::Msg)],
        scratch: &mut Self::SendScratch,
        acc: &mut RoundProfile,
        sink: &mut S,
    ) -> Result<(), Self::Error>;

    /// The per-message charge added to the destination's receive tally
    /// (only consulted when [`ExecModel::TRACK_RECV`] is set).
    fn recv_charge(&self, _msg: &Self::Msg) -> usize {
        0
    }

    /// The payload cost of one wire copy of `msg` in the model's volume
    /// unit (bits for CONGEST, words for MPC) — what the reliable
    /// executor charges for each *re*transmission, matching what the
    /// model charged the first transmission at `step` time. Only
    /// consulted by [`arq::run_reliable`].
    fn wire_charge(&self, _msg: &Self::Msg) -> u64 {
        1
    }

    /// The fixed-width ARQ control-lane cost (sequence number) that
    /// rides beside every data copy, in the model's volume unit. Only
    /// consulted by [`arq::run_reliable`].
    fn arq_header_charge(&self) -> u64 {
        0
    }

    /// The cost of one cumulative-ack control frame, in the model's
    /// volume unit. Only consulted by [`arq::run_reliable`].
    fn arq_ack_charge(&self) -> u64 {
        1
    }

    /// Validates the per-destination receive tally after all actors
    /// stepped (MPC's receive-volume cap, checked in actor order).
    ///
    /// # Errors
    ///
    /// An error aborts the run exactly like a `step` error.
    fn check_recv(&self, _recv: &[usize], _round: usize) -> Result<(), Self::Error> {
        Ok(())
    }

    /// Folds the merged round accounting into the run metrics; `round`
    /// is the 0-based index of the round that just executed, and `recv`
    /// is the receive tally (empty unless [`ExecModel::TRACK_RECV`]).
    fn end_round(
        &self,
        acc: &RoundProfile,
        recv: &[usize],
        round: usize,
        metrics: &mut Self::Metrics,
    );

    /// Folds the whole-run fault statistics and the convergence round
    /// into the metrics after the final round (called once per
    /// successful run, by every executor).
    ///
    /// `fault` carries the adversary's tally — all zeros except
    /// [`FaultStats::delivered`] on a clean run — and
    /// `convergence_round` is the kernel's message-quiescence detector:
    /// the first round index from which no message was in flight for
    /// the rest of the run (0 when the run never exchanged a message).
    /// The default ignores both, so models without fault-aware metrics
    /// need no changes.
    fn finish(&self, _metrics: &mut Self::Metrics, _fault: &FaultStats, _convergence_round: usize) {
    }
}

/// Result of a completed kernel run; the model wrappers repackage it
/// into their public report types.
#[derive(Debug)]
pub struct Run<O, M> {
    /// Per-actor outputs, indexed by actor id.
    pub outputs: Vec<O>,
    /// The model's whole-run metrics.
    pub metrics: M,
}

/// Cost-balanced contiguous shard boundaries; the load balancer of
/// [`run_sharded`].
///
/// The implementation lives in the graph substrate
/// ([`pga_graph::partition`]) so its blocked-BMM kernel can shard along
/// the same boundaries; re-exported here unchanged for the engines and
/// every existing call site. [`run_sharded`] preserves bit-identity for
/// *any* contiguous partition — boundaries only affect wall-clock
/// balance.
pub use pga_graph::partition::balanced_partition;

/// Inbox buffers of the sequential executor: one `Vec<(from, msg)>` per
/// actor, reused across rounds.
type Inboxes<M> = Vec<Vec<(<M as ExecModel>::Id, <M as ExecModel>::Msg)>>;

/// The direct-delivery sink of the sequential executor: messages go
/// straight into the staging inboxes (and the receive tally).
struct DirectSink<'a, M: ExecModel> {
    staging: &'a mut [Vec<(M::Id, M::Msg)>],
    recv: &'a mut [usize],
}

impl<M: ExecModel> MsgSink<M> for DirectSink<'_, M> {
    #[inline]
    fn deliver(&mut self, model: &M, to: M::Id, from: M::Id, msg: M::Msg) -> u32 {
        if M::TRACK_RECV {
            self.recv[to.index()] += model.recv_charge(&msg);
        }
        self.staging[to.index()].push((from, msg));
        1
    }
}

/// The fixed shard layout of one sharded run: boundary offsets plus the
/// actor → shard map the staging sink uses for O(1) lane routing.
struct ShardMeta {
    /// Boundary offsets from [`balanced_partition`] (`starts.len() - 1`
    /// shards; shard `j` covers `starts[j]..starts[j + 1]`).
    starts: Vec<usize>,
    /// Destination shard of every actor index.
    shard_of: Vec<u32>,
}

impl ShardMeta {
    fn new(starts: Vec<usize>) -> Self {
        let n = *starts.last().unwrap();
        let mut shard_of = vec![0u32; n];
        for (j, w) in starts.windows(2).enumerate() {
            shard_of[w[0]..w[1]].fill(j as u32);
        }
        ShardMeta { starts, shard_of }
    }

    fn num_shards(&self) -> usize {
        self.starts.len() - 1
    }

    fn len_of(&self, j: usize) -> usize {
        self.starts[j + 1] - self.starts[j]
    }
}

/// One sender shard's columnar staging for one destination shard:
/// destination indices and `(sender, payload)` pairs in parallel
/// arrays, appended in outbox order and counting-sorted by destination
/// before the scatter. All three buffers are reused across rounds.
struct Lane<M: ExecModel> {
    /// Shard-local destination index of each staged message.
    to: Vec<u32>,
    /// `(sender, payload)` of each staged message, parallel to `to`.
    pay: Vec<(M::Id, M::Msg)>,
    /// After grouping: CSR offsets into `pay` per local destination
    /// (`dest_len + 1` entries). Only meaningful while `pay` is
    /// non-empty.
    offs: Vec<u32>,
}

impl<M: ExecModel> Lane<M> {
    fn new() -> Self {
        Lane {
            to: Vec::new(),
            pay: Vec::new(),
            offs: Vec::new(),
        }
    }
}

/// One destination shard's flat inbox arena: every message delivered to
/// the shard, grouped by destination actor, plus CSR offsets — actor
/// `local` reads `data[offs[local]..offs[local + 1]]`. Reused across
/// rounds; `dirty` tracks whether a previous round left content that a
/// quiet round must clear.
struct Arena<M: ExecModel> {
    data: Vec<(M::Id, M::Msg)>,
    offs: Vec<usize>,
    dirty: bool,
}

impl<M: ExecModel> Arena<M> {
    fn new(len: usize) -> Self {
        Arena {
            data: Vec::new(),
            offs: vec![0; len + 1],
            dirty: false,
        }
    }

    #[inline]
    fn slice(&self, local: usize) -> &[(M::Id, M::Msg)] {
        &self.data[self.offs[local]..self.offs[local + 1]]
    }

    #[inline]
    fn has_mail(&self, local: usize) -> bool {
        self.offs[local + 1] > self.offs[local]
    }

    fn clear(&mut self) {
        self.data.clear();
        self.offs.fill(0);
        self.dirty = false;
    }
}

/// The lane-staging sink of the sharded executor: messages are appended
/// to the columnar lane of their destination shard.
struct LaneSink<'a, M: ExecModel> {
    lanes: &'a mut [Lane<M>],
    starts: &'a [usize],
    shard_of: &'a [u32],
}

impl<M: ExecModel> MsgSink<M> for LaneSink<'_, M> {
    #[inline]
    fn deliver(&mut self, _model: &M, to: M::Id, from: M::Id, msg: M::Msg) -> u32 {
        let j = self.shard_of[to.index()] as usize;
        let lane = &mut self.lanes[j];
        lane.to.push((to.index() - self.starts[j]) as u32);
        lane.pay.push((from, msg));
        1
    }
}

/// Reusable per-worker scratch: the model's validation scratch plus the
/// counting-sort arrays of the lane-grouping pass.
struct WorkerScratch<M: ExecModel> {
    send: M::SendScratch,
    /// Per-destination counters, then running cursors (counting sort
    /// pass 1); sized to the largest destination shard.
    counts: Vec<u32>,
    /// Final position of each staged message (counting sort pass 2).
    pos: Vec<u32>,
}

impl<M: ExecModel> WorkerScratch<M> {
    fn new() -> Self {
        WorkerScratch {
            send: M::SendScratch::default(),
            counts: Vec::new(),
            pos: Vec::new(),
        }
    }
}

/// Stable counting sort of one lane by destination: fills `lane.offs`
/// with the per-destination CSR offsets and permutes `lane.pay` into
/// destination-grouped order in place (cycle-walking swaps; stability
/// follows from assigning positions in scan order).
fn group_lane_by_destination<M: ExecModel>(
    lane: &mut Lane<M>,
    dest_len: usize,
    counts: &mut Vec<u32>,
    pos: &mut Vec<u32>,
) {
    if counts.len() < dest_len {
        counts.resize(dest_len, 0);
    }
    let counts = &mut counts[..dest_len];
    counts.fill(0);
    for &t in &lane.to {
        counts[t as usize] += 1;
    }
    // Prefix-sum the counts into CSR offsets, leaving `counts` holding
    // each destination's running write cursor.
    lane.offs.clear();
    lane.offs.reserve(dest_len + 1);
    lane.offs.push(0);
    let mut run = 0u32;
    for c in counts.iter_mut() {
        let start = run;
        run += *c;
        *c = start;
        lane.offs.push(run);
    }
    // Final slot of each message, assigned in scan order (stable).
    pos.clear();
    pos.extend(lane.to.iter().map(|&t| {
        let p = counts[t as usize];
        counts[t as usize] += 1;
        p
    }));
    // Apply the permutation in place: ≤ len swaps, moves only.
    let pay = &mut lane.pay[..];
    for i in 0..pay.len() {
        while pos[i] as usize != i {
            let j = pos[i] as usize;
            pay.swap(i, j);
            pos.swap(i, j);
        }
    }
    lane.to.clear();
}

/// The per-round sweep: polls every actor, refreshes the activity mask,
/// and reports global termination. Runs on the driving thread in both
/// executors — it is allocation-free and branch-cheap, so even with the
/// active-set policy the termination semantics stay exactly those of
/// the classic loop. `has_mail` reports whether the actor's inbox for
/// this round is non-empty (per-actor buffers in the sequential
/// executor, arena CSR offsets in the sharded one).
///
/// Under [`Scheduling::ActiveSet`] the sweep additionally maintains a
/// *dormancy* cache: an actor observed done **and** skippable with an
/// empty inbox is not re-polled in later rounds until a message arrives.
/// This is sound because a skipped actor's state is frozen (the no-op
/// contract), so by the skip contract its `done`/`skippable` verdicts
/// cannot change until mail wakes it; the quiescent tail of a run then
/// costs two flag reads per actor per round instead of a model poll.
fn sweep<M: ExecModel>(
    model: &M,
    nodes: &[M::Node],
    has_mail: impl Fn(usize) -> bool,
    round: usize,
    scheduling: Scheduling,
    active: &mut [bool],
    dormant: &mut [bool],
) -> bool {
    let mut all_done = true;
    let mut in_flight = false;
    for (i, node) in nodes.iter().enumerate() {
        let has_mail = has_mail(i);
        if dormant[i] && !has_mail {
            // Frozen, done, and still unmailed: counts as done without
            // a fresh poll.
            active[i] = false;
            continue;
        }
        let poll = model.poll(node, i, round);
        all_done &= poll.done;
        in_flight |= has_mail;
        match scheduling {
            Scheduling::ActiveSet => {
                active[i] = has_mail || !poll.skippable;
                dormant[i] = poll.done && poll.skippable && !has_mail;
            }
            Scheduling::FullSweep => active[i] = true,
        }
    }
    all_done && !in_flight
}

/// Collects every actor's output at the final `round`.
fn outputs<M: ExecModel>(model: &M, nodes: &[M::Node], round: usize) -> Vec<M::Output> {
    nodes
        .iter()
        .enumerate()
        .map(|(i, node)| model.output(node, i, round))
        .collect()
}

/// Runs `nodes` to completion on the single-threaded reference
/// executor.
///
/// # Errors
///
/// Returns the model's error if an actor violates the model, a program
/// aborts, or the round budget is exhausted.
pub fn run_sequential<M: ExecModel>(
    model: &M,
    nodes: Vec<M::Node>,
    cfg: KernelConfig,
) -> Result<Run<M::Output, M::Metrics>, M::Error> {
    run_sequential_probed(model, nodes, cfg, &NoopProbe)
}

/// [`run_sequential`] with a [`Probe`] attached: identical outputs,
/// metrics, and errors (observer neutrality), plus per-round telemetry
/// callbacks on the driving thread. With [`NoopProbe`] this
/// monomorphizes to exactly [`run_sequential`].
///
/// # Errors
///
/// Returns the model's error like [`run_sequential`].
pub fn run_sequential_probed<M: ExecModel, P: Probe>(
    model: &M,
    mut nodes: Vec<M::Node>,
    cfg: KernelConfig,
    probe: &P,
) -> Result<Run<M::Output, M::Metrics>, M::Error> {
    let n = nodes.len();
    let mut metrics = M::Metrics::default();
    model.pre_run(&nodes, &mut metrics)?;
    let run_start = P::ENABLED.then(std::time::Instant::now);
    if P::ENABLED {
        probe.on_run_start(n, &[0, n], &[]);
    }

    let mut inboxes: Inboxes<M> = (0..n).map(|_| Vec::new()).collect();
    let mut staging: Inboxes<M> = (0..n).map(|_| Vec::new()).collect();
    let mut recv: Vec<usize> = if M::TRACK_RECV {
        vec![0; n]
    } else {
        Vec::new()
    };
    let mut active = vec![true; n];
    let mut dormant = vec![false; n];
    let mut scratch = M::SendScratch::default();
    let mut round = 0;
    let mut delivered: u64 = 0;
    let mut convergence = 0usize;

    loop {
        if sweep(
            model,
            &nodes,
            |i| !inboxes[i].is_empty(),
            round,
            cfg.scheduling,
            &mut active,
            &mut dormant,
        ) {
            break;
        }
        if round >= cfg.max_rounds {
            return Err(model.round_limit_error(cfg.max_rounds));
        }

        let round_start = P::ENABLED.then(std::time::Instant::now);
        if P::ENABLED {
            probe.on_round_start(round);
        }
        let mut acc = RoundProfile::for_probe::<P>();
        for (i, node) in nodes.iter_mut().enumerate() {
            if !active[i] {
                continue;
            }
            let mut sink = DirectSink::<M> {
                staging: &mut staging,
                recv: &mut recv,
            };
            model.step(
                node,
                i,
                round,
                &inboxes[i],
                &mut scratch,
                &mut acc,
                &mut sink,
            )?;
            // Consumed in place; the cleared buffer keeps its capacity
            // and becomes next round's staging arena after the swap.
            inboxes[i].clear();
        }

        if M::TRACK_RECV {
            model.check_recv(&recv, round)?;
        }
        if acc.messages > 0 {
            // Messages staged this round are consumed next round, so
            // the plane can only be quiet from the round after that.
            convergence = round + 2;
        }
        delivered += acc.messages;
        model.end_round(&acc, &recv, round, &mut metrics);
        if M::TRACK_RECV {
            recv.fill(0);
        }
        std::mem::swap(&mut inboxes, &mut staging);
        if P::ENABLED {
            probe.on_round_end(&RoundObs {
                round,
                wall_ns: round_start.map_or(0, |t| t.elapsed().as_nanos() as u64),
                messages: acc.messages,
                volume: acc.volume,
                peak_link: acc.peak_link,
                active: active.iter().filter(|&&a| a).count(),
                sizes: acc.sizes.as_deref(),
            });
        }
        round += 1;
    }

    model.finish(
        &mut metrics,
        &FaultStats {
            delivered,
            ..FaultStats::default()
        },
        convergence,
    );
    if P::ENABLED {
        probe.on_run_end(
            round,
            run_start.map_or(0, |t| t.elapsed().as_nanos() as u64),
        );
    }
    Ok(Run {
        outputs: outputs(model, &nodes, round),
        metrics,
    })
}

/// Splits `slice` into the contiguous chunks delimited by `bounds`
/// (boundary offsets as produced by [`balanced_partition`]).
fn split_by_bounds<'a, T>(mut slice: &'a mut [T], bounds: &[usize]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(bounds.len().saturating_sub(1));
    for w in bounds.windows(2) {
        let (head, tail) = slice.split_at_mut(w[1] - w[0]);
        out.push(head);
        slice = tail;
    }
    out
}

/// Executes one round for the shard whose first actor is `base`:
/// steps every active actor against its arena inbox slice, stages
/// outgoing messages into the shard's columnar lanes, and
/// counting-sorts each lane by destination so the scatter phase can
/// drain it sequentially.
#[allow(clippy::too_many_arguments)]
fn run_shard_round<M: ExecModel, P: Probe>(
    model: &M,
    base: usize,
    shard_nodes: &mut [M::Node],
    arena: &Arena<M>,
    shard_active: &[bool],
    lanes: &mut [Lane<M>],
    meta: &ShardMeta,
    scratch: &mut WorkerScratch<M>,
    round: usize,
) -> Result<RoundProfile, M::Error> {
    let mut acc = RoundProfile::for_probe::<P>();
    {
        let mut sink = LaneSink::<M> {
            lanes,
            starts: &meta.starts,
            shard_of: &meta.shard_of,
        };
        for (k, node) in shard_nodes.iter_mut().enumerate() {
            if !shard_active[k] {
                continue;
            }
            model.step(
                node,
                base + k,
                round,
                arena.slice(k),
                &mut scratch.send,
                &mut acc,
                &mut sink,
            )?;
        }
    }
    for (j, lane) in lanes.iter_mut().enumerate() {
        if !lane.pay.is_empty() {
            group_lane_by_destination(lane, meta.len_of(j), &mut scratch.counts, &mut scratch.pos);
        }
    }
    Ok(acc)
}

/// Scatter phase for one destination shard: rebuilds the shard's flat
/// inbox arena from its incoming (pre-grouped) lanes. For every
/// destination actor, lanes are drained in ascending sender-shard
/// order, so each inbox ends up sorted exactly as the sequential
/// executor delivers. Also accumulates the receive tally when the model
/// tracks it.
/// One incoming lane viewed by the scatter: its CSR offsets and a
/// draining cursor over its pre-grouped payloads.
type LanePart<'a, M> = (
    &'a [u32],
    std::vec::Drain<'a, (<M as ExecModel>::Id, <M as ExecModel>::Msg)>,
);

fn merge_shard<M: ExecModel>(
    model: &M,
    arena: &mut Arena<M>,
    column: Vec<&mut Lane<M>>,
    shard_len: usize,
    mut recv_dst: Option<&mut [usize]>,
) {
    arena.data.clear();
    // Split each incoming lane into its CSR offsets and a draining
    // cursor over the pre-grouped payloads (disjoint fields of the same
    // lane, so the borrows coexist).
    let mut parts: Vec<LanePart<'_, M>> = column
        .into_iter()
        .filter(|lane| !lane.pay.is_empty())
        .map(|lane| (&lane.offs[..], lane.pay.drain(..)))
        .collect();
    for local in 0..shard_len {
        arena.offs[local] = arena.data.len();
        for (offs, drain) in parts.iter_mut() {
            let cnt = (offs[local + 1] - offs[local]) as usize;
            for _ in 0..cnt {
                let (from, msg) = drain.next().expect("lane CSR covers its payloads");
                if let Some(recv) = recv_dst.as_deref_mut() {
                    recv[local] += model.recv_charge(&msg);
                }
                arena.data.push((from, msg));
            }
        }
    }
    arena.offs[shard_len] = arena.data.len();
    arena.dirty = true;
}

/// Per-worker scratch of the packed wrapper: the inner model's own
/// validation scratch plus the decode buffer the wrapper rebuilds for
/// each stepped actor's inbox.
struct PackScratch<M: ExecModel> {
    send: M::SendScratch,
    buf: Vec<(M::Id, M::Msg)>,
}

impl<M: ExecModel> Default for PackScratch<M> {
    fn default() -> Self {
        PackScratch {
            send: M::SendScratch::default(),
            buf: Vec::new(),
        }
    }
}

/// The enum→packed adapter: an [`ExecModel`] whose message type is the
/// inner model's [`ExecModel::Packed`] word. [`run_sharded`] wraps a
/// packing model in this once per run, so the whole exchange — lanes,
/// counting sort, scatter, arenas — moves `Copy` words; `step` decodes
/// the inbox slice into a reusable scratch buffer, runs the inner
/// model's step (validation and charging happen there, on the decoded
/// messages), and re-encodes each validated outgoing message as it
/// enters its lane.
struct PackedModel<'m, M>(&'m M);

/// The packing sink adapter: receives validated enum messages from the
/// inner model's `step` and forwards their packed words to the outer
/// (lane or direct) sink.
struct PackSink<'a, 'm, M: ExecModel, S> {
    pm: &'a PackedModel<'m, M>,
    sink: &'a mut S,
}

impl<'m, M, S> MsgSink<M> for PackSink<'_, 'm, M, S>
where
    M: ExecModel,
    M::Msg: Send,
    S: MsgSink<PackedModel<'m, M>>,
{
    #[inline]
    fn deliver(&mut self, model: &M, to: M::Id, from: M::Id, msg: M::Msg) -> u32 {
        let word = model.pack(&msg);
        self.sink.deliver(self.pm, to, from, word)
    }
}

impl<'m, M> ExecModel for PackedModel<'m, M>
where
    M: ExecModel,
    M::Msg: Send,
{
    type Id = M::Id;
    type Node = M::Node;
    type Msg = M::Packed;
    type Output = M::Output;
    type Error = M::Error;
    type Metrics = M::Metrics;
    type SendScratch = PackScratch<M>;
    type Packed = ();

    const TRACK_RECV: bool = M::TRACK_RECV;

    fn pre_run(&self, nodes: &[M::Node], metrics: &mut M::Metrics) -> Result<(), M::Error> {
        self.0.pre_run(nodes, metrics)
    }

    fn actor_cost(&self, node: &M::Node, idx: usize) -> u64 {
        self.0.actor_cost(node, idx)
    }

    fn poll(&self, node: &M::Node, idx: usize, round: usize) -> Poll {
        self.0.poll(node, idx, round)
    }

    fn output(&self, node: &M::Node, idx: usize, round: usize) -> M::Output {
        self.0.output(node, idx, round)
    }

    fn round_limit_error(&self, limit: usize) -> M::Error {
        self.0.round_limit_error(limit)
    }

    fn step<S: MsgSink<Self>>(
        &self,
        node: &mut M::Node,
        idx: usize,
        round: usize,
        inbox: &[(M::Id, M::Packed)],
        scratch: &mut PackScratch<M>,
        acc: &mut RoundProfile,
        sink: &mut S,
    ) -> Result<(), M::Error> {
        scratch.buf.clear();
        scratch
            .buf
            .extend(inbox.iter().map(|&(from, w)| (from, self.0.unpack(w))));
        let mut sink = PackSink { pm: self, sink };
        self.0.step(
            node,
            idx,
            round,
            &scratch.buf,
            &mut scratch.send,
            acc,
            &mut sink,
        )
    }

    fn recv_charge(&self, msg: &M::Packed) -> usize {
        self.0.recv_charge(&self.0.unpack(*msg))
    }

    fn wire_charge(&self, msg: &M::Packed) -> u64 {
        self.0.wire_charge(&self.0.unpack(*msg))
    }

    fn arq_header_charge(&self) -> u64 {
        self.0.arq_header_charge()
    }

    fn arq_ack_charge(&self) -> u64 {
        self.0.arq_ack_charge()
    }

    fn check_recv(&self, recv: &[usize], round: usize) -> Result<(), M::Error> {
        self.0.check_recv(recv, round)
    }

    fn end_round(
        &self,
        acc: &RoundProfile,
        recv: &[usize],
        round: usize,
        metrics: &mut M::Metrics,
    ) {
        self.0.end_round(acc, recv, round, metrics)
    }

    fn finish(&self, metrics: &mut M::Metrics, fault: &FaultStats, convergence_round: usize) {
        self.0.finish(metrics, fault, convergence_round)
    }
}

/// Runs `nodes` to completion on the sharded multi-threaded executor.
///
/// Actors are partitioned into at most `threads` contiguous shards with
/// cost-balanced boundaries ([`balanced_partition`] over
/// [`ExecModel::actor_cost`]); every round each shard executes its
/// actors' `round` callbacks on its own worker thread, staging outgoing
/// messages into columnar per-destination-shard lanes, and the exchange
/// counting-sorts and scatters the lanes into per-shard flat inbox
/// arenas (see the crate docs for the two-pass layout). Because shards
/// cover ascending id ranges, each shard visits its actors in id order,
/// and the scatter drains sender shards in ascending order per
/// destination, every inbox is delivered in exactly the sequential
/// executor's order — **bit-identical** outputs, metrics, and errors at
/// every thread count, without any sorting.
///
/// When the model enables its packed codec ([`ExecModel::packs`]), the
/// exchange moves [`ExecModel::Packed`] words instead of cloned enums
/// — same outputs, metrics, and errors by the codec contract (see the
/// crate docs on packed lanes).
///
/// A model violation aborts with the lowest-indexed shard's error,
/// which is the lowest-indexed actor's error, matching the sequential
/// executor (though `round` callbacks of higher-id actors in other
/// shards may already have executed by then). Shards whose actors are
/// all inactive this round are not spawned at all.
///
/// Callers are expected to route `threads <= 1` (or shard sizes below
/// two actors) to [`run_sequential`]; this function falls back by
/// itself if they do not.
///
/// # Errors
///
/// Returns the model's error like [`run_sequential`].
pub fn run_sharded<M>(
    model: &M,
    nodes: Vec<M::Node>,
    threads: usize,
    cfg: KernelConfig,
) -> Result<Run<M::Output, M::Metrics>, M::Error>
where
    M: ExecModel,
    M::Node: Send,
    M::Msg: Send,
    M::Error: Send,
{
    run_sharded_probed(model, nodes, threads, cfg, &NoopProbe)
}

/// [`run_sharded`] with a [`Probe`] attached: identical outputs,
/// metrics, and errors (observer neutrality), plus per-round and
/// per-shard telemetry callbacks on the driving thread (workers only
/// *time* their own shard). With [`NoopProbe`] this monomorphizes to
/// exactly [`run_sharded`].
///
/// # Errors
///
/// Returns the model's error like [`run_sequential`].
pub fn run_sharded_probed<M, P>(
    model: &M,
    nodes: Vec<M::Node>,
    threads: usize,
    cfg: KernelConfig,
    probe: &P,
) -> Result<Run<M::Output, M::Metrics>, M::Error>
where
    M: ExecModel,
    M::Node: Send,
    M::Msg: Send,
    M::Error: Send,
    P: Probe,
{
    if model.packs() {
        run_sharded_inner(&PackedModel(model), nodes, threads, cfg, probe)
    } else {
        run_sharded_inner(model, nodes, threads, cfg, probe)
    }
}

/// The sharded round loop proper, over whichever wire representation
/// ([`run_sharded_probed`]'s dispatch) the run uses.
fn run_sharded_inner<M, P>(
    model: &M,
    mut nodes: Vec<M::Node>,
    threads: usize,
    cfg: KernelConfig,
    probe: &P,
) -> Result<Run<M::Output, M::Metrics>, M::Error>
where
    M: ExecModel,
    M::Node: Send,
    M::Msg: Send,
    M::Error: Send,
    P: Probe,
{
    let n = nodes.len();
    if threads <= 1 || n < 2 * threads {
        return run_sequential_probed(model, nodes, cfg, probe);
    }
    let costs: Vec<u64> = nodes
        .iter()
        .enumerate()
        .map(|(i, node)| model.actor_cost(node, i))
        .collect();
    let meta = ShardMeta::new(balanced_partition(&costs, threads));
    let num_shards = meta.num_shards();
    if num_shards <= 1 {
        return run_sequential_probed(model, nodes, cfg, probe);
    }

    let mut metrics = M::Metrics::default();
    model.pre_run(&nodes, &mut metrics)?;
    let run_start = P::ENABLED.then(std::time::Instant::now);
    if P::ENABLED {
        probe.on_run_start(n, &meta.starts, &costs);
    }

    let mut recv: Vec<usize> = if M::TRACK_RECV {
        vec![0; n]
    } else {
        Vec::new()
    };
    let mut active = vec![true; n];
    let mut dormant = vec![false; n];
    // Per-shard state, all reused across rounds: flat inbox arenas, one
    // row of outgoing lanes per sending shard, and worker scratch.
    let mut arenas: Vec<Arena<M>> = (0..num_shards)
        .map(|j| Arena::new(meta.len_of(j)))
        .collect();
    let mut lane_rows: Vec<Vec<Lane<M>>> = (0..num_shards)
        .map(|_| (0..num_shards).map(|_| Lane::new()).collect())
        .collect();
    let mut scratches: Vec<WorkerScratch<M>> =
        (0..num_shards).map(|_| WorkerScratch::new()).collect();
    let mut round = 0;
    let mut delivered: u64 = 0;
    let mut convergence = 0usize;

    loop {
        if sweep(
            model,
            &nodes,
            |i| {
                let j = meta.shard_of[i] as usize;
                arenas[j].has_mail(i - meta.starts[j])
            },
            round,
            cfg.scheduling,
            &mut active,
            &mut dormant,
        ) {
            break;
        }
        if round >= cfg.max_rounds {
            return Err(model.round_limit_error(cfg.max_rounds));
        }

        let round_start = P::ENABLED.then(std::time::Instant::now);
        if P::ENABLED {
            probe.on_round_start(round);
        }

        // Phase A: every shard with at least one active actor steps its
        // actors on a worker thread and pre-groups its outgoing lanes.
        // Workers time their own shard (probed runs only); callbacks
        // stay on the driving thread.
        type ShardOut<M> = (Result<RoundProfile, <M as ExecModel>::Error>, u64);
        let shard_results: Vec<Option<ShardOut<M>>> = {
            let meta = &meta;
            let active = &active;
            std::thread::scope(|s| {
                let handles: Vec<_> = split_by_bounds(&mut nodes, &meta.starts)
                    .into_iter()
                    .zip(arenas.iter_mut())
                    .zip(lane_rows.iter_mut())
                    .zip(scratches.iter_mut())
                    .enumerate()
                    .map(|(si, (((shard_nodes, arena), lanes), scratch))| {
                        let act = &active[meta.starts[si]..meta.starts[si + 1]];
                        if act.iter().any(|&a| a) {
                            Some(s.spawn(move || {
                                let shard_start = P::ENABLED.then(std::time::Instant::now);
                                let r = run_shard_round::<M, P>(
                                    model,
                                    meta.starts[si],
                                    shard_nodes,
                                    arena,
                                    act,
                                    lanes,
                                    meta,
                                    scratch,
                                    round,
                                );
                                let ns = shard_start.map_or(0, |t| t.elapsed().as_nanos() as u64);
                                (r, ns)
                            }))
                        } else {
                            None
                        }
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p))))
                    .collect()
            })
        };

        // The lowest-indexed shard's error is the lowest-indexed
        // actor's error, exactly like the sequential executor.
        let mut acc = RoundProfile::default();
        for (si, r) in shard_results.into_iter().enumerate() {
            let Some((r, shard_ns)) = r else { continue };
            let p = r?;
            if P::ENABLED {
                probe.on_shard(round, si, shard_ns, p.messages, p.volume);
            }
            acc.merge(&p);
        }

        // Phase B: scatter the lanes into the destination arenas, one
        // worker per destination shard with incoming mail; quiet shards
        // only clear leftover content. The gate is executor-owned (lane
        // emptiness), so it cannot drift from whatever the model counts
        // in `acc.messages`.
        let mut incoming = vec![false; num_shards];
        for row in &lane_rows {
            for (j, lane) in row.iter().enumerate() {
                incoming[j] |= !lane.pay.is_empty();
            }
        }
        let exchange_start = P::ENABLED.then(std::time::Instant::now);
        if incoming.iter().any(|&b| b) || arenas.iter().any(|a| a.dirty) {
            let mut columns: Vec<Vec<&mut Lane<M>>> = (0..num_shards)
                .map(|_| Vec::with_capacity(num_shards))
                .collect();
            for row in lane_rows.iter_mut() {
                for (j, lane) in row.iter_mut().enumerate() {
                    columns[j].push(lane);
                }
            }
            let recv_chunks: Vec<&mut [usize]> = if M::TRACK_RECV {
                split_by_bounds(&mut recv, &meta.starts)
            } else {
                Vec::new()
            };
            std::thread::scope(|s| {
                let mut recv_chunks = recv_chunks.into_iter();
                for (j, (arena, column)) in arenas.iter_mut().zip(columns).enumerate() {
                    let recv_dst = recv_chunks.next();
                    if !incoming[j] {
                        if arena.dirty {
                            arena.clear();
                        }
                        continue;
                    }
                    let shard_len = meta.len_of(j);
                    s.spawn(move || merge_shard(model, arena, column, shard_len, recv_dst));
                }
            });
        }
        if P::ENABLED {
            probe.on_exchange(
                round,
                exchange_start.map_or(0, |t| t.elapsed().as_nanos() as u64),
            );
        }

        if M::TRACK_RECV {
            model.check_recv(&recv, round)?;
        }
        if acc.messages > 0 {
            convergence = round + 2;
        }
        delivered += acc.messages;
        model.end_round(&acc, &recv, round, &mut metrics);
        if M::TRACK_RECV {
            recv.fill(0);
        }
        if P::ENABLED {
            probe.on_round_end(&RoundObs {
                round,
                wall_ns: round_start.map_or(0, |t| t.elapsed().as_nanos() as u64),
                messages: acc.messages,
                volume: acc.volume,
                peak_link: acc.peak_link,
                active: active.iter().filter(|&&a| a).count(),
                sizes: acc.sizes.as_deref(),
            });
        }
        round += 1;
    }

    model.finish(
        &mut metrics,
        &FaultStats {
            delivered,
            ..FaultStats::default()
        },
        convergence,
    );
    if P::ENABLED {
        probe.on_run_end(
            round,
            run_start.map_or(0, |t| t.elapsed().as_nanos() as u64),
        );
    }
    Ok(Run {
        outputs: outputs(model, &nodes, round),
        metrics,
    })
}

#[cfg(test)]
// The tests exercise the fault executor itself, below the sanctioned
// `run_cfg` wrappers the rest of the workspace is steered to.
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;

    /// A toy model used to exercise the kernel directly: actors pass a
    /// token around a ring for a fixed number of hops; message charge is
    /// the payload value, capped by the model.
    struct RingModel {
        n: usize,
        charge_cap: usize,
        recv_cap: usize,
        /// Skewed per-actor costs for the balanced-sharding tests
        /// (uniform when false, matching the default hook).
        skewed_costs: bool,
        /// Whether the sharded executor moves packed words.
        packed: bool,
    }

    #[derive(Clone)]
    struct Token {
        hops_left: usize,
        charge: usize,
    }

    struct RingNode {
        started: bool,
        seen: usize,
        outbound: Option<Token>,
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    enum RingError {
        TooBig { at: usize, round: usize },
        RecvOverflow { at: usize, round: usize },
        RoundLimit { limit: usize },
    }

    #[derive(Debug, Default, Clone, PartialEq, Eq)]
    struct RingMetrics {
        rounds: usize,
        messages: u64,
        volume: u64,
        profile: Vec<usize>,
        fault: FaultStats,
        convergence: usize,
    }

    impl ExecModel for RingModel {
        type Id = NodeId;
        type Node = RingNode;
        type Msg = Token;
        type Output = usize;
        type Error = RingError;
        type Metrics = RingMetrics;
        type SendScratch = ();
        type Packed = u64;

        const TRACK_RECV: bool = true;

        fn packs(&self) -> bool {
            self.packed
        }

        fn pack(&self, msg: &Token) -> u64 {
            ((msg.hops_left as u64) << 32) | msg.charge as u64
        }

        fn unpack(&self, word: u64) -> Token {
            Token {
                hops_left: (word >> 32) as usize,
                charge: (word & 0xFFFF_FFFF) as usize,
            }
        }

        fn actor_cost(&self, _node: &RingNode, idx: usize) -> u64 {
            if self.skewed_costs {
                // Heavy head: actor 0 carries half the total cost.
                if idx == 0 {
                    self.n as u64
                } else {
                    1
                }
            } else {
                1
            }
        }

        fn poll(&self, node: &Self::Node, _idx: usize, _round: usize) -> Poll {
            let done = node.started && node.outbound.is_none();
            Poll {
                done,
                skippable: done,
            }
        }

        fn output(&self, node: &Self::Node, _idx: usize, _round: usize) -> usize {
            node.seen
        }

        fn round_limit_error(&self, limit: usize) -> RingError {
            RingError::RoundLimit { limit }
        }

        fn step<S: MsgSink<Self>>(
            &self,
            node: &mut Self::Node,
            idx: usize,
            round: usize,
            inbox: &[(NodeId, Token)],
            _scratch: &mut (),
            acc: &mut RoundProfile,
            sink: &mut S,
        ) -> Result<(), RingError> {
            node.started = true;
            for (_, t) in inbox {
                node.seen += 1;
                if t.hops_left > 0 {
                    node.outbound = Some(Token {
                        hops_left: t.hops_left - 1,
                        charge: t.charge,
                    });
                }
            }
            if let Some(t) = node.outbound.take() {
                if t.charge > self.charge_cap {
                    return Err(RingError::TooBig { at: idx, round });
                }
                let charge = t.charge;
                let to = NodeId::from_index((idx + 1) % self.n);
                let copies = sink.deliver(self, to, NodeId::from_index(idx), t);
                acc.messages += u64::from(copies);
                acc.volume += u64::from(copies) * charge as u64;
                acc.peak_link = acc.peak_link.max(charge * copies as usize);
            }
            Ok(())
        }

        fn recv_charge(&self, msg: &Token) -> usize {
            msg.charge
        }

        fn check_recv(&self, recv: &[usize], round: usize) -> Result<(), RingError> {
            for (i, &w) in recv.iter().enumerate() {
                if w > self.recv_cap {
                    return Err(RingError::RecvOverflow { at: i, round });
                }
            }
            Ok(())
        }

        fn end_round(
            &self,
            acc: &RoundProfile,
            _recv: &[usize],
            round: usize,
            metrics: &mut RingMetrics,
        ) {
            metrics.rounds = round + 1;
            metrics.messages += acc.messages;
            metrics.volume += acc.volume;
            metrics.profile.push(acc.peak_link);
        }

        fn finish(&self, metrics: &mut RingMetrics, fault: &FaultStats, convergence_round: usize) {
            metrics.fault = *fault;
            metrics.convergence = convergence_round;
        }
    }

    fn ring_nodes(n: usize, hops: usize, charge: usize) -> Vec<RingNode> {
        (0..n)
            .map(|i| RingNode {
                started: false,
                seen: 0,
                outbound: (i == 0).then_some(Token {
                    hops_left: hops,
                    charge,
                }),
            })
            .collect()
    }

    fn model(n: usize) -> RingModel {
        RingModel {
            n,
            charge_cap: 8,
            recv_cap: 8,
            skewed_costs: false,
            packed: false,
        }
    }

    fn packed_model(n: usize) -> RingModel {
        RingModel {
            packed: true,
            ..model(n)
        }
    }

    fn cfg(s: Scheduling) -> KernelConfig {
        KernelConfig {
            max_rounds: 1_000,
            scheduling: s,
        }
    }

    #[test]
    fn sequential_completes_and_counts() {
        let run =
            run_sequential(&model(5), ring_nodes(5, 7, 2), cfg(Scheduling::ActiveSet)).unwrap();
        // 8 sends total (the origin's plus 7 forwards), one per round,
        // plus a final send-free round consuming the last token.
        assert_eq!(run.metrics.messages, 8);
        assert_eq!(run.metrics.rounds, 9);
        assert_eq!(run.metrics.volume, 16);
        let mut expected = vec![2; 8];
        expected.push(0);
        assert_eq!(run.metrics.profile, expected);
        assert_eq!(run.outputs.iter().sum::<usize>(), 8);
    }

    #[test]
    fn schedulings_and_executors_are_bit_identical() {
        let baseline = run_sequential(
            &model(16),
            ring_nodes(16, 40, 3),
            cfg(Scheduling::FullSweep),
        )
        .unwrap();
        for scheduling in [Scheduling::FullSweep, Scheduling::ActiveSet] {
            let seq = run_sequential(&model(16), ring_nodes(16, 40, 3), cfg(scheduling)).unwrap();
            assert_eq!(seq.outputs, baseline.outputs, "{scheduling:?}");
            assert_eq!(seq.metrics.rounds, baseline.metrics.rounds);
            assert_eq!(seq.metrics.profile, baseline.metrics.profile);
            for threads in [2, 3, 5, 8] {
                let par = run_sharded(&model(16), ring_nodes(16, 40, 3), threads, cfg(scheduling))
                    .unwrap();
                assert_eq!(par.outputs, baseline.outputs, "{scheduling:?} t={threads}");
                assert_eq!(par.metrics.rounds, baseline.metrics.rounds);
                assert_eq!(par.metrics.messages, baseline.metrics.messages);
                assert_eq!(par.metrics.volume, baseline.metrics.volume);
                assert_eq!(par.metrics.profile, baseline.metrics.profile);
            }
        }
    }

    #[test]
    fn skewed_actor_costs_stay_bit_identical() {
        // A cost-skewed model shifts the shard boundaries; outputs,
        // metrics, and errors must not notice.
        let mk_model = |skewed| RingModel {
            skewed_costs: skewed,
            ..model(16)
        };
        let baseline = run_sequential(
            &mk_model(false),
            ring_nodes(16, 40, 3),
            cfg(Scheduling::ActiveSet),
        )
        .unwrap();
        for threads in [2, 3, 5, 8] {
            let par = run_sharded(
                &mk_model(true),
                ring_nodes(16, 40, 3),
                threads,
                cfg(Scheduling::ActiveSet),
            )
            .unwrap();
            assert_eq!(par.outputs, baseline.outputs, "t={threads}");
            assert_eq!(par.metrics.profile, baseline.metrics.profile, "t={threads}");
        }
    }

    #[test]
    fn step_errors_match_across_executors() {
        // Charge 99 exceeds the cap at the origin in round 0.
        let seq = run_sequential(&model(8), ring_nodes(8, 3, 99), cfg(Scheduling::ActiveSet))
            .unwrap_err();
        assert_eq!(seq, RingError::TooBig { at: 0, round: 0 });
        for threads in [2, 4] {
            let par = run_sharded(
                &model(8),
                ring_nodes(8, 3, 99),
                threads,
                cfg(Scheduling::ActiveSet),
            )
            .unwrap_err();
            assert_eq!(par, seq, "t={threads}");
        }
    }

    #[test]
    fn recv_errors_match_across_executors() {
        // The send passes the charge cap but overflows the destination's
        // receive cap, so the error surfaces in the post-round check.
        let tight = RingModel {
            recv_cap: 4,
            ..model(8)
        };
        let seq =
            run_sequential(&tight, ring_nodes(8, 2, 5), cfg(Scheduling::ActiveSet)).unwrap_err();
        assert_eq!(seq, RingError::RecvOverflow { at: 1, round: 0 });
        for threads in [2, 4] {
            let par = run_sharded(
                &tight,
                ring_nodes(8, 2, 5),
                threads,
                cfg(Scheduling::ActiveSet),
            )
            .unwrap_err();
            assert_eq!(par, seq, "t={threads}");
        }
    }

    #[test]
    fn round_limit_errors_match() {
        let tight = KernelConfig {
            max_rounds: 3,
            scheduling: Scheduling::ActiveSet,
        };
        let seq = run_sequential(&model(8), ring_nodes(8, 100, 1), tight).unwrap_err();
        assert_eq!(seq, RingError::RoundLimit { limit: 3 });
        let par = run_sharded(&model(8), ring_nodes(8, 100, 1), 4, tight).unwrap_err();
        assert_eq!(par, seq);
    }

    #[test]
    fn packed_plane_is_bit_identical_to_enum_plane() {
        let baseline = run_sequential(
            &model(16),
            ring_nodes(16, 40, 3),
            cfg(Scheduling::ActiveSet),
        )
        .unwrap();
        for threads in [2, 3, 5, 8] {
            let packed = run_sharded(
                &packed_model(16),
                ring_nodes(16, 40, 3),
                threads,
                cfg(Scheduling::ActiveSet),
            )
            .unwrap();
            assert_eq!(packed.outputs, baseline.outputs, "t={threads}");
            assert_eq!(packed.metrics.rounds, baseline.metrics.rounds);
            assert_eq!(packed.metrics.messages, baseline.metrics.messages);
            assert_eq!(packed.metrics.volume, baseline.metrics.volume);
            assert_eq!(packed.metrics.profile, baseline.metrics.profile);
        }
    }

    #[test]
    fn packed_plane_step_and_recv_errors_match() {
        // Step error (charge over the cap) and the receive-volume error
        // must surface identically on the packed plane.
        let seq = run_sequential(&model(8), ring_nodes(8, 3, 99), cfg(Scheduling::ActiveSet))
            .unwrap_err();
        let packed = run_sharded(
            &packed_model(8),
            ring_nodes(8, 3, 99),
            4,
            cfg(Scheduling::ActiveSet),
        )
        .unwrap_err();
        assert_eq!(packed, seq);

        let tight = RingModel {
            recv_cap: 4,
            ..model(8)
        };
        let tight_packed = RingModel {
            recv_cap: 4,
            ..packed_model(8)
        };
        let seq =
            run_sequential(&tight, ring_nodes(8, 2, 5), cfg(Scheduling::ActiveSet)).unwrap_err();
        let packed = run_sharded(
            &tight_packed,
            ring_nodes(8, 2, 5),
            4,
            cfg(Scheduling::ActiveSet),
        )
        .unwrap_err();
        assert_eq!(packed, seq);
    }

    #[test]
    fn run_config_builder_defaults_and_overrides() {
        let cfg = RunConfig::new();
        assert_eq!(cfg.engine, Engine::Sequential);
        assert_eq!(cfg.scheduling, Scheduling::ActiveSet);
        assert!(!cfg.codec);
        let cfg = RunConfig::new()
            .parallel_auto()
            .scheduling(Scheduling::FullSweep)
            .codec(true);
        assert_eq!(cfg.engine, Engine::Parallel { threads: 0 });
        assert_eq!(cfg.scheduling, Scheduling::FullSweep);
        assert!(cfg.codec);
        assert_eq!(
            RunConfig::new().sequential().parallel(3).engine,
            Engine::Parallel { threads: 3 }
        );
    }

    #[test]
    fn zero_actors_trivial() {
        let run = run_sequential(&model(1), Vec::new(), cfg(Scheduling::ActiveSet)).unwrap();
        assert_eq!(run.metrics.rounds, 0);
        assert!(run.outputs.is_empty());
    }

    #[test]
    fn sharded_falls_back_to_sequential_on_tiny_inputs() {
        // 4 actors on 8 threads: shards would hold under two actors.
        let run = run_sharded(
            &model(4),
            ring_nodes(4, 5, 1),
            8,
            cfg(Scheduling::ActiveSet),
        )
        .unwrap();
        assert_eq!(run.metrics.messages, 6);
    }

    // The balanced_partition unit suite lives with the implementation
    // in pga-graph now; this smoke test pins the re-export so the
    // engines' load balancer cannot silently detach from it.
    #[test]
    fn balanced_partition_reexport_smoke() {
        let mut costs = vec![1u64; 16];
        costs[0] = 16;
        let bounds = balanced_partition(&costs, 4);
        assert_eq!(*bounds.first().unwrap(), 0);
        assert_eq!(*bounds.last().unwrap(), 16);
        assert_eq!(bounds[1], 1, "hub isolated into its own shard");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
    }

    /// A hand-scripted adversary: one fate override for the message at
    /// `(round 0, from 0, seq 0)`, plus an explicit crash table.
    struct ScriptAdversary {
        fate0: Fate,
        crash: Vec<Option<u32>>,
    }

    impl Adversary for ScriptAdversary {
        fn fate(&self, round: u32, from: u32, seq: u32) -> Fate {
            if round == 0 && from == 0 && seq == 0 {
                self.fate0
            } else {
                Fate::Deliver
            }
        }

        fn crash_round(&self, actor: u32) -> Option<u32> {
            self.crash.get(actor as usize).copied().flatten()
        }
    }

    fn deliver_all(n: usize) -> ScriptAdversary {
        ScriptAdversary {
            fate0: Fate::Deliver,
            crash: vec![None; n],
        }
    }

    #[test]
    fn fault_none_is_bit_identical_to_clean_engines() {
        for packed in [false, true] {
            let mk = || RingModel {
                packed,
                ..model(16)
            };
            for scheduling in [Scheduling::ActiveSet, Scheduling::FullSweep] {
                let baseline =
                    run_sequential(&mk(), ring_nodes(16, 40, 3), cfg(scheduling)).unwrap();
                let adversary = SeededAdversary::new(FaultSpec::none());
                for threads in [1, 2, 4, 8] {
                    let faulty = run_faulty(
                        &mk(),
                        ring_nodes(16, 40, 3),
                        threads,
                        cfg(scheduling),
                        &adversary,
                    )
                    .unwrap();
                    assert_eq!(
                        faulty.outputs, baseline.outputs,
                        "packed={packed} {scheduling:?} t={threads}"
                    );
                    assert_eq!(
                        faulty.metrics, baseline.metrics,
                        "packed={packed} {scheduling:?} t={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn fault_runs_bit_identical_across_threads_and_planes() {
        let spec = FaultSpec::seeded(7)
            .drop(0.15)
            .duplicate(0.1)
            .delay(0.1, 3)
            .crash(0.1, 6);
        let adversary = SeededAdversary::new(spec);
        let baseline = run_faulty(
            &model(16),
            ring_nodes(16, 40, 3),
            1,
            cfg(Scheduling::ActiveSet),
            &adversary,
        )
        .unwrap();
        // The adversary must have actually interfered for this test to
        // mean anything.
        let f = &baseline.metrics.fault;
        assert!(
            f.dropped + f.duplicated + f.delayed + f.crashed > 0,
            "{f:?}"
        );
        for packed in [false, true] {
            for threads in [1, 2, 4, 8] {
                let run = run_faulty(
                    &RingModel {
                        packed,
                        ..model(16)
                    },
                    ring_nodes(16, 40, 3),
                    threads,
                    cfg(Scheduling::ActiveSet),
                    &adversary,
                )
                .unwrap();
                assert_eq!(run.outputs, baseline.outputs, "packed={packed} t={threads}");
                assert_eq!(run.metrics, baseline.metrics, "packed={packed} t={threads}");
            }
        }
    }

    #[test]
    fn trace_replay_is_bit_identical() {
        let spec = FaultSpec::seeded(21).drop(0.2).duplicate(0.1).delay(0.1, 2);
        let recorder = SeededAdversary::recording(spec);
        let recorded = run_faulty(
            &model(16),
            ring_nodes(16, 40, 3),
            4,
            cfg(Scheduling::ActiveSet),
            &recorder,
        )
        .unwrap();
        let trace = recorder.into_trace(16);
        assert!(trace.fault_count() > 0);
        let replayer = TraceAdversary::new(&trace);
        for threads in [1, 4] {
            let replay = run_faulty(
                &model(16),
                ring_nodes(16, 40, 3),
                threads,
                cfg(Scheduling::ActiveSet),
                &replayer,
            )
            .unwrap();
            assert_eq!(replay.outputs, recorded.outputs, "t={threads}");
            assert_eq!(replay.metrics, recorded.metrics, "t={threads}");
        }
    }

    #[test]
    fn crashing_terminated_or_unreached_actors_changes_nothing() {
        let clean = run_faulty(
            &model(8),
            ring_nodes(8, 3, 2),
            1,
            cfg(Scheduling::ActiveSet),
            &deliver_all(8),
        )
        .unwrap();
        // The token visits actors 1..=3; the run lasts 5 rounds. A
        // crash scheduled long after termination never activates.
        let mut late = deliver_all(8);
        late.crash[5] = Some(90);
        let unreached = run_faulty(
            &model(8),
            ring_nodes(8, 3, 2),
            1,
            cfg(Scheduling::ActiveSet),
            &late,
        )
        .unwrap();
        assert_eq!(unreached.outputs, clean.outputs);
        assert_eq!(unreached.metrics, clean.metrics);
        // Crashing an actor that already finished its part mid-run
        // alters nothing but the crash counter.
        let mut done = deliver_all(8);
        done.crash[1] = Some(4);
        let crashed_done = run_faulty(
            &model(8),
            ring_nodes(8, 3, 2),
            1,
            cfg(Scheduling::ActiveSet),
            &done,
        )
        .unwrap();
        assert_eq!(crashed_done.outputs, clean.outputs);
        assert_eq!(crashed_done.metrics.fault.crashed, 1);
        assert_eq!(crashed_done.metrics.messages, clean.metrics.messages);
        assert_eq!(crashed_done.metrics.rounds, clean.metrics.rounds);
    }

    #[test]
    fn crash_drops_in_flight_mail_and_terminates() {
        // Actor 3 halts at round 2; the token in flight toward it is
        // dropped and the ring goes quiet instead of wrapping forever.
        let mut adv = deliver_all(8);
        adv.crash[3] = Some(2);
        let run = run_faulty(
            &model(8),
            ring_nodes(8, 40, 2),
            2,
            cfg(Scheduling::ActiveSet),
            &adv,
        )
        .unwrap();
        assert_eq!(run.metrics.fault.crashed, 1);
        assert_eq!(run.metrics.fault.dropped, 1);
        assert_eq!(run.outputs[3], 0, "the victim never saw the token");
        assert!(run.metrics.rounds <= 4, "{:?}", run.metrics);
    }

    #[test]
    fn dropped_mail_is_charged_at_delivery_meaning_not_at_all() {
        let adv = ScriptAdversary {
            fate0: Fate::Drop,
            crash: vec![None; 8],
        };
        let run = run_faulty(
            &model(8),
            ring_nodes(8, 5, 2),
            1,
            cfg(Scheduling::ActiveSet),
            &adv,
        )
        .unwrap();
        assert_eq!(run.metrics.messages, 0, "dropped mail is never charged");
        assert_eq!(run.metrics.volume, 0);
        assert_eq!(run.metrics.fault.dropped, 1);
        assert_eq!(run.metrics.fault.delivered, 0);
        assert_eq!(run.outputs.iter().sum::<usize>(), 0);
    }

    #[test]
    fn duplicated_mail_is_charged_twice_and_delivered_twice() {
        let clean = run_faulty(
            &model(8),
            ring_nodes(8, 1, 2),
            1,
            cfg(Scheduling::ActiveSet),
            &deliver_all(8),
        )
        .unwrap();
        let adv = ScriptAdversary {
            fate0: Fate::Duplicate,
            crash: vec![None; 8],
        };
        let run = run_faulty(
            &model(8),
            ring_nodes(8, 1, 2),
            1,
            cfg(Scheduling::ActiveSet),
            &adv,
        )
        .unwrap();
        assert_eq!(run.metrics.fault.duplicated, 1);
        // Round 0 charges two copies of the origin's send.
        assert_eq!(run.metrics.profile[0], 2 * clean.metrics.profile[0]);
        assert_eq!(run.outputs[1], clean.outputs[1] + 1);
        assert_eq!(
            run.metrics.fault.delivered,
            clean.metrics.fault.delivered + 1
        );
    }

    #[test]
    fn delayed_mail_arrives_late_but_intact() {
        let clean = run_faulty(
            &model(8),
            ring_nodes(8, 3, 2),
            1,
            cfg(Scheduling::ActiveSet),
            &deliver_all(8),
        )
        .unwrap();
        let adv = ScriptAdversary {
            fate0: Fate::Delay(3),
            crash: vec![None; 8],
        };
        let run = run_faulty(
            &model(8),
            ring_nodes(8, 3, 2),
            1,
            cfg(Scheduling::ActiveSet),
            &adv,
        )
        .unwrap();
        assert_eq!(run.outputs, clean.outputs, "a delayed token still lands");
        assert_eq!(run.metrics.rounds, clean.metrics.rounds + 3);
        assert_eq!(run.metrics.fault.delayed, 1);
        assert_eq!(run.metrics.fault.delivered, clean.metrics.fault.delivered);
        assert_eq!(run.metrics.messages, clean.metrics.messages);
    }

    #[test]
    fn seeded_adversary_decisions_are_pure() {
        let spec = FaultSpec::seeded(99).drop(0.3).duplicate(0.2).delay(0.2, 4);
        let a = SeededAdversary::new(spec);
        let b = SeededAdversary::new(spec);
        for round in 0..20 {
            for from in 0..10 {
                for seq in 0..4 {
                    assert_eq!(a.fate(round, from, seq), b.fate(round, from, seq));
                    assert_eq!(a.fate(round, from, seq), a.fate(round, from, seq));
                }
            }
        }
        for actor in 0..64 {
            assert_eq!(a.crash_round(actor), b.crash_round(actor));
        }
    }

    #[test]
    fn fault_round_limit_error_matches_model() {
        // A 100% delay loop can still exceed a tight round budget.
        let adv = SeededAdversary::new(FaultSpec::seeded(3).delay(1.0, 8));
        let tight = KernelConfig {
            max_rounds: 2,
            scheduling: Scheduling::ActiveSet,
        };
        let err = run_faulty(&model(8), ring_nodes(8, 40, 2), 1, tight, &adv).unwrap_err();
        assert_eq!(err, RingError::RoundLimit { limit: 2 });
    }
}
