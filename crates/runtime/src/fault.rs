//! The adversarial execution plane: seeded fault injection with
//! deterministic replay.
//!
//! This module adds a third executor family next to
//! [`run_sequential`](crate::run_sequential) and
//! [`run_sharded`](crate::run_sharded): [`run_faulty`] drives the same
//! [`ExecModel`] round loop, but routes every validated message through
//! an [`Adversary`] that may **drop**, **duplicate**, or **delay** it,
//! and halts actors at adversary-chosen **crash** rounds. The plane
//! composes with both model wrappers (CONGEST and MPC) and with the
//! packed-codec exchange, because the interception happens at the
//! kernel's [`MsgSink`] layer — below the models, above the wire
//! representation.
//!
//! # Determinism and replay
//!
//! Every fault decision is a *pure function* of `(seed, round, sender,
//! seq)`, where `seq` is the sender's 0-based deliver index within the
//! round (outbox order — identical in every executor). No decision
//! depends on thread interleaving, so a run is exactly reproducible
//! from `(seed, FaultSpec)` at any thread count, and a recorded
//! [`FaultTrace`] replays bit-for-bit through [`TraceAdversary`].
//!
//! # Fault semantics
//!
//! * **Drop** — the message never traverses its link: it is not
//!   delivered *and not charged* (congestion/volume accounting happens
//!   at actual delivery; see [`MsgSink::deliver`]).
//! * **Duplicate** — two copies traverse the link in the same round and
//!   both are delivered (and both are charged).
//! * **Delay(d)** — the message is charged at its transmit round but
//!   parked in a deterministic delay queue and delivered `d` rounds
//!   late, after that round's fresh mail (queue order: park round, then
//!   shard, then sender, then outbox position).
//! * **Crash at round r** — the actor executes rounds `0..r` and then
//!   halts: it is never stepped again, counts as terminated, and every
//!   message that would reach it at round ≥ r is dropped in flight.
//!   Its output is collected from its last pre-crash state.
//!
//! Termination requires the usual quiescence **and** an empty delay
//! queue. A run the adversary starves into livelock ends with the
//! model's round-limit error, exactly like a diverging clean run.

use std::collections::HashMap;
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::probe::{NoopProbe, Probe, RoundObs};
use crate::{
    balanced_partition, outputs, split_by_bounds, ActorId, ExecModel, KernelConfig, MsgSink,
    PackedModel, RoundProfile, Run, Scheduling,
};

/// Probabilities are stored in parts-per-million so [`FaultSpec`] stays
/// `Copy + Eq + Hash`-able and every decision is exact integer
/// arithmetic.
pub const PPM: u32 = 1_000_000;

/// A seeded, declarative fault-injection plan.
///
/// All rates are parts-per-million of [`PPM`] (use the builder methods
/// to write them as probabilities). The drop/duplicate/delay rates
/// partition a single per-message roll, so their sum is clamped to
/// [`PPM`] with drop taking precedence, then duplicate, then delay.
///
/// ```
/// use pga_runtime::FaultSpec;
///
/// let spec = FaultSpec::seeded(42).drop(0.05).crash(0.01, 20);
/// assert_eq!(spec.drop_ppm, 50_000);
/// assert!(!spec.is_none());
/// assert!(FaultSpec::none().is_none());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct FaultSpec {
    /// Seed of every fault decision (message fates and crash rounds).
    pub seed: u64,
    /// Per-message drop rate, in parts per million.
    pub drop_ppm: u32,
    /// Per-message duplication rate, in parts per million.
    pub dup_ppm: u32,
    /// Per-message delay rate, in parts per million.
    pub delay_ppm: u32,
    /// Largest delay in rounds (a delayed message is held 1..=max_delay
    /// rounds); 0 behaves like 1.
    pub max_delay: u32,
    /// Per-actor crash probability, in parts per million.
    pub crash_ppm: u32,
    /// Crash rounds are drawn uniformly from `1..=crash_within` (an
    /// actor always executes round 0); 0 behaves like 1.
    pub crash_within: u32,
}

impl FaultSpec {
    /// The empty plan: every message is delivered, nothing crashes.
    /// Running under it is bit-identical to the clean executors.
    pub fn none() -> Self {
        Self::default()
    }

    /// An empty plan carrying `seed` (fates stay clean until a rate is
    /// set).
    pub fn seeded(seed: u64) -> Self {
        FaultSpec {
            seed,
            ..Self::default()
        }
    }

    /// Whether this plan can never alter a run.
    pub fn is_none(&self) -> bool {
        self.drop_ppm == 0 && self.dup_ppm == 0 && self.delay_ppm == 0 && self.crash_ppm == 0
    }

    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-message drop probability (`0.0..=1.0`).
    pub fn drop(mut self, p: f64) -> Self {
        self.drop_ppm = to_ppm(p);
        self
    }

    /// Sets the per-message duplication probability (`0.0..=1.0`).
    pub fn duplicate(mut self, p: f64) -> Self {
        self.dup_ppm = to_ppm(p);
        self
    }

    /// Sets the per-message delay probability and the largest delay in
    /// rounds.
    pub fn delay(mut self, p: f64, max_delay: u32) -> Self {
        self.delay_ppm = to_ppm(p);
        self.max_delay = max_delay;
        self
    }

    /// Sets the per-actor crash probability and the crash-round window
    /// (crashes are drawn from `1..=within`).
    pub fn crash(mut self, p: f64, within: u32) -> Self {
        self.crash_ppm = to_ppm(p);
        self.crash_within = within;
        self
    }
}

/// Converts a probability to clamped parts-per-million.
fn to_ppm(p: f64) -> u32 {
    (p.clamp(0.0, 1.0) * f64::from(PPM)).round() as u32
}

/// The adversary's verdict for one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Fate {
    /// Deliver normally next round.
    Deliver,
    /// Never deliver (and never charge).
    Drop,
    /// Deliver two copies next round (both charged).
    Duplicate,
    /// Deliver the given number of rounds late (≥ 1; charged at the
    /// transmit round).
    Delay(u32),
}

/// A deterministic fault oracle consulted by [`run_faulty`].
///
/// Implementations must be pure: the same arguments must always return
/// the same verdicts, independent of call order or thread interleaving
/// — that is what makes fault runs bit-identical across engines and
/// replayable from a recorded schedule. [`SeededAdversary`] derives its
/// verdicts from a [`FaultSpec`]; [`TraceAdversary`] replays a recorded
/// [`FaultTrace`].
pub trait Adversary: Sync {
    /// The fate of the `seq`-th message (0-based deliver index, outbox
    /// order) sent by actor `from` in `round`.
    fn fate(&self, round: u32, from: u32, seq: u32) -> Fate;

    /// The round at whose start `actor` halts (≥ 1), or `None` if it
    /// never crashes. Consulted once per actor at run start.
    fn crash_round(&self, actor: u32) -> Option<u32>;
}

/// SplitMix64 finalizer — the stateless mixing step behind every fault
/// decision key.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Collapses a decision coordinate into one well-mixed RNG seed.
fn decision_seed(seed: u64, tag: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut h = mix(seed ^ mix(tag));
    h = mix(h ^ a);
    h = mix(h ^ b);
    mix(h ^ c)
}

const TAG_MESSAGE: u64 = 0x6D73_675F_6661_7465; // "msg_fate"
const TAG_CRASH: u64 = 0x6372_6173_685F_7264; // "crash_rd"

/// The spec-driven [`Adversary`]: every verdict is drawn from a fresh
/// [`StdRng`] seeded by the mixed decision coordinate, so verdicts are
/// pure and thread-order independent. Optionally records every
/// non-[`Fate::Deliver`] verdict for later replay (see
/// [`SeededAdversary::recording`] / [`SeededAdversary::into_trace`]).
pub struct SeededAdversary {
    spec: FaultSpec,
    recorder: Option<Mutex<Vec<FaultEvent>>>,
}

impl SeededAdversary {
    /// An adversary executing `spec` without recording.
    pub fn new(spec: FaultSpec) -> Self {
        SeededAdversary {
            spec,
            recorder: None,
        }
    }

    /// An adversary executing `spec` that records every fault it
    /// inflicts; finish with [`SeededAdversary::into_trace`].
    pub fn recording(spec: FaultSpec) -> Self {
        SeededAdversary {
            spec,
            recorder: Some(Mutex::new(Vec::new())),
        }
    }

    /// The recorded schedule of a completed run over `actors` actors:
    /// all inflicted fault events (sorted by decision coordinate — the
    /// recording order is thread-dependent, the sorted set is not) plus
    /// the full crash table.
    pub fn into_trace(self, actors: usize) -> FaultTrace {
        let crashes = (0..actors)
            .map(|i| self.spec_crash_round(i as u32))
            .collect();
        let mut events = self
            .recorder
            .map(|m| m.into_inner().unwrap_or_else(|p| p.into_inner()))
            .unwrap_or_default();
        events.sort_by_key(|e| (e.round, e.from, e.seq));
        events.dedup();
        FaultTrace {
            spec: self.spec,
            events,
            crashes,
        }
    }

    fn spec_crash_round(&self, actor: u32) -> Option<u32> {
        if self.spec.crash_ppm == 0 {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(decision_seed(
            self.spec.seed,
            TAG_CRASH,
            u64::from(actor),
            0,
            0,
        ));
        if rng.random_range(0..PPM) < self.spec.crash_ppm {
            Some(1 + rng.random_range(0..self.spec.crash_within.max(1)))
        } else {
            None
        }
    }
}

impl Adversary for SeededAdversary {
    fn fate(&self, round: u32, from: u32, seq: u32) -> Fate {
        let s = &self.spec;
        if s.drop_ppm == 0 && s.dup_ppm == 0 && s.delay_ppm == 0 {
            return Fate::Deliver;
        }
        let mut rng = StdRng::seed_from_u64(decision_seed(
            s.seed,
            TAG_MESSAGE,
            u64::from(round),
            u64::from(from),
            u64::from(seq),
        ));
        // One roll partitioned into [drop | duplicate | delay | deliver].
        let roll = rng.random_range(0..PPM);
        let fate = if roll < s.drop_ppm {
            Fate::Drop
        } else if roll < s.drop_ppm.saturating_add(s.dup_ppm) {
            Fate::Duplicate
        } else if roll
            < s.drop_ppm
                .saturating_add(s.dup_ppm)
                .saturating_add(s.delay_ppm)
        {
            Fate::Delay(1 + rng.random_range(0..s.max_delay.max(1)))
        } else {
            Fate::Deliver
        };
        if fate != Fate::Deliver {
            if let Some(rec) = &self.recorder {
                rec.lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push(FaultEvent {
                        round,
                        from,
                        seq,
                        fate,
                    });
            }
        }
        fate
    }

    fn crash_round(&self, actor: u32) -> Option<u32> {
        self.spec_crash_round(actor)
    }
}

/// One recorded non-[`Fate::Deliver`] verdict, keyed by its decision
/// coordinate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Round the message was sent in.
    pub round: u32,
    /// Sending actor.
    pub from: u32,
    /// 0-based deliver index within the sender's round (outbox order).
    pub seq: u32,
    /// The inflicted fate.
    pub fate: Fate,
}

/// A complete recorded fault schedule: replaying it through
/// [`TraceAdversary`] re-executes the recorded run bit-for-bit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultTrace {
    /// The spec the schedule was drawn from (informational — replay
    /// never re-rolls it).
    pub spec: FaultSpec,
    /// Every inflicted fault, sorted by `(round, from, seq)`.
    pub events: Vec<FaultEvent>,
    /// The full crash table, indexed by actor (entry `i` is actor `i`'s
    /// crash round, if any).
    pub crashes: Vec<Option<u32>>,
}

impl FaultTrace {
    /// Total number of recorded fault events.
    pub fn fault_count(&self) -> usize {
        self.events.len()
    }
}

/// Replays a recorded [`FaultTrace`]: recorded coordinates get their
/// recorded fate, everything else is delivered clean.
pub struct TraceAdversary<'t> {
    events: HashMap<(u32, u32, u32), Fate>,
    crashes: &'t [Option<u32>],
}

impl<'t> TraceAdversary<'t> {
    /// An adversary replaying `trace`.
    pub fn new(trace: &'t FaultTrace) -> Self {
        TraceAdversary {
            events: trace
                .events
                .iter()
                .map(|e| ((e.round, e.from, e.seq), e.fate))
                .collect(),
            crashes: &trace.crashes,
        }
    }
}

impl Adversary for TraceAdversary<'_> {
    fn fate(&self, round: u32, from: u32, seq: u32) -> Fate {
        self.events
            .get(&(round, from, seq))
            .copied()
            .unwrap_or(Fate::Deliver)
    }

    fn crash_round(&self, actor: u32) -> Option<u32> {
        self.crashes.get(actor as usize).copied().flatten()
    }
}

/// Whole-run fault accounting, folded into the model metrics by
/// [`ExecModel::finish`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Message copies actually delivered (equals the metrics' message
    /// count: duplicates count twice, drops not at all, delayed once).
    pub delivered: u64,
    /// Messages dropped in flight — adversary drops plus messages
    /// addressed to an actor that is crashed at their delivery round.
    pub dropped: u64,
    /// Messages duplicated (each added one extra delivered copy).
    pub duplicated: u64,
    /// Messages delivered late.
    pub delayed: u64,
    /// Actors whose crash round fell inside the run.
    pub crashed: u64,
    /// Data frames retransmitted by the reliable executor (always 0 on
    /// the raw adversarial path).
    pub retransmitted: u64,
    /// Cumulative ack frames transmitted by the reliable executor.
    pub acks: u64,
    /// Links declared dead after exhausting the ARQ retry budget or
    /// losing an endpoint to a crash-induced sever.
    pub dead_links: u64,
    /// Phases that hit their timeout and fell back to a partial
    /// aggregate (set by the pipeline layer, not the kernel).
    pub degraded: u64,
}

impl FaultStats {
    /// Adds every counter of `other` into `self` — for merging the
    /// tallies of back-to-back phases into one run's worth.
    pub fn absorb(&mut self, other: &FaultStats) {
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.delayed += other.delayed;
        self.crashed += other.crashed;
        self.retransmitted += other.retransmitted;
        self.acks += other.acks;
        self.dead_links += other.dead_links;
        self.degraded += other.degraded;
    }
}

/// A message parked in the delay queue: joins `to`'s inbox for round
/// `consume_round`.
struct Parked<M: ExecModel> {
    consume_round: u32,
    to: u32,
    from: M::Id,
    msg: M::Msg,
}

/// Per-shard fault state, reused across rounds.
struct ShardFault<M: ExecModel> {
    /// Fresh deliveries of this round, in outbox order.
    out: Vec<(u32, M::Id, M::Msg)>,
    /// Messages parked this round.
    parked: Vec<Parked<M>>,
    stats: FaultStats,
    scratch: M::SendScratch,
}

impl<M: ExecModel> ShardFault<M> {
    fn new() -> Self {
        ShardFault {
            out: Vec::new(),
            parked: Vec::new(),
            stats: FaultStats::default(),
            scratch: M::SendScratch::default(),
        }
    }
}

/// The adversarial [`MsgSink`]: consults the [`Adversary`] per message
/// and stages survivors into the shard's delivery buffer (or the delay
/// queue), reporting the charged copy count back to the model.
struct FaultSink<'a, M: ExecModel> {
    adversary: &'a dyn Adversary,
    crash: &'a [Option<u32>],
    round: u32,
    /// The sender's running deliver index; reset per stepped actor.
    seq: u32,
    out: &'a mut Vec<(u32, M::Id, M::Msg)>,
    parked: &'a mut Vec<Parked<M>>,
    stats: &'a mut FaultStats,
}

impl<M: ExecModel> FaultSink<'_, M> {
    /// Whether `to` is crashed at (the start of) `round` — mail
    /// consumed then is dropped in flight.
    #[inline]
    fn dead_at(&self, to: usize, round: u32) -> bool {
        matches!(self.crash[to], Some(r) if r <= round)
    }
}

impl<M: ExecModel> MsgSink<M> for FaultSink<'_, M> {
    fn deliver(&mut self, _model: &M, to: M::Id, from: M::Id, msg: M::Msg) -> u32 {
        let seq = self.seq;
        self.seq += 1;
        let to_idx = to.index();
        match self.adversary.fate(self.round, from.index() as u32, seq) {
            Fate::Drop => {
                self.stats.dropped += 1;
                0
            }
            Fate::Deliver => {
                if self.dead_at(to_idx, self.round + 1) {
                    self.stats.dropped += 1;
                    return 0;
                }
                self.out.push((to_idx as u32, from, msg));
                1
            }
            Fate::Duplicate => {
                if self.dead_at(to_idx, self.round + 1) {
                    self.stats.dropped += 1;
                    return 0;
                }
                self.stats.duplicated += 1;
                self.out.push((to_idx as u32, from, msg.clone()));
                self.out.push((to_idx as u32, from, msg));
                2
            }
            Fate::Delay(d) => {
                let consume = self.round + 1 + d.max(1);
                if self.dead_at(to_idx, consume) {
                    self.stats.dropped += 1;
                    return 0;
                }
                self.stats.delayed += 1;
                self.parked.push(Parked {
                    consume_round: consume,
                    to: to_idx as u32,
                    from,
                    msg,
                });
                1
            }
        }
    }
}

/// Runs `nodes` to completion under `adversary` on the adversarial
/// executor.
///
/// Mechanically this is the sequential executor's round loop with the
/// sharded executor's parallel stepping grafted on: each round, up to
/// `threads` contiguous cost-balanced shards step their active actors
/// concurrently, staging surviving messages into per-shard buffers that
/// the driving thread merges **in shard order** — which is ascending
/// sender order, the sequential delivery order — before releasing any
/// delay-queue mail due this round. Fault decisions are pure functions
/// of `(round, sender, seq)`, so outputs, metrics, and errors are
/// **bit-identical at every thread count**, and a run under
/// [`FaultSpec::none`] is bit-identical to the clean executors.
///
/// Callers resolve `threads` (0 is treated as 1); the clean engines'
/// small-instance fallbacks apply at the call sites.
///
/// # Errors
///
/// Returns the model's error exactly like the clean executors: the
/// lowest-indexed actor's violation, or the round-limit error when the
/// budget runs out (which adversarially starved runs routinely do).
pub fn run_faulty<M>(
    model: &M,
    nodes: Vec<M::Node>,
    threads: usize,
    cfg: KernelConfig,
    adversary: &dyn Adversary,
) -> Result<Run<M::Output, M::Metrics>, M::Error>
where
    M: ExecModel,
    M::Node: Send,
    M::Msg: Send,
    M::Error: Send,
{
    #[allow(clippy::disallowed_methods)] // the probed twin of this wrapper
    run_faulty_probed(model, nodes, threads, cfg, adversary, &NoopProbe)
}

/// [`run_faulty`] with a [`Probe`] attached: identical outputs,
/// metrics, and errors (observer neutrality), plus per-round telemetry
/// including the round's fault-stat delta and the delay-queue depth
/// ([`Probe::on_fault_event`]). With [`NoopProbe`] this monomorphizes
/// to exactly [`run_faulty`].
///
/// # Errors
///
/// Returns the model's error like [`run_faulty`].
pub fn run_faulty_probed<M, P>(
    model: &M,
    nodes: Vec<M::Node>,
    threads: usize,
    cfg: KernelConfig,
    adversary: &dyn Adversary,
    probe: &P,
) -> Result<Run<M::Output, M::Metrics>, M::Error>
where
    M: ExecModel,
    M::Node: Send,
    M::Msg: Send,
    M::Error: Send,
    P: Probe,
{
    if model.packs() {
        run_faulty_inner(&PackedModel(model), nodes, threads, cfg, adversary, probe)
    } else {
        run_faulty_inner(model, nodes, threads, cfg, adversary, probe)
    }
}

/// The crash-aware sweep: crashed actors count as terminated and are
/// never stepped; everything else matches the clean kernel sweep
/// (including the active-set dormancy cache).
#[allow(clippy::too_many_arguments)]
pub(crate) fn sweep_faulty<M: ExecModel>(
    model: &M,
    nodes: &[M::Node],
    inboxes: &[Vec<(M::Id, M::Msg)>],
    crashed: &[bool],
    round: usize,
    scheduling: Scheduling,
    active: &mut [bool],
    dormant: &mut [bool],
) -> bool {
    let mut all_done = true;
    let mut in_flight = false;
    for (i, node) in nodes.iter().enumerate() {
        if crashed[i] {
            // Halted: terminated by definition, with no mail (messages
            // to crashed actors are dropped in flight).
            active[i] = false;
            continue;
        }
        let has_mail = !inboxes[i].is_empty();
        if dormant[i] && !has_mail {
            active[i] = false;
            continue;
        }
        let poll = model.poll(node, i, round);
        all_done &= poll.done;
        in_flight |= has_mail;
        match scheduling {
            Scheduling::ActiveSet => {
                active[i] = has_mail || !poll.skippable;
                dormant[i] = poll.done && poll.skippable && !has_mail;
            }
            Scheduling::FullSweep => active[i] = true,
        }
    }
    all_done && !in_flight
}

fn run_faulty_inner<M, P>(
    model: &M,
    mut nodes: Vec<M::Node>,
    threads: usize,
    cfg: KernelConfig,
    adversary: &dyn Adversary,
    probe: &P,
) -> Result<Run<M::Output, M::Metrics>, M::Error>
where
    M: ExecModel,
    M::Node: Send,
    M::Msg: Send,
    M::Error: Send,
    P: Probe,
{
    let n = nodes.len();
    let mut metrics = M::Metrics::default();
    model.pre_run(&nodes, &mut metrics)?;

    // The crash table is fixed up front (one pure oracle call per
    // actor), so in-flight mail to future crash victims can be dropped
    // at send time without any cross-round bookkeeping.
    let crash: Vec<Option<u32>> = (0..n).map(|i| adversary.crash_round(i as u32)).collect();
    let mut crashed = vec![false; n];

    let (bounds, costs) = if threads > 1 && n >= 2 * threads {
        let costs: Vec<u64> = nodes
            .iter()
            .enumerate()
            .map(|(i, node)| model.actor_cost(node, i))
            .collect();
        (balanced_partition(&costs, threads), costs)
    } else {
        (vec![0, n], Vec::new())
    };
    let num_shards = bounds.len() - 1;
    let run_start = P::ENABLED.then(std::time::Instant::now);
    if P::ENABLED {
        probe.on_run_start(n, &bounds, &costs);
    }

    let mut inboxes: Vec<Vec<(M::Id, M::Msg)>> = (0..n).map(|_| Vec::new()).collect();
    let mut staging: Vec<Vec<(M::Id, M::Msg)>> = (0..n).map(|_| Vec::new()).collect();
    let mut recv: Vec<usize> = if M::TRACK_RECV {
        vec![0; n]
    } else {
        Vec::new()
    };
    let mut active = vec![true; n];
    let mut dormant = vec![false; n];
    let mut shard_state: Vec<ShardFault<M>> = (0..num_shards).map(|_| ShardFault::new()).collect();
    let mut delay: Vec<Parked<M>> = Vec::new();
    let mut stats = FaultStats::default();
    // Previous round's cumulative fault snapshot, so the probe can be
    // handed per-round deltas (probed runs only).
    let mut fault_seen = FaultStats::default();
    let mut round = 0;
    let mut delivered: u64 = 0;
    let mut convergence = 0usize;

    loop {
        // Activate this round's crash set before the sweep, so freshly
        // crashed actors already count as terminated.
        for i in 0..n {
            if !crashed[i] && matches!(crash[i], Some(r) if (r as usize) <= round) {
                crashed[i] = true;
                stats.crashed += 1;
                debug_assert!(
                    inboxes[i].is_empty(),
                    "mail to a crash victim must be dropped in flight"
                );
            }
        }

        if sweep_faulty(
            model,
            &nodes,
            &inboxes,
            &crashed,
            round,
            cfg.scheduling,
            &mut active,
            &mut dormant,
        ) && delay.is_empty()
        {
            break;
        }
        if round >= cfg.max_rounds {
            return Err(model.round_limit_error(cfg.max_rounds));
        }

        let round_start = P::ENABLED.then(std::time::Instant::now);
        if P::ENABLED {
            probe.on_round_start(round);
        }

        // Phase A: shards step their active actors concurrently,
        // staging surviving messages per shard (single-sharded runs
        // step inline on the driving thread).
        let mut acc = RoundProfile::for_probe::<P>();
        if num_shards == 1 {
            let shard_start = P::ENABLED.then(std::time::Instant::now);
            let st = &mut shard_state[0];
            let mut sink = FaultSink::<M> {
                adversary,
                crash: &crash,
                round: round as u32,
                seq: 0,
                out: &mut st.out,
                parked: &mut st.parked,
                stats: &mut st.stats,
            };
            for (i, node) in nodes.iter_mut().enumerate() {
                if !active[i] {
                    continue;
                }
                sink.seq = 0;
                model.step(
                    node,
                    i,
                    round,
                    &inboxes[i],
                    &mut st.scratch,
                    &mut acc,
                    &mut sink,
                )?;
                // Consumed in place; the cleared buffer keeps its
                // capacity and becomes next round's staging after the
                // swap.
                inboxes[i].clear();
            }
            if P::ENABLED {
                probe.on_shard(
                    round,
                    0,
                    shard_start.map_or(0, |t| t.elapsed().as_nanos() as u64),
                    acc.messages,
                    acc.volume,
                );
            }
        } else {
            type ShardOut<M> = (Result<RoundProfile, <M as ExecModel>::Error>, u64);
            let shard_results: Vec<Option<ShardOut<M>>> = {
                let bounds = &bounds;
                let active = &active;
                let crash = &crash;
                std::thread::scope(|s| {
                    let handles: Vec<_> = split_by_bounds(&mut nodes, bounds)
                        .into_iter()
                        .zip(split_by_bounds(&mut inboxes, bounds))
                        .zip(shard_state.iter_mut())
                        .enumerate()
                        .map(|(si, ((shard_nodes, shard_inboxes), st))| {
                            let base = bounds[si];
                            let act = &active[base..bounds[si + 1]];
                            if !act.iter().any(|&a| a) {
                                return None;
                            }
                            Some(s.spawn(move || {
                                let shard_start = P::ENABLED.then(std::time::Instant::now);
                                let mut acc = RoundProfile::for_probe::<P>();
                                let mut sink = FaultSink::<M> {
                                    adversary,
                                    crash,
                                    round: round as u32,
                                    seq: 0,
                                    out: &mut st.out,
                                    parked: &mut st.parked,
                                    stats: &mut st.stats,
                                };
                                let mut stepped = Ok(());
                                for (k, node) in shard_nodes.iter_mut().enumerate() {
                                    if !act[k] {
                                        continue;
                                    }
                                    sink.seq = 0;
                                    if let Err(e) = model.step(
                                        node,
                                        base + k,
                                        round,
                                        &shard_inboxes[k],
                                        &mut st.scratch,
                                        &mut acc,
                                        &mut sink,
                                    ) {
                                        stepped = Err(e);
                                        break;
                                    }
                                    shard_inboxes[k].clear();
                                }
                                let ns = shard_start.map_or(0, |t| t.elapsed().as_nanos() as u64);
                                (stepped.map(|()| acc), ns)
                            }))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| {
                            h.map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                        })
                        .collect()
                })
            };
            // Lowest shard's error = lowest actor's error, exactly like
            // the clean sharded executor.
            for (si, r) in shard_results.into_iter().enumerate() {
                let Some((r, shard_ns)) = r else { continue };
                let p = r?;
                if P::ENABLED {
                    probe.on_shard(round, si, shard_ns, p.messages, p.volume);
                }
                acc.merge(&p);
            }
        }

        // Phase B (driving thread): merge shard buffers in shard order
        // — ascending sender order, the sequential delivery order —
        // then append delay-queue releases due next round.
        let exchange_start = P::ENABLED.then(std::time::Instant::now);
        let mut delivered_now = 0u64;
        for st in shard_state.iter_mut() {
            for (to, from, msg) in st.out.drain(..) {
                if M::TRACK_RECV {
                    recv[to as usize] += model.recv_charge(&msg);
                }
                staging[to as usize].push((from, msg));
                delivered_now += 1;
            }
            delay.append(&mut st.parked);
        }
        let consume = (round + 1) as u32;
        delay.retain_mut(|p| {
            if p.consume_round != consume {
                return true;
            }
            let msg = p.msg.clone();
            if M::TRACK_RECV {
                recv[p.to as usize] += model.recv_charge(&msg);
            }
            staging[p.to as usize].push((p.from, msg));
            delivered_now += 1;
            false
        });
        if P::ENABLED {
            probe.on_exchange(
                round,
                exchange_start.map_or(0, |t| t.elapsed().as_nanos() as u64),
            );
        }

        if M::TRACK_RECV {
            model.check_recv(&recv, round)?;
        }
        if delivered_now > 0 {
            // Mail staged now is consumed next round, so the plane can
            // only be quiet from the round after that.
            convergence = round + 2;
        }
        delivered += delivered_now;
        model.end_round(&acc, &recv, round, &mut metrics);
        if P::ENABLED {
            // Per-round fault tallies are the delta between this round's
            // cumulative snapshot and the last one handed to the probe.
            let mut now = FaultStats::default();
            for st in &shard_state {
                now.absorb(&st.stats);
            }
            now.crashed += stats.crashed;
            let delta = FaultStats {
                delivered: delivered_now,
                dropped: now.dropped - fault_seen.dropped,
                duplicated: now.duplicated - fault_seen.duplicated,
                delayed: now.delayed - fault_seen.delayed,
                crashed: now.crashed - fault_seen.crashed,
                ..FaultStats::default()
            };
            probe.on_fault_event(round, &delta, delay.len());
            fault_seen = now;
            probe.on_round_end(&RoundObs {
                round,
                wall_ns: round_start.map_or(0, |t| t.elapsed().as_nanos() as u64),
                messages: acc.messages,
                volume: acc.volume,
                peak_link: acc.peak_link,
                active: active.iter().filter(|&&a| a).count(),
                sizes: acc.sizes.as_deref(),
            });
        }
        if M::TRACK_RECV {
            recv.fill(0);
        }
        std::mem::swap(&mut inboxes, &mut staging);
        round += 1;
    }

    for st in &shard_state {
        stats.absorb(&st.stats);
    }
    // Every staged copy was charged at transmit (drops 0, duplicates 2,
    // delayed mail 1), and the run cannot end with a non-empty delay
    // queue, so this equals the models' whole-run message count.
    stats.delivered = delivered;
    model.finish(&mut metrics, &stats, convergence);
    if P::ENABLED {
        // Crashes activate at the top of the loop, so an actor whose
        // crash round is the quiescence check itself is tallied in the
        // metrics without any round having run. Hand the probe that
        // residual delta (only `crashed` can move between the last
        // round event and here) so its whole-run tally matches the
        // metrics.
        if stats.crashed > fault_seen.crashed {
            let residual = FaultStats {
                crashed: stats.crashed - fault_seen.crashed,
                ..FaultStats::default()
            };
            probe.on_fault_event(round, &residual, delay.len());
        }
        probe.on_run_end(
            round,
            run_start.map_or(0, |t| t.elapsed().as_nanos() as u64),
        );
    }
    Ok(Run {
        outputs: outputs(model, &nodes, round),
        metrics,
    })
}
