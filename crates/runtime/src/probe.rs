//! The kernel telemetry plane: zero-overhead round/shard probes and
//! structured trace emission.
//!
//! Every executor family ([`run_sequential`](crate::run_sequential),
//! [`run_sharded`](crate::run_sharded), and the adversarial
//! [`run_faulty`](crate::fault::run_faulty)) has a `*_probed` variant
//! that threads a [`Probe`] — a read-only trace sink — through the
//! round loop. The probe observes what each round and each shard
//! actually did (wall time, message counts, charged volume, delay-queue
//! depth, fault tallies) without being able to influence the run:
//!
//! * **Observer neutrality.** A probe only receives references; it
//!   cannot mutate actor state, metrics, or message flow. Outputs,
//!   metrics, and errors are bit-identical with any probe attached, at
//!   every thread count, on both message planes, clean or faulty
//!   (proptest-enforced in the simulator crates).
//! * **Zero overhead when disabled.** [`NoopProbe`] is a zero-sized
//!   type whose [`Probe::ENABLED`] is `false`; every timing read and
//!   every callback in the executors is gated on that associated
//!   `const`, so the disabled path monomorphizes to exactly the
//!   pre-probe code. The public non-`_probed` entry points are thin
//!   [`NoopProbe`] wrappers.
//! * **Driving-thread discipline.** All callbacks fire on the thread
//!   that drives the round loop (worker threads only *time* their own
//!   shard), so probes need no `Sync` bound and may use plain interior
//!   mutability ([`RecordingProbe`] and [`JsonlProbe`] use `RefCell`).
//!
//! Three implementations ship with the kernel: [`NoopProbe`] (the
//! default), [`RecordingProbe`] (in-memory [`RunTelemetry`] for tests
//! and programmatic analysis), and [`JsonlProbe`] (streams one JSON
//! object per round to a writer; activated per run via the `PGA_TRACE`
//! environment variable when [`RunConfig::probe`](crate::RunConfig) is
//! [`ProbeMode::Env`]). The `trace_view` binary of `pga-bench` reads
//! the JSONL stream back for top-k/histogram/imbalance summaries and
//! chrome://tracing export.

use std::cell::RefCell;
use std::io::Write;

use crate::fault::FaultStats;

/// Selects how the `run_cfg` entry points attach a trace sink.
///
/// Lives in [`RunConfig`](crate::RunConfig) (which stays `Copy + Eq`),
/// so probe *handles* are never part of the config — only the
/// activation policy is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ProbeMode {
    /// Honor the `PGA_TRACE` environment variable: when it names a
    /// path, the run streams a [`JsonlProbe`] trace there (appending,
    /// so multi-run processes produce one segmented file); when unset,
    /// the run uses [`NoopProbe`]. This is the default.
    #[default]
    Env,
    /// Never attach a trace sink, even when `PGA_TRACE` is set.
    Off,
}

/// Everything the executors report about one completed round, handed to
/// [`Probe::on_round_end`].
#[derive(Debug)]
pub struct RoundObs<'a> {
    /// 0-based index of the round that just executed.
    pub round: usize,
    /// Wall time of the whole round on the driving thread, in
    /// nanoseconds (0 when the probe is disabled).
    pub wall_ns: u64,
    /// Messages charged this round (copies actually traversing links).
    pub messages: u64,
    /// Total charged volume this round (bits for CONGEST, words for
    /// MPC).
    pub volume: u64,
    /// Largest single-message charge this round.
    pub peak_link: usize,
    /// Actors whose `round` callback ran this round.
    pub active: usize,
    /// Log-bucketed histogram of the charged message sizes this round,
    /// when the model records them (see
    /// [`RoundProfile::observe_size`](crate::RoundProfile::observe_size)).
    pub sizes: Option<&'a SizeHist>,
}

/// A read-only trace sink threaded through the `*_probed` executors.
///
/// All callbacks default to no-ops and fire **on the driving thread
/// only**, in a fixed per-round order: [`Probe::on_round_start`], then
/// one [`Probe::on_shard`] per stepped shard (ascending shard index),
/// then [`Probe::on_exchange`], then (fault executor only)
/// [`Probe::on_fault_event`], then [`Probe::on_round_end`].
/// [`Probe::on_run_start`] and [`Probe::on_run_end`] bracket the whole
/// run; a run that aborts with a model error ends without
/// `on_run_end`. The fault executor may additionally fire one trailing
/// [`Probe::on_fault_event`] right before `on_run_end`, carrying
/// crashes activated by the final quiescence check (no round ran for
/// them, so there is no `on_round_end` to attach them to).
///
/// The associated [`Probe::ENABLED`] const gates every timing read in
/// the executors: implementations that actually observe keep the
/// default `true`; [`NoopProbe`] overrides it to `false` so the
/// disabled path compiles down to the probe-free loop.
pub trait Probe {
    /// Whether the executors should measure wall times and invoke the
    /// callbacks at all. `false` monomorphizes the whole plane away.
    const ENABLED: bool = true;

    /// The run begins: `actors` actor states, partitioned at the
    /// boundary offsets `bounds` (`[0, n]` for single-shard runs), with
    /// per-actor costs `costs` (empty when the executor never computed
    /// them — single-shard runs).
    fn on_run_start(&self, _actors: usize, _bounds: &[usize], _costs: &[u64]) {}

    /// A round is about to step its actors.
    fn on_round_start(&self, _round: usize) {}

    /// One shard finished stepping: its wall time on its worker thread,
    /// plus the messages and charged volume its actors sent.
    fn on_shard(&self, _round: usize, _shard: usize, _wall_ns: u64, _msgs: u64, _volume: u64) {}

    /// The exchange (scatter/merge of staged messages into next round's
    /// inboxes) finished.
    fn on_exchange(&self, _round: usize, _wall_ns: u64) {}

    /// The fault executor's per-round tally: the fault-stat *delta* of
    /// this round and the delay-queue depth after the exchange.
    fn on_fault_event(&self, _round: usize, _delta: &FaultStats, _delay_depth: usize) {}

    /// The round completed (accounting folded into the model metrics).
    fn on_round_end(&self, _obs: &RoundObs<'_>) {}

    /// The run completed successfully after `rounds` rounds.
    fn on_run_end(&self, _rounds: usize, _wall_ns: u64) {}
}

/// The default probe: a zero-sized sink whose [`Probe::ENABLED`] is
/// `false`, so executors monomorphized with it contain no timing reads
/// and no callback calls — the probe-free code, exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopProbe;

impl Probe for NoopProbe {
    const ENABLED: bool = false;
}

/// A log-bucketed power-of-two histogram: bucket `k` counts values in
/// `[2^k, 2^(k+1))` (bucket 0 additionally holds 0). Used for message
/// sizes and per-round link load, where the spread is exponential and
/// exact values matter less than the distribution's shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SizeHist {
    /// `buckets[k]` counts observed values `v` with `floor(log2 v) == k`
    /// (and `v <= 1` for `k == 0`).
    pub buckets: [u64; 64],
}

impl Default for SizeHist {
    fn default() -> Self {
        SizeHist { buckets: [0; 64] }
    }
}

impl SizeHist {
    /// The bucket index of `value`: `floor(log2 value)`, with 0 and 1
    /// both in bucket 0.
    pub fn bucket_of(value: u64) -> usize {
        if value <= 1 {
            0
        } else {
            63 - value.leading_zeros() as usize
        }
    }

    /// The inclusive upper edge of bucket `k` (`2^(k+1) - 1`, saturated
    /// for the last bucket).
    pub fn bucket_upper(k: usize) -> u64 {
        if k >= 63 {
            u64::MAX
        } else {
            (1u64 << (k + 1)) - 1
        }
    }

    /// Records `copies` observations of `value`.
    pub fn record(&mut self, value: u64, copies: u64) {
        self.buckets[Self::bucket_of(value)] += copies;
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&c| c == 0)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &SizeHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// The inclusive upper edge of the bucket holding the `p`-th
    /// percentile observation (`p` in `0.0..=100.0`), or 0 when the
    /// histogram is empty. Log-bucketed, so the answer is exact to
    /// within a factor of two — the intended resolution.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 100.0) / 100.0) * total as f64)
            .ceil()
            .max(1.0) as u64;
        let mut seen = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(k);
            }
        }
        Self::bucket_upper(63)
    }

    /// The inclusive upper edge of the highest non-empty bucket, or 0.
    pub fn max_value(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, Self::bucket_upper)
    }
}

/// One shard's record within a round, as captured by
/// [`Probe::on_shard`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardTelemetry {
    /// Shard index.
    pub shard: usize,
    /// Wall time of the shard's step phase on its worker thread, in
    /// nanoseconds.
    pub wall_ns: u64,
    /// Messages the shard's actors sent (charged copies).
    pub messages: u64,
    /// Charged volume the shard's actors sent.
    pub volume: u64,
}

/// One round's record inside [`RunTelemetry`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundTelemetry {
    /// 0-based round index.
    pub round: usize,
    /// Wall time of the whole round on the driving thread, in
    /// nanoseconds.
    pub wall_ns: u64,
    /// Messages charged this round.
    pub messages: u64,
    /// Charged volume this round.
    pub volume: u64,
    /// Largest single-message charge this round.
    pub peak_link: usize,
    /// Actors stepped this round.
    pub active: usize,
    /// Wall time of the exchange phase, in nanoseconds (0 when the
    /// round had no exchange work).
    pub exchange_ns: u64,
    /// Per-shard records, ascending shard index (empty on single-shard
    /// rounds).
    pub shards: Vec<ShardTelemetry>,
    /// Delay-queue depth after the exchange (fault executor only).
    pub delay_depth: usize,
    /// This round's fault-stat delta (all zeros outside the fault
    /// executor).
    pub fault: FaultStats,
}

impl RoundTelemetry {
    /// The round's shard imbalance: `max/mean - 1` over the per-shard
    /// wall times (falling back to message counts when the wall times
    /// are all zero), or 0.0 with fewer than two shard records.
    pub fn shard_imbalance(&self) -> f64 {
        if self.shards.len() < 2 {
            return 0.0;
        }
        let walls: Vec<u64> = self.shards.iter().map(|s| s.wall_ns).collect();
        let vals = if walls.iter().any(|&w| w > 0) {
            walls
        } else {
            self.shards.iter().map(|s| s.messages).collect()
        };
        let max = *vals.iter().max().unwrap() as f64;
        let mean = vals.iter().sum::<u64>() as f64 / vals.len() as f64;
        if mean == 0.0 {
            0.0
        } else {
            max / mean - 1.0
        }
    }
}

/// The in-memory record a [`RecordingProbe`] accumulates.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunTelemetry {
    /// Number of actors in the run.
    pub actors: usize,
    /// Shard boundary offsets (`[0, n]` for single-shard runs).
    pub bounds: Vec<usize>,
    /// Per-actor costs the partition was balanced on (empty when the
    /// executor never computed them).
    pub costs: Vec<u64>,
    /// Per-round records, in execution order.
    pub rounds: Vec<RoundTelemetry>,
    /// Whole-run wall time in nanoseconds (set by `on_run_end`; 0 when
    /// the run aborted with an error).
    pub wall_ns: u64,
    /// Whether `on_run_end` fired (i.e. the run completed).
    pub completed: bool,
    /// Whole-run histogram of charged message sizes.
    pub sizes: SizeHist,
    /// Histogram of the per-round peak link charges (the congestion
    /// distribution over rounds).
    pub link_load: SizeHist,
    /// Whole-run fault tally (sum of the per-round deltas).
    pub fault: FaultStats,
}

impl RunTelemetry {
    /// The static partition imbalance: `max/mean - 1` over the total
    /// per-shard costs of the recorded partition, or 0.0 without a
    /// multi-shard cost-annotated partition.
    pub fn partition_imbalance(&self) -> f64 {
        if self.bounds.len() < 3 || self.costs.is_empty() {
            return 0.0;
        }
        let totals: Vec<u64> = self
            .bounds
            .windows(2)
            .map(|w| self.costs[w[0]..w[1]].iter().sum())
            .collect();
        let max = *totals.iter().max().unwrap() as f64;
        let mean = totals.iter().sum::<u64>() as f64 / totals.len() as f64;
        if mean == 0.0 {
            0.0
        } else {
            max / mean - 1.0
        }
    }
}

/// Per-round scratch a probe accumulates between `on_round_start` and
/// `on_round_end`.
#[derive(Debug, Default)]
struct PendingRound {
    shards: Vec<ShardTelemetry>,
    exchange_ns: u64,
    fault: FaultStats,
    delay_depth: usize,
}

/// An in-memory trace sink: accumulates a [`RunTelemetry`] for
/// programmatic inspection (tests, the overhead gate, notebooks).
///
/// Interior mutability is a plain `RefCell` — safe because every
/// callback fires on the driving thread (see [`Probe`]).
#[derive(Debug, Default)]
pub struct RecordingProbe {
    state: RefCell<(RunTelemetry, PendingRound)>,
}

impl RecordingProbe {
    /// An empty recording sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the probe and returns everything it recorded.
    pub fn into_telemetry(self) -> RunTelemetry {
        self.state.into_inner().0
    }
}

impl Probe for RecordingProbe {
    fn on_run_start(&self, actors: usize, bounds: &[usize], costs: &[u64]) {
        let mut s = self.state.borrow_mut();
        s.0.actors = actors;
        s.0.bounds = bounds.to_vec();
        s.0.costs = costs.to_vec();
    }

    fn on_shard(&self, _round: usize, shard: usize, wall_ns: u64, msgs: u64, volume: u64) {
        self.state.borrow_mut().1.shards.push(ShardTelemetry {
            shard,
            wall_ns,
            messages: msgs,
            volume,
        });
    }

    fn on_exchange(&self, _round: usize, wall_ns: u64) {
        self.state.borrow_mut().1.exchange_ns = wall_ns;
    }

    fn on_fault_event(&self, _round: usize, delta: &FaultStats, delay_depth: usize) {
        let mut s = self.state.borrow_mut();
        s.1.fault = *delta;
        s.1.delay_depth = delay_depth;
    }

    fn on_round_end(&self, obs: &RoundObs<'_>) {
        let mut s = self.state.borrow_mut();
        let pending = std::mem::take(&mut s.1);
        if let Some(h) = obs.sizes {
            s.0.sizes.merge(h);
        }
        s.0.link_load.record(obs.peak_link as u64, 1);
        {
            let f = &mut s.0.fault;
            f.delivered += pending.fault.delivered;
            f.dropped += pending.fault.dropped;
            f.duplicated += pending.fault.duplicated;
            f.delayed += pending.fault.delayed;
            f.crashed += pending.fault.crashed;
            f.retransmitted += pending.fault.retransmitted;
            f.acks += pending.fault.acks;
            f.dead_links += pending.fault.dead_links;
            f.degraded += pending.fault.degraded;
        }
        s.0.rounds.push(RoundTelemetry {
            round: obs.round,
            wall_ns: obs.wall_ns,
            messages: obs.messages,
            volume: obs.volume,
            peak_link: obs.peak_link,
            active: obs.active,
            exchange_ns: pending.exchange_ns,
            shards: pending.shards,
            delay_depth: pending.delay_depth,
            fault: pending.fault,
        });
    }

    fn on_run_end(&self, _rounds: usize, wall_ns: u64) {
        let mut s = self.state.borrow_mut();
        // A trailing fault event (crashes activated by the final
        // quiescence check, after the last round ran) parks in the
        // pending scratch; fold it in so the run tally matches the
        // metrics' whole-run `FaultStats`.
        let residual = std::mem::take(&mut s.1).fault;
        s.0.fault.delivered += residual.delivered;
        s.0.fault.dropped += residual.dropped;
        s.0.fault.duplicated += residual.duplicated;
        s.0.fault.delayed += residual.delayed;
        s.0.fault.crashed += residual.crashed;
        s.0.fault.retransmitted += residual.retransmitted;
        s.0.fault.acks += residual.acks;
        s.0.fault.dead_links += residual.dead_links;
        s.0.fault.degraded += residual.degraded;
        s.0.wall_ns = wall_ns;
        s.0.completed = true;
    }
}

/// Streams one JSON object per event to a writer, newline-delimited
/// (JSONL). The schema (also documented in the README and validated by
/// `trace_view --validate`):
///
/// ```json
/// {"event":"run_start","label":"congest","actors":64,"shards":4,"bounds":[0,16,32,48,64]}
/// {"event":"round","round":0,"wall_ns":8120,"messages":12,"volume":384,
///  "peak_link":32,"active":64,"exchange_ns":950,"delay_depth":0,
///  "shards":[{"shard":0,"wall_ns":2100,"messages":3,"volume":96}],
///  "sizes":[[5,12]],
///  "fault":{"dropped":1,"duplicated":0,"delayed":0,"crashed":0}}
/// {"event":"run_end","rounds":11,"wall_ns":913000}
/// ```
///
/// `shards`, `sizes`, and `fault` are omitted when empty/all-zero. A
/// `run_end` record may also carry a `fault` object: the residual delta
/// of crashes activated by the final quiescence check (after the last
/// round ran). Under the reliable executor the `fault` object also
/// carries `"retransmitted"`, `"acks"`, and `"dead_links"` counters
/// (omitted as a trio when all zero, so raw-path traces are unchanged):
///
/// ```json
/// {"event":"round","round":3,"wall_ns":9001,"messages":18,"volume":600,
///  "peak_link":40,"active":64,"exchange_ns":800,"delay_depth":0,
///  "fault":{"dropped":2,"duplicated":0,"delayed":0,"crashed":0,
///           "retransmitted":2,"acks":14,"dead_links":0}}
/// ```
/// Write errors are swallowed (a trace sink must never abort a run);
/// the writer is flushed at `on_run_end`.
#[derive(Debug)]
pub struct JsonlProbe<W: Write> {
    label: String,
    state: RefCell<(W, PendingRound)>,
}

impl JsonlProbe<std::io::BufWriter<std::fs::File>> {
    /// A probe appending to the path named by the `PGA_TRACE`
    /// environment variable, or `None` when the variable is unset,
    /// empty, or the file cannot be opened.
    pub fn from_env(label: &str) -> Option<Self> {
        let path = std::env::var("PGA_TRACE").ok().filter(|p| !p.is_empty())?;
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .ok()?;
        Some(JsonlProbe::new(std::io::BufWriter::new(file), label))
    }

    /// [`JsonlProbe::from_env`] gated on the config's
    /// [`ProbeMode`]: `Env` consults `PGA_TRACE`, `Off` always returns
    /// `None`. The simulators' `run_cfg` entry points call this.
    pub fn from_run_config(cfg: &crate::RunConfig, label: &str) -> Option<Self> {
        match cfg.probe {
            ProbeMode::Env => Self::from_env(label),
            ProbeMode::Off => None,
        }
    }
}

impl<W: Write> JsonlProbe<W> {
    /// A probe streaming to `out`, tagging its `run_start` event with
    /// `label` (conventionally the model family: `"congest"`, `"mpc"`).
    pub fn new(out: W, label: &str) -> Self {
        JsonlProbe {
            label: label.to_string(),
            state: RefCell::new((out, PendingRound::default())),
        }
    }

    /// Consumes the probe and returns the writer (flushed).
    pub fn into_writer(self) -> W {
        let (mut out, _) = self.state.into_inner();
        let _ = out.flush();
        out
    }

    fn emit(&self, line: &str) {
        let mut s = self.state.borrow_mut();
        let _ = writeln!(s.0, "{line}");
    }
}

/// Minimal JSON string escaping for the probe's label field.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl<W: Write> Probe for JsonlProbe<W> {
    fn on_run_start(&self, actors: usize, bounds: &[usize], _costs: &[u64]) {
        let bounds_json = bounds
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(",");
        self.emit(&format!(
            "{{\"event\":\"run_start\",\"label\":\"{}\",\"actors\":{},\"shards\":{},\"bounds\":[{}]}}",
            esc(&self.label),
            actors,
            bounds.len().saturating_sub(1),
            bounds_json
        ));
    }

    fn on_shard(&self, _round: usize, shard: usize, wall_ns: u64, msgs: u64, volume: u64) {
        self.state.borrow_mut().1.shards.push(ShardTelemetry {
            shard,
            wall_ns,
            messages: msgs,
            volume,
        });
    }

    fn on_exchange(&self, _round: usize, wall_ns: u64) {
        self.state.borrow_mut().1.exchange_ns = wall_ns;
    }

    fn on_fault_event(&self, _round: usize, delta: &FaultStats, delay_depth: usize) {
        let mut s = self.state.borrow_mut();
        s.1.fault = *delta;
        s.1.delay_depth = delay_depth;
    }

    fn on_round_end(&self, obs: &RoundObs<'_>) {
        let pending = std::mem::take(&mut self.state.borrow_mut().1);
        let mut line = format!(
            "{{\"event\":\"round\",\"round\":{},\"wall_ns\":{},\"messages\":{},\
             \"volume\":{},\"peak_link\":{},\"active\":{},\"exchange_ns\":{},\
             \"delay_depth\":{}",
            obs.round,
            obs.wall_ns,
            obs.messages,
            obs.volume,
            obs.peak_link,
            obs.active,
            pending.exchange_ns,
            pending.delay_depth
        );
        if !pending.shards.is_empty() {
            line.push_str(",\"shards\":[");
            for (i, sh) in pending.shards.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push_str(&format!(
                    "{{\"shard\":{},\"wall_ns\":{},\"messages\":{},\"volume\":{}}}",
                    sh.shard, sh.wall_ns, sh.messages, sh.volume
                ));
            }
            line.push(']');
        }
        if let Some(h) = obs.sizes.filter(|h| !h.is_empty()) {
            line.push_str(",\"sizes\":[");
            let mut first = true;
            for (k, &c) in h.buckets.iter().enumerate() {
                if c > 0 {
                    if !first {
                        line.push(',');
                    }
                    first = false;
                    line.push_str(&format!("[{k},{c}]"));
                }
            }
            line.push(']');
        }
        let f = &pending.fault;
        if let Some(obj) = fault_json(f) {
            line.push_str(&format!(",\"fault\":{obj}"));
        }
        line.push('}');
        self.emit(&line);
    }

    fn on_run_end(&self, rounds: usize, wall_ns: u64) {
        // Crashes activated by the final quiescence check arrive as a
        // trailing fault event with no round to attach to; surface them
        // on the run_end record (optional field, all-zero omitted).
        let residual = std::mem::take(&mut self.state.borrow_mut().1).fault;
        let mut line = format!("{{\"event\":\"run_end\",\"rounds\":{rounds},\"wall_ns\":{wall_ns}");
        if let Some(obj) = fault_json(&residual) {
            line.push_str(&format!(",\"fault\":{obj}"));
        }
        line.push('}');
        self.emit(&line);
        let _ = self.state.borrow_mut().0.flush();
    }
}

/// Renders a fault-stat delta as its trace-record JSON object, or
/// `None` when every counter is zero (field omitted). The base quartet
/// is always present when the object is; the ARQ trio
/// (`retransmitted`/`acks`/`dead_links`) is appended only when the
/// reliable executor produced any, so raw-path traces keep the
/// pre-reliability shape byte for byte.
fn fault_json(f: &FaultStats) -> Option<String> {
    let base = f.dropped + f.duplicated + f.delayed + f.crashed;
    let arq = f.retransmitted + f.acks + f.dead_links;
    if base + arq == 0 {
        return None;
    }
    let mut obj = format!(
        "{{\"dropped\":{},\"duplicated\":{},\"delayed\":{},\"crashed\":{}",
        f.dropped, f.duplicated, f.delayed, f.crashed
    );
    if arq > 0 {
        obj.push_str(&format!(
            ",\"retransmitted\":{},\"acks\":{},\"dead_links\":{}",
            f.retransmitted, f.acks, f.dead_links
        ));
    }
    obj.push('}');
    Some(obj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_hist_buckets_and_percentiles() {
        assert_eq!(SizeHist::bucket_of(0), 0);
        assert_eq!(SizeHist::bucket_of(1), 0);
        assert_eq!(SizeHist::bucket_of(2), 1);
        assert_eq!(SizeHist::bucket_of(3), 1);
        assert_eq!(SizeHist::bucket_of(4), 2);
        assert_eq!(SizeHist::bucket_of(u64::MAX), 63);
        assert_eq!(SizeHist::bucket_upper(0), 1);
        assert_eq!(SizeHist::bucket_upper(2), 7);
        assert_eq!(SizeHist::bucket_upper(63), u64::MAX);

        let mut h = SizeHist::default();
        assert!(h.is_empty());
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.max_value(), 0);
        // 90 small values, 10 large: p50 in the small bucket, p99 in
        // the large one.
        h.record(3, 90);
        h.record(1000, 10);
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile(50.0), 3);
        assert_eq!(h.percentile(99.0), 1023);
        assert_eq!(h.max_value(), 1023);

        let mut other = SizeHist::default();
        other.record(3, 10);
        h.merge(&other);
        assert_eq!(h.count(), 110);
    }

    #[test]
    fn recording_probe_orders_rounds_and_shards() {
        let probe = RecordingProbe::new();
        probe.on_run_start(8, &[0, 4, 8], &[1, 1, 1, 1, 1, 1, 1, 1]);
        probe.on_round_start(0);
        probe.on_shard(0, 0, 100, 3, 30);
        probe.on_shard(0, 1, 200, 1, 10);
        probe.on_exchange(0, 50);
        let mut sizes = SizeHist::default();
        sizes.record(10, 4);
        probe.on_round_end(&RoundObs {
            round: 0,
            wall_ns: 400,
            messages: 4,
            volume: 40,
            peak_link: 10,
            active: 8,
            sizes: Some(&sizes),
        });
        probe.on_run_end(1, 1000);
        let t = probe.into_telemetry();
        assert!(t.completed);
        assert_eq!(t.actors, 8);
        assert_eq!(t.bounds, vec![0, 4, 8]);
        assert_eq!(t.rounds.len(), 1);
        let r = &t.rounds[0];
        assert_eq!(r.shards.len(), 2);
        assert_eq!(r.exchange_ns, 50);
        assert_eq!(r.messages, 4);
        assert_eq!(t.sizes.count(), 4);
        assert_eq!(t.link_load.count(), 1);
        // max wall 200 vs mean 150 -> 1/3 imbalance.
        assert!((r.shard_imbalance() - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(t.partition_imbalance(), 0.0);
    }

    #[test]
    fn partition_imbalance_reflects_cost_skew() {
        let probe = RecordingProbe::new();
        // Shard 0 carries 3x the cost of shard 1.
        probe.on_run_start(4, &[0, 2, 4], &[3, 3, 1, 1]);
        probe.on_run_end(0, 0);
        let t = probe.into_telemetry();
        // totals [6, 2], mean 4, max 6 -> 0.5.
        assert!((t.partition_imbalance() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn jsonl_probe_emits_one_line_per_event() {
        let probe = JsonlProbe::new(Vec::new(), "test");
        probe.on_run_start(4, &[0, 4], &[]);
        probe.on_round_end(&RoundObs {
            round: 0,
            wall_ns: 10,
            messages: 2,
            volume: 20,
            peak_link: 10,
            active: 4,
            sizes: None,
        });
        probe.on_run_end(1, 99);
        let out = String::from_utf8(probe.into_writer()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"event\":\"run_start\""));
        assert!(lines[0].contains("\"label\":\"test\""));
        assert!(lines[1].contains("\"event\":\"round\""));
        assert!(!lines[1].contains("\"shards\""), "{}", lines[1]);
        assert!(!lines[1].contains("\"fault\""), "{}", lines[1]);
        assert!(lines[2].contains("\"rounds\":1"));
    }

    #[test]
    fn fault_delta_reaches_round_record() {
        let probe = RecordingProbe::new();
        probe.on_round_start(0);
        probe.on_fault_event(
            0,
            &FaultStats {
                delivered: 5,
                dropped: 2,
                duplicated: 1,
                delayed: 1,
                ..FaultStats::default()
            },
            3,
        );
        probe.on_round_end(&RoundObs {
            round: 0,
            wall_ns: 0,
            messages: 5,
            volume: 50,
            peak_link: 10,
            active: 4,
            sizes: None,
        });
        let t = probe.into_telemetry();
        assert_eq!(t.rounds[0].fault.dropped, 2);
        assert_eq!(t.rounds[0].delay_depth, 3);
        assert_eq!(t.fault.dropped, 2);
    }
}
