//! Theorem 28: a randomized `O(log Δ)`-approximation for `G²`-MDS in
//! `poly log n` CONGEST rounds.
//!
//! The algorithm simulates \[CD18\] on `G²` while communicating on `G`. The
//! congestion obstacle is that a vertex cannot exactly count uncovered
//! vertices in its 2-hop neighborhood, nor exactly count votes arriving
//! from 2 hops away; both counts are replaced by the Lemma-29 exponential
//! estimator ([`crate::mds::estimator`]). Each phase of the simulated
//! algorithm costs `O(log n)` rounds:
//!
//! * **A. density estimation** (`2r+1` rounds) — every uncovered vertex
//!   participates in the estimator; every vertex `v` obtains
//!   `d̃_v ≈ |N²[v] ∩ U|` and its rounded density `ρ̃_v`;
//! * **B. candidate selection** (4 rounds) — max-forwarding of `ρ̃` over
//!   four hops; vertices locally maximal within `N⁴` stand;
//! * **C. rank spread** (2 rounds) — candidates draw ranks in `[n⁴]`;
//!   min-forwarding tells every uncovered vertex its best covering
//!   candidate;
//! * **D. vote estimation** (`2r` rounds) — voters run the estimator *per
//!   candidate in parallel*: intermediate vertices forward, to each
//!   neighboring candidate, only that candidate's minimum (the paper's
//!   congestion-avoiding trick — min-aggregation is idempotent, so
//!   duplicate relays are harmless);
//! * **E. join + cover** (3 rounds) — candidates whose estimated votes
//!   reach a constant fraction of their estimated coverage join the
//!   dominating set; a 1-bit wave marks everything within 2 hops covered.
//!
//! The vote threshold is `d̃/10` rather than the exact-count `|C_v|/8`,
//! absorbing the `(1 ± ε)` estimation slack; the candidate with the
//! globally smallest rank still always passes it w.h.p., so every phase
//! makes progress exactly as in \[CD18\].

use crate::mds::estimator::{estimate_from_minima, exp_sample};
use pga_congest::{
    Algorithm, Ctx, Engine, Metrics, MsgCodec, MsgSize, RunConfig, SimError, Simulator,
};
use pga_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

/// Messages of the Theorem 28 simulation.
#[derive(Clone, Debug)]
pub(crate) enum MdsMsg {
    /// Phase A: an `Exp(1)` sample from an uncovered vertex.
    EstSample(f64),
    /// Phase A: the 1-hop minimum, relayed.
    EstMin(f64),
    /// Phase B: the largest rounded density heard so far.
    RhoMax(u64),
    /// Phase C: a candidate's `(rank, id)`, direct or relayed minimum.
    CandRank(u64, u32),
    /// Phase D: a voter's sample, tagged with its chosen candidate.
    VoteSample(u32, f64),
    /// Phase D: the per-candidate minimum, relayed to that candidate.
    VoteRelay(f64),
    /// Phase E: "I joined the dominating set."
    Joined,
    /// Phase E: "some neighbor of mine joined" (2-hop coverage wave).
    CoverRelay,
}

impl MsgSize for MdsMsg {
    fn size_bits(&self, id_bits: usize) -> usize {
        3 + match self {
            MdsMsg::EstSample(_) | MdsMsg::EstMin(_) | MdsMsg::VoteRelay(_) => 64,
            MdsMsg::RhoMax(_) => 2 * id_bits + 1,
            MdsMsg::CandRank(_, _) => 5 * id_bits,
            MdsMsg::VoteSample(_, _) => id_bits + 64,
            MdsMsg::Joined | MdsMsg::CoverRelay => 0,
        }
    }
}

// Packed layout (u128): bits 0..3 tag (eight arms exactly fill it); a
// 64-bit payload (f64 bit pattern, rank, or density) in bits 3..67 and
// a 32-bit id in bits 67..99 where the arm carries one. `f64::to_bits`
// round-trips every pattern exactly, NaN payloads included.
impl MsgCodec for MdsMsg {
    type Word = u128;

    fn encode(&self) -> u128 {
        match self {
            MdsMsg::EstSample(x) => u128::from(x.to_bits()) << 3,
            MdsMsg::EstMin(x) => 1 | (u128::from(x.to_bits()) << 3),
            MdsMsg::RhoMax(rho) => 2 | (u128::from(*rho) << 3),
            MdsMsg::CandRank(rank, id) => 3 | (u128::from(*rank) << 3) | (u128::from(*id) << 67),
            MdsMsg::VoteSample(cand, x) => {
                4 | (u128::from(x.to_bits()) << 3) | (u128::from(*cand) << 67)
            }
            MdsMsg::VoteRelay(x) => 5 | (u128::from(x.to_bits()) << 3),
            MdsMsg::Joined => 6,
            MdsMsg::CoverRelay => 7,
        }
    }

    fn decode(word: u128) -> Self {
        let payload = (word >> 3) as u64;
        let id = (word >> 67) as u32;
        match word & 0x7 {
            0 => MdsMsg::EstSample(f64::from_bits(payload)),
            1 => MdsMsg::EstMin(f64::from_bits(payload)),
            2 => MdsMsg::RhoMax(payload),
            3 => MdsMsg::CandRank(payload, id),
            4 => MdsMsg::VoteSample(id, f64::from_bits(payload)),
            5 => MdsMsg::VoteRelay(f64::from_bits(payload)),
            6 => MdsMsg::Joined,
            _ => MdsMsg::CoverRelay,
        }
    }
}

pub(crate) struct Theorem28Node {
    r: usize,
    rng: StdRng,
    covered: bool,
    in_ds: bool,

    // Phase A state.
    est_min1: f64,
    est_pending2: f64,
    est_minima: Vec<f64>,
    d_tilde: f64,
    rho: u64,

    // Phase B state.
    known_max: u64,
    is_candidate: bool,

    // Phase C state.
    my_rank: u64,
    /// Best (rank, id) covering candidate seen.
    best_candidate: Option<(u64, u32)>,
    /// Neighbors that announced candidacy (targets for vote relays).
    candidate_neighbors: Vec<NodeId>,

    // Phase D state.
    vote_bucket: f64,
    vote_minima: Vec<f64>,

    // Phase E staging.
    heard_joined: bool,
}

impl Theorem28Node {
    fn new(r: usize, seed: u64, id: usize) -> Self {
        Theorem28Node {
            r,
            rng: StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0xd1b54a32d192ed03)),
            covered: false,
            in_ds: false,
            est_min1: f64::INFINITY,
            est_pending2: f64::INFINITY,
            est_minima: Vec::new(),
            d_tilde: 0.0,
            rho: 0,
            known_max: 0,
            is_candidate: false,
            my_rank: 0,
            best_candidate: None,
            candidate_neighbors: Vec::new(),
            vote_bucket: f64::INFINITY,
            vote_minima: Vec::new(),
            heard_joined: false,
        }
    }

    /// Iteration length in rounds: phases A (2r+1), B (4), C (2), D (2r),
    /// E (3).
    fn iteration_len(&self) -> usize {
        4 * self.r + 10
    }
}

impl Algorithm for Theorem28Node {
    type Msg = MdsMsg;
    type Output = bool;

    fn round(&mut self, ctx: &Ctx, inbox: &[(NodeId, MdsMsg)]) -> Vec<(NodeId, MdsMsg)> {
        let r = self.r;
        let len = self.iteration_len();
        let t = ctx.round % len;
        let mut out = Vec::new();

        // ---- Ingest according to the sub-phase the *senders* were in.
        let mut vote_groups: HashMap<u32, f64> = HashMap::new();
        for (from, msg) in inbox {
            match msg {
                MdsMsg::EstSample(w) => self.est_min1 = self.est_min1.min(*w),
                MdsMsg::EstMin(w) => self.est_pending2 = self.est_pending2.min(*w),
                MdsMsg::RhoMax(m) => self.known_max = self.known_max.max(*m),
                MdsMsg::CandRank(rank, id) => {
                    let key = (*rank, *id);
                    if self.best_candidate.is_none_or(|b| key < b) {
                        self.best_candidate = Some(key);
                    }
                    // Direct announcements (phase C round 1) identify
                    // candidate neighbors; relays share the tag but carry
                    // id ≠ sender, so check.
                    if id == &from.0 && !self.candidate_neighbors.contains(from) {
                        self.candidate_neighbors.push(*from);
                    }
                }
                MdsMsg::VoteSample(cand, w) => {
                    let e = vote_groups.entry(*cand).or_insert(f64::INFINITY);
                    *e = e.min(*w);
                }
                MdsMsg::VoteRelay(w) => {
                    self.vote_bucket = self.vote_bucket.min(*w);
                }
                MdsMsg::Joined => {
                    self.covered = true;
                    self.heard_joined = true;
                }
                MdsMsg::CoverRelay => {
                    self.covered = true;
                }
            }
        }
        // Per-candidate mins: merge own, relay the rest.
        if !vote_groups.is_empty() {
            for (cand, w) in vote_groups {
                if cand == ctx.id.0 {
                    self.vote_bucket = self.vote_bucket.min(w);
                } else {
                    let c = NodeId(cand);
                    if self.candidate_neighbors.contains(&c) {
                        out.push((c, MdsMsg::VoteRelay(w)));
                    }
                }
            }
        }

        // ---- Act according to our own sub-phase.
        if t == 0 {
            // Iteration reset.
            self.est_minima.clear();
            self.est_min1 = f64::INFINITY;
            self.est_pending2 = f64::INFINITY;
            self.known_max = 0;
            self.is_candidate = false;
            self.best_candidate = None;
            self.candidate_neighbors.clear();
            self.vote_minima.clear();
            self.vote_bucket = f64::INFINITY;
            self.heard_joined = false;
        }

        if t <= 2 * r {
            // Phase A: estimation of |N²[v] ∩ U|.
            if t.is_multiple_of(2) {
                if t > 0 {
                    // Close sample j = t/2 - 1 (EstMin relays ingested).
                    self.est_minima.push(self.est_pending2);
                    self.est_pending2 = f64::INFINITY;
                }
                if t < 2 * r && !self.covered {
                    let w = exp_sample(&mut self.rng);
                    self.est_min1 = w;
                    for &v in ctx.graph_neighbors {
                        out.push((v, MdsMsg::EstSample(w)));
                    }
                }
                if t == 2 * r {
                    // Phase A done: compute the rounded density.
                    self.d_tilde = estimate_from_minima(&self.est_minima);
                    let dr = self.d_tilde.round() as u64;
                    self.rho = if dr == 0 { 0 } else { dr.next_power_of_two() };
                    self.known_max = self.rho;
                }
            } else {
                // Relay the 1-hop minimum.
                let m1 = self.est_min1;
                self.est_pending2 = self.est_pending2.min(m1);
                self.est_min1 = f64::INFINITY;
                if m1.is_finite() {
                    for &v in ctx.graph_neighbors {
                        out.push((v, MdsMsg::EstMin(m1)));
                    }
                }
            }
        } else if t <= 2 * r + 4 {
            // Phase B: max-forward ρ̃ for 4 rounds (t = 2r+1 .. 2r+4).
            if self.known_max > 0 {
                for &v in ctx.graph_neighbors {
                    out.push((v, MdsMsg::RhoMax(self.known_max)));
                }
            }
        } else if t == 2 * r + 5 {
            // Phase C round 1: candidacy and rank announcement. The final
            // RhoMax wave was ingested at the top of this round.
            self.is_candidate = self.rho > 0 && self.rho >= self.known_max;
            if self.is_candidate {
                self.my_rank = self.rng.random();
                let key = (self.my_rank, ctx.id.0);
                if self.best_candidate.is_none_or(|b| key < b) {
                    self.best_candidate = Some(key);
                }
                for &v in ctx.graph_neighbors {
                    out.push((v, MdsMsg::CandRank(self.my_rank, ctx.id.0)));
                }
            }
        } else if t == 2 * r + 6 {
            // Phase C round 2: relay the best (rank, id) seen.
            if let Some((rank, id)) = self.best_candidate {
                for &v in ctx.graph_neighbors {
                    out.push((v, MdsMsg::CandRank(rank, id)));
                }
            }
        } else if t >= 2 * r + 7 && t < 4 * r + 7 {
            // Phase D: per-candidate vote estimation, r samples, 2 rounds
            // each. Votes from uncovered vertices only.
            let dt = t - (2 * r + 7);
            if dt.is_multiple_of(2) {
                if dt > 0 {
                    // Close vote sample (relays ingested this round).
                    self.vote_minima.push(self.vote_bucket);
                    self.vote_bucket = f64::INFINITY;
                }
                if !self.covered {
                    if let Some((_rank, cand)) = self.best_candidate {
                        let w = exp_sample(&mut self.rng);
                        if cand == ctx.id.0 {
                            self.vote_bucket = self.vote_bucket.min(w);
                        }
                        for &v in ctx.graph_neighbors {
                            out.push((v, MdsMsg::VoteSample(cand, w)));
                        }
                    }
                }
            }
            // Odd dt rounds: relays were already emitted by the generic
            // ingest block at the top.
        } else if t == 4 * r + 7 {
            // Phase E round 1: close the last vote sample, decide, join.
            self.vote_minima.push(self.vote_bucket);
            self.vote_bucket = f64::INFINITY;
            if self.is_candidate && !self.in_ds {
                let votes = estimate_from_minima(&self.vote_minima);
                if votes > 0.0 && votes >= self.d_tilde / 10.0 {
                    self.in_ds = true;
                    self.covered = true;
                    for &v in ctx.graph_neighbors {
                        out.push((v, MdsMsg::Joined));
                    }
                }
            }
        } else if t == 4 * r + 8 {
            // Phase E round 2: 1-bit coverage wave.
            if self.heard_joined {
                for &v in ctx.graph_neighbors {
                    out.push((v, MdsMsg::CoverRelay));
                }
            }
        }
        // t == 4r + 9: ingest-only round; next round starts a new
        // iteration.

        out
    }

    fn is_done(&self, _ctx: &Ctx) -> bool {
        self.covered
    }

    fn can_skip(&self, _ctx: &Ctx) -> bool {
        // Covered vertices still participate: they relay votes, push
        // estimator samples, and reset per-iteration state at t = 0 —
        // none of which is a no-op. Never skippable.
        false
    }

    fn output(&self, _ctx: &Ctx) -> bool {
        self.in_ds
    }
}

/// Result of a Theorem 28 run.
#[derive(Clone, Debug)]
pub struct G2MdsResult {
    /// The dominating set of `G²` (membership vector).
    pub dominating_set: Vec<bool>,
    /// Simulation metrics.
    pub metrics: Metrics,
    /// Estimator samples per phase (`r = sample_factor · ⌈log₂ n⌉`).
    pub samples_per_phase: usize,
}

impl G2MdsResult {
    /// Size of the dominating set.
    pub fn size(&self) -> usize {
        self.dominating_set.iter().filter(|&&b| b).count()
    }
}

/// Runs Theorem 28's algorithm on `g` with the given seed.
///
/// `sample_factor` scales the estimator precision: `r = sample_factor ·
/// ⌈log₂ n⌉` samples per estimate (the paper's `Θ(log n)`); 8 is a solid
/// default, smaller values trade approximation quality for rounds.
///
/// # Errors
///
/// Propagates [`SimError`] on model violations.
///
/// # Example
///
/// ```
/// use pga_graph::generators;
/// use pga_graph::cover::is_dominating_set_on_square;
/// use pga_core::mds::congest_g2::g2_mds_congest;
///
/// let g = generators::grid(4, 4);
/// let r = g2_mds_congest(&g, 8, 42).unwrap();
/// assert!(is_dominating_set_on_square(&g, &r.dominating_set));
/// ```
pub fn g2_mds_congest(g: &Graph, sample_factor: usize, seed: u64) -> Result<G2MdsResult, SimError> {
    g2_mds_congest_cfg(g, sample_factor, seed, &RunConfig::new())
}

/// [`g2_mds_congest`] on an explicit simulation [`Engine`].
///
/// # Errors
///
/// Propagates [`SimError`] like [`g2_mds_congest`].
#[deprecated(since = "0.1.0", note = "use g2_mds_congest_cfg with a RunConfig")]
pub fn g2_mds_congest_with(
    g: &Graph,
    sample_factor: usize,
    seed: u64,
    engine: Engine,
) -> Result<G2MdsResult, SimError> {
    g2_mds_congest_cfg(g, sample_factor, seed, &RunConfig::new().engine(engine))
}

/// [`g2_mds_congest`] under an explicit [`RunConfig`] (engine, thread
/// count, scheduling policy, packed message plane).
///
/// Every configuration is bit-identical — the same `seed` yields the
/// same dominating set under any configuration; a parallel engine simply
/// runs large instances faster.
///
/// # Errors
///
/// Propagates [`SimError`] like [`g2_mds_congest`].
pub fn g2_mds_congest_cfg(
    g: &Graph,
    sample_factor: usize,
    seed: u64,
    cfg: &RunConfig,
) -> Result<G2MdsResult, SimError> {
    let n = g.num_nodes();
    if n == 0 {
        return Ok(G2MdsResult {
            dominating_set: Vec::new(),
            metrics: Metrics::default(),
            samples_per_phase: 0,
        });
    }
    let (nodes, r) = theorem28_nodes(g, sample_factor, seed);
    let report = Simulator::congest(g).run_cfg(nodes, cfg)?;
    Ok(G2MdsResult {
        dominating_set: report.outputs,
        metrics: report.metrics,
        samples_per_phase: r,
    })
}

/// Builds the per-node Theorem 28 states and the per-phase sample count
/// `r`, shared between the CONGEST entry points and the MPC variants
/// (`crate::mpc`) so both execute the exact same seeded algorithm.
pub(crate) fn theorem28_nodes(
    g: &Graph,
    sample_factor: usize,
    seed: u64,
) -> (Vec<Theorem28Node>, usize) {
    let n = g.num_nodes();
    let r = (sample_factor * pga_congest::id_bits(n)).max(4);
    ((0..n).map(|i| Theorem28Node::new(r, seed, i)).collect(), r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_exact::mds::mds_size;
    use pga_graph::cover::{is_dominating_set_on_square, set_size};
    use pga_graph::generators;
    use pga_graph::power::square;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn valid_on_families() {
        for g in [
            generators::star(12),
            generators::path(20),
            generators::cycle(15),
            generators::grid(4, 5),
        ] {
            let r = g2_mds_congest(&g, 6, 3).unwrap();
            assert!(
                is_dominating_set_on_square(&g, &r.dominating_set),
                "invalid on {g:?}"
            );
        }
    }

    #[test]
    fn star_needs_one_vertex() {
        let g = generators::star(20);
        let r = g2_mds_congest(&g, 8, 5).unwrap();
        assert!(is_dominating_set_on_square(&g, &r.dominating_set));
        // G² of a star is a clique: a single vertex dominates. The
        // randomized algorithm may take a couple, but not many.
        assert!(r.size() <= 3, "{} vertices for a clique", r.size());
    }

    #[test]
    fn approximation_within_log_bound() {
        let mut rng = StdRng::seed_from_u64(11);
        for seed in 0..4 {
            let g = generators::connected_gnp(24, 0.1, &mut rng);
            let r = g2_mds_congest(&g, 8, seed).unwrap();
            assert!(is_dominating_set_on_square(&g, &r.dominating_set));
            let g2 = square(&g);
            let opt = mds_size(&g2).max(1);
            let delta2 = g2.max_degree().max(2) as f64;
            let bound = 10.0 * (delta2.ln() + 2.0);
            assert!(
                set_size(&r.dominating_set) as f64 <= bound * opt as f64,
                "seed {seed}: {} vs opt {opt}",
                set_size(&r.dominating_set)
            );
        }
    }

    #[test]
    fn rounds_polylog_per_phase() {
        // Each phase costs O(log n) rounds; few phases needed on a star.
        let g = generators::star(16);
        let r = g2_mds_congest(&g, 6, 1).unwrap();
        let iter_len = 4 * r.samples_per_phase + 10;
        let phases = r.metrics.rounds.div_ceil(iter_len);
        assert!(phases <= 6, "{phases} phases on a star");
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::grid(3, 4);
        let a = g2_mds_congest(&g, 6, 9).unwrap();
        let b = g2_mds_congest(&g, 6, 9).unwrap();
        assert_eq!(a.dominating_set, b.dominating_set);
    }

    #[test]
    fn isolated_vertices_join() {
        let g = pga_graph::Graph::empty(3);
        let r = g2_mds_congest(&g, 4, 2).unwrap();
        assert_eq!(r.size(), 3);
    }

    #[test]
    fn empty_graph() {
        let r = g2_mds_congest(&pga_graph::Graph::empty(0), 4, 0).unwrap();
        assert_eq!(r.size(), 0);
    }
}

#[cfg(test)]
mod codec_roundtrip_tests {
    use super::*;
    use proptest::prelude::*;

    /// Bit-exact projection of an [`MdsMsg`]: arm tag plus payload bit
    /// patterns (`f64` arms compared through `to_bits`, so NaN payloads
    /// and signed zeros are distinguished the way the packed plane must
    /// preserve them).
    fn key(m: &MdsMsg) -> (u8, u64, u32) {
        match m {
            MdsMsg::EstSample(x) => (0, x.to_bits(), 0),
            MdsMsg::EstMin(x) => (1, x.to_bits(), 0),
            MdsMsg::RhoMax(rho) => (2, *rho, 0),
            MdsMsg::CandRank(rank, id) => (3, *rank, *id),
            MdsMsg::VoteSample(cand, x) => (4, x.to_bits(), *cand),
            MdsMsg::VoteRelay(x) => (5, x.to_bits(), 0),
            MdsMsg::Joined => (6, 0, 0),
            MdsMsg::CoverRelay => (7, 0, 0),
        }
    }

    /// Every `f64` bit pattern, NaN payloads and infinities included.
    fn arb_f64_bits() -> impl Strategy<Value = f64> {
        any::<u64>().prop_map(f64::from_bits)
    }

    /// Every arm of [`MdsMsg`], with full-range payloads.
    fn arb_msg() -> impl Strategy<Value = MdsMsg> {
        prop_oneof![
            arb_f64_bits().prop_map(MdsMsg::EstSample),
            arb_f64_bits().prop_map(MdsMsg::EstMin),
            any::<u64>().prop_map(MdsMsg::RhoMax),
            (any::<u64>(), any::<u32>()).prop_map(|(r, id)| MdsMsg::CandRank(r, id)),
            (any::<u32>(), arb_f64_bits()).prop_map(|(c, x)| MdsMsg::VoteSample(c, x)),
            arb_f64_bits().prop_map(MdsMsg::VoteRelay),
            Just(MdsMsg::Joined),
            Just(MdsMsg::CoverRelay),
        ]
    }

    proptest! {
        #[test]
        fn mds_msg_codec_roundtrips(m in arb_msg()) {
            prop_assert_eq!(key(&MdsMsg::decode(m.encode())), key(&m));
        }
    }
}
