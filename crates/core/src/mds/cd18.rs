//! The \[CD18\] (Censor-Hillel–Dory) `O(log Δ)`-approximation for minimum
//! dominating set — the substrate algorithm that Theorem 28 simulates on
//! `G²`.
//!
//! This module implements the algorithm's *logic* centrally (exact
//! densities, exact vote counts), parameterized by the graph on which
//! domination is defined. Running it on `G` gives the \[CD18\] baseline;
//! running it on a precomputed square gives the idealized (no-estimation)
//! version of Theorem 28, which the distributed implementation in
//! [`crate::mds::congest_g2`] approximates with Lemma 29 estimates.
//!
//! Per phase:
//! 1. every vertex computes its *rounded density* `ρ_v` — the number of
//!    still-uncovered vertices in `N[v]`, rounded up to a power of two;
//! 2. vertices whose `ρ` is maximal within distance 2 (of the domination
//!    graph) become *candidates*;
//! 3. candidates draw random ranks; every uncovered vertex votes for the
//!    best-ranked candidate that covers it;
//! 4. candidates with at least `|C_v|/8` votes join the dominating set.

use pga_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Result of a CD18 run.
#[derive(Clone, Debug)]
pub struct Cd18Result {
    /// The dominating set (membership vector over the domination graph).
    pub dominating_set: Vec<bool>,
    /// Number of phases executed.
    pub phases: usize,
}

/// Runs CD18 on the domination graph `g` (pass `square(g0)` for `G²`).
///
/// # Example
///
/// ```
/// use pga_graph::{generators, cover::is_dominating_set};
/// use pga_core::mds::cd18::cd18_mds;
///
/// let g = generators::grid(4, 4);
/// let r = cd18_mds(&g, 42);
/// assert!(is_dominating_set(&g, &r.dominating_set));
/// ```
pub fn cd18_mds(g: &Graph, seed: u64) -> Cd18Result {
    let n = g.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut covered = vec![false; n];
    let mut ds = vec![false; n];
    let mut phases = 0;

    let closed = |v: NodeId| std::iter::once(v).chain(g.neighbors(v).iter().copied());

    while covered.iter().any(|&c| !c) {
        phases += 1;

        // 1. Rounded densities.
        let density: Vec<usize> = (0..n)
            .map(|v| {
                closed(NodeId::from_index(v))
                    .filter(|u| !covered[u.index()])
                    .count()
            })
            .collect();
        let rho: Vec<usize> = density
            .iter()
            .map(|&d| if d == 0 { 0 } else { d.next_power_of_two() })
            .collect();

        // 2. Candidates: ρ_v maximal within distance 2 in g.
        let mut is_cand = vec![false; n];
        for v in 0..n {
            if rho[v] == 0 {
                continue;
            }
            let two_hop = pga_graph::power::two_hop_neighborhood(g, NodeId::from_index(v));
            if two_hop.iter().all(|u| rho[u.index()] <= rho[v]) {
                is_cand[v] = true;
            }
        }

        // 3. Ranks and votes: an uncovered vertex votes for the covering
        // candidate with the smallest (rank, id).
        let rank: Vec<u64> = (0..n).map(|_| rng.random()).collect();
        let mut votes = vec![0usize; n];
        for (u, &u_covered) in covered.iter().enumerate() {
            if u_covered {
                continue;
            }
            let best = closed(NodeId::from_index(u))
                .filter(|c| is_cand[c.index()])
                .min_by_key(|c| (rank[c.index()], c.index()));
            if let Some(c) = best {
                votes[c.index()] += 1;
            }
        }

        // 4. Join decisions.
        let mut joined = Vec::new();
        for v in 0..n {
            if is_cand[v] && votes[v] * 8 >= density[v] && votes[v] > 0 && !ds[v] {
                ds[v] = true;
                joined.push(v);
            }
        }
        for v in joined {
            for u in closed(NodeId::from_index(v)) {
                covered[u.index()] = true;
            }
        }
    }

    Cd18Result {
        dominating_set: ds,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_exact::mds::mds_size;
    use pga_graph::cover::{is_dominating_set, set_size};
    use pga_graph::generators;
    use pga_graph::power::square;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn valid_on_families() {
        for g in [
            generators::star(15),
            generators::cycle(12),
            generators::grid(5, 5),
            generators::path(20),
        ] {
            let r = cd18_mds(&g, 3);
            assert!(is_dominating_set(&g, &r.dominating_set));
        }
    }

    #[test]
    fn approximation_factor_log_delta() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..8 {
            let g = generators::connected_gnp(18, 0.15, &mut rng);
            let r = cd18_mds(&g, 11);
            assert!(is_dominating_set(&g, &r.dominating_set));
            let opt = mds_size(&g);
            let delta = g.max_degree().max(2) as f64;
            // 8·H_k bound with k ≤ Δ+1 (paper footnote 4); generous form.
            let bound = 8.0 * ((delta + 1.0).ln() + 1.0);
            assert!(
                set_size(&r.dominating_set) as f64 <= bound * opt as f64,
                "{} vs opt {opt} (bound {bound})",
                set_size(&r.dominating_set)
            );
        }
    }

    #[test]
    fn runs_on_precomputed_square() {
        let g = generators::path(25);
        let g2 = square(&g);
        let r = cd18_mds(&g2, 5);
        assert!(is_dominating_set(&g2, &r.dominating_set));
        // On P25², radius-2 balls have 5 vertices: OPT = 5; CD18 stays
        // within the log bound (tiny here).
        assert!(set_size(&r.dominating_set) <= 4 * mds_size(&g2));
    }

    #[test]
    fn phase_count_logarithmic() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::connected_gnp(100, 0.08, &mut rng);
        let r = cd18_mds(&g, 1);
        assert!(
            r.phases <= 60,
            "{} phases on n=100 is not logarithmic-ish",
            r.phases
        );
    }

    #[test]
    fn star_takes_center() {
        let g = generators::star(30);
        let r = cd18_mds(&g, 2);
        assert!(r.dominating_set[0], "the center has maximal density");
        assert!(is_dominating_set(&g, &r.dominating_set));
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::grid(4, 5);
        assert_eq!(
            cd18_mds(&g, 17).dominating_set,
            cd18_mds(&g, 17).dominating_set
        );
    }

    #[test]
    fn isolated_vertices_join_themselves() {
        let g = pga_graph::Graph::empty(4);
        let r = cd18_mds(&g, 4);
        assert!(is_dominating_set(&g, &r.dominating_set));
        assert_eq!(set_size(&r.dominating_set), 4);
    }
}
