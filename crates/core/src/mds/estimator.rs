//! Lemma 29: randomized estimation of 2-hop set sizes in CONGEST.
//!
//! To simulate the \[CD18\] dominating-set algorithm on `G²`, every vertex
//! needs `|N²[v] ∩ U|` for a dynamic vertex set `U` — exactly the kind of
//! quantity congestion makes expensive to compute exactly. The paper's
//! estimator (following Mosk-Aoyama–Shah) has every vertex of `U` draw
//! `r = Θ(log n)` independent `Exp(1)` variables; minima aggregate over
//! paths (two rounds of min-forwarding reach the 2-hop neighborhood), and
//! `r / Σ_j W̃_j` concentrates to the set size within `(1 ± ε)`.
//!
//! This module provides both the bare math ([`estimate_from_minima`]) and
//! the distributed algorithm ([`TwoHopEstimator`]).

use pga_congest::{Algorithm, Ctx, Engine, MsgCodec, MsgSize, RunConfig, Simulator};
use pga_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Draws one `Exp(1)` sample.
pub fn exp_sample(rng: &mut StdRng) -> f64 {
    // Inverse CDF; u ∈ (0, 1].
    let u: f64 = 1.0 - rng.random::<f64>();
    -u.ln()
}

/// The Mosk-Aoyama–Shah estimate from `r` independent minima:
/// `r / Σ_j W̃_j`, or 0 when no element contributed (all minima infinite).
pub fn estimate_from_minima(minima: &[f64]) -> f64 {
    if minima.iter().any(|w| !w.is_finite()) {
        return 0.0;
    }
    let sum: f64 = minima.iter().sum();
    if sum <= 0.0 {
        return 0.0;
    }
    minima.len() as f64 / sum
}

/// A float sample message; counted as one `O(log n)`-word payload
/// (the paper quantizes samples to `O(log n)` bits; we transmit an `f64`
/// and charge 64 bits).
#[derive(Clone, Copy, Debug)]
pub struct Sample(pub f64);

impl MsgSize for Sample {
    fn size_bits(&self, _id_bits: usize) -> usize {
        64
    }
}

// Packed as the raw f64 bit pattern — exact for every value, NaN
// payloads included, and no tag (single-arm message type).
impl MsgCodec for Sample {
    type Word = u64;

    fn encode(&self) -> u64 {
        self.0.to_bits()
    }

    fn decode(word: u64) -> Self {
        Sample(f64::from_bits(word))
    }
}

/// Distributed 2-hop estimator: after `2r + 1` rounds every vertex `v`
/// outputs an estimate of `|N²[v] ∩ U|` (closed 2-hop neighborhood).
pub struct TwoHopEstimator {
    in_u: bool,
    r: usize,
    rng: StdRng,
    /// Current iteration's own sample (if in U).
    own: Option<f64>,
    /// Min over N¹[v] ∩ U for the current iteration.
    min1: f64,
    /// Completed minima over N²[v] ∩ U.
    minima: Vec<f64>,
    pending_min2: f64,
}

impl TwoHopEstimator {
    /// Creates the estimator state for one node.
    pub fn new(in_u: bool, r: usize, seed: u64, id: usize) -> Self {
        TwoHopEstimator {
            in_u,
            r,
            rng: StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x517cc1b727220a95)),
            own: None,
            min1: f64::INFINITY,
            minima: Vec::new(),
            pending_min2: f64::INFINITY,
        }
    }
}

impl Algorithm for TwoHopEstimator {
    type Msg = Sample;
    type Output = f64;

    fn round(&mut self, ctx: &Ctx, inbox: &[(NodeId, Sample)]) -> Vec<(NodeId, Sample)> {
        let mut out = Vec::new();
        let phase = ctx.round % 2;
        if phase == 0 {
            // Close the previous iteration: inbox holds 1-hop minima.
            if ctx.round > 0 {
                let mut m2 = self.pending_min2;
                for (_f, s) in inbox {
                    m2 = m2.min(s.0);
                }
                self.minima.push(m2);
            }
            if self.minima.len() >= self.r {
                return out;
            }
            // Start iteration: U-members draw and broadcast a sample.
            self.min1 = f64::INFINITY;
            self.own = None;
            if self.in_u {
                let w = exp_sample(&mut self.rng);
                self.own = Some(w);
                self.min1 = w;
                for &v in ctx.graph_neighbors {
                    out.push((v, Sample(w)));
                }
            }
        } else {
            // Aggregate 1-hop minima and re-broadcast.
            for (_f, s) in inbox {
                self.min1 = self.min1.min(s.0);
            }
            // min over N¹[v]∩U is now in min1; remember it as the start of
            // our own 2-hop min, and forward it.
            self.pending_min2 = self.min1;
            if self.min1.is_finite() {
                for &v in ctx.graph_neighbors {
                    out.push((v, Sample(self.min1)));
                }
            }
        }
        out
    }

    fn is_done(&self, _ctx: &Ctx) -> bool {
        self.minima.len() >= self.r
    }

    fn can_skip(&self, _ctx: &Ctx) -> bool {
        // The phase-0 arm pushes the pending 2-hop minimum before the
        // done check, so even a finished node's `round` mutates state.
        // (All nodes finish in lockstep, so this never costs anything.)
        false
    }

    fn output(&self, _ctx: &Ctx) -> f64 {
        estimate_from_minima(&self.minima)
    }
}

/// Runs the estimator over `g` for the membership vector `in_u`, with `r`
/// samples, returning each vertex's estimate of `|N²[v] ∩ U|`.
///
/// # Panics
///
/// Panics if the simulation violates the model (it cannot, by
/// construction) — surfaced as an `expect` for API simplicity.
pub fn estimate_two_hop_sizes(g: &Graph, in_u: &[bool], r: usize, seed: u64) -> Vec<f64> {
    estimate_two_hop_sizes_cfg(g, in_u, r, seed, &RunConfig::new())
}

/// [`estimate_two_hop_sizes`] on an explicit simulation [`Engine`].
///
/// # Panics
///
/// Panics if the simulation violates the model (it cannot, by
/// construction) — surfaced as an `expect` for API simplicity.
#[deprecated(
    since = "0.1.0",
    note = "use estimate_two_hop_sizes_cfg with a RunConfig"
)]
pub fn estimate_two_hop_sizes_with(
    g: &Graph,
    in_u: &[bool],
    r: usize,
    seed: u64,
    engine: Engine,
) -> Vec<f64> {
    estimate_two_hop_sizes_cfg(g, in_u, r, seed, &RunConfig::new().engine(engine))
}

/// [`estimate_two_hop_sizes`] under an explicit [`RunConfig`] (engine,
/// thread count, scheduling policy, packed message plane).
///
/// Every configuration is bit-identical — the same `seed` yields the
/// same estimates under any configuration; a parallel engine simply
/// runs large instances faster.
///
/// # Panics
///
/// Panics if the simulation violates the model (it cannot, by
/// construction) — surfaced as an `expect` for API simplicity.
pub fn estimate_two_hop_sizes_cfg(
    g: &Graph,
    in_u: &[bool],
    r: usize,
    seed: u64,
    cfg: &RunConfig,
) -> Vec<f64> {
    let nodes = (0..g.num_nodes())
        .map(|i| TwoHopEstimator::new(in_u[i], r, seed, i))
        .collect();
    Simulator::congest(g)
        .run_cfg(nodes, cfg)
        .expect("estimator respects the CONGEST model")
        .outputs
}

/// The exact quantity being estimated: `|N²[v] ∩ U|` for every `v`.
///
/// One [`TwoHopScratch`](pga_graph::bmm::TwoHopScratch) is shared
/// across all vertices, so the bitset register and the heavy-row cache
/// are built once instead of per query.
pub fn exact_two_hop_sizes(g: &Graph, in_u: &[bool]) -> Vec<usize> {
    let mut scratch = pga_graph::bmm::TwoHopScratch::new(g);
    let mut row: Vec<NodeId> = Vec::new();
    g.nodes()
        .map(|v| {
            row.clear();
            scratch.row_into(g, v, &mut row);
            usize::from(in_u[v.index()]) + row.iter().filter(|u| in_u[u.index()]).count()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exp_sample_positive_and_mean_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exp_sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn estimate_from_minima_edge_cases() {
        assert_eq!(estimate_from_minima(&[f64::INFINITY, 1.0]), 0.0);
        assert_eq!(estimate_from_minima(&[]), 0.0);
        // r = 2 samples with Σ = 1.0 estimate a set of size 2.
        let est = estimate_from_minima(&[0.5, 0.5]);
        assert!((est - 2.0).abs() < 1e-12);
    }

    #[test]
    fn estimator_concentrates_on_star() {
        // Star: the center's closed 2-hop set is everything; a leaf's too.
        let g = generators::star(40);
        let in_u = vec![true; 40];
        let est = estimate_two_hop_sizes(&g, &in_u, 600, 7);
        for (v, e) in est.iter().enumerate() {
            assert!((e - 40.0).abs() < 8.0, "node {v}: estimate {e} far from 40");
        }
    }

    #[test]
    fn estimator_concentrates_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::connected_gnp(35, 0.08, &mut rng);
        let in_u: Vec<bool> = (0..35).map(|i| i % 2 == 0).collect();
        let exact = exact_two_hop_sizes(&g, &in_u);
        let est = estimate_two_hop_sizes(&g, &in_u, 800, 13);
        for v in 0..35 {
            let (e, x) = (est[v], exact[v] as f64);
            if x == 0.0 {
                assert_eq!(e, 0.0, "node {v}");
            } else {
                assert!((e - x).abs() / x < 0.30, "node {v}: {e} vs exact {x}");
            }
        }
    }

    #[test]
    fn empty_u_gives_zero() {
        let g = generators::cycle(8);
        let est = estimate_two_hop_sizes(&g, &[false; 8], 50, 3);
        assert!(est.iter().all(|&e| e == 0.0));
    }

    #[test]
    fn rounds_are_2r_plus_constant() {
        let g = generators::cycle(10);
        let nodes = (0..10)
            .map(|i| TwoHopEstimator::new(true, 25, 3, i))
            .collect::<Vec<_>>();
        let report = Simulator::congest(&g).run(nodes).unwrap();
        assert!(
            report.metrics.rounds <= 2 * 25 + 2,
            "{} rounds",
            report.metrics.rounds
        );
    }

    #[test]
    fn singleton_u_detected_within_two_hops() {
        // Path 0-1-2-3-4 with U = {0}: estimates must be ≈1 within 2 hops
        // of 0 and exactly 0 beyond.
        let g = generators::path(5);
        let mut in_u = vec![false; 5];
        in_u[0] = true;
        let est = estimate_two_hop_sizes(&g, &in_u, 400, 21);
        for (v, &e) in est.iter().enumerate().take(3) {
            assert!((e - 1.0).abs() < 0.4, "node {v}: {e}");
        }
        for (v, &e) in est.iter().enumerate().skip(3) {
            assert_eq!(e, 0.0, "node {v} is 3+ hops away");
        }
    }
}

#[cfg(test)]
mod codec_roundtrip_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The single-arm [`Sample`] codec must round-trip every `f64`
        /// bit pattern — NaN payloads and signed zeros included.
        #[test]
        fn sample_codec_roundtrips(bits in any::<u64>()) {
            let s = Sample(f64::from_bits(bits));
            prop_assert_eq!(Sample::decode(s.encode()).0.to_bits(), bits);
        }
    }
}
