//! `G²`-minimum-dominating-set algorithms (Section 6 of the paper).

pub mod cd18;
pub mod congest_g2;
pub mod estimator;
