//! The algorithms of *Distributed Approximation on Power Graphs*
//! (Bar-Yehuda, Censor-Hillel, Maus, Pai, Pemmaraju — PODC 2020).
//!
//! Everything here solves a problem whose feasibility is defined on the
//! square `G²` of the input graph `G`, while communication (when
//! distributed) happens on `G` in the CONGEST or CONGESTED CLIQUE model:
//!
//! | Paper result | API |
//! |---|---|
//! | Thm 1 — `(1+ε)`-approx `G²`-MVC, `O(n/ε)` CONGEST rounds | [`mvc::congest::g2_mvc_congest`] |
//! | Thm 7 — `(1+ε)`-approx `G²`-MWVC, `O(n log n/ε)` rounds | [`mvc::weighted::g2_mwvc_congest`] |
//! | Cor 10 — deterministic CONGESTED CLIQUE `O(εn + 1/ε)` | [`mvc::clique_det::g2_mvc_clique_det`] |
//! | Thm 11 — randomized CONGESTED CLIQUE `O(log n + 1/ε)` | [`mvc::clique_rand::g2_mvc_clique_rand`] |
//! | Thm 12 — centralized 5/3-approximation | [`mvc::centralized::five_thirds_vertex_cover`] |
//! | Lem 6 — zero-round `(1 + 1/⌊r/2⌋)`-approx on `G^r` | [`mvc::trivial`] |
//! | Thm 28 — `O(log Δ)`-approx `G²`-MDS, polylog rounds | [`mds::congest_g2::g2_mds_congest`] |
//! | Lem 29 — 2-hop cardinality estimator | [`mds::estimator`] |
//!
//! # Example
//!
//! ```
//! use pga_graph::generators;
//! use pga_graph::cover::is_vertex_cover_on_square;
//! use pga_core::mvc::congest::{g2_mvc_congest, LocalSolver};
//!
//! let g = generators::clique_chain(4, 5);
//! let result = g2_mvc_congest(&g, 0.5, LocalSolver::Exact).unwrap();
//! assert!(is_vertex_cover_on_square(&g, &result.cover));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod mds;
pub mod mpc;
pub mod mvc;
pub mod sequential;
