//! Phase I of Algorithm 1: distributed clique harvesting.
//!
//! As long as some *center* `c ∈ C` has more than `1/ε` neighbors in the
//! remaining set `R`, the center with the locally maximal id within two
//! hops wins, adds its whole `R`-neighborhood to the cover `S`, and leaves
//! `C` (paper, Section 3.1). Each neighborhood added is a clique of `G²`
//! of size `> 1/ε`, for which any optimal cover must pay all but one
//! vertex — that is the entire `(1+ε)` accounting of Lemma 5.
//!
//! The implementation runs the paper's "arbitrary symmetry breaking with
//! the help of their ID": iterations of four rounds each:
//!
//! 1. eligible centers announce candidacy,
//! 2. every node reports the maximum candidate id it heard (max over one
//!    hop, so after this round candidates know the max over two hops),
//! 3. locally-maximal candidates win and tell their neighbors to join `S`,
//! 4. nodes that joined `S` announce they left `R`.

use pga_congest::{Algorithm, Ctx, MsgCodec, MsgSize};
use pga_graph::NodeId;

/// Messages of Phase I.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum P1Msg {
    /// "I am an eligible center this iteration."
    Cand,
    /// "The largest candidate id I heard (including myself) is ...".
    MaxCand(u32),
    /// "I won; you are my neighbor: join the cover `S`."
    JoinS,
    /// "I just left `R`."
    LeftR,
}

impl MsgSize for P1Msg {
    fn size_bits(&self, id_bits: usize) -> usize {
        2 + match self {
            P1Msg::MaxCand(_) => id_bits,
            _ => 0,
        }
    }
}

// Packed layout (u64): bits 0..2 tag, bits 2..34 the MaxCand id.
impl MsgCodec for P1Msg {
    type Word = u64;

    fn encode(&self) -> u64 {
        match self {
            P1Msg::Cand => 0,
            P1Msg::MaxCand(id) => 1 | (u64::from(*id) << 2),
            P1Msg::JoinS => 2,
            P1Msg::LeftR => 3,
        }
    }

    fn decode(word: u64) -> Self {
        match word & 0x3 {
            0 => P1Msg::Cand,
            1 => P1Msg::MaxCand((word >> 2) as u32),
            2 => P1Msg::JoinS,
            _ => P1Msg::LeftR,
        }
    }
}

/// Per-node output of Phase I.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct P1Output {
    /// Whether this node joined the cover `S`.
    pub in_s: bool,
    /// Neighbors still in `R = V \ S` at the end of the phase
    /// (each is at most `threshold` many, Lemma 2). After a phase
    /// timeout this is a *superset* of the true R-neighborhood (missed
    /// `LeftR` announcements leave stale entries), which only enlarges
    /// the edge set Phase II covers — validity is unaffected.
    pub r_neighbors: Vec<NodeId>,
    /// Whether this node hit the phase deadline and forced itself out
    /// of the candidate process (see `with_deadline` on the phase
    /// states). Always `false` on a clean run.
    pub timed_out: bool,
}

/// Phase I node state.
///
/// `threshold = ⌊1/ε'⌋`: a center is eligible while it has **more than**
/// `threshold` neighbors in `R`.
pub(crate) struct Phase1 {
    threshold: usize,
    in_c: bool,
    in_s: bool,
    /// Sorted ids of neighbors currently in `R`.
    r_neighbors: Vec<NodeId>,
    candidate_now: bool,
    /// Max candidate id within one hop, computed in step 2.
    one_hop_max: Option<u32>,
    initialized: bool,
    /// Phase deadline in rounds; at the deadline an undecided node
    /// withdraws from `C` so the phase quiesces (see `with_deadline`).
    deadline: Option<usize>,
    timed_out: bool,
}

impl Phase1 {
    pub(crate) fn new(threshold: usize) -> Self {
        Phase1 {
            threshold,
            in_c: true,
            in_s: false,
            r_neighbors: Vec::new(),
            candidate_now: false,
            one_hop_max: None,
            initialized: false,
            deadline: None,
            timed_out: false,
        }
    }

    /// Arms the phase timeout: a node still eligible at round
    /// `deadline` withdraws from the candidate set instead of waiting
    /// forever (dead links can starve the symmetry breaking). Its
    /// `r_neighbors` then stays a superset of the true R-neighborhood,
    /// so the Phase II cover only grows — the result stays a valid
    /// cover, only the approximation factor degrades. `None` (the
    /// default) never fires.
    pub(crate) fn with_deadline(mut self, deadline: Option<usize>) -> Self {
        self.deadline = deadline;
        self
    }

    fn eligible(&self) -> bool {
        self.in_c && self.r_neighbors.len() > self.threshold
    }

    fn remove_r_neighbor(&mut self, v: NodeId) {
        if let Ok(pos) = self.r_neighbors.binary_search(&v) {
            self.r_neighbors.remove(pos);
        }
    }
}

impl Algorithm for Phase1 {
    type Msg = P1Msg;
    type Output = P1Output;

    fn round(&mut self, ctx: &Ctx, inbox: &[(NodeId, P1Msg)]) -> Vec<(NodeId, P1Msg)> {
        if !self.initialized {
            // R starts as all of V: every neighbor is an R-neighbor.
            self.r_neighbors = ctx.graph_neighbors.to_vec();
            self.initialized = true;
        }
        let mut out = Vec::new();
        let mut joined_s_now = false;

        // Ingest.
        let mut cand_max: Option<u32> = None;
        let mut two_hop_max: Option<u32> = None;
        for (from, msg) in inbox {
            match msg {
                P1Msg::Cand => {
                    cand_max = Some(cand_max.map_or(from.0, |m: u32| m.max(from.0)));
                }
                P1Msg::MaxCand(id) => {
                    two_hop_max = Some(two_hop_max.map_or(*id, |m: u32| m.max(*id)));
                }
                P1Msg::JoinS => {
                    if !self.in_s {
                        self.in_s = true;
                        joined_s_now = true;
                    }
                }
                P1Msg::LeftR => {
                    self.remove_r_neighbor(*from);
                }
            }
        }

        // Phase-timeout fallback: an undecided node past the deadline
        // withdraws from C (conservative — see `with_deadline`).
        if let Some(d) = self.deadline {
            if ctx.round >= d && self.eligible() {
                self.in_c = false;
                self.candidate_now = false;
                self.timed_out = true;
                return out;
            }
        }

        match ctx.round % 4 {
            0 => {
                // Step 1: candidacy. (LeftR from the previous iteration was
                // ingested above, so eligibility is up to date.)
                self.candidate_now = self.eligible();
                if self.candidate_now {
                    for &v in ctx.graph_neighbors {
                        out.push((v, P1Msg::Cand));
                    }
                }
            }
            1 => {
                // Step 2: report max candidate id over one hop.
                let mut m = cand_max;
                if self.candidate_now {
                    m = Some(m.map_or(ctx.id.0, |x| x.max(ctx.id.0)));
                }
                // Store only a real maximum: a `None` here is never read
                // (Step 3 reads under `candidate_now`, whose Step 2 always
                // wrote `Some`), and skipping the write keeps the
                // skippable quiet state genuinely mutation-free for the
                // engine's `can_skip` contract.
                if m.is_some() {
                    self.one_hop_max = m;
                }
                if let Some(m) = m {
                    for &v in ctx.graph_neighbors {
                        out.push((v, P1Msg::MaxCand(m)));
                    }
                }
            }
            2 => {
                // Step 3: winner determination. The max over received
                // one-hop maxima plus our own covers all candidates within
                // two hops.
                if self.candidate_now {
                    let mut m = self.one_hop_max.unwrap_or(0).max(ctx.id.0);
                    if let Some(t) = two_hop_max {
                        m = m.max(t);
                    }
                    if m == ctx.id.0 {
                        // Winner: neighbors in R join S; we leave C.
                        self.in_c = false;
                        for &v in self.r_neighbors.clone().iter() {
                            out.push((v, P1Msg::JoinS));
                        }
                        self.r_neighbors.clear();
                    }
                }
            }
            3 => {
                // Step 4: announce leaving R.
                if joined_s_now {
                    for &v in ctx.graph_neighbors {
                        out.push((v, P1Msg::LeftR));
                    }
                }
            }
            _ => unreachable!(),
        }
        out
    }

    fn is_done(&self, _ctx: &Ctx) -> bool {
        // If no center anywhere is eligible and no messages are in flight,
        // nothing will ever be sent again; the simulator combines this
        // per-node condition with global quiescence.
        self.initialized && !self.eligible()
    }

    fn can_skip(&self, ctx: &Ctx) -> bool {
        // A stale `candidate_now` from a pre-ineligibility Step 1 would
        // leak into the Step 2 maximum on re-activation; it is cleared by
        // the next invoked Step 1, so the node stays active until then.
        self.is_done(ctx) && !self.candidate_now
    }

    fn output(&self, _ctx: &Ctx) -> P1Output {
        P1Output {
            in_s: self.in_s,
            r_neighbors: self.r_neighbors.clone(),
            timed_out: self.timed_out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_congest::Simulator;
    use pga_graph::{generators, Graph};

    fn run_phase1(g: &Graph, threshold: usize) -> (Vec<P1Output>, pga_congest::Metrics) {
        let nodes = (0..g.num_nodes()).map(|_| Phase1::new(threshold)).collect();
        let report = Simulator::congest(g).run(nodes).unwrap();
        (report.outputs, report.metrics)
    }

    #[test]
    fn star_center_wins() {
        // Star K_{1,8}: center has 8 R-neighbors > threshold 2, wins; all
        // leaves join S. Wait: the *max id* within two hops wins, and every
        // leaf has ≤ 1 < 3 R-neighbors, so only the center is ever
        // eligible.
        let g = generators::star(9);
        let (out, _m) = run_phase1(&g, 2);
        assert!(!out[0].in_s, "center itself stays out");
        for (leaf, state) in out.iter().enumerate().skip(1) {
            assert!(state.in_s, "leaf {leaf} must join S");
        }
        assert!(out[0].r_neighbors.is_empty());
    }

    #[test]
    fn low_degree_graph_never_fires() {
        // On a path with threshold 2, no vertex has 3 R-neighbors: S = ∅.
        let g = generators::path(10);
        let (out, m) = run_phase1(&g, 2);
        assert!(out.iter().all(|o| !o.in_s));
        // Nothing to do: the run is quiescent immediately.
        assert_eq!(m.messages, 0);
    }

    #[test]
    fn after_phase1_r_degrees_bounded() {
        // Lemma 2's precondition: every node ends with ≤ threshold
        // R-neighbors.
        for (g, t) in [
            (generators::clique_chain(4, 6), 2usize),
            (generators::complete_bipartite(5, 9), 3),
            (generators::caterpillar(6, 5), 2),
        ] {
            let (out, _m) = run_phase1(&g, t);
            for (i, o) in out.iter().enumerate() {
                assert!(
                    o.r_neighbors.len() <= t,
                    "node {i} has {} R-neighbors > {t}",
                    o.r_neighbors.len()
                );
            }
        }
    }

    #[test]
    fn s_blocks_are_cliques_in_g2() {
        // Every JoinS block is N(c) ∩ R for a single winner c, which is a
        // clique of G². We verify cover validity downstream; here check the
        // R bookkeeping is consistent: reported r_neighbors are exactly
        // neighbors not in S.
        let g = generators::clique_chain(3, 5);
        let (out, _m) = run_phase1(&g, 2);
        for v in g.nodes() {
            let expect: Vec<NodeId> = g
                .neighbors(v)
                .iter()
                .copied()
                .filter(|u| !out[u.index()].in_s)
                .collect();
            assert_eq!(out[v.index()].r_neighbors, expect, "node {v:?}");
        }
    }

    #[test]
    fn two_hop_symmetry_breaking_sequential_winners() {
        // In K_{5,5} all vertices start eligible with threshold 2, and the
        // whole graph is one 2-hop neighborhood, so winners fire one per
        // iteration. Node 9 wins first (side A joins S); joining S does
        // not remove a node from C, so side-A vertices stay eligible (all
        // of side B is still in R) and node 4 wins next, covering side B.
        let g = generators::complete_bipartite(5, 5);
        let (out, _m) = run_phase1(&g, 2);
        for (v, state) in out.iter().enumerate() {
            assert!(state.in_s, "vertex {v} ends up in S");
        }
        // Two blocks of 5: |S| = 10 versus OPT(G²) = OPT(K10) = 9, inside
        // the (1 + ε') bound for ε' = 1/2.
    }

    #[test]
    fn threshold_zero_covers_everything_with_edges() {
        // threshold 0: every vertex with ≥1 R-neighbor is eligible; the
        // process only stops when R-degrees are all 0, i.e. S is a cover
        // of G (hence of many G² edges too).
        let g = generators::cycle(7);
        let (out, _m) = run_phase1(&g, 0);
        let in_s: Vec<bool> = out.iter().map(|o| o.in_s).collect();
        assert!(pga_graph::cover::is_vertex_cover(&g, &in_s));
    }
}

#[cfg(test)]
mod codec_roundtrip_tests {
    use super::*;
    use proptest::prelude::*;

    /// Every arm of [`P1Msg`], with full-range ids.
    fn arb_msg() -> impl Strategy<Value = P1Msg> {
        prop_oneof![
            Just(P1Msg::Cand),
            any::<u32>().prop_map(P1Msg::MaxCand),
            Just(P1Msg::JoinS),
            Just(P1Msg::LeftR),
        ]
    }

    proptest! {
        #[test]
        fn p1_msg_codec_roundtrips(m in arb_msg()) {
            prop_assert_eq!(P1Msg::decode(m.encode()), m);
        }
    }
}
