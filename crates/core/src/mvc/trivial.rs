//! Lemma 6: the zero-round trivial approximation on powers.
//!
//! For a connected `n`-vertex graph `G` and `1 ≤ r ≤ n`, any vertex cover
//! of `G^r` has size at least `n − n/α` where `α = ⌊r/2⌋ + 1`, because any
//! independent set of `G^r` can charge `⌊r/2⌋` private non-members to each
//! member. Hence taking **all** vertices — with no communication at all —
//! is a `(1 + 1/⌊r/2⌋)`-approximation: a 2-approximation on `G²` that
//! improves as `r` grows.

use pga_graph::Graph;

/// The all-vertices cover (membership vector), the paper's zero-round
/// algorithm.
pub fn all_vertices_cover(n: usize) -> Vec<bool> {
    vec![true; n]
}

/// The approximation guarantee of [`all_vertices_cover`] on `G^r`:
/// `1 + 1/⌊r/2⌋`.
///
/// # Panics
///
/// Panics if `r < 2` (for `r = 1` the bound is vacuous).
pub fn trivial_ratio(r: usize) -> f64 {
    assert!(r >= 2, "Lemma 6's ratio needs r ≥ 2");
    1.0 + 1.0 / ((r / 2) as f64)
}

/// Lemma 6's upper bound on the size of any independent set of `G^r` for a
/// *connected* `G` on `n ≥ 2` vertices: strictly less than `n/α` with
/// `α = ⌊r/2⌋ + 1`; we return `⌈n/α⌉` as a safe ceiling.
pub fn independent_set_upper_bound(n: usize, r: usize) -> usize {
    let alpha = r / 2 + 1;
    n.div_ceil(alpha)
}

/// Lemma 6's lower bound on the size of any vertex cover of `G^r` for a
/// connected `G`: `n − ⌈n/α⌉`.
pub fn vertex_cover_lower_bound(n: usize, r: usize) -> usize {
    n.saturating_sub(independent_set_upper_bound(n, r))
}

/// Convenience: checks the bound's preconditions for a given graph.
pub fn applies_to(g: &Graph) -> bool {
    g.num_nodes() >= 2 && pga_graph::traversal::is_connected(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_exact::vc::mvc_size;
    use pga_graph::generators;
    use pga_graph::power::power;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ratio_values() {
        assert!((trivial_ratio(2) - 2.0).abs() < 1e-12);
        assert!((trivial_ratio(3) - 2.0).abs() < 1e-12);
        assert!((trivial_ratio(4) - 1.5).abs() < 1e-12);
        assert!((trivial_ratio(6) - (4.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn cover_lower_bound_holds_on_connected_graphs() {
        let mut rng = StdRng::seed_from_u64(61);
        for _ in 0..10 {
            let g = generators::connected_gnp(14, 0.1, &mut rng);
            assert!(applies_to(&g));
            for r in 2..=4 {
                let gr = power(&g, r);
                let opt = mvc_size(&gr);
                assert!(
                    opt >= vertex_cover_lower_bound(14, r),
                    "r={r}: opt {opt} below Lemma 6 bound {}",
                    vertex_cover_lower_bound(14, r)
                );
            }
        }
    }

    #[test]
    fn all_vertices_achieves_ratio() {
        let mut rng = StdRng::seed_from_u64(62);
        for _ in 0..8 {
            let g = generators::connected_gnp(12, 0.15, &mut rng);
            for r in 2..=5 {
                let gr = power(&g, r);
                let opt = mvc_size(&gr);
                if opt == 0 {
                    continue;
                }
                let ratio = 12.0 / opt as f64;
                assert!(
                    ratio <= trivial_ratio(r) + 1e-9,
                    "r={r}: all-vertices ratio {ratio} > {}",
                    trivial_ratio(r)
                );
            }
        }
    }

    #[test]
    fn path_tight_case() {
        // On a long path, G² has an independent set of ~n/2 (every other
        // pair), so the 2-approximation is near-tight for r = 2.
        let n = 24;
        let g = generators::path(n);
        let g2 = power(&g, 2);
        let opt = mvc_size(&g2);
        let ratio = n as f64 / opt as f64;
        assert!(ratio > 1.4, "trivial cover should be visibly suboptimal");
        assert!(ratio <= 2.0 + 1e-9);
    }

    #[test]
    fn bound_on_disconnected_graph_does_not_apply() {
        let g = pga_graph::Graph::empty(4);
        assert!(!applies_to(&g));
    }
}
