//! `G²`-minimum-vertex-cover algorithms (Sections 3 and 4 of the paper).

pub mod centralized;
pub mod clique_det;
pub mod clique_rand;
pub mod congest;
pub mod trivial;
pub mod weighted;

pub(crate) mod phase1;
pub(crate) mod phase1_direct;
pub(crate) mod remainder;
