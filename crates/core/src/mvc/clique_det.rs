//! Corollary 10: a deterministic `(1 + ε)`-approximation for `G²`-MVC in
//! the CONGESTED CLIQUE, in `O(εn + 1/ε)` rounds.
//!
//! Phase I is the CONGEST clique harvesting unchanged (clique edges are a
//! superset of `G`'s). Phase II exploits the clique: every node sends its
//! at most `⌊1/ε'⌋` edges of `F` *directly* to the leader, one per round
//! (Lemma 9), and the leader answers each node with a personalized 1-bit
//! verdict in a single round.

use crate::mvc::congest::G2MvcResult;
use crate::mvc::phase1::P1Output;
use crate::mvc::phase1_direct::run_phase1_with_prep;
use crate::mvc::remainder::{f_edges_for_node, solve_remainder, FEdge, LocalSolver};
use pga_congest::primitives::GsPack;
use pga_congest::{
    default_cap_words, Algorithm, Ctx, Engine, Metrics, MsgCodec, MsgSize, RunConfig, SimError,
    Simulator,
};
use pga_graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Messages of the clique Phase II.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum CliqueMsg {
    /// One `F`-edge report, sent directly to the leader.
    Edge(FEdge),
    /// "I have no more edges to report."
    Done,
    /// Personalized verdict from the leader: "you are in the cover".
    Verdict(bool),
}

impl MsgSize for CliqueMsg {
    fn size_bits(&self, id_bits: usize) -> usize {
        2 + match self {
            CliqueMsg::Edge(e) => e.size_bits(id_bits),
            CliqueMsg::Done => 0,
            CliqueMsg::Verdict(_) => 1,
        }
    }
}

// Packed layout ([u64; 4]): word 0 holds a 2-bit tag, the edge's
// direction flag at bit 2 and the verdict at bit 3; words 1..4 hold the
// edge's GsPack payload.
impl MsgCodec for CliqueMsg {
    type Word = [u64; 4];

    fn encode(&self) -> [u64; 4] {
        match self {
            CliqueMsg::Edge(e) => {
                let (w, flag) = e.pack3();
                [u64::from(flag) << 2, w[0], w[1], w[2]]
            }
            CliqueMsg::Done => [1, 0, 0, 0],
            CliqueMsg::Verdict(v) => [2 | (u64::from(*v) << 3), 0, 0, 0],
        }
    }

    fn decode(word: [u64; 4]) -> Self {
        match word[0] & 0x3 {
            0 => CliqueMsg::Edge(FEdge::unpack3(
                [word[1], word[2], word[3]],
                word[0] & 0x4 != 0,
            )),
            1 => CliqueMsg::Done,
            2 => CliqueMsg::Verdict(word[0] & 0x8 != 0),
            tag => unreachable!("invalid CliqueMsg tag {tag}"),
        }
    }
}

/// Phase II on the clique: direct upload to the leader, personalized
/// 1-round verdict broadcast.
pub(crate) struct CliquePhase2 {
    pub items: VecDeque<FEdge>,
    pub in_s: bool,
    pub sent_done: bool,
    pub verdict: Option<bool>,
    // Leader-only state.
    pub gathered: Vec<FEdge>,
    pub done_count: usize,
    pub solver: LocalSolver,
    pub answered: bool,
    /// Phase deadline in rounds. At the deadline with reports still
    /// missing the leader answers `Verdict(true)` to *everyone*: a
    /// silent node in `S` is the sole reporter of its `R`-incident
    /// edges, so the two-hop `H`-edges through it are invisible and no
    /// per-node repair can cover them (same global degradation as an
    /// incomplete [`GatherScatter`](pga_congest::primitives::GatherScatter)
    /// gather). A non-leader whose verdict never arrives self-adds at
    /// `deadline + 8`. Either fallback keeps the cover valid — only
    /// the approximation degrades.
    pub deadline: Option<usize>,
    pub timed_out: bool,
}

impl CliquePhase2 {
    pub(crate) fn new(items: Vec<FEdge>, in_s: bool, solver: LocalSolver) -> Self {
        CliquePhase2 {
            items: items.into(),
            in_s,
            sent_done: false,
            verdict: None,
            gathered: Vec::new(),
            done_count: 0,
            solver,
            answered: false,
            deadline: None,
            timed_out: false,
        }
    }

    /// Arms the phase timeout (see the `deadline` field).
    pub(crate) fn with_deadline(mut self, deadline: Option<usize>) -> Self {
        self.deadline = deadline;
        self
    }
}

const LEADER: NodeId = NodeId(0);

impl Algorithm for CliquePhase2 {
    type Msg = CliqueMsg;
    /// `(in_cover, timed_out)` — membership plus whether this node fell
    /// back to the phase-timeout path.
    type Output = (bool, bool);

    fn round(&mut self, ctx: &Ctx, inbox: &[(NodeId, CliqueMsg)]) -> Vec<(NodeId, CliqueMsg)> {
        let mut out = Vec::new();
        for (_from, msg) in inbox {
            match msg {
                CliqueMsg::Edge(e) => self.gathered.push(e.clone()),
                CliqueMsg::Done => self.done_count += 1,
                CliqueMsg::Verdict(v) => self.verdict = Some(*v),
            }
        }

        if ctx.id == LEADER {
            let deadline_hit = self.deadline.is_some_and(|d| ctx.round >= d);
            if !self.answered && (self.done_count == ctx.n - 1 || deadline_hit) {
                // Everyone reported (or the deadline fired): solve and
                // answer all nodes at once (n−1 messages in one round —
                // legal in the clique).
                let forced = self.done_count != ctx.n - 1;
                let in_cover = if forced {
                    // Reports are missing and the leader cannot tell
                    // which H-edges it never saw (see the `deadline`
                    // doc): degrade globally, everyone joins.
                    self.timed_out = true;
                    vec![true; ctx.n]
                } else {
                    let mut edges = std::mem::take(&mut self.gathered);
                    edges.extend(self.items.drain(..));
                    let chosen = solve_remainder(&edges, self.solver);
                    let mut in_cover = vec![false; ctx.n];
                    for c in &chosen {
                        in_cover[c.0.index()] = true;
                    }
                    in_cover
                };
                self.verdict = Some(in_cover[LEADER.index()]);
                for (j, &in_c) in in_cover.iter().enumerate().skip(1) {
                    out.push((NodeId::from_index(j), CliqueMsg::Verdict(in_c)));
                }
                self.answered = true;
            }
        } else {
            // Hard deadline: the verdict never arrived (dead link) —
            // self-add, which covers every F-edge incident to us.
            if let Some(d) = self.deadline {
                if ctx.round >= d + 8 && self.verdict.is_none() {
                    self.verdict = Some(true);
                    self.timed_out = true;
                    return out;
                }
            }
            if let Some(e) = self.items.pop_front() {
                out.push((LEADER, CliqueMsg::Edge(e)));
            } else if !self.sent_done {
                out.push((LEADER, CliqueMsg::Done));
                self.sent_done = true;
            }
        }
        out
    }

    fn is_done(&self, ctx: &Ctx) -> bool {
        if ctx.id == LEADER {
            self.answered || ctx.n == 1
        } else {
            self.verdict.is_some()
        }
    }

    fn output(&self, ctx: &Ctx) -> (bool, bool) {
        // No verdict at collection time means the node never finished
        // the exchange — crashed mid-phase, or the leader's answer was
        // lost past the deadline fallback. Self-add: conservative, and
        // unreachable on a clean run (`is_done` requires a verdict).
        // The single-node leader legitimately never answers itself;
        // `run_clique_phase2` overrides that case from Phase-I state.
        let missing = self.verdict.is_none() && ctx.n > 1;
        (
            self.in_s || self.verdict.unwrap_or(missing),
            self.timed_out || missing,
        )
    }
}

/// Assembles a [`G2MvcResult`] from Phase-I outputs plus clique Phase II.
pub(crate) fn run_clique_phase2(
    g: &Graph,
    p1_out: &[P1Output],
    p1_metrics: Metrics,
    solver: LocalSolver,
    cfg: &RunConfig,
) -> Result<G2MvcResult, SimError> {
    let n = g.num_nodes();
    let per_node: Vec<Vec<FEdge>> = (0..n)
        .map(|i| {
            let o = &p1_out[i];
            f_edges_for_node(NodeId::from_index(i), !o.in_s, &o.r_neighbors, |_| 1)
        })
        .collect();
    // Clean bound: one edge per round per node plus the Done/Verdict
    // exchange — the upload finishes in k_max + O(1) rounds.
    let k_max = per_node.iter().map(Vec::len).max().unwrap_or(0);
    let deadline = cfg.phase_deadline(k_max + 8);
    let nodes = per_node
        .into_iter()
        .zip(p1_out)
        .map(|(items, o)| CliquePhase2::new(items, o.in_s, solver).with_deadline(deadline))
        .collect();
    let p2 = Simulator::congested_clique(g).run_cfg(nodes, cfg)?;

    // Special case n == 1: the leader never answers itself over the wire.
    let mut cover: Vec<bool> = p2.outputs.iter().map(|&(in_c, _)| in_c).collect();
    if n == 1 {
        cover[0] = p1_out[0].in_s;
    }
    let s_size = p1_out.iter().filter(|o| o.in_s).count();
    let total = cover.iter().filter(|&&b| b).count();
    let mut phase2_metrics = p2.metrics;
    phase2_metrics.fault.degraded += p2.outputs.iter().filter(|&&(_, t)| t).count() as u64;

    Ok(G2MvcResult {
        cover,
        s_size,
        r_star_size: total - s_size,
        phase1_metrics: p1_metrics,
        phase2_metrics,
    })
}

/// Runs Corollary 10's deterministic CONGESTED CLIQUE algorithm.
///
/// # Errors
///
/// Propagates [`SimError`] on model violations.
///
/// # Example
///
/// ```
/// use pga_graph::generators;
/// use pga_graph::cover::is_vertex_cover_on_square;
/// use pga_core::mvc::clique_det::g2_mvc_clique_det;
/// use pga_core::mvc::congest::LocalSolver;
///
/// let g = generators::clique_chain(3, 5);
/// let r = g2_mvc_clique_det(&g, 0.5, LocalSolver::Exact).unwrap();
/// assert!(is_vertex_cover_on_square(&g, &r.cover));
/// ```
pub fn g2_mvc_clique_det(
    g: &Graph,
    eps: f64,
    solver: LocalSolver,
) -> Result<G2MvcResult, SimError> {
    g2_mvc_clique_det_cfg(g, eps, solver, &RunConfig::new())
}

/// [`g2_mvc_clique_det`] on an explicit simulation [`Engine`].
///
/// # Errors
///
/// Propagates [`SimError`] like [`g2_mvc_clique_det`].
#[deprecated(since = "0.1.0", note = "use g2_mvc_clique_det_cfg with a RunConfig")]
pub fn g2_mvc_clique_det_with(
    g: &Graph,
    eps: f64,
    solver: LocalSolver,
    engine: Engine,
) -> Result<G2MvcResult, SimError> {
    g2_mvc_clique_det_cfg(g, eps, solver, &RunConfig::new().engine(engine))
}

/// [`g2_mvc_clique_det`] under an explicit [`RunConfig`] (engine, thread
/// count, scheduling policy, packed message plane, `G²` preprocessing).
///
/// Every configuration is bit-identical; a parallel engine simply runs
/// large instances faster. With
/// [`G2Prep::Bmm`](pga_congest::G2Prep::Bmm) selected, Phase I first
/// materializes exact `G²` rows via [`pga_congest::clique_bmm`] and
/// then runs a three-round-per-iteration direct machine on them (the
/// relay round disappears); the cover is provably the relay cover bit
/// for bit, and the preprocessing rounds are charged to
/// `phase1_metrics`. If any row overflows the word budget, Phase I
/// falls back wholesale to the relay machine, preserving the guarantee.
///
/// # Errors
///
/// Propagates [`SimError`] like [`g2_mvc_clique_det`].
pub fn g2_mvc_clique_det_cfg(
    g: &Graph,
    eps: f64,
    solver: LocalSolver,
    cfg: &RunConfig,
) -> Result<G2MvcResult, SimError> {
    let n = g.num_nodes();
    if eps >= 1.0 {
        return Ok(G2MvcResult {
            cover: vec![true; n],
            s_size: n,
            r_star_size: 0,
            phase1_metrics: Metrics::default(),
            phase2_metrics: Metrics::default(),
        });
    }
    let l = crate::mvc::congest::threshold_for_eps(eps);
    let (p1_out, p1_metrics) = run_phase1_with_prep(g, l, default_cap_words(n), cfg)?;
    run_clique_phase2(g, &p1_out, p1_metrics, solver, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mvc::congest::g2_mvc_congest;
    use pga_exact::vc::mvc_size;
    use pga_graph::cover::is_vertex_cover_on_square;
    use pga_graph::generators;
    use pga_graph::power::square;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn valid_and_approximate() {
        let mut rng = StdRng::seed_from_u64(81);
        for _ in 0..8 {
            let g = generators::connected_gnp(15, 0.15, &mut rng);
            let r = g2_mvc_clique_det(&g, 0.5, LocalSolver::Exact).unwrap();
            assert!(is_vertex_cover_on_square(&g, &r.cover));
            let opt = mvc_size(&square(&g));
            assert!(r.size() as f64 <= 1.5 * opt as f64 + 1e-9);
        }
    }

    #[test]
    fn phase2_much_faster_than_congest() {
        // On a long path the CONGEST Phase II pays Θ(n) for pipelining;
        // the clique Phase II pays O(1/ε).
        let g = generators::path(60);
        let congest = g2_mvc_congest(&g, 0.5, LocalSolver::Exact).unwrap();
        let clique = g2_mvc_clique_det(&g, 0.5, LocalSolver::Exact).unwrap();
        assert!(
            clique.phase2_metrics.rounds * 4 < congest.phase2_metrics.rounds,
            "clique {} vs congest {}",
            clique.phase2_metrics.rounds,
            congest.phase2_metrics.rounds
        );
        assert!(is_vertex_cover_on_square(&g, &clique.cover));
    }

    #[test]
    fn same_cover_size_as_congest_variant() {
        // Both run the same Phase I and an exact Phase II, so sizes match.
        let g = generators::clique_chain(4, 5);
        let a = g2_mvc_congest(&g, 0.5, LocalSolver::Exact).unwrap();
        let b = g2_mvc_clique_det(&g, 0.5, LocalSolver::Exact).unwrap();
        assert_eq!(a.size(), b.size());
    }

    #[test]
    fn works_on_disconnected_graphs() {
        // The clique topology does not need G to be connected.
        let g = generators::disjoint_union(&generators::star(6), &generators::cycle(5));
        let r = g2_mvc_clique_det(&g, 0.5, LocalSolver::Exact).unwrap();
        assert!(is_vertex_cover_on_square(&g, &r.cover));
    }

    #[test]
    fn trivial_eps() {
        let g = generators::path(5);
        let r = g2_mvc_clique_det(&g, 1.5, LocalSolver::Exact).unwrap();
        assert_eq!(r.size(), 5);
    }

    #[test]
    fn single_node() {
        let r = g2_mvc_clique_det(&Graph::empty(1), 0.5, LocalSolver::Exact).unwrap();
        assert_eq!(r.size(), 0);
    }

    #[test]
    fn bmm_prep_cover_bit_identical_to_relay() {
        let mut rng = StdRng::seed_from_u64(29);
        let graphs = vec![
            generators::clique_chain(4, 6),
            generators::complete_bipartite(7, 7),
            generators::connected_gnp(25, 0.25, &mut rng),
            generators::planted_partition(96, 6, 0.5, 0.02, 9),
        ];
        for g in graphs {
            let relay = g2_mvc_clique_det(&g, 0.5, LocalSolver::Exact).unwrap();
            let bmm =
                g2_mvc_clique_det_cfg(&g, 0.5, LocalSolver::Exact, &RunConfig::new().bmm_prep())
                    .unwrap();
            assert_eq!(relay.cover, bmm.cover, "covers diverged");
            assert!(is_vertex_cover_on_square(&g, &bmm.cover));
            // The BMM pipeline pays its materialization up front (every
            // graph here has edges, so blocks were exchanged), but the
            // direct machine may still win on totals: it never pays the
            // relay's MaxCand storm.
            assert!(bmm.phase1_metrics.messages > 0);
        }
    }

    #[test]
    fn bmm_prep_bit_identical_across_engines_and_threads() {
        let g = generators::planted_partition(128, 4, 0.4, 0.03, 17);
        let base = RunConfig::new().bmm_prep();
        let reference = g2_mvc_clique_det_cfg(&g, 0.5, LocalSolver::Exact, &base).unwrap();
        assert!(is_vertex_cover_on_square(&g, &reference.cover));
        for threads in [1usize, 2, 4, 8] {
            for codec in [false, true] {
                let cfg = base.parallel(threads).codec(codec);
                let r = g2_mvc_clique_det_cfg(&g, 0.5, LocalSolver::Exact, &cfg).unwrap();
                assert_eq!(
                    reference.cover, r.cover,
                    "threads={threads} codec={codec} diverged"
                );
                assert_eq!(reference.phase1_metrics, r.phase1_metrics);
            }
        }
    }
}

#[cfg(test)]
mod codec_roundtrip_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_fedge() -> impl Strategy<Value = FEdge> {
        (
            any::<u32>(),
            any::<u32>(),
            any::<bool>(),
            any::<u64>(),
            any::<u64>(),
        )
            .prop_map(|(from, to, from_in_u, from_weight, to_weight)| FEdge {
                from: NodeId(from),
                to: NodeId(to),
                from_in_u,
                from_weight,
                to_weight,
            })
    }

    /// Every arm of [`CliqueMsg`], with full-range edge payloads.
    fn arb_msg() -> impl Strategy<Value = CliqueMsg> {
        prop_oneof![
            arb_fedge().prop_map(CliqueMsg::Edge),
            Just(CliqueMsg::Done),
            any::<bool>().prop_map(CliqueMsg::Verdict),
        ]
    }

    proptest! {
        #[test]
        fn clique_msg_codec_roundtrips(m in arb_msg()) {
            prop_assert_eq!(CliqueMsg::decode(m.encode()), m);
        }
    }
}
