//! Theorem 11: a randomized `(1 + ε)`-approximation for `G²`-MVC in the
//! CONGESTED CLIQUE, in `O(log n + 1/ε)` rounds.
//!
//! Phase I replaces the sequential 2-hop symmetry breaking with the
//! randomized *voting scheme* (following \[JRS02\]/\[CD18\]): every candidate
//! draws a random rank in `[n⁴]`; every remaining vertex votes for its
//! highest-ranked candidate neighbor; a candidate that collects at least
//! `d_R(c)/8` votes is **successful** and its remaining neighborhood joins
//! the cover. The potential `Φ = Σ_c d_R(c)` drops by a constant factor
//! per iteration in expectation (Claim 1 of the paper), so `O(log n)`
//! iterations suffice w.h.p. Phase II is the clique upload of Corollary
//! 10.
//!
//! A candidate here is a vertex with `d_R(c) > 8/ε + 2`; consequently
//! Phase II still only uploads `O(n/ε)` edges, and every harvested voter
//! block is a `G²`-clique of size `> 1/ε`, preserving the `(1 + ε)`
//! accounting of Lemma 5.

use crate::mvc::clique_det::run_clique_phase2;
use crate::mvc::congest::G2MvcResult;
use crate::mvc::phase1::P1Output;
use crate::mvc::phase1_direct::merge_metrics;
use crate::mvc::remainder::LocalSolver;
use pga_congest::{
    clique_bmm, default_cap_words, Algorithm, Ctx, Engine, G2Prep, Metrics, MsgCodec, MsgSize,
    RunConfig, SimError, Simulator,
};
use pga_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Messages of the randomized voting Phase I.
#[derive(Clone, Debug, PartialEq, Eq)]
enum VoteMsg {
    /// "I am a candidate with this random rank."
    Cand(u64),
    /// "You are my highest-ranked candidate neighbor: my vote."
    Vote,
    /// "I was successful; join S."
    JoinS,
    /// "I left R."
    LeftR,
}

impl MsgSize for VoteMsg {
    fn size_bits(&self, id_bits: usize) -> usize {
        2 + match self {
            VoteMsg::Cand(_) => 4 * id_bits, // a rank in [n⁴]
            _ => 0,
        }
    }
}

// Packed layout (u128): bits 0..2 tag, bits 2..66 the candidate rank.
impl MsgCodec for VoteMsg {
    type Word = u128;

    fn encode(&self) -> u128 {
        match self {
            VoteMsg::Cand(rank) => u128::from(*rank) << 2,
            VoteMsg::Vote => 1,
            VoteMsg::JoinS => 2,
            VoteMsg::LeftR => 3,
        }
    }

    fn decode(word: u128) -> Self {
        match word & 0x3 {
            0 => VoteMsg::Cand((word >> 2) as u64),
            1 => VoteMsg::Vote,
            2 => VoteMsg::JoinS,
            _ => VoteMsg::LeftR,
        }
    }
}

struct VotePhase1 {
    /// Candidacy threshold: eligible while `d_R > 8/ε + 2`.
    threshold: f64,
    rng: StdRng,
    in_c: bool,
    in_s: bool,
    r_neighbors: Vec<NodeId>,
    candidate_now: bool,
    votes: usize,
    initialized: bool,
    /// Phase deadline in rounds (see `Phase1::with_deadline`). The
    /// voting phase is randomized — only w.h.p. `O(log n)` iterations —
    /// so under message loss a deadline is what guarantees termination.
    deadline: Option<usize>,
    timed_out: bool,
}

impl VotePhase1 {
    fn new(eps: f64, seed: u64, id: usize) -> Self {
        VotePhase1 {
            threshold: 8.0 / eps + 2.0,
            rng: StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9e3779b97f4a7c15)),
            in_c: true,
            in_s: false,
            r_neighbors: Vec::new(),
            candidate_now: false,
            votes: 0,
            initialized: false,
            deadline: None,
            timed_out: false,
        }
    }

    /// Arms the phase timeout (same conservative fallback as
    /// `Phase1::with_deadline`: withdraw from `C`, keep the stale —
    /// superset — R-neighborhood).
    fn with_deadline(mut self, deadline: Option<usize>) -> Self {
        self.deadline = deadline;
        self
    }

    fn eligible(&self) -> bool {
        self.in_c && self.r_neighbors.len() as f64 > self.threshold
    }

    fn remove_r_neighbor(&mut self, v: NodeId) {
        if let Ok(pos) = self.r_neighbors.binary_search(&v) {
            self.r_neighbors.remove(pos);
        }
    }
}

impl Algorithm for VotePhase1 {
    type Msg = VoteMsg;
    type Output = P1Output;

    fn round(&mut self, ctx: &Ctx, inbox: &[(NodeId, VoteMsg)]) -> Vec<(NodeId, VoteMsg)> {
        if !self.initialized {
            self.r_neighbors = ctx.graph_neighbors.to_vec();
            self.initialized = true;
        }
        let mut out = Vec::new();
        let mut joined_now = false;
        let mut best_candidate: Option<(u64, NodeId)> = None;
        for (from, msg) in inbox {
            match msg {
                VoteMsg::Cand(rank) => {
                    let key = (*rank, *from);
                    if best_candidate.is_none_or(|b| key > b) {
                        best_candidate = Some(key);
                    }
                }
                VoteMsg::Vote => self.votes += 1,
                VoteMsg::JoinS => {
                    if !self.in_s {
                        self.in_s = true;
                        joined_now = true;
                    }
                }
                VoteMsg::LeftR => self.remove_r_neighbor(*from),
            }
        }

        // Phase-timeout fallback: an undecided node past the deadline
        // withdraws from C (conservative — see `with_deadline`).
        if let Some(d) = self.deadline {
            if ctx.round >= d && self.eligible() {
                self.in_c = false;
                self.candidate_now = false;
                self.timed_out = true;
                return out;
            }
        }

        match ctx.round % 4 {
            0 => {
                self.candidate_now = self.eligible();
                self.votes = 0;
                if self.candidate_now {
                    let rank: u64 = self.rng.random();
                    for &v in ctx.graph_neighbors {
                        out.push((v, VoteMsg::Cand(rank)));
                    }
                }
            }
            1 => {
                // A vertex still in R votes for its best candidate
                // neighbor. (Vertices already in S do not vote; their
                // edges are covered.)
                if !self.in_s {
                    if let Some((_, c)) = best_candidate {
                        out.push((c, VoteMsg::Vote));
                    }
                }
            }
            2 => {
                if self.candidate_now {
                    let d_r = self.r_neighbors.len();
                    if self.votes * 8 >= d_r && d_r > 0 {
                        // Successful: neighbors in R join S; leave C.
                        self.in_c = false;
                        for &v in self.r_neighbors.clone().iter() {
                            out.push((v, VoteMsg::JoinS));
                        }
                        self.r_neighbors.clear();
                    }
                }
            }
            3 => {
                if joined_now {
                    for &v in ctx.graph_neighbors {
                        out.push((v, VoteMsg::LeftR));
                    }
                }
            }
            _ => unreachable!(),
        }
        out
    }

    fn is_done(&self, _ctx: &Ctx) -> bool {
        self.initialized && !self.eligible()
    }

    fn can_skip(&self, ctx: &Ctx) -> bool {
        // A stale `candidate_now` would mark this vertex a candidate in
        // the vote-counting step on re-activation; it is cleared by the
        // next invoked Step 1, so the node stays active until then.
        self.is_done(ctx) && !self.candidate_now
    }

    fn output(&self, _ctx: &Ctx) -> P1Output {
        P1Output {
            in_s: self.in_s,
            r_neighbors: self.r_neighbors.clone(),
            timed_out: self.timed_out,
        }
    }
}

/// Runs Theorem 11's randomized CONGESTED CLIQUE algorithm.
///
/// `seed` makes the voting reproducible.
///
/// # Errors
///
/// Propagates [`SimError`] on model violations.
///
/// # Example
///
/// ```
/// use pga_graph::generators;
/// use pga_graph::cover::is_vertex_cover_on_square;
/// use pga_core::mvc::clique_rand::g2_mvc_clique_rand;
/// use pga_core::mvc::congest::LocalSolver;
///
/// let g = generators::complete_bipartite(8, 8);
/// let r = g2_mvc_clique_rand(&g, 0.5, LocalSolver::Exact, 7).unwrap();
/// assert!(is_vertex_cover_on_square(&g, &r.cover));
/// ```
pub fn g2_mvc_clique_rand(
    g: &Graph,
    eps: f64,
    solver: LocalSolver,
    seed: u64,
) -> Result<G2MvcResult, SimError> {
    g2_mvc_clique_rand_cfg(g, eps, solver, seed, &RunConfig::new())
}

/// [`g2_mvc_clique_rand`] on an explicit simulation [`Engine`].
///
/// # Errors
///
/// Propagates [`SimError`] like [`g2_mvc_clique_rand`].
#[deprecated(since = "0.1.0", note = "use g2_mvc_clique_rand_cfg with a RunConfig")]
pub fn g2_mvc_clique_rand_with(
    g: &Graph,
    eps: f64,
    solver: LocalSolver,
    seed: u64,
    engine: Engine,
) -> Result<G2MvcResult, SimError> {
    g2_mvc_clique_rand_cfg(g, eps, solver, seed, &RunConfig::new().engine(engine))
}

/// [`g2_mvc_clique_rand`] under an explicit [`RunConfig`] (engine,
/// thread count, scheduling policy, packed message plane, `G²`
/// preprocessing).
///
/// Every configuration is bit-identical — the same `seed` yields the
/// same cover under any configuration; a parallel engine simply runs
/// large instances faster.
///
/// With [`G2Prep::Bmm`] selected, the pipeline first materializes
/// exact `G²` rows via [`clique_bmm`] and charges the materialization
/// to `phase1_metrics`. The voting Phase I itself is strictly one-hop,
/// so the rows cannot change its trajectory — the cover is the relay
/// cover by construction. The knob exists so the randomized pipeline
/// can be compared apples-to-apples with the deterministic one, which
/// *does* consume the rows: selecting it here measures what row
/// materialization costs this pipeline in rounds and bits.
///
/// # Errors
///
/// Propagates [`SimError`] like [`g2_mvc_clique_rand`].
pub fn g2_mvc_clique_rand_cfg(
    g: &Graph,
    eps: f64,
    solver: LocalSolver,
    seed: u64,
    cfg: &RunConfig,
) -> Result<G2MvcResult, SimError> {
    let n = g.num_nodes();
    if eps >= 1.0 {
        return Ok(G2MvcResult {
            cover: vec![true; n],
            s_size: n,
            r_star_size: 0,
            phase1_metrics: Metrics::default(),
            phase2_metrics: Metrics::default(),
        });
    }
    let prep_metrics = match cfg.g2_prep {
        G2Prep::Relay => None,
        G2Prep::Bmm => Some(clique_bmm(g, default_cap_words(n), cfg)?.metrics),
    };
    // Clean w.h.p. bound: O(log n) voting iterations of 4 rounds. The
    // deadline also guarantees termination when the potential-drop
    // argument is broken by message loss.
    let bits = usize::BITS - n.leading_zeros();
    let p1_deadline = cfg.phase_deadline(4 * (4 * bits as usize + 8) + 8);
    let p1 = Simulator::congested_clique(g).run_cfg(
        (0..n)
            .map(|i| VotePhase1::new(eps, seed, i).with_deadline(p1_deadline))
            .collect(),
        cfg,
    )?;
    let mut p1_metrics = match prep_metrics {
        Some(prep) => merge_metrics(prep, p1.metrics),
        None => p1.metrics,
    };
    p1_metrics.fault.degraded += p1.outputs.iter().filter(|o| o.timed_out).count() as u64;
    run_clique_phase2(g, &p1.outputs, p1_metrics, solver, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_exact::vc::mvc_size;
    use pga_graph::cover::is_vertex_cover_on_square;
    use pga_graph::generators;
    use pga_graph::power::square;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn valid_and_approximate() {
        let mut rng = StdRng::seed_from_u64(91);
        for seed in 0..6 {
            let g = generators::connected_gnp(30, 0.4, &mut rng);
            let r = g2_mvc_clique_rand(&g, 0.5, LocalSolver::Exact, seed).unwrap();
            assert!(is_vertex_cover_on_square(&g, &r.cover));
            let opt = mvc_size(&square(&g));
            assert!(
                r.size() as f64 <= 1.5 * opt as f64 + 1e-9,
                "seed {seed}: {} vs opt {opt}",
                r.size()
            );
        }
    }

    #[test]
    fn voting_fires_on_dense_graphs() {
        // K_{20,20}: degrees 20 > 8/ε + 2 = 18 for ε = 1/2, so candidates
        // exist and harvesting happens.
        let g = generators::complete_bipartite(20, 20);
        let r = g2_mvc_clique_rand(&g, 0.5, LocalSolver::Exact, 3).unwrap();
        assert!(r.s_size >= 20, "voting should harvest at least one side");
        assert!(is_vertex_cover_on_square(&g, &r.cover));
    }

    #[test]
    fn logarithmic_phase1_iterations() {
        // Phase I must terminate in few iterations on a dense graph; with
        // 4 rounds per iteration, check a generous O(log n) cap.
        let g = generators::complete(64);
        let r = g2_mvc_clique_rand(&g, 0.25, LocalSolver::Exact, 11).unwrap();
        let iters = r.phase1_metrics.rounds.div_ceil(4);
        assert!(iters <= 40, "{iters} iterations is not logarithmic-ish");
        assert!(is_vertex_cover_on_square(&g, &r.cover));
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::complete_bipartite(12, 12);
        let a = g2_mvc_clique_rand(&g, 0.5, LocalSolver::Exact, 5).unwrap();
        let b = g2_mvc_clique_rand(&g, 0.5, LocalSolver::Exact, 5).unwrap();
        assert_eq!(a.cover, b.cover);
        assert_eq!(a.total_rounds(), b.total_rounds());
    }

    #[test]
    fn bmm_prep_same_cover_extra_prep_metrics() {
        // The voting Phase I is one-hop: BMM prep cannot change the
        // cover, only the accounting.
        let g = generators::complete_bipartite(12, 12);
        let relay = g2_mvc_clique_rand(&g, 0.5, LocalSolver::Exact, 5).unwrap();
        let bmm =
            g2_mvc_clique_rand_cfg(&g, 0.5, LocalSolver::Exact, 5, &RunConfig::new().bmm_prep())
                .unwrap();
        assert_eq!(relay.cover, bmm.cover);
        assert!(
            bmm.phase1_metrics.rounds > relay.phase1_metrics.rounds,
            "prep rounds must be charged: {} vs {}",
            bmm.phase1_metrics.rounds,
            relay.phase1_metrics.rounds
        );
        assert!(bmm.phase1_metrics.bits > relay.phase1_metrics.bits);
    }

    #[test]
    fn sparse_graph_skips_phase1() {
        // A path has max degree 2 ≤ 8/ε + 2: no candidates, everything is
        // solved by the leader.
        let g = generators::path(20);
        let r = g2_mvc_clique_rand(&g, 0.5, LocalSolver::Exact, 1).unwrap();
        assert_eq!(r.s_size, 0);
        assert!(is_vertex_cover_on_square(&g, &r.cover));
        let opt = mvc_size(&square(&g));
        assert_eq!(r.size(), opt, "exact leader solve on the whole graph");
    }
}

#[cfg(test)]
mod codec_roundtrip_tests {
    use super::*;
    use proptest::prelude::*;

    /// Every arm of [`VoteMsg`], with full-range ranks.
    fn arb_msg() -> impl Strategy<Value = VoteMsg> {
        prop_oneof![
            any::<u64>().prop_map(VoteMsg::Cand),
            Just(VoteMsg::Vote),
            Just(VoteMsg::JoinS),
            Just(VoteMsg::LeftR),
        ]
    }

    proptest! {
        #[test]
        fn vote_msg_codec_roundtrips(m in arb_msg()) {
            prop_assert_eq!(VoteMsg::decode(m.encode()), m);
        }
    }
}
