//! Phase II of Algorithm 1: the leader reconstructs `H = G²[U]` from the
//! edge set `F` (Lemma 3) and covers it locally.
//!
//! `F = {{u, v} ∈ E : u ∈ U}` is the set of `G`-edges with at least one
//! endpoint outside the Phase-I cover. Every node is responsible for
//! reporting its edges into `U`; the leader rebuilds the square-induced
//! remainder `H` as
//!
//! `F' = (F ∩ U×U) ∪ {{u₁,u₂} ⊆ U : ∃w, {u₁,w} ∈ F ∧ {u₂,w} ∈ F}`
//!
//! and solves (weighted) vertex cover on it with unbounded local
//! computation, exactly as the CONGEST model permits.

use pga_congest::primitives::GsPack;
use pga_congest::MsgSize;
use pga_exact::vc::solve_mvc;
use pga_exact::wvc::solve_mwvc;
use pga_graph::matching::two_approx_vertex_cover;
use pga_graph::{Graph, GraphBuilder, NodeId, VertexWeights};
use std::collections::HashMap;

use crate::mvc::centralized::five_thirds_vertex_cover;

/// One reported edge of `F`, tagged with what the sender knows: the sender
/// (`from`), a neighbor in `U` (`to`), whether the sender itself is in `U`,
/// and the vertex weights (1 in the unweighted case).
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct FEdge {
    pub from: NodeId,
    pub to: NodeId,
    pub from_in_u: bool,
    pub from_weight: u64,
    pub to_weight: u64,
}

fn weight_bits(w: u64) -> usize {
    (64 - w.leading_zeros() as usize).max(1)
}

impl MsgSize for FEdge {
    fn size_bits(&self, id_bits: usize) -> usize {
        2 * id_bits + 1 + weight_bits(self.from_weight) + weight_bits(self.to_weight)
    }
}

/// A bare node id used as a downcast item ("this vertex is in `R*`").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct CoverId(pub NodeId);

impl MsgSize for CoverId {
    fn size_bits(&self, id_bits: usize) -> usize {
        id_bits
    }
}

// Packing the Phase-II gather–scatter payloads (an FEdge is up to 193
// declared bits — two ids, a membership flag, and two weights — so it
// needs all three payload words plus the envelope flag bit).
impl GsPack for FEdge {
    fn pack3(&self) -> ([u64; 3], bool) {
        (
            [
                u64::from(self.from.0) | (u64::from(self.to.0) << 32),
                self.from_weight,
                self.to_weight,
            ],
            self.from_in_u,
        )
    }

    fn unpack3(words: [u64; 3], flag: bool) -> Self {
        FEdge {
            from: NodeId(words[0] as u32),
            to: NodeId((words[0] >> 32) as u32),
            from_in_u: flag,
            from_weight: words[1],
            to_weight: words[2],
        }
    }
}

impl GsPack for CoverId {
    fn pack3(&self) -> ([u64; 3], bool) {
        ([u64::from(self.0 .0), 0, 0], false)
    }

    fn unpack3(words: [u64; 3], _flag: bool) -> Self {
        CoverId(NodeId(words[0] as u32))
    }
}

/// How the leader covers the remainder graph `H = G²[U]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LocalSolver {
    /// Optimal cover by branch and bound — the paper's Algorithm 1
    /// (unbounded local computation, overall factor `1 + ε`).
    Exact,
    /// The centralized 5/3-approximation of Theorem 12 — the paper's
    /// Corollary 17 (polynomial local computation, overall factor
    /// `max(1 + ε, 5/3)`).
    FiveThirds,
    /// Maximal-matching 2-approximation (polynomial, overall factor
    /// `max(1 + ε, 2)`); provided as an ablation baseline.
    TwoApprox,
}

/// The remainder graph reconstructed from `F`, with id mappings.
pub(crate) struct RemainderGraph {
    pub h: Graph,
    pub to_host: Vec<NodeId>,
    pub weights: Vec<u64>,
}

/// Rebuilds `H = G²[U]` from the gathered edge reports (Lemma 3).
pub(crate) fn build_remainder(edges: &[FEdge]) -> RemainderGraph {
    // Identify U: every `to` endpoint is in U by construction; a `from`
    // endpoint is in U iff tagged.
    let mut u_weight: HashMap<NodeId, u64> = HashMap::new();
    for e in edges {
        u_weight.insert(e.to, e.to_weight);
        if e.from_in_u {
            u_weight.insert(e.from, e.from_weight);
        }
    }
    let mut u_vertices: Vec<NodeId> = u_weight.keys().copied().collect();
    u_vertices.sort_unstable();
    let index: HashMap<NodeId, usize> = u_vertices
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i))
        .collect();

    // F as adjacency over all mentioned vertices (deduplicated).
    let mut f_adj: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for e in edges {
        f_adj.entry(e.from).or_default().push(e.to);
        f_adj.entry(e.to).or_default().push(e.from);
    }
    for list in f_adj.values_mut() {
        list.sort_unstable();
        list.dedup();
    }

    let mut b = GraphBuilder::new(u_vertices.len());
    // Direct F-edges inside U.
    for e in edges {
        if let (Some(&i), Some(&j)) = (index.get(&e.from), index.get(&e.to)) {
            b.add_edge(NodeId::from_index(i), NodeId::from_index(j));
        }
    }
    // Two-paths through any vertex w: every pair of F-neighbors of w that
    // lie in U is a G²[U] edge.
    for nbrs in f_adj.values() {
        let in_u: Vec<usize> = nbrs.iter().filter_map(|v| index.get(v).copied()).collect();
        for (a, &i) in in_u.iter().enumerate() {
            for &j in &in_u[a + 1..] {
                b.add_edge(NodeId::from_index(i), NodeId::from_index(j));
            }
        }
    }

    let weights = u_vertices.iter().map(|v| u_weight[v]).collect();
    RemainderGraph {
        h: b.build(),
        to_host: u_vertices,
        weights,
    }
}

/// Solves vertex cover on the reconstructed remainder and returns the
/// chosen host ids.
pub(crate) fn solve_remainder(edges: &[FEdge], solver: LocalSolver) -> Vec<CoverId> {
    let rem = build_remainder(edges);
    let cover = match solver {
        LocalSolver::Exact => solve_mvc(&rem.h),
        LocalSolver::FiveThirds => five_thirds_vertex_cover(&rem.h).cover,
        LocalSolver::TwoApprox => two_approx_vertex_cover(&rem.h),
    };
    cover
        .iter()
        .enumerate()
        .filter(|&(_, &m)| m)
        .map(|(i, _)| CoverId(rem.to_host[i]))
        .collect()
}

/// Weighted variant: the leader solves minimum *weighted* vertex cover on
/// the remainder optimally (Theorem 7 keeps the exact local solve).
pub(crate) fn solve_remainder_weighted(edges: &[FEdge]) -> Vec<CoverId> {
    let rem = build_remainder(edges);
    let w = VertexWeights::from_vec(rem.weights.clone());
    let cover = solve_mwvc(&rem.h, &w);
    cover
        .iter()
        .enumerate()
        .filter(|&(_, &m)| m)
        .map(|(i, _)| CoverId(rem.to_host[i]))
        .collect()
}

/// Builds the `F`-edge reports for a node, given its final `R`-neighbor
/// list and its own membership — the per-node input to Phase II.
pub(crate) fn f_edges_for_node(
    id: NodeId,
    in_u: bool,
    r_neighbors: &[NodeId],
    weight_of: impl Fn(NodeId) -> u64,
) -> Vec<FEdge> {
    r_neighbors
        .iter()
        .map(|&u| FEdge {
            from: id,
            to: u,
            from_in_u: in_u,
            from_weight: weight_of(id),
            to_weight: weight_of(u),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_graph::cover::{is_vertex_cover, membership};
    use pga_graph::generators;
    use pga_graph::power::square;
    use pga_graph::subgraph::induced_subgraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds the F-edge reports exactly as the distributed nodes would,
    /// given a cover set S, and checks the reconstruction equals G²[U].
    fn check_reconstruction(g: &Graph, in_s: &[bool]) {
        let n = g.num_nodes();
        let mut edges = Vec::new();
        for v in g.nodes() {
            let r_nb: Vec<NodeId> = g
                .neighbors(v)
                .iter()
                .copied()
                .filter(|u| !in_s[u.index()])
                .collect();
            edges.extend(f_edges_for_node(v, !in_s[v.index()], &r_nb, |_| 1));
        }
        let rem = build_remainder(&edges);
        // Oracle: G²[U] restricted to non-isolated vertices.
        let g2 = square(g);
        let keep: Vec<bool> = (0..n).map(|i| !in_s[i]).collect();
        let sub = induced_subgraph(&g2, &keep);
        // Compare edge sets via host-id pairs.
        let mut got: Vec<(NodeId, NodeId)> = rem
            .h
            .edges()
            .map(|(a, b)| {
                let (x, y) = (rem.to_host[a.index()], rem.to_host[b.index()]);
                (x.min(y), x.max(y))
            })
            .collect();
        got.sort_unstable();
        let mut want: Vec<(NodeId, NodeId)> = sub
            .graph
            .edges()
            .map(|(a, b)| {
                let (x, y) = (sub.to_host[a.index()], sub.to_host[b.index()]);
                (x.min(y), x.max(y))
            })
            .collect();
        want.sort_unstable();
        assert_eq!(got, want, "H must equal G²[U]");
    }

    #[test]
    fn lemma3_reconstruction_random() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..20 {
            let g = generators::gnp(16, 0.2, &mut rng);
            // Random S.
            let in_s: Vec<bool> = (0..16).map(|i| i % 3 == 0).collect();
            check_reconstruction(&g, &in_s);
        }
    }

    #[test]
    fn lemma3_reconstruction_empty_s() {
        // S = ∅: H must be all of G² (minus isolated vertices).
        let g = generators::caterpillar(5, 2);
        check_reconstruction(&g, &vec![false; g.num_nodes()]);
    }

    #[test]
    fn lemma3_reconstruction_full_s() {
        let g = generators::cycle(6);
        let n = g.num_nodes();
        let mut edges = Vec::new();
        for v in g.nodes() {
            edges.extend(f_edges_for_node(v, false, &[], |_| 1));
        }
        let rem = build_remainder(&edges);
        assert_eq!(rem.h.num_nodes(), 0);
        let _ = n;
    }

    #[test]
    fn two_paths_through_s_vertices_caught() {
        // Star: center in S, leaves in U. Leaves are pairwise G²-adjacent
        // through the S-center; only the center reports edges.
        let g = generators::star(5);
        let in_s = membership(5, &[NodeId(0)]);
        check_reconstruction(&g, &in_s);
        // And the cover of the remainder must cover the leaf clique.
        let mut edges = Vec::new();
        for v in g.nodes() {
            let r_nb: Vec<NodeId> = g
                .neighbors(v)
                .iter()
                .copied()
                .filter(|u| !in_s[u.index()])
                .collect();
            edges.extend(f_edges_for_node(v, !in_s[v.index()], &r_nb, |_| 1));
        }
        let chosen = solve_remainder(&edges, LocalSolver::Exact);
        assert_eq!(chosen.len(), 3, "K4 on the leaves needs 3 vertices");
    }

    #[test]
    fn solvers_produce_valid_covers() {
        let mut rng = StdRng::seed_from_u64(32);
        let g = generators::gnp(14, 0.25, &mut rng);
        let in_s: Vec<bool> = (0..14).map(|i| i % 4 == 0).collect();
        let mut edges = Vec::new();
        for v in g.nodes() {
            let r_nb: Vec<NodeId> = g
                .neighbors(v)
                .iter()
                .copied()
                .filter(|u| !in_s[u.index()])
                .collect();
            edges.extend(f_edges_for_node(v, !in_s[v.index()], &r_nb, |_| 1));
        }
        let rem = build_remainder(&edges);
        for solver in [
            LocalSolver::Exact,
            LocalSolver::FiveThirds,
            LocalSolver::TwoApprox,
        ] {
            let chosen = solve_remainder(&edges, solver);
            // Lift to a membership vector over the remainder and verify.
            let mut mv = vec![false; rem.h.num_nodes()];
            for c in &chosen {
                let idx = rem.to_host.iter().position(|&v| v == c.0).unwrap();
                mv[idx] = true;
            }
            assert!(is_vertex_cover(&rem.h, &mv), "{solver:?} invalid");
        }
    }

    #[test]
    fn weighted_remainder_solved_optimally() {
        // Path 0-1-2 all in U with weights 1, 10, 1: G²[U] is a triangle;
        // optimal weighted cover = {0, 2} with weight 2.
        let g = generators::path(3);
        let weights = [1u64, 10, 1];
        let mut edges = Vec::new();
        for v in g.nodes() {
            let r_nb: Vec<NodeId> = g.neighbors(v).to_vec();
            edges.extend(f_edges_for_node(v, true, &r_nb, |u| weights[u.index()]));
        }
        let chosen = solve_remainder_weighted(&edges);
        let ids: Vec<u32> = chosen.iter().map(|c| c.0 .0).collect();
        assert_eq!(ids, vec![0, 2]);
    }
}

#[cfg(test)]
mod codec_roundtrip_tests {
    use super::*;
    use pga_congest::primitives::{GsMsg, GsPack};
    use pga_congest::MsgCodec;
    use proptest::prelude::*;

    fn arb_fedge() -> impl Strategy<Value = FEdge> {
        (
            any::<u32>(),
            any::<u32>(),
            any::<bool>(),
            any::<u64>(),
            any::<u64>(),
        )
            .prop_map(|(from, to, from_in_u, from_weight, to_weight)| FEdge {
                from: NodeId(from),
                to: NodeId(to),
                from_in_u,
                from_weight,
                to_weight,
            })
    }

    /// Every arm of the `GsMsg<FEdge, CoverId>` the remainder phase
    /// actually exchanges (Phase II's gather–scatter instantiation).
    fn arb_gs_msg() -> impl Strategy<Value = GsMsg<FEdge, CoverId>> {
        prop_oneof![
            Just(GsMsg::Explore { parent: None }),
            any::<u32>().prop_map(|p| GsMsg::Explore {
                parent: Some(NodeId(p)),
            }),
            arb_fedge().prop_map(GsMsg::Up),
            Just(GsMsg::UpDone),
            any::<u32>().prop_map(|id| GsMsg::Down(CoverId(NodeId(id)))),
            any::<bool>().prop_map(|complete| GsMsg::DownEnd { complete }),
        ]
    }

    proptest! {
        #[test]
        fn fedge_pack3_roundtrips(e in arb_fedge()) {
            let (words, flag) = e.pack3();
            prop_assert_eq!(FEdge::unpack3(words, flag), e);
        }

        #[test]
        fn cover_id_pack3_roundtrips(id in any::<u32>()) {
            let c = CoverId(NodeId(id));
            let (words, flag) = c.pack3();
            prop_assert_eq!(CoverId::unpack3(words, flag), c);
        }

        #[test]
        fn remainder_gs_msg_codec_roundtrips(m in arb_gs_msg()) {
            let word = m.encode();
            prop_assert_eq!(GsMsg::<FEdge, CoverId>::decode(word), m);
        }
    }
}
