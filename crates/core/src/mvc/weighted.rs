//! Theorem 7: a deterministic `(1 + ε)`-approximation for `G²`-minimum
//! *weighted* vertex cover in `O(n log n / ε)` CONGEST rounds.
//!
//! Phase I is the weighted clique harvesting of Section 3.2: a center `c`
//! partitions its neighborhood into weight classes `N_i(c) = {v : w*(c)·2^i
//! ≤ w(v) < w*(c)·2^{i+1}}` (where `w*(c)` is the minimum weight in
//! `N(c)`), and may process class `i` while
//!
//! `w*_i(c) ≤ W_i(c) · ε/(1+ε)`,
//!
//! i.e. while the heaviest remaining vertex of the class is only an
//! ε-fraction of the class weight — precisely the condition under which
//! adding the whole class costs at most `(1+ε)` times what an optimal
//! cover pays on the clique it induces in `G²`. Phase II is identical to
//! the unweighted algorithm with an exact *weighted* local solve.
//!
//! Zero-weight vertices are free: they enter the cover in the initial
//! weight-exchange round, as the paper assumes w.l.o.g.

use crate::mvc::remainder::{f_edges_for_node, solve_remainder_weighted, CoverId, FEdge};
use pga_congest::primitives::{GatherScatter, LeaderCompute};
use pga_congest::{
    Algorithm, Ctx, Engine, Metrics, MsgCodec, MsgSize, RunConfig, SimError, Simulator,
};
use pga_graph::{Graph, NodeId, VertexWeights};
use std::collections::HashMap;
use std::sync::Arc;

/// Result of the weighted distributed run.
#[derive(Clone, Debug)]
pub struct G2MwvcResult {
    /// The computed vertex cover of `G²`.
    pub cover: Vec<bool>,
    /// Weight of the Phase-I part `S`.
    pub s_weight: u64,
    /// Weight of the leader part `R*`.
    pub r_star_weight: u64,
    /// Metrics of Phase I.
    pub phase1_metrics: Metrics,
    /// Metrics of Phase II.
    pub phase2_metrics: Metrics,
}

impl G2MwvcResult {
    /// Total rounds across both phases.
    pub fn total_rounds(&self) -> usize {
        self.phase1_metrics.rounds + self.phase2_metrics.rounds
    }

    /// Total weight of the returned cover.
    pub fn weight(&self, w: &VertexWeights) -> u64 {
        w.subset_weight(&self.cover)
    }
}

/// Messages of weighted Phase I.
#[derive(Clone, Debug, PartialEq, Eq)]
enum WMsg {
    /// Initial exchange: "my weight is ...". Weight 0 doubles as "I am in
    /// the cover already; not in R".
    Weight(u64),
    /// Eligible-center announcement.
    Cand,
    /// Max candidate id over one hop.
    MaxCand(u32),
    /// "Join S" (sent only to the chosen weight class).
    JoinS,
    /// "I left R."
    LeftR,
}

impl MsgSize for WMsg {
    fn size_bits(&self, id_bits: usize) -> usize {
        3 + match self {
            WMsg::Weight(w) => (64 - w.leading_zeros() as usize).max(1),
            WMsg::MaxCand(_) => id_bits,
            _ => 0,
        }
    }
}

// Packed layout (u128): bits 0..3 tag, payload (64-bit weight or 32-bit
// id) starting at bit 3.
impl MsgCodec for WMsg {
    type Word = u128;

    fn encode(&self) -> u128 {
        match self {
            WMsg::Weight(w) => u128::from(*w) << 3,
            WMsg::Cand => 1,
            WMsg::MaxCand(id) => 2 | (u128::from(*id) << 3),
            WMsg::JoinS => 3,
            WMsg::LeftR => 4,
        }
    }

    fn decode(word: u128) -> Self {
        match word & 0x7 {
            0 => WMsg::Weight((word >> 3) as u64),
            1 => WMsg::Cand,
            2 => WMsg::MaxCand((word >> 3) as u32),
            3 => WMsg::JoinS,
            4 => WMsg::LeftR,
            tag => unreachable!("invalid WMsg tag {tag}"),
        }
    }
}

struct WPhase1 {
    eps: f64,
    weight: u64,
    in_c: bool,
    in_s: bool,
    /// Weight of each graph neighbor (filled in round 0→1).
    nbr_weight: HashMap<NodeId, u64>,
    /// Neighbors currently in R.
    r_neighbors: Vec<NodeId>,
    /// Static minimum positive weight in N(v) (the paper's `w*(c)`).
    w_star: Option<u64>,
    candidate_now: bool,
    one_hop_max: Option<u32>,
    /// Phase deadline in rounds (see `Phase1::with_deadline`).
    deadline: Option<usize>,
    timed_out: bool,
}

impl WPhase1 {
    fn new(eps: f64, weight: u64) -> Self {
        WPhase1 {
            eps,
            weight,
            in_c: true,
            in_s: weight == 0, // zero-weight vertices are free cover
            nbr_weight: HashMap::new(),
            r_neighbors: Vec::new(),
            w_star: None,
            candidate_now: false,
            one_hop_max: None,
            deadline: None,
            timed_out: false,
        }
    }

    /// Arms the phase timeout (same conservative fallback as
    /// `Phase1::with_deadline`: withdraw from `C`, keep the stale —
    /// superset — R-neighborhood).
    fn with_deadline(mut self, deadline: Option<usize>) -> Self {
        self.deadline = deadline;
        self
    }

    fn bucket_of(&self, w: u64) -> u32 {
        let ws = self.w_star.expect("buckets need w*");
        (w / ws).ilog2()
    }

    /// Finds the smallest eligible weight class, if any (the paper's
    /// while-condition of Section 3.2).
    fn eligible_bucket(&self) -> Option<u32> {
        if !self.in_c {
            return None;
        }
        self.w_star?;
        let mut w_max: HashMap<u32, u64> = HashMap::new();
        let mut w_sum: HashMap<u32, u64> = HashMap::new();
        for v in &self.r_neighbors {
            let w = self.nbr_weight[v];
            let b = self.bucket_of(w);
            let e = w_max.entry(b).or_insert(0);
            *e = (*e).max(w);
            *w_sum.entry(b).or_insert(0) += w;
        }
        let mut buckets: Vec<u32> = w_max.keys().copied().collect();
        buckets.sort_unstable();
        buckets.into_iter().find(|b| {
            let wm = w_max[b] as f64;
            let ws = w_sum[b] as f64;
            wm <= ws * self.eps / (1.0 + self.eps)
        })
    }

    fn remove_r_neighbor(&mut self, v: NodeId) {
        if let Ok(pos) = self.r_neighbors.binary_search(&v) {
            self.r_neighbors.remove(pos);
        }
    }
}

impl Algorithm for WPhase1 {
    type Msg = WMsg;
    type Output = crate::mvc::phase1::P1Output;

    fn round(&mut self, ctx: &Ctx, inbox: &[(NodeId, WMsg)]) -> Vec<(NodeId, WMsg)> {
        let mut out = Vec::new();
        let mut joined_s_now = false;
        let mut cand_max: Option<u32> = None;
        let mut two_hop_max: Option<u32> = None;

        for (from, msg) in inbox {
            match msg {
                WMsg::Weight(w) => {
                    self.nbr_weight.insert(*from, *w);
                    if *w > 0 {
                        self.r_neighbors.push(*from);
                        self.w_star = Some(self.w_star.map_or(*w, |m| m.min(*w)));
                    }
                }
                WMsg::Cand => {
                    cand_max = Some(cand_max.map_or(from.0, |m: u32| m.max(from.0)));
                }
                WMsg::MaxCand(id) => {
                    two_hop_max = Some(two_hop_max.map_or(*id, |m: u32| m.max(*id)));
                }
                WMsg::JoinS => {
                    if !self.in_s {
                        self.in_s = true;
                        joined_s_now = true;
                    }
                }
                WMsg::LeftR => self.remove_r_neighbor(*from),
            }
        }
        if ctx.round == 1 {
            self.r_neighbors.sort_unstable();
        }

        if ctx.round == 0 {
            for &v in ctx.graph_neighbors {
                out.push((v, WMsg::Weight(self.weight)));
            }
            return out;
        }

        // Phase-timeout fallback: an undecided node past the deadline
        // withdraws from C (conservative — see `with_deadline`).
        if let Some(d) = self.deadline {
            if ctx.round >= d && self.eligible_bucket().is_some() {
                self.in_c = false;
                self.candidate_now = false;
                self.timed_out = true;
                return out;
            }
        }

        // Iterations of four rounds, starting at round 1.
        match (ctx.round - 1) % 4 {
            0 => {
                self.candidate_now = self.eligible_bucket().is_some();
                if self.candidate_now {
                    for &v in ctx.graph_neighbors {
                        out.push((v, WMsg::Cand));
                    }
                }
            }
            1 => {
                let mut m = cand_max;
                if self.candidate_now {
                    m = Some(m.map_or(ctx.id.0, |x| x.max(ctx.id.0)));
                }
                // Store only a real maximum: a `None` here is never read
                // (Step 3 reads under `candidate_now`, whose Step 2 always
                // wrote `Some`), and skipping the write keeps the
                // skippable quiet state genuinely mutation-free for the
                // engine's `can_skip` contract.
                if m.is_some() {
                    self.one_hop_max = m;
                }
                if let Some(m) = m {
                    for &v in ctx.graph_neighbors {
                        out.push((v, WMsg::MaxCand(m)));
                    }
                }
            }
            2 => {
                if self.candidate_now {
                    let mut m = self.one_hop_max.unwrap_or(0).max(ctx.id.0);
                    if let Some(t) = two_hop_max {
                        m = m.max(t);
                    }
                    if m == ctx.id.0 {
                        if let Some(b) = self.eligible_bucket() {
                            // Process exactly one weight class: its members
                            // join S. Unlike the unweighted algorithm the
                            // center stays in C (other classes may become
                            // eligible later); it simply re-evaluates.
                            let members: Vec<NodeId> = self
                                .r_neighbors
                                .iter()
                                .copied()
                                .filter(|v| self.bucket_of(self.nbr_weight[v]) == b)
                                .collect();
                            for v in members {
                                self.remove_r_neighbor(v);
                                out.push((v, WMsg::JoinS));
                            }
                        }
                    }
                }
            }
            3 => {
                if joined_s_now {
                    for &v in ctx.graph_neighbors {
                        out.push((v, WMsg::LeftR));
                    }
                }
            }
            _ => unreachable!(),
        }
        out
    }

    fn is_done(&self, ctx: &Ctx) -> bool {
        ctx.round > 0 && self.eligible_bucket().is_none()
    }

    fn can_skip(&self, ctx: &Ctx) -> bool {
        // As in the unweighted Phase 1: a stale `candidate_now` would
        // leak into the next Step 2 maximum on re-activation, so the
        // node stays active until an invoked Step 1 clears it.
        self.is_done(ctx) && !self.candidate_now
    }

    fn output(&self, ctx: &Ctx) -> crate::mvc::phase1::P1Output {
        // Conservative report set: a neighbor whose Weight announcement
        // never arrived (crash, dead link) has unknown R-status, so its
        // edge is reported as if the neighbor were still in R — the
        // leader's instance only grows. On a clean run every weight
        // arrives (zero-weight included) and the union is a no-op.
        let mut r = self.r_neighbors.clone();
        r.extend(
            ctx.graph_neighbors
                .iter()
                .copied()
                .filter(|v| !self.nbr_weight.contains_key(v)),
        );
        r.sort_unstable();
        r.dedup();
        crate::mvc::phase1::P1Output {
            in_s: self.in_s,
            r_neighbors: r,
            timed_out: self.timed_out,
        }
    }
}

/// Runs Theorem 7's algorithm on the connected graph `g` with vertex
/// weights `w`.
///
/// # Errors
///
/// Propagates [`SimError`] on model violations or a disconnected graph.
///
/// # Example
///
/// ```
/// use pga_graph::{generators, VertexWeights};
/// use pga_graph::cover::is_vertex_cover_on_square;
/// use pga_core::mvc::weighted::g2_mwvc_congest;
///
/// let g = generators::star(10);
/// let w = VertexWeights::uniform(10);
/// let result = g2_mwvc_congest(&g, &w, 0.5).unwrap();
/// assert!(is_vertex_cover_on_square(&g, &result.cover));
/// ```
pub fn g2_mwvc_congest(g: &Graph, w: &VertexWeights, eps: f64) -> Result<G2MwvcResult, SimError> {
    g2_mwvc_congest_cfg(g, w, eps, &RunConfig::new())
}

/// [`g2_mwvc_congest`] on an explicit simulation [`Engine`].
///
/// # Errors
///
/// Propagates [`SimError`] like [`g2_mwvc_congest`].
#[deprecated(since = "0.1.0", note = "use g2_mwvc_congest_cfg with a RunConfig")]
pub fn g2_mwvc_congest_with(
    g: &Graph,
    w: &VertexWeights,
    eps: f64,
    engine: Engine,
) -> Result<G2MwvcResult, SimError> {
    g2_mwvc_congest_cfg(g, w, eps, &RunConfig::new().engine(engine))
}

/// [`g2_mwvc_congest`] under an explicit [`RunConfig`] (engine, thread
/// count, scheduling policy, packed message plane).
///
/// Every configuration is bit-identical; a parallel engine simply runs
/// large instances faster.
///
/// # Errors
///
/// Propagates [`SimError`] like [`g2_mwvc_congest`].
pub fn g2_mwvc_congest_cfg(
    g: &Graph,
    w: &VertexWeights,
    eps: f64,
    cfg: &RunConfig,
) -> Result<G2MwvcResult, SimError> {
    assert!(w.matches(g), "weights must match the graph");
    assert!(eps > 0.0, "ε must be positive");
    if !pga_graph::traversal::is_connected(g) {
        return Err(SimError::PreconditionViolated {
            what: "g2_mwvc_congest requires a connected communication graph",
        });
    }
    let n = g.num_nodes();

    // Clean bound: each center wins at most once per weight class
    // (≤ 65 u64 buckets), 4 rounds per iteration, plus the weight
    // exchange round.
    let p1_deadline = cfg.phase_deadline(4 * 65 * n + 12);
    let p1 = Simulator::congest(g).run_cfg(
        (0..n)
            .map(|i| WPhase1::new(eps, w.get(NodeId::from_index(i))).with_deadline(p1_deadline))
            .collect(),
        cfg,
    )?;
    let mut phase1_metrics = p1.metrics;
    phase1_metrics.fault.degraded += p1.outputs.iter().filter(|o| o.timed_out).count() as u64;
    let p1_out = p1.outputs;

    let w_vec: Vec<u64> = w.as_slice().to_vec();
    let compute: LeaderCompute<FEdge, CoverId> =
        Arc::new(move |edges: Vec<FEdge>| solve_remainder_weighted(&edges));
    let per_node: Vec<Vec<FEdge>> = (0..n)
        .map(|i| {
            let o = &p1_out[i];
            f_edges_for_node(NodeId::from_index(i), !o.in_s, &o.r_neighbors, |u| {
                w_vec[u.index()]
            })
        })
        .collect();
    let k_total: usize = per_node.iter().map(Vec::len).sum();
    let deadline = cfg.phase_deadline(4 * (k_total + n) + 10);
    let nodes = per_node
        .into_iter()
        .map(|items| GatherScatter::new(items, Arc::clone(&compute)).with_deadline(deadline))
        .collect();
    let p2 = Simulator::congest(g).run_cfg(nodes, cfg)?;

    let mut cover: Vec<bool> = p1_out.iter().map(|o| o.in_s).collect();
    let s_weight = w.subset_weight(&cover);
    let r_star = &p2.outputs[0].response;
    let mut r_star_weight = 0;
    for c in r_star {
        if !cover[c.0.index()] {
            r_star_weight += w.get(c.0);
        }
        cover[c.0.index()] = true;
    }
    // Phase-timeout fallback: an incomplete node self-adds so its
    // F-edges stay covered (validity over approximation).
    let mut phase2_metrics = p2.metrics;
    for (i, o) in p2.outputs.iter().enumerate() {
        if !o.complete {
            phase2_metrics.fault.degraded += 1;
            cover[i] = true;
        }
    }

    Ok(G2MwvcResult {
        cover,
        s_weight,
        r_star_weight,
        phase1_metrics,
        phase2_metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_exact::wvc::mwvc_weight;
    use pga_graph::cover::is_vertex_cover_on_square;
    use pga_graph::generators;
    use pga_graph::power::square;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check(g: &Graph, w: &VertexWeights, eps: f64) -> G2MwvcResult {
        let r = g2_mwvc_congest(g, w, eps).unwrap();
        assert!(is_vertex_cover_on_square(g, &r.cover), "invalid cover");
        r
    }

    #[test]
    fn uniform_weights_behave() {
        for g in [
            generators::star(12),
            generators::cycle(10),
            generators::clique_chain(3, 4),
        ] {
            let w = VertexWeights::uniform(g.num_nodes());
            check(&g, &w, 0.5);
        }
    }

    #[test]
    fn approximation_factor_random_weights() {
        let mut rng = StdRng::seed_from_u64(71);
        for _ in 0..8 {
            let g = generators::connected_gnp(14, 0.15, &mut rng);
            let w = VertexWeights::random(14, 1..32, &mut rng);
            let g2 = square(&g);
            let opt = mwvc_weight(&g2, &w);
            for eps in [0.5, 1.0] {
                let r = check(&g, &w, eps);
                assert!(
                    r.weight(&w) as f64 <= (1.0 + eps) * opt as f64 + 1e-6,
                    "eps={eps}: {} > (1+{eps})·{opt}",
                    r.weight(&w)
                );
            }
        }
    }

    #[test]
    fn zero_weight_vertices_join_free() {
        let g = generators::star(8);
        let mut weights = vec![5u64; 8];
        weights[0] = 0; // free center covers the whole star's square
        let w = VertexWeights::from_vec(weights);
        let r = check(&g, &w, 0.5);
        assert!(r.cover[0], "zero-weight center must be taken");
        // the star's G² is a clique on 8 vertices: still need 6 more paid
        // vertices... the leaves form K8 in G²; min weighted cover of K8
        // minus the free vertex needs 6 of the 7 leaves.
        let opt = mwvc_weight(&square(&g), &w);
        assert!(r.weight(&w) as f64 <= 1.5 * opt as f64 + 1e-6);
    }

    #[test]
    fn heavy_center_harvesting() {
        // A star with many equal-weight leaves: the center's single bucket
        // is eligible for small ε once enough leaves accumulate weight.
        let g = generators::star(30);
        let mut weights = vec![1u64; 30];
        weights[0] = 1;
        let w = VertexWeights::from_vec(weights);
        let r = check(&g, &w, 0.25);
        // Phase I should harvest the leaves (Σ = 29, max = 1, 1 ≤ 29·0.2).
        assert!(r.s_weight >= 29, "phase I must fire on the star");
    }

    #[test]
    fn exponentially_spread_weights_use_buckets() {
        // Weights 1, 2, 4, ... on a star: each bucket is a singleton, so
        // no bucket is ever eligible; everything falls to the leader.
        let g = generators::star(6);
        let weights: Vec<u64> = (0..6).map(|i| 1u64 << i).collect();
        let w = VertexWeights::from_vec(weights);
        let r = check(&g, &w, 0.5);
        assert_eq!(r.s_weight, 0, "no class should fire");
        // Still optimal overall (leader solves exactly): OPT of K6 in G².
        let opt = mwvc_weight(&square(&g), &w);
        assert_eq!(r.weight(&w), opt);
    }

    #[test]
    fn lemma8_bucket_sizes_after_phase1() {
        // Lemma 8: after Phase I every (center, class) pair has fewer than
        // 2(1+ε)/ε remaining members, so |F| = O(n log n / ε). We check
        // via the output: each vertex's remaining R-neighbors, grouped by
        // its own weight classes, are small.
        let mut rng = StdRng::seed_from_u64(88);
        let eps = 0.5;
        let bound = 2.0 * (1.0 + eps) / eps; // = 6
        for _ in 0..5 {
            let g = generators::connected_gnp(20, 0.25, &mut rng);
            let w = VertexWeights::random(20, 1..64, &mut rng);
            let r = g2_mwvc_congest(&g, &w, eps).unwrap();
            // Recompute each center's classes over its final R-neighbors.
            for c in g.nodes() {
                let remaining: Vec<u64> = g
                    .neighbors(c)
                    .iter()
                    .filter(|u| !r.cover[u.index()])
                    .map(|&u| w.get(u))
                    .filter(|&x| x > 0)
                    .collect();
                let Some(&ws) = remaining.iter().min() else {
                    continue;
                };
                let w_star = g
                    .neighbors(c)
                    .iter()
                    .map(|&u| w.get(u))
                    .filter(|&x| x > 0)
                    .min()
                    .unwrap_or(ws);
                let mut per_bucket: std::collections::HashMap<u32, usize> =
                    std::collections::HashMap::new();
                for &x in &remaining {
                    *per_bucket.entry((x / w_star).ilog2()).or_insert(0) += 1;
                }
                for (b, count) in per_bucket {
                    assert!(
                        (count as f64) < bound,
                        "center {c:?} class {b} kept {count} ≥ {bound} members"
                    );
                }
            }
        }
    }

    #[test]
    fn disconnected_graph_rejected() {
        let g = generators::disjoint_union(&generators::path(3), &generators::path(3));
        let w = VertexWeights::uniform(6);
        assert!(matches!(
            g2_mwvc_congest(&g, &w, 0.5).unwrap_err(),
            SimError::PreconditionViolated { .. }
        ));
    }

    #[test]
    fn rounds_reasonable() {
        let g = generators::cycle(24);
        let w = VertexWeights::uniform(24);
        let r = check(&g, &w, 0.5);
        // O(n log n / ε) with small constants; sanity-check a generous cap.
        assert!(r.total_rounds() < 24 * 64, "{} rounds", r.total_rounds());
    }
}

#[cfg(test)]
mod codec_roundtrip_tests {
    use super::*;
    use proptest::prelude::*;

    /// Every arm of [`WMsg`], with full-range weights and ids.
    fn arb_msg() -> impl Strategy<Value = WMsg> {
        prop_oneof![
            any::<u64>().prop_map(WMsg::Weight),
            Just(WMsg::Cand),
            any::<u32>().prop_map(WMsg::MaxCand),
            Just(WMsg::JoinS),
            Just(WMsg::LeftR),
        ]
    }

    proptest! {
        #[test]
        fn w_msg_codec_roundtrips(m in arb_msg()) {
            prop_assert_eq!(WMsg::decode(m.encode()), m);
        }
    }
}
