//! Theorem 1: a deterministic `(1 + ε)`-approximation for `G²`-minimum
//! vertex cover in `O(n/ε)` CONGEST rounds.
//!
//! The algorithm composes two simulated executions on the communication
//! graph `G` (round counts add):
//!
//! * **Phase I** (`crate::mvc::phase1`): clique harvesting removes large
//!   `G²`-cliques into the cover `S` until every vertex has at most
//!   `⌊1/ε'⌋` neighbors outside `S`.
//! * **Phase II** (`crate::mvc::remainder` over
//!   [`pga_congest::primitives::GatherScatter`]): a leader gathers the
//!   `O(n/ε)` remaining edges `F` by pipelined convergecast (Lemma 2),
//!   reconstructs `H = G²[U]` (Lemma 3), covers it locally, and broadcasts
//!   the result.
//!
//! The returned cover is `S ∪ R*` — valid by Lemma 4 and a
//! `(1+ε)`-approximation by Lemma 5 when the local solver is exact.

use crate::mvc::phase1::Phase1;
use crate::mvc::remainder::{f_edges_for_node, solve_remainder, CoverId, FEdge};
use pga_congest::primitives::{GatherScatter, LeaderCompute};
use pga_congest::{Engine, Metrics, RunConfig, SimError, Simulator};
use pga_graph::{Graph, NodeId};
use std::sync::Arc;

pub use crate::mvc::remainder::LocalSolver;

/// Result of a distributed `G²`-MVC run.
#[derive(Clone, Debug)]
pub struct G2MvcResult {
    /// The computed vertex cover of `G²` (membership vector).
    pub cover: Vec<bool>,
    /// Vertices added by Phase I (the set `S`).
    pub s_size: usize,
    /// Vertices added by the leader's local solve (the set `R*`).
    pub r_star_size: usize,
    /// Metrics of Phase I.
    pub phase1_metrics: Metrics,
    /// Metrics of Phase II.
    pub phase2_metrics: Metrics,
}

impl G2MvcResult {
    /// Total rounds across both phases — the quantity Theorem 1 bounds by
    /// `O(n/ε)`.
    pub fn total_rounds(&self) -> usize {
        self.phase1_metrics.rounds + self.phase2_metrics.rounds
    }

    /// Size of the returned cover.
    pub fn size(&self) -> usize {
        self.cover.iter().filter(|&&b| b).count()
    }
}

/// Converts ε into the paper's integer threshold: `ε' = 1/l` with
/// `l = ⌈1/ε⌉`, and a center is eligible while it has **more than** `l`
/// remaining neighbors.
pub(crate) fn threshold_for_eps(eps: f64) -> usize {
    assert!(eps > 0.0, "ε must be positive");
    (1.0 / eps).ceil() as usize
}

/// Runs Theorem 1's algorithm on the connected communication graph `g`.
///
/// For `ε ≥ 1` the paper's trivial 2-approximation (take every vertex,
/// zero rounds) is returned, matching the proof of Theorem 1.
///
/// # Errors
///
/// Propagates [`SimError`] if the CONGEST constraints are violated or the
/// graph is disconnected (Phase II requires a BFS tree spanning `G`).
///
/// # Example
///
/// ```
/// use pga_graph::generators;
/// use pga_graph::cover::is_vertex_cover_on_square;
/// use pga_core::mvc::congest::{g2_mvc_congest, LocalSolver};
///
/// let g = generators::star(12);
/// let result = g2_mvc_congest(&g, 0.5, LocalSolver::Exact).unwrap();
/// assert!(is_vertex_cover_on_square(&g, &result.cover));
/// ```
pub fn g2_mvc_congest(g: &Graph, eps: f64, solver: LocalSolver) -> Result<G2MvcResult, SimError> {
    g2_mvc_congest_cfg(g, eps, solver, &RunConfig::new())
}

/// [`g2_mvc_congest`] on an explicit simulation [`Engine`].
///
/// # Errors
///
/// Propagates [`SimError`] like [`g2_mvc_congest`].
#[deprecated(since = "0.1.0", note = "use g2_mvc_congest_cfg with a RunConfig")]
pub fn g2_mvc_congest_with(
    g: &Graph,
    eps: f64,
    solver: LocalSolver,
    engine: Engine,
) -> Result<G2MvcResult, SimError> {
    g2_mvc_congest_cfg(g, eps, solver, &RunConfig::new().engine(engine))
}

/// [`g2_mvc_congest`] under an explicit [`RunConfig`] (engine, thread
/// count, scheduling policy, packed message plane).
///
/// Every configuration is bit-identical: the result does not depend on
/// the choice; a parallel engine (and, on top of it, the packed codec
/// plane) simply runs large instances faster. The experiment binaries
/// use `RunConfig::new().parallel_auto()`.
///
/// # Errors
///
/// Propagates [`SimError`] like [`g2_mvc_congest`].
pub fn g2_mvc_congest_cfg(
    g: &Graph,
    eps: f64,
    solver: LocalSolver,
    cfg: &RunConfig,
) -> Result<G2MvcResult, SimError> {
    let n = g.num_nodes();
    if eps >= 1.0 || n == 0 {
        // Trivial 2-approximation (Lemma 6 with r = 2), zero rounds —
        // also the empty graph's answer (Phase II's `outputs[0]` needs a
        // leader to exist).
        return Ok(G2MvcResult {
            cover: vec![true; n],
            s_size: n,
            r_star_size: 0,
            phase1_metrics: Metrics::default(),
            phase2_metrics: Metrics::default(),
        });
    }
    if !pga_graph::traversal::is_connected(g) {
        // Phase II's BFS tree must span G; fail fast instead of stalling.
        return Err(SimError::PreconditionViolated {
            what: "g2_mvc_congest requires a connected communication graph",
        });
    }
    let l = threshold_for_eps(eps);

    // Phase I. Under the reliability plane it carries a deadline from
    // the clean bound (≤ n winner iterations of 4 rounds each).
    let p1_deadline = cfg.phase_deadline(4 * n + 8);
    let sim = Simulator::congest(g);
    let p1 = sim.run_cfg(
        (0..n)
            .map(|_| Phase1::new(l).with_deadline(p1_deadline))
            .collect(),
        cfg,
    )?;
    let mut phase1_metrics = p1.metrics;
    phase1_metrics.fault.degraded += p1.outputs.iter().filter(|o| o.timed_out).count() as u64;
    let p1_out = p1.outputs;

    // Phase II: gather F at the leader, solve, scatter R*. Under the
    // reliability plane the gather carries a phase deadline derived
    // from the clean pipelined-convergecast bound O(k + D); past it the
    // leader solves over the partial edge set it holds.
    let compute: LeaderCompute<FEdge, CoverId> =
        Arc::new(move |edges: Vec<FEdge>| solve_remainder(&edges, solver));
    let per_node: Vec<Vec<FEdge>> = (0..n)
        .map(|i| {
            let o = &p1_out[i];
            f_edges_for_node(NodeId::from_index(i), !o.in_s, &o.r_neighbors, |_| 1)
        })
        .collect();
    let k_total: usize = per_node.iter().map(Vec::len).sum();
    let deadline = cfg.phase_deadline(4 * (k_total + n) + 10);
    let nodes = per_node
        .into_iter()
        .map(|items| GatherScatter::new(items, Arc::clone(&compute)).with_deadline(deadline))
        .collect();
    let p2 = Simulator::congest(g).run_cfg(nodes, cfg)?;

    let mut cover: Vec<bool> = p1_out.iter().map(|o| o.in_s).collect();
    let s_size = cover.iter().filter(|&&b| b).count();
    // Every node receives the full R* broadcast; membership is local.
    let r_star = &p2.outputs[0].response;
    for c in r_star {
        cover[c.0.index()] = true;
    }
    // Conservative fallback after a phase timeout: a node whose
    // response is not flagged complete cannot trust R* to cover its
    // F-edges (the leader may never have seen them), so it self-adds.
    // Every H-edge then has a covered endpoint — validity is preserved,
    // only the approximation degrades.
    let mut phase2_metrics = p2.metrics;
    for (i, o) in p2.outputs.iter().enumerate() {
        if !o.complete {
            phase2_metrics.fault.degraded += 1;
            cover[i] = true;
        }
    }

    Ok(G2MvcResult {
        cover,
        s_size,
        r_star_size: r_star.len(),
        phase1_metrics,
        phase2_metrics,
    })
}

/// Corollary 17: the polynomial-computation 5/3-approximation in `O(n)`
/// CONGEST rounds — Phase I with `ε = 1/2`, then the Theorem 12 algorithm
/// at the leader. The overall factor is `max(1 + 1/2, 5/3) = 5/3`.
///
/// # Errors
///
/// Propagates [`SimError`] like [`g2_mvc_congest`].
pub fn g2_mvc_congest_five_thirds(g: &Graph) -> Result<G2MvcResult, SimError> {
    g2_mvc_congest(g, 0.5, LocalSolver::FiveThirds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_exact::vc::mvc_size;
    use pga_graph::cover::is_vertex_cover_on_square;
    use pga_graph::generators;
    use pga_graph::power::square;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check(g: &Graph, eps: f64) -> G2MvcResult {
        let r = g2_mvc_congest(g, eps, LocalSolver::Exact).unwrap();
        assert!(
            is_vertex_cover_on_square(g, &r.cover),
            "invalid cover for eps={eps}"
        );
        r
    }

    #[test]
    fn valid_on_families() {
        for g in [
            generators::path(15),
            generators::cycle(12),
            generators::star(16),
            generators::caterpillar(5, 3),
            generators::clique_chain(3, 5),
            generators::grid(4, 4),
        ] {
            for eps in [0.25, 0.5, 1.0] {
                check(&g, eps);
            }
        }
    }

    #[test]
    fn approximation_factor_holds() {
        let mut rng = StdRng::seed_from_u64(51);
        for _ in 0..10 {
            let g = generators::connected_gnp(18, 0.12, &mut rng);
            let g2 = square(&g);
            let opt = mvc_size(&g2);
            for eps in [0.34, 0.5] {
                let r = check(&g, eps);
                // ε' = 1/⌈1/ε⌉ ≤ ε, so the guarantee is 1 + ε.
                assert!(
                    r.size() as f64 <= (1.0 + eps) * opt as f64 + 1e-9,
                    "eps={eps}: {} > (1+{eps})·{opt}",
                    r.size()
                );
            }
        }
    }

    #[test]
    fn engine_choice_does_not_change_result() {
        let mut rng = StdRng::seed_from_u64(54);
        let g = generators::connected_gnp(24, 0.12, &mut rng);
        let seq = g2_mvc_congest(&g, 0.5, LocalSolver::Exact).unwrap();
        for codec in [false, true] {
            let cfg = RunConfig::new().parallel(4).codec(codec);
            let par = g2_mvc_congest_cfg(&g, 0.5, LocalSolver::Exact, &cfg).unwrap();
            assert_eq!(par.cover, seq.cover, "codec={codec}");
            assert_eq!(par.phase1_metrics, seq.phase1_metrics);
            assert_eq!(par.phase2_metrics, seq.phase2_metrics);
        }
    }

    #[test]
    fn deprecated_wrapper_matches_cfg_form() {
        let g = generators::clique_chain(3, 4);
        #[allow(deprecated, clippy::disallowed_methods)]
        let old = g2_mvc_congest_with(&g, 0.5, LocalSolver::Exact, Engine::Sequential).unwrap();
        let new = g2_mvc_congest_cfg(&g, 0.5, LocalSolver::Exact, &RunConfig::new()).unwrap();
        assert_eq!(old.cover, new.cover);
        assert_eq!(old.phase1_metrics, new.phase1_metrics);
        assert_eq!(old.phase2_metrics, new.phase2_metrics);
    }

    #[test]
    fn eps_above_one_is_trivial() {
        let g = generators::path(8);
        let r = g2_mvc_congest(&g, 2.0, LocalSolver::Exact).unwrap();
        assert_eq!(r.size(), 8);
        assert_eq!(r.total_rounds(), 0);
        // Lemma 6: all-vertices is a 2-approximation on G².
        let opt = mvc_size(&square(&g));
        assert!(r.size() <= 2 * opt);
    }

    #[test]
    fn rounds_scale_linearly_in_n() {
        // O(n/ε): fix ε, double n, rounds should grow at most ~linearly
        // (generous constant for BFS/pipelining overheads).
        let r1 = check(&generators::cycle(30), 0.5);
        let r2 = check(&generators::cycle(60), 0.5);
        assert!(
            r2.total_rounds() <= 4 * r1.total_rounds() + 50,
            "{} vs {}",
            r2.total_rounds(),
            r1.total_rounds()
        );
    }

    #[test]
    fn phase1_covers_high_degree_parts() {
        // Star: Phase I alone covers the leaves; the remainder is tiny.
        let g = generators::star(20);
        let r = check(&g, 0.25);
        assert!(r.s_size >= 19, "phase I must harvest the star");
    }

    #[test]
    fn five_thirds_local_solver_valid() {
        let mut rng = StdRng::seed_from_u64(52);
        let g = generators::connected_gnp(20, 0.1, &mut rng);
        let r = g2_mvc_congest(&g, 0.5, LocalSolver::FiveThirds).unwrap();
        assert!(is_vertex_cover_on_square(&g, &r.cover));
        // Corollary 17: ratio ≤ max(1+ε, 5/3) = 5/3 for ε = 1/2.
        let opt = mvc_size(&square(&g));
        if opt > 0 {
            assert!(r.size() as f64 / opt as f64 <= 5.0 / 3.0 + 1e-9);
        }
    }

    #[test]
    fn two_approx_local_solver_valid() {
        let g = generators::grid(3, 5);
        let r = g2_mvc_congest(&g, 0.5, LocalSolver::TwoApprox).unwrap();
        assert!(is_vertex_cover_on_square(&g, &r.cover));
    }

    #[test]
    fn corollary17_wrapper() {
        let mut rng = StdRng::seed_from_u64(53);
        let g = generators::connected_gnp(18, 0.15, &mut rng);
        let r = g2_mvc_congest_five_thirds(&g).unwrap();
        assert!(is_vertex_cover_on_square(&g, &r.cover));
        let opt = mvc_size(&square(&g)).max(1);
        assert!(r.size() as f64 / opt as f64 <= 5.0 / 3.0 + 1e-9);
    }

    #[test]
    fn disconnected_graph_rejected() {
        let g = pga_graph::generators::disjoint_union(&generators::path(4), &generators::path(4));
        let err = g2_mvc_congest(&g, 0.5, LocalSolver::Exact).unwrap_err();
        assert!(matches!(err, SimError::PreconditionViolated { .. }));
    }

    #[test]
    fn single_node_and_tiny_graphs() {
        let r = g2_mvc_congest(&Graph::empty(1), 0.5, LocalSolver::Exact).unwrap();
        assert_eq!(r.size(), 0);
        let r2 = g2_mvc_congest(&generators::path(2), 0.5, LocalSolver::Exact).unwrap();
        assert!(is_vertex_cover_on_square(&generators::path(2), &r2.cover));
        assert_eq!(r2.size(), 1);
    }
}
