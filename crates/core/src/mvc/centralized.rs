//! Theorem 12: the centralized polynomial-time 5/3-approximation for
//! `G²`-minimum vertex cover (Algorithm 2 of the paper).
//!
//! The algorithm runs three parts on the (square) graph:
//!
//! 1. **Triangles** — while a triangle exists, take all three corners
//!    (optimum pays ≥ 2, we pay 3);
//! 2. **Low degrees** — while a vertex of degree ≤ 3 exists, resolve it
//!    with the case analysis of the paper (paying 1-vs-1, 3-vs-2, 5-vs-3);
//! 3. **Matching** — a maximal-matching 2-approximation on what remains.
//!
//! The 5/3 bound is *not* the max of the per-part ratios: Lemma 14 shows
//! the triangle part is at least 3/2 the size of the final remainder, so
//! the sloppy part 3 is amortized against part 1. The bound only holds
//! when the input is the square of some graph (`G²`-structure is what
//! makes `s₁ ≥ (3/2)|V_{R'}|` true); the procedure itself is well defined
//! on any graph and always returns a valid cover.

use pga_exact::bitset::BitSet;
use pga_graph::{Graph, NodeId};

/// Result of the 5/3-approximation with per-part accounting.
#[derive(Clone, Debug)]
pub struct FiveThirdsResult {
    /// The vertex cover (membership vector).
    pub cover: Vec<bool>,
    /// Vertices taken during the triangle part (`s₁` of the analysis).
    pub part1: Vec<NodeId>,
    /// Vertices taken during the low-degree part (`s₂`).
    pub part2: Vec<NodeId>,
    /// Vertices taken during the matching part (`s₃`).
    pub part3: Vec<NodeId>,
}

impl FiveThirdsResult {
    /// Size of the returned cover.
    pub fn size(&self) -> usize {
        self.part1.len() + self.part2.len() + self.part3.len()
    }

    /// The lower bound on any optimal cover implied by the per-part
    /// accounting of Lemma 15: `opt ≥ (2/3)s₁ + (3/5)s₂ + (1/2)s₃`.
    pub fn optimum_lower_bound(&self) -> f64 {
        (2.0 / 3.0) * self.part1.len() as f64
            + (3.0 / 5.0) * self.part2.len() as f64
            + 0.5 * self.part3.len() as f64
    }
}

struct State {
    n: usize,
    adj: Vec<BitSet>,
    active: BitSet,
}

impl State {
    fn new(g: &Graph) -> Self {
        let n = g.num_nodes();
        let mut adj = vec![BitSet::new(n); n];
        for (u, v) in g.edges() {
            adj[u.index()].insert(v.index());
            adj[v.index()].insert(u.index());
        }
        State {
            n,
            adj,
            active: BitSet::full(n),
        }
    }

    fn degree(&self, v: usize) -> usize {
        self.adj[v].intersection_len(&self.active)
    }

    fn active_neighbors(&self, v: usize) -> Vec<usize> {
        let mut nb = self.adj[v].clone();
        nb.intersect_with(&self.active);
        nb.iter().collect()
    }

    /// Takes `v` into the cover: removed from the graph with its edges.
    fn take(&mut self, v: usize, into: &mut Vec<NodeId>) {
        debug_assert!(self.active.contains(v));
        self.active.remove(v);
        into.push(NodeId::from_index(v));
    }

    /// Finds a triangle through `v`, if any.
    fn triangle_through(&self, v: usize) -> Option<(usize, usize)> {
        let nb = self.active_neighbors(v);
        for (i, &a) in nb.iter().enumerate() {
            let mut common = self.adj[v].clone();
            common.intersect_with(&self.adj[a]);
            common.intersect_with(&self.active);
            for b in common.iter() {
                if b != a && nb[i..].contains(&b) {
                    return Some((a, b));
                }
            }
        }
        None
    }
}

/// Runs Algorithm 2 on `g2` (intended to be the square of a graph) and
/// returns the cover with per-part accounting.
///
/// Always returns a valid vertex cover of `g2`; the 5/3 ratio guarantee
/// applies when `g2` is a square (or an induced subgraph of one obtained
/// by deleting closed vertex sets, as in Corollary 17).
///
/// # Example
///
/// ```
/// use pga_graph::{generators, power::square};
/// use pga_graph::cover::is_vertex_cover;
/// use pga_core::mvc::centralized::five_thirds_vertex_cover;
///
/// let g = generators::cycle(9);
/// let g2 = square(&g);
/// let result = five_thirds_vertex_cover(&g2);
/// assert!(is_vertex_cover(&g2, &result.cover));
/// ```
pub fn five_thirds_vertex_cover(g2: &Graph) -> FiveThirdsResult {
    let mut st = State::new(g2);
    let mut part1 = Vec::new();
    let mut part2 = Vec::new();
    let mut part3 = Vec::new();

    // Part 1: eliminate triangles. Removals never create triangles, so a
    // single left-to-right sweep that exhausts each vertex suffices.
    for v in 0..st.n {
        while st.active.contains(v) {
            match st.triangle_through(v) {
                Some((a, b)) => {
                    st.take(v, &mut part1);
                    st.take(a, &mut part1);
                    st.take(b, &mut part1);
                }
                None => break,
            }
        }
    }

    // Part 2: resolve low-degree vertices with the paper's case analysis.
    // Priority matters: the degree-2 and degree-3 cases assume no vertex
    // of smaller positive degree exists.
    loop {
        // Drop isolated vertices (degree 0 leaves V' without joining S).
        let zero: Vec<usize> = st.active.iter().filter(|&v| st.degree(v) == 0).collect();
        for v in zero {
            st.active.remove(v);
        }

        let mut by_degree = [usize::MAX; 4];
        for v in st.active.iter() {
            let d = st.degree(v);
            if (1..=3).contains(&d) && by_degree[d] == usize::MAX {
                by_degree[d] = v;
            }
        }

        if by_degree[1] != usize::MAX {
            // Degree 1: take the single neighbor.
            let x = by_degree[1];
            let y = st.active_neighbors(x)[0];
            st.take(y, &mut part2);
        } else if by_degree[2] != usize::MAX {
            // Degree 2: x has neighbors y1, y2; no degree-1 vertex exists,
            // so y1 has a neighbor z ≠ x. Take z, y1, y2.
            let x = by_degree[2];
            let nb = st.active_neighbors(x);
            let (y1, y2) = (nb[0], nb[1]);
            let z = st
                .active_neighbors(y1)
                .into_iter()
                .find(|&z| z != x)
                .expect("deg(y1) ≥ 2 since no degree-1 vertices remain");
            st.take(z, &mut part2);
            if st.active.contains(y1) {
                st.take(y1, &mut part2);
            }
            if st.active.contains(y2) {
                st.take(y2, &mut part2);
            }
        } else if by_degree[3] != usize::MAX {
            // Degree 3: x has neighbors y1, y2, y3; all degrees are ≥ 3
            // and there are no triangles, so distinct z1 ∈ N(y1), z2 ∈
            // N(y2) outside {x, y1, y2, y3} exist.
            let x = by_degree[3];
            let nb = st.active_neighbors(x);
            let (y1, y2, y3) = (nb[0], nb[1], nb[2]);
            let z1 = st
                .active_neighbors(y1)
                .into_iter()
                .find(|&z| z != x && z != y1 && z != y2 && z != y3)
                .expect("deg(y1) ≥ 3, no triangles: an outside neighbor exists");
            let z2 = st
                .active_neighbors(y2)
                .into_iter()
                .find(|&z| z != x && z != y1 && z != y2 && z != y3 && z != z1)
                .expect("deg(y2) ≥ 3, no triangles: a second outside neighbor exists");
            for v in [y1, y2, y3, z1, z2] {
                if st.active.contains(v) {
                    st.take(v, &mut part2);
                }
            }
        } else {
            break;
        }
    }

    // Part 3: greedy maximal matching on the remainder, take both
    // endpoints.
    let active_now: Vec<usize> = st.active.iter().collect();
    for &u in &active_now {
        if !st.active.contains(u) {
            continue;
        }
        if let Some(&v) = st.active_neighbors(u).first() {
            st.take(u, &mut part3);
            st.take(v, &mut part3);
        }
    }

    let mut cover = vec![false; st.n];
    for v in part1.iter().chain(&part2).chain(&part3) {
        cover[v.index()] = true;
    }
    FiveThirdsResult {
        cover,
        part1,
        part2,
        part3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_exact::vc::mvc_size;
    use pga_graph::cover::{is_vertex_cover, set_size};
    use pga_graph::generators;
    use pga_graph::power::square;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn valid_cover_on_squares() {
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..20 {
            let g = generators::gnp(20, 0.15, &mut rng);
            let g2 = square(&g);
            let r = five_thirds_vertex_cover(&g2);
            assert!(is_vertex_cover(&g2, &r.cover));
            assert_eq!(set_size(&r.cover), r.size());
        }
    }

    #[test]
    fn ratio_at_most_five_thirds_on_squares() {
        let mut rng = StdRng::seed_from_u64(42);
        for i in 0..25 {
            let g = generators::gnp(13, 0.18, &mut rng);
            let g2 = square(&g);
            if g2.num_edges() == 0 {
                continue;
            }
            let r = five_thirds_vertex_cover(&g2);
            let opt = mvc_size(&g2);
            if opt == 0 {
                assert_eq!(r.size(), 0);
                continue;
            }
            let ratio = r.size() as f64 / opt as f64;
            assert!(
                ratio <= 5.0 / 3.0 + 1e-9,
                "iteration {i}: ratio {ratio} > 5/3 (size {} vs opt {opt})",
                r.size()
            );
        }
    }

    #[test]
    fn ratio_on_structured_squares() {
        for g in [
            generators::path(30),
            generators::cycle(30),
            generators::caterpillar(8, 3),
            generators::star(20),
            generators::clique_chain(4, 4),
        ] {
            let g2 = square(&g);
            let r = five_thirds_vertex_cover(&g2);
            assert!(is_vertex_cover(&g2, &r.cover));
            let opt = mvc_size(&g2);
            if opt > 0 {
                assert!(
                    r.size() as f64 / opt as f64 <= 5.0 / 3.0 + 1e-9,
                    "{:?}: {} vs {opt}",
                    g,
                    r.size()
                );
            }
        }
    }

    #[test]
    fn triangle_part_takes_whole_triangles() {
        // K3 (a square of itself... K3 = P3²): part 1 takes all three.
        let g2 = square(&generators::path(3));
        let r = five_thirds_vertex_cover(&g2);
        assert_eq!(r.part1.len(), 3);
        assert!(r.part2.is_empty() && r.part3.is_empty());
    }

    #[test]
    fn triangle_free_square_skips_part1() {
        // A single edge: square is itself, no triangles; degree-1 rule.
        let g2 = pga_graph::Graph::from_edges(2, &[(0, 1)]);
        let r = five_thirds_vertex_cover(&g2);
        assert!(r.part1.is_empty());
        assert_eq!(r.size(), 1);
    }

    #[test]
    fn empty_graph() {
        let r = five_thirds_vertex_cover(&pga_graph::Graph::empty(5));
        assert_eq!(r.size(), 0);
    }

    #[test]
    fn optimum_lower_bound_holds() {
        // Lemma 15: opt ≥ (2/3)s₁ + (3/5)s₂ + (1/2)s₃ on squares.
        let mut rng = StdRng::seed_from_u64(43);
        for _ in 0..15 {
            let g = generators::gnp(12, 0.2, &mut rng);
            let g2 = square(&g);
            let r = five_thirds_vertex_cover(&g2);
            let opt = mvc_size(&g2) as f64;
            assert!(
                opt >= r.optimum_lower_bound() - 1e-9,
                "lower bound {} exceeds opt {opt}",
                r.optimum_lower_bound()
            );
        }
    }

    #[test]
    fn valid_on_arbitrary_graphs_too() {
        // No ratio guarantee off-squares, but always a valid cover.
        let mut rng = StdRng::seed_from_u64(44);
        for _ in 0..20 {
            let g = generators::gnp(18, 0.3, &mut rng);
            let r = five_thirds_vertex_cover(&g);
            assert!(is_vertex_cover(&g, &r.cover));
        }
    }
}
