//! BMM-prepared Phase I: candidacy sent directly over materialized `G²`
//! rows.
//!
//! The classic relay machine ([`Phase1`]) spends four rounds per
//! iteration because nodes only know `G`: the two-hop candidate maximum
//! is assembled by a one-hop relay (`Cand`, then `MaxCand`). Once
//! [`clique_bmm`] has materialized every node's exact `G²` row, the
//! congested clique lets a candidate message that row *directly* — the
//! relay round disappears and an iteration costs three rounds with
//! 2-bit messages throughout.
//!
//! The trajectory is provably the relay one. A node `u` hears `Cand`
//! from candidate `c` iff `u ∈ N²(c)`, which by symmetry of `G²` is
//! `c ∈ N²(u)` — exactly the candidate set whose maximum the relay
//! hands each candidate via `MaxCand`. Ids are distinct, so "my id
//! exceeds every candidate id I heard" selects the same winners; the
//! `JoinS` targets (the winner's current `R`-neighborhood) and the
//! `LeftR` broadcasts then coincide iteration by iteration, and the
//! final `(in_s, r_neighbors)` output is bit-identical.
//!
//! When any [`G2Row`] comes back as a truncated sketch
//! (`exact == false`) the symmetry argument is void, so
//! [`run_phase1_with_prep`] falls back **wholesale** to the relay
//! machine — never a mixed execution — preserving the bit-identical
//! cover guarantee at the cost of the (already spent) prep rounds.

use crate::mvc::phase1::{P1Output, Phase1};
use pga_congest::{
    clique_bmm, Algorithm, Ctx, G2Prep, Metrics, MsgCodec, MsgSize, RunConfig, SimError, Simulator,
};
use pga_graph::{Graph, NodeId};

/// Messages of the direct (BMM-prepared) Phase I. No `MaxCand` arm:
/// candidacy reaches the whole two-hop neighborhood in one round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum DirectP1Msg {
    /// "I am an eligible center this iteration" — sent directly to the
    /// sender's entire `G²` row.
    Cand,
    /// "I won; you are my `R`-neighbor: join the cover `S`."
    JoinS,
    /// "I just left `R`."
    LeftR,
}

impl MsgSize for DirectP1Msg {
    fn size_bits(&self, _id_bits: usize) -> usize {
        2
    }
}

// Packed layout (u64): the 2-bit tag is the whole message.
impl MsgCodec for DirectP1Msg {
    type Word = u64;

    fn encode(&self) -> u64 {
        match self {
            DirectP1Msg::Cand => 0,
            DirectP1Msg::JoinS => 1,
            DirectP1Msg::LeftR => 2,
        }
    }

    fn decode(word: u64) -> Self {
        match word & 0x3 {
            0 => DirectP1Msg::Cand,
            1 => DirectP1Msg::JoinS,
            2 => DirectP1Msg::LeftR,
            tag => unreachable!("invalid DirectP1Msg tag {tag}"),
        }
    }
}

/// Direct Phase I node state: [`Phase1`] with the relay folded away.
///
/// Iterations of three rounds each:
///
/// 1. eligible centers send `Cand` to their whole `G²` row,
/// 2. a candidate that heard no larger candidate id wins and tells its
///    `R`-neighbors to join `S`,
/// 3. nodes that joined `S` announce they left `R`.
pub(crate) struct DirectPhase1 {
    threshold: usize,
    /// This node's exact `G²` row, materialized by [`clique_bmm`].
    row: Vec<NodeId>,
    in_c: bool,
    in_s: bool,
    /// Sorted ids of neighbors currently in `R`.
    r_neighbors: Vec<NodeId>,
    candidate_now: bool,
    initialized: bool,
    /// Phase deadline in rounds (see `Phase1::with_deadline`).
    deadline: Option<usize>,
    timed_out: bool,
}

impl DirectPhase1 {
    pub(crate) fn new(threshold: usize, row: Vec<NodeId>) -> Self {
        DirectPhase1 {
            threshold,
            row,
            in_c: true,
            in_s: false,
            r_neighbors: Vec::new(),
            candidate_now: false,
            initialized: false,
            deadline: None,
            timed_out: false,
        }
    }

    /// Arms the phase timeout (same conservative fallback as
    /// `Phase1::with_deadline`: withdraw from `C`, keep the stale —
    /// superset — R-neighborhood).
    pub(crate) fn with_deadline(mut self, deadline: Option<usize>) -> Self {
        self.deadline = deadline;
        self
    }

    fn eligible(&self) -> bool {
        self.in_c && self.r_neighbors.len() > self.threshold
    }

    fn remove_r_neighbor(&mut self, v: NodeId) {
        if let Ok(pos) = self.r_neighbors.binary_search(&v) {
            self.r_neighbors.remove(pos);
        }
    }
}

impl Algorithm for DirectPhase1 {
    type Msg = DirectP1Msg;
    type Output = P1Output;

    fn round(&mut self, ctx: &Ctx, inbox: &[(NodeId, DirectP1Msg)]) -> Vec<(NodeId, DirectP1Msg)> {
        if !self.initialized {
            // R starts as all of V: every neighbor is an R-neighbor.
            self.r_neighbors = ctx.graph_neighbors.to_vec();
            self.initialized = true;
        }
        let mut out = Vec::new();
        let mut joined_s_now = false;

        // Ingest. `cand_max` is the largest candidate id in N²(v) this
        // iteration — delivered directly, no relay.
        let mut cand_max: Option<u32> = None;
        for (from, msg) in inbox {
            match msg {
                DirectP1Msg::Cand => {
                    cand_max = Some(cand_max.map_or(from.0, |m: u32| m.max(from.0)));
                }
                DirectP1Msg::JoinS => {
                    if !self.in_s {
                        self.in_s = true;
                        joined_s_now = true;
                    }
                }
                DirectP1Msg::LeftR => {
                    self.remove_r_neighbor(*from);
                }
            }
        }

        // Phase-timeout fallback: an undecided node past the deadline
        // withdraws from C (conservative — see `with_deadline`).
        if let Some(d) = self.deadline {
            if ctx.round >= d && self.eligible() {
                self.in_c = false;
                self.candidate_now = false;
                self.timed_out = true;
                return out;
            }
        }

        match ctx.round % 3 {
            0 => {
                // Step 1: candidacy, straight to the G² row. (LeftR from
                // the previous iteration was ingested above, so
                // eligibility is up to date.)
                self.candidate_now = self.eligible();
                if self.candidate_now {
                    for &v in &self.row {
                        out.push((v, DirectP1Msg::Cand));
                    }
                }
            }
            1 => {
                // Step 2: winner determination. Every candidate within
                // two hops announced itself directly, so the inbox
                // maximum IS the two-hop maximum.
                if self.candidate_now && cand_max.is_none_or(|m| m < ctx.id.0) {
                    // Winner: neighbors in R join S; we leave C.
                    self.in_c = false;
                    for &v in self.r_neighbors.clone().iter() {
                        out.push((v, DirectP1Msg::JoinS));
                    }
                    self.r_neighbors.clear();
                }
            }
            2 => {
                // Step 3: announce leaving R.
                if joined_s_now {
                    for &v in ctx.graph_neighbors {
                        out.push((v, DirectP1Msg::LeftR));
                    }
                }
            }
            _ => unreachable!(),
        }
        out
    }

    fn is_done(&self, _ctx: &Ctx) -> bool {
        self.initialized && !self.eligible()
    }

    fn can_skip(&self, ctx: &Ctx) -> bool {
        // A stale `candidate_now` from a pre-ineligibility Step 1 would
        // leak into the winner check on re-activation; it is cleared by
        // the next invoked Step 1, so the node stays active until then.
        self.is_done(ctx) && !self.candidate_now
    }

    fn output(&self, _ctx: &Ctx) -> P1Output {
        P1Output {
            in_s: self.in_s,
            r_neighbors: self.r_neighbors.clone(),
            timed_out: self.timed_out,
        }
    }
}

/// Runs Phase I under `cfg`'s [`G2Prep`] policy; returns the per-node
/// outputs plus the Phase-I metrics (prep run folded in).
///
/// * [`G2Prep::Relay`]: the classic four-round relay machine, unchanged.
/// * [`G2Prep::Bmm`]: first materialize `G²` rows with [`clique_bmm`]
///   under `cap_words`. If every row is exact, run the three-round
///   direct machine on them; otherwise fall back wholesale to the relay
///   machine and discard the sketch rows (a mixed execution could
///   diverge). Either way the prep rounds, messages, and bits are
///   merged into the returned metrics, so the BMM pipeline is charged
///   honestly for its preprocessing.
pub(crate) fn run_phase1_with_prep(
    g: &Graph,
    threshold: usize,
    cap_words: usize,
    cfg: &RunConfig,
) -> Result<(Vec<P1Output>, Metrics), SimError> {
    let n = g.num_nodes();
    // Clean bound: at most n winner iterations of ≤ 4 rounds each.
    let deadline = cfg.phase_deadline(4 * n + 8);
    let relay = |cfg: &RunConfig| {
        Simulator::congested_clique(g).run_cfg(
            (0..n)
                .map(|_| Phase1::new(threshold).with_deadline(deadline))
                .collect(),
            cfg,
        )
    };
    if cfg.g2_prep == G2Prep::Relay {
        let p1 = relay(cfg)?;
        return Ok((p1.outputs, p1.metrics));
    }
    let prep = clique_bmm(g, cap_words, cfg)?;
    let p1 = if prep.outputs.iter().all(|r| r.exact) {
        let nodes = prep
            .outputs
            .into_iter()
            .map(|r| DirectPhase1::new(threshold, r.neighbors).with_deadline(deadline))
            .collect();
        Simulator::congested_clique(g).run_cfg(nodes, cfg)?
    } else {
        relay(cfg)?
    };
    Ok((p1.outputs, merge_metrics(prep.metrics, p1.metrics)))
}

/// Folds a prep run's metrics into the main phase's, as if the two were
/// a single run executed back to back.
pub(crate) fn merge_metrics(prep: Metrics, main: Metrics) -> Metrics {
    // If the main phase never sent anything, the merged run went quiet
    // when the prep did; otherwise the main phase's convergence shifts
    // by the prep's round count.
    let convergence_round = if main.messages == 0 {
        prep.convergence_round
    } else {
        prep.rounds + main.convergence_round
    };
    let mut congestion_profile = prep.congestion_profile;
    congestion_profile.extend(main.congestion_profile);
    Metrics {
        rounds: prep.rounds + main.rounds,
        messages: prep.messages + main.messages,
        bits: prep.bits + main.bits,
        max_message_bits: prep.max_message_bits.max(main.max_message_bits),
        congestion_profile,
        fault: {
            let mut f = prep.fault;
            f.absorb(&main.fault);
            f
        },
        convergence_round,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_congest::FaultStats;
    use pga_graph::generators;
    use pga_graph::power::square;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_relay(g: &Graph, threshold: usize) -> (Vec<P1Output>, Metrics) {
        let nodes = (0..g.num_nodes()).map(|_| Phase1::new(threshold)).collect();
        let r = Simulator::congested_clique(g).run(nodes).unwrap();
        (r.outputs, r.metrics)
    }

    /// Runs the direct machine standalone on centrally computed rows.
    fn run_direct(g: &Graph, threshold: usize) -> (Vec<P1Output>, Metrics) {
        let g2 = square(g);
        let nodes = g
            .nodes()
            .map(|v| DirectPhase1::new(threshold, g2.neighbors(v).to_vec()))
            .collect();
        let r = Simulator::congested_clique(g).run(nodes).unwrap();
        (r.outputs, r.metrics)
    }

    fn trajectories() -> Vec<(String, Graph, usize)> {
        let mut rng = StdRng::seed_from_u64(23);
        vec![
            ("star".into(), generators::star(9), 2),
            ("path".into(), generators::path(10), 2),
            ("k55".into(), generators::complete_bipartite(5, 5), 2),
            ("chain".into(), generators::clique_chain(4, 6), 2),
            ("cycle_t0".into(), generators::cycle(7), 0),
            (
                "gnp".into(),
                generators::connected_gnp(40, 0.2, &mut rng),
                3,
            ),
            (
                "sbm".into(),
                generators::planted_partition(120, 6, 0.6, 0.02, 5),
                4,
            ),
        ]
    }

    #[test]
    fn direct_matches_relay_on_families() {
        for (name, g, t) in trajectories() {
            let (relay, _) = run_relay(&g, t);
            let (direct, _) = run_direct(&g, t);
            for (v, (a, b)) in relay.iter().zip(direct.iter()).enumerate() {
                assert_eq!(a, b, "{name}: node {v} diverged");
            }
        }
    }

    #[test]
    fn direct_iterations_are_shorter() {
        // K_{5,5} fires two sequential winners: the relay pays 4 rounds
        // per iteration, the direct machine 3.
        let g = generators::complete_bipartite(5, 5);
        let (_, relay) = run_relay(&g, 2);
        let (_, direct) = run_direct(&g, 2);
        assert!(
            direct.rounds < relay.rounds,
            "direct {} !< relay {}",
            direct.rounds,
            relay.rounds
        );
    }

    #[test]
    fn prep_runner_matches_relay_and_charges_prep() {
        let cfg = RunConfig::new().bmm_prep();
        for (name, g, t) in trajectories() {
            let (relay, _) = run_relay(&g, t);
            let (prep, prep_m) = run_phase1_with_prep(&g, t, usize::MAX, &cfg).unwrap();
            for (v, (a, b)) in relay.iter().zip(prep.iter()).enumerate() {
                assert_eq!(a, b, "{name}: node {v} diverged");
            }
            // The BMM materialization always exchanges messages on a
            // non-empty graph, and the merged metrics must show it.
            if g.num_edges() > 0 {
                assert!(
                    prep_m.rounds > 0 && prep_m.messages > 0,
                    "{name}: prep not charged"
                );
            }
        }
    }

    #[test]
    fn sketch_rows_fall_back_to_relay() {
        // cap_words = 1 truncates the star center's row (130 neighbors
        // span 3 words), so the runner must discard the sketches and
        // replay the relay machine — outputs still bit-identical.
        let g = generators::star(130);
        let (relay, _) = run_relay(&g, 2);
        let cfg = RunConfig::new().bmm_prep();
        let (prep, prep_m) = run_phase1_with_prep(&g, 2, 1, &cfg).unwrap();
        for (v, (a, b)) in relay.iter().zip(prep.iter()).enumerate() {
            assert_eq!(a, b, "node {v} diverged on fallback");
        }
        // The merged profile covers prep + relay rounds.
        assert_eq!(prep_m.congestion_profile.len(), prep_m.rounds);
    }

    #[test]
    fn merge_metrics_concatenates() {
        let prep = Metrics {
            rounds: 3,
            messages: 10,
            bits: 100,
            max_message_bits: 70,
            congestion_profile: vec![70, 10, 0],
            fault: FaultStats {
                delivered: 10,
                ..Default::default()
            },
            convergence_round: 2,
        };
        let main = Metrics {
            rounds: 2,
            messages: 4,
            bits: 8,
            max_message_bits: 2,
            congestion_profile: vec![2, 2],
            fault: FaultStats {
                delivered: 4,
                ..Default::default()
            },
            convergence_round: 1,
        };
        let m = merge_metrics(prep.clone(), main);
        assert_eq!(m.rounds, 5);
        assert_eq!(m.messages, 14);
        assert_eq!(m.bits, 108);
        assert_eq!(m.max_message_bits, 70);
        assert_eq!(m.congestion_profile, vec![70, 10, 0, 2, 2]);
        assert_eq!(m.fault.delivered, 14);
        assert_eq!(m.convergence_round, 4);
        // A silent main phase inherits the prep's convergence point.
        let quiet = merge_metrics(prep, Metrics::default());
        assert_eq!(quiet.convergence_round, 2);
    }
}

#[cfg(test)]
mod codec_roundtrip_tests {
    use super::*;
    use proptest::prelude::*;

    /// Every arm of [`DirectP1Msg`].
    fn arb_msg() -> impl Strategy<Value = DirectP1Msg> {
        prop_oneof![
            Just(DirectP1Msg::Cand),
            Just(DirectP1Msg::JoinS),
            Just(DirectP1Msg::LeftR),
        ]
    }

    proptest! {
        #[test]
        fn direct_p1_msg_codec_roundtrips(m in arb_msg()) {
            prop_assert_eq!(DirectP1Msg::decode(m.encode()), m);
        }
    }
}
