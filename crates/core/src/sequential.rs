//! Centralized (sequential) executions of Algorithm 1 and its weighted
//! variant.
//!
//! These produce the same covers as the distributed implementations would
//! (same greedy rule, deterministic order) without paying the simulator's
//! per-round cost — used by the benchmark harness for approximation-ratio
//! sweeps at sizes where simulating every round is unnecessary.

use crate::mvc::centralized::five_thirds_vertex_cover;
use crate::mvc::congest::{threshold_for_eps, LocalSolver};
use pga_exact::vc::solve_mvc;
use pga_exact::wvc::solve_mwvc;
use pga_graph::matching::two_approx_vertex_cover;
use pga_graph::power::square;
use pga_graph::subgraph::induced_subgraph;
use pga_graph::{Graph, NodeId, VertexWeights};

/// Result of a sequential Algorithm-1 run.
#[derive(Clone, Debug)]
pub struct SequentialResult {
    /// The `G²` vertex cover.
    pub cover: Vec<bool>,
    /// Number of Phase-I vertices (the set `S`).
    pub s_size: usize,
    /// Number of Phase-I loop iterations (centers processed) — each costs
    /// `O(1)` distributed rounds.
    pub iterations: usize,
}

/// Sequential Algorithm 1 (Theorem 1): clique harvesting then an exact (or
/// approximate) solve of `G²[U]`.
///
/// Matches the paper's pseudocode: while some center has more than `1/ε'`
/// remaining neighbors, process it (largest id first, mirroring the
/// distributed tie-breaking).
pub fn g2_mvc_sequential(g: &Graph, eps: f64, solver: LocalSolver) -> SequentialResult {
    let n = g.num_nodes();
    if eps >= 1.0 {
        return SequentialResult {
            cover: vec![true; n],
            s_size: n,
            iterations: 0,
        };
    }
    let l = threshold_for_eps(eps);

    let mut in_s = vec![false; n];
    let mut in_c = vec![true; n];
    let mut iterations = 0;
    loop {
        // Largest-id eligible center (the distributed algorithm's global
        // winner is always eligible, so orders agree on who fires).
        let mut pick = None;
        for v in (0..n).rev() {
            if in_c[v] {
                let d_r = g
                    .neighbors(NodeId::from_index(v))
                    .iter()
                    .filter(|u| !in_s[u.index()])
                    .count();
                if d_r > l {
                    pick = Some(v);
                    break;
                }
            }
        }
        let Some(c) = pick else { break };
        iterations += 1;
        in_c[c] = false;
        for &u in g.neighbors(NodeId::from_index(c)) {
            in_s[u.index()] = true;
        }
    }

    let cover = finish_with_local_solver(g, &in_s, solver);
    let s_size = in_s.iter().filter(|&&b| b).count();
    SequentialResult {
        cover,
        s_size,
        iterations,
    }
}

fn finish_with_local_solver(g: &Graph, in_s: &[bool], solver: LocalSolver) -> Vec<bool> {
    let g2 = square(g);
    let keep: Vec<bool> = in_s.iter().map(|&b| !b).collect();
    let sub = induced_subgraph(&g2, &keep);
    let sub_cover = match solver {
        LocalSolver::Exact => solve_mvc(&sub.graph),
        LocalSolver::FiveThirds => five_thirds_vertex_cover(&sub.graph).cover,
        LocalSolver::TwoApprox => two_approx_vertex_cover(&sub.graph),
    };
    let mut cover = in_s.to_vec();
    for (i, &m) in sub_cover.iter().enumerate() {
        if m {
            cover[sub.to_host[i].index()] = true;
        }
    }
    cover
}

/// Sequential Theorem 7 (weighted): weight-class harvesting then an exact
/// weighted solve of `G²[U]`.
pub fn g2_mwvc_sequential(g: &Graph, w: &VertexWeights, eps: f64) -> SequentialResult {
    assert!(w.matches(g));
    assert!(eps > 0.0);
    let n = g.num_nodes();

    // Zero-weight vertices are free cover.
    let mut in_s: Vec<bool> = (0..n).map(|i| w.as_slice()[i] == 0).collect();
    let mut iterations = 0;

    // Static bucketing base per center: min positive neighbor weight.
    let w_star: Vec<Option<u64>> = (0..n)
        .map(|v| {
            g.neighbors(NodeId::from_index(v))
                .iter()
                .map(|&u| w.get(u))
                .filter(|&x| x > 0)
                .min()
        })
        .collect();

    loop {
        let mut fired = false;
        for c in (0..n).rev() {
            let Some(ws) = w_star[c] else { continue };
            // Gather remaining neighbors per bucket.
            let mut best: Option<(u32, Vec<NodeId>)> = None;
            let mut buckets: std::collections::HashMap<u32, (u64, u64, Vec<NodeId>)> =
                std::collections::HashMap::new();
            for &u in g.neighbors(NodeId::from_index(c)) {
                let wu = w.get(u);
                if wu == 0 || in_s[u.index()] {
                    continue;
                }
                let b = (wu / ws).ilog2();
                let e = buckets.entry(b).or_insert((0, 0, Vec::new()));
                e.0 = e.0.max(wu);
                e.1 += wu;
                e.2.push(u);
            }
            let mut keys: Vec<u32> = buckets.keys().copied().collect();
            keys.sort_unstable();
            for b in keys {
                let (wm, wsum, members) = &buckets[&b];
                if (*wm as f64) <= (*wsum as f64) * eps / (1.0 + eps) {
                    best = Some((b, members.clone()));
                    break;
                }
            }
            if let Some((_b, members)) = best {
                iterations += 1;
                for u in members {
                    in_s[u.index()] = true;
                }
                fired = true;
                break;
            }
        }
        if !fired {
            break;
        }
    }

    // Exact weighted solve of the remainder.
    let g2 = square(g);
    let keep: Vec<bool> = in_s.iter().map(|&b| !b).collect();
    let sub = induced_subgraph(&g2, &keep);
    let sub_w =
        VertexWeights::from_vec(sub.to_host.iter().map(|&v| w.get(v)).collect::<Vec<u64>>());
    let sub_cover = solve_mwvc(&sub.graph, &sub_w);
    let mut cover = in_s.clone();
    for (i, &m) in sub_cover.iter().enumerate() {
        if m {
            cover[sub.to_host[i].index()] = true;
        }
    }
    let s_size = in_s.iter().filter(|&&b| b).count();
    SequentialResult {
        cover,
        s_size,
        iterations,
    }
}

/// The analytic CONGEST round count of Theorem 1 for a sequential run:
/// `4·iterations` for Phase I plus `O(|F| + D)` for Phase II. Used by the
/// harness to report paper-formula rounds next to simulated rounds.
pub fn theorem1_round_formula(n: usize, eps: f64, iterations: usize, diameter: usize) -> usize {
    let l = threshold_for_eps(eps.min(1.0));
    4 * iterations + n * l.min(n) + 4 * diameter + n
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_exact::vc::mvc_size;
    use pga_exact::wvc::mwvc_weight;
    use pga_graph::cover::{is_vertex_cover, set_size};
    use pga_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sequential_matches_guarantee() {
        let mut rng = StdRng::seed_from_u64(101);
        for _ in 0..10 {
            let g = generators::gnp(16, 0.2, &mut rng);
            let g2 = square(&g);
            let opt = mvc_size(&g2);
            let r = g2_mvc_sequential(&g, 0.5, LocalSolver::Exact);
            assert!(is_vertex_cover(&g2, &r.cover));
            if opt > 0 {
                assert!(set_size(&r.cover) as f64 <= 1.5 * opt as f64 + 1e-9);
            }
        }
    }

    #[test]
    fn sequential_and_distributed_same_size() {
        use crate::mvc::congest::g2_mvc_congest;
        for g in [generators::star(15), generators::clique_chain(3, 6)] {
            let seq = g2_mvc_sequential(&g, 0.5, LocalSolver::Exact);
            let dist = g2_mvc_congest(&g, 0.5, LocalSolver::Exact).unwrap();
            assert_eq!(set_size(&seq.cover), dist.size());
            assert_eq!(seq.s_size, dist.s_size);
        }
    }

    #[test]
    fn iteration_bound() {
        // ≤ εn + 1 iterations (each removes > 1/ε vertices from R).
        let mut rng = StdRng::seed_from_u64(102);
        let g = generators::connected_gnp(60, 0.2, &mut rng);
        let eps = 0.25;
        let r = g2_mvc_sequential(&g, eps, LocalSolver::TwoApprox);
        assert!(
            r.iterations as f64 <= eps * 60.0 + 1.0,
            "{} iterations",
            r.iterations
        );
    }

    #[test]
    fn weighted_sequential_guarantee() {
        let mut rng = StdRng::seed_from_u64(103);
        for _ in 0..6 {
            let g = generators::gnp(13, 0.2, &mut rng);
            let w = VertexWeights::random(13, 1..16, &mut rng);
            let g2 = square(&g);
            let opt = mwvc_weight(&g2, &w);
            let r = g2_mwvc_sequential(&g, &w, 0.5);
            assert!(is_vertex_cover(&g2, &r.cover));
            assert!(
                w.subset_weight(&r.cover) as f64 <= 1.5 * opt as f64 + 1e-6,
                "{} vs {opt}",
                w.subset_weight(&r.cover)
            );
        }
    }

    #[test]
    fn formula_is_monotone_in_n() {
        assert!(theorem1_round_formula(100, 0.5, 10, 5) < theorem1_round_formula(200, 0.5, 10, 5));
    }
}
