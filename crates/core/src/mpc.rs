//! MPC variants of the paper's CONGEST entry points.
//!
//! Each `*_mpc` function runs the *exact same* per-node algorithm as its
//! CONGEST sibling, but executes it through `pga-mpc`'s
//! [`CongestOnMpc`] adapter: the vertex set is partitioned across
//! machines with an enforced `S`-word memory budget and per-round I/O
//! caps, and messages route through the MPC exchange. The simulated
//! algorithm cannot tell the difference — results (covers, dominating
//! sets, CONGEST metrics) are **bit-identical** to the CONGEST engines —
//! while the run is additionally accounted in MPC terms
//! ([`MpcExecution::mpc_metrics`]).

use crate::mds::congest_g2::{theorem28_nodes, G2MdsResult};
use crate::mvc::congest::{threshold_for_eps, G2MvcResult};
use crate::mvc::phase1::Phase1;
use crate::mvc::remainder::{f_edges_for_node, solve_remainder, CoverId, FEdge};
use pga_congest::primitives::{GatherScatter, LeaderCompute};
use pga_congest::{default_bandwidth_bits, Metrics, SimError};
use pga_graph::{Graph, NodeId};
use pga_mpc::{
    adapter_vertex_cost, recommended_memory_words, CongestOnMpc, Engine, MpcError, MpcMetrics,
    RunConfig,
};
use std::sync::Arc;

pub use crate::mvc::remainder::LocalSolver;

/// A result computed on the MPC engine, together with the MPC-side
/// resource accounting.
#[derive(Clone, Debug)]
pub struct MpcExecution<T> {
    /// The algorithm result — bit-identical to the CONGEST entry point's.
    pub result: T,
    /// The largest number of machines used by any phase.
    pub machines: usize,
    /// MPC resource metrics, accumulated across phases.
    pub mpc_metrics: MpcMetrics,
}

/// A memory budget sufficient for the adapter to host `g`'s busiest
/// vertex with algorithm state `A`: the adapter's recommended budget,
/// raised if `A`'s per-node state makes the worst vertex fatter (via
/// the adapter's own [`adapter_vertex_cost`] formula, so the bound
/// cannot drift from the partitioner).
fn budget_for<A>(g: &Graph) -> usize {
    let bandwidth = default_bandwidth_bits(g.num_nodes());
    let state_words = std::mem::size_of::<A>().div_ceil(8);
    let worst = (0..g.num_nodes())
        .map(|v| adapter_vertex_cost(g.degree(NodeId::from_index(v)), bandwidth, state_words))
        .max()
        .unwrap_or(0);
    recommended_memory_words(g, bandwidth).max(2 * worst)
}

/// Theorem 1 on the MPC engine: the `(1 + ε)`-approximate `G²`-MVC,
/// with the adapter's recommended memory budget and the sequential
/// engine.
///
/// # Errors
///
/// [`MpcError::Congest`] wraps the `SimError` the CONGEST engines would
/// raise (including the connectivity precondition); the other variants
/// report MPC budget violations.
///
/// # Example
///
/// ```
/// use pga_core::mpc::{g2_mvc_congest_mpc, LocalSolver};
/// use pga_graph::cover::is_vertex_cover_on_square;
/// use pga_graph::generators;
///
/// let g = generators::clique_chain(3, 5);
/// let run = g2_mvc_congest_mpc(&g, 0.5, LocalSolver::Exact).unwrap();
/// assert!(is_vertex_cover_on_square(&g, &run.result.cover));
/// assert!(run.machines >= 1);
/// ```
pub fn g2_mvc_congest_mpc(
    g: &Graph,
    eps: f64,
    solver: LocalSolver,
) -> Result<MpcExecution<G2MvcResult>, MpcError> {
    let budget = budget_for::<Phase1>(g).max(budget_for::<GatherScatter<FEdge, CoverId>>(g));
    g2_mvc_congest_mpc_cfg(g, eps, solver, budget, &RunConfig::new())
}

/// [`g2_mvc_congest_mpc`] with an explicit memory budget `S` (words)
/// and MPC [`Engine`].
///
/// # Errors
///
/// Returns an [`MpcError`] like [`g2_mvc_congest_mpc`].
#[deprecated(since = "0.1.0", note = "use g2_mvc_congest_mpc_cfg with a RunConfig")]
pub fn g2_mvc_congest_mpc_with(
    g: &Graph,
    eps: f64,
    solver: LocalSolver,
    memory_words: usize,
    engine: Engine,
) -> Result<MpcExecution<G2MvcResult>, MpcError> {
    g2_mvc_congest_mpc_cfg(
        g,
        eps,
        solver,
        memory_words,
        &RunConfig::new().engine(engine),
    )
}

/// [`g2_mvc_congest_mpc`] with an explicit memory budget `S` (words)
/// under an explicit [`RunConfig`] (engine, thread count, scheduling
/// policy, packed message plane for the cross-machine batches).
///
/// Every configuration is bit-identical, including the MPC resource
/// accounting.
///
/// # Errors
///
/// Returns an [`MpcError`] like [`g2_mvc_congest_mpc`].
pub fn g2_mvc_congest_mpc_cfg(
    g: &Graph,
    eps: f64,
    solver: LocalSolver,
    memory_words: usize,
    cfg: &RunConfig,
) -> Result<MpcExecution<G2MvcResult>, MpcError> {
    let n = g.num_nodes();
    if eps >= 1.0 || n == 0 {
        // Lemma 6's zero-round trivial approximation, exactly as in the
        // CONGEST entry point (and the only sound answer for the empty
        // graph, whose Phase II has no leader to gather at).
        return Ok(MpcExecution {
            result: G2MvcResult {
                cover: vec![true; n],
                s_size: n,
                r_star_size: 0,
                phase1_metrics: Metrics::default(),
                phase2_metrics: Metrics::default(),
            },
            machines: 0,
            mpc_metrics: MpcMetrics::default(),
        });
    }
    if !pga_graph::traversal::is_connected(g) {
        return Err(MpcError::Congest(SimError::PreconditionViolated {
            what: "g2_mvc_congest requires a connected communication graph",
        }));
    }
    let l = threshold_for_eps(eps);
    let driver = CongestOnMpc::congest(g).with_memory_words(memory_words);

    // Phase I: clique harvesting, with the CONGEST entry point's phase
    // deadline when the reliability plane is armed.
    let p1_deadline = cfg.phase_deadline(4 * n + 8);
    let p1 = driver.run_cfg(
        (0..n)
            .map(|_| Phase1::new(l).with_deadline(p1_deadline))
            .collect(),
        cfg,
    )?;
    let mut phase1_metrics = p1.congest;
    phase1_metrics.fault.degraded += p1.outputs.iter().filter(|o| o.timed_out).count() as u64;
    let p1_out = p1.outputs;

    // Phase II: gather F at the leader, solve, scatter R* — with the
    // same phase deadline as the CONGEST entry point when the
    // reliability plane is armed.
    let compute: LeaderCompute<FEdge, CoverId> =
        Arc::new(move |edges: Vec<FEdge>| solve_remainder(&edges, solver));
    let per_node: Vec<Vec<FEdge>> = (0..n)
        .map(|i| {
            let o = &p1_out[i];
            f_edges_for_node(NodeId::from_index(i), !o.in_s, &o.r_neighbors, |_| 1)
        })
        .collect();
    let k_total: usize = per_node.iter().map(Vec::len).sum();
    let deadline = cfg.phase_deadline(4 * (k_total + n) + 10);
    let nodes = per_node
        .into_iter()
        .map(|items| GatherScatter::new(items, Arc::clone(&compute)).with_deadline(deadline))
        .collect();
    let p2 = driver.run_cfg(nodes, cfg)?;

    let mut cover: Vec<bool> = p1_out.iter().map(|o| o.in_s).collect();
    let s_size = cover.iter().filter(|&&b| b).count();
    let r_star = &p2.outputs[0].response;
    for c in r_star {
        cover[c.0.index()] = true;
    }
    // Phase-timeout fallback: incomplete nodes self-add (validity over
    // approximation), mirroring the CONGEST entry point.
    let mut phase2_metrics = p2.congest;
    for (i, o) in p2.outputs.iter().enumerate() {
        if !o.complete {
            phase2_metrics.fault.degraded += 1;
            cover[i] = true;
        }
    }

    let mut mpc_metrics = p1.mpc;
    mpc_metrics.absorb(&p2.mpc);
    Ok(MpcExecution {
        result: G2MvcResult {
            cover,
            s_size,
            r_star_size: r_star.len(),
            phase1_metrics,
            phase2_metrics,
        },
        machines: p1.machines.max(p2.machines),
        mpc_metrics,
    })
}

/// Theorem 28 on the MPC engine: the randomized `O(log Δ)`-approximate
/// `G²`-MDS, with the adapter's recommended memory budget and the
/// sequential engine. The same `seed` yields the same dominating set as
/// [`crate::mds::congest_g2::g2_mds_congest`], bit for bit.
///
/// # Errors
///
/// Returns an [`MpcError`] like [`g2_mvc_congest_mpc`].
pub fn g2_mds_congest_mpc(
    g: &Graph,
    sample_factor: usize,
    seed: u64,
) -> Result<MpcExecution<G2MdsResult>, MpcError> {
    let budget = budget_for::<crate::mds::congest_g2::Theorem28Node>(g);
    g2_mds_congest_mpc_cfg(g, sample_factor, seed, budget, &RunConfig::new())
}

/// [`g2_mds_congest_mpc`] with an explicit memory budget `S` (words)
/// and MPC [`Engine`].
///
/// # Errors
///
/// Returns an [`MpcError`] like [`g2_mvc_congest_mpc`].
#[deprecated(since = "0.1.0", note = "use g2_mds_congest_mpc_cfg with a RunConfig")]
pub fn g2_mds_congest_mpc_with(
    g: &Graph,
    sample_factor: usize,
    seed: u64,
    memory_words: usize,
    engine: Engine,
) -> Result<MpcExecution<G2MdsResult>, MpcError> {
    g2_mds_congest_mpc_cfg(
        g,
        sample_factor,
        seed,
        memory_words,
        &RunConfig::new().engine(engine),
    )
}

/// [`g2_mds_congest_mpc`] with an explicit memory budget `S` (words)
/// under an explicit [`RunConfig`] (engine, thread count, scheduling
/// policy, packed message plane for the cross-machine batches).
///
/// Every configuration is bit-identical, including the MPC resource
/// accounting.
///
/// # Errors
///
/// Returns an [`MpcError`] like [`g2_mvc_congest_mpc`].
pub fn g2_mds_congest_mpc_cfg(
    g: &Graph,
    sample_factor: usize,
    seed: u64,
    memory_words: usize,
    cfg: &RunConfig,
) -> Result<MpcExecution<G2MdsResult>, MpcError> {
    let n = g.num_nodes();
    if n == 0 {
        return Ok(MpcExecution {
            result: G2MdsResult {
                dominating_set: Vec::new(),
                metrics: Metrics::default(),
                samples_per_phase: 0,
            },
            machines: 0,
            mpc_metrics: MpcMetrics::default(),
        });
    }
    let (nodes, r) = theorem28_nodes(g, sample_factor, seed);
    let report = CongestOnMpc::congest(g)
        .with_memory_words(memory_words)
        .run_cfg(nodes, cfg)?;
    Ok(MpcExecution {
        result: G2MdsResult {
            dominating_set: report.outputs,
            metrics: report.congest,
            samples_per_phase: r,
        },
        machines: report.machines,
        mpc_metrics: report.mpc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mds::congest_g2::g2_mds_congest;
    use crate::mvc::congest::g2_mvc_congest;
    use pga_graph::cover::{is_dominating_set_on_square, is_vertex_cover_on_square};
    use pga_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mvc_bit_identical_to_congest_entry_point() {
        let mut rng = StdRng::seed_from_u64(4242);
        for _ in 0..4 {
            let g = generators::connected_gnp(22, 0.12, &mut rng);
            for eps in [0.34, 0.5] {
                let reference = g2_mvc_congest(&g, eps, LocalSolver::Exact).unwrap();
                let mpc = g2_mvc_congest_mpc(&g, eps, LocalSolver::Exact).unwrap();
                assert_eq!(mpc.result.cover, reference.cover, "eps={eps}");
                assert_eq!(mpc.result.s_size, reference.s_size);
                assert_eq!(mpc.result.r_star_size, reference.r_star_size);
                assert_eq!(mpc.result.phase1_metrics, reference.phase1_metrics);
                assert_eq!(mpc.result.phase2_metrics, reference.phase2_metrics);
                assert!(is_vertex_cover_on_square(&g, &mpc.result.cover));
                assert!(mpc.machines >= 1);
                assert!(mpc.mpc_metrics.rounds == reference.total_rounds());
            }
        }
    }

    #[test]
    fn mds_bit_identical_to_congest_entry_point() {
        let mut rng = StdRng::seed_from_u64(4243);
        for seed in 0..3 {
            let g = generators::connected_gnp(20, 0.12, &mut rng);
            let reference = g2_mds_congest(&g, 6, seed).unwrap();
            let mpc = g2_mds_congest_mpc(&g, 6, seed).unwrap();
            assert_eq!(mpc.result.dominating_set, reference.dominating_set);
            assert_eq!(mpc.result.metrics, reference.metrics);
            assert!(is_dominating_set_on_square(&g, &mpc.result.dominating_set));
        }
    }

    #[test]
    fn mvc_trivial_eps_matches() {
        let g = generators::path(8);
        let run = g2_mvc_congest_mpc(&g, 2.0, LocalSolver::Exact).unwrap();
        assert_eq!(run.result.size(), 8);
        assert_eq!(run.mpc_metrics.rounds, 0);
    }

    #[test]
    fn empty_graph_returns_empty_cover() {
        let g = Graph::empty(0);
        let run = g2_mvc_congest_mpc(&g, 0.5, LocalSolver::Exact).unwrap();
        assert!(run.result.cover.is_empty());
        assert_eq!(run.mpc_metrics.rounds, 0);
        let reference = g2_mvc_congest(&g, 0.5, LocalSolver::Exact).unwrap();
        assert!(reference.cover.is_empty());
        let mds = g2_mds_congest_mpc(&g, 6, 1).unwrap();
        assert!(mds.result.dominating_set.is_empty());
    }

    #[test]
    fn mvc_disconnected_rejected_like_congest() {
        let g = generators::disjoint_union(&generators::path(4), &generators::path(4));
        let err = g2_mvc_congest_mpc(&g, 0.5, LocalSolver::Exact).unwrap_err();
        assert!(matches!(
            err,
            MpcError::Congest(SimError::PreconditionViolated { .. })
        ));
    }

    #[test]
    fn mvc_engine_choice_does_not_change_result() {
        let mut rng = StdRng::seed_from_u64(4244);
        let g = generators::connected_gnp(24, 0.12, &mut rng);
        let budget = budget_for::<Phase1>(&g).max(budget_for::<GatherScatter<FEdge, CoverId>>(&g));
        let seq =
            g2_mvc_congest_mpc_cfg(&g, 0.5, LocalSolver::Exact, budget, &RunConfig::new()).unwrap();
        for codec in [false, true] {
            let cfg = RunConfig::new().parallel(3).codec(codec);
            let par = g2_mvc_congest_mpc_cfg(&g, 0.5, LocalSolver::Exact, budget, &cfg).unwrap();
            assert_eq!(par.result.cover, seq.result.cover, "codec={codec}");
            assert_eq!(par.mpc_metrics, seq.mpc_metrics, "codec={codec}");
        }
    }

    #[test]
    fn larger_budget_means_fewer_machines_same_bits() {
        let g = generators::grid(6, 6);
        let base = budget_for::<Phase1>(&g).max(budget_for::<GatherScatter<FEdge, CoverId>>(&g));
        let fine =
            g2_mvc_congest_mpc_cfg(&g, 0.5, LocalSolver::Exact, base, &RunConfig::new()).unwrap();
        let coarse =
            g2_mvc_congest_mpc_cfg(&g, 0.5, LocalSolver::Exact, 8 * base, &RunConfig::new())
                .unwrap();
        assert!(fine.machines >= coarse.machines);
        assert_eq!(fine.result.cover, coarse.result.cover);
        assert_eq!(fine.result.phase1_metrics, coarse.result.phase1_metrics);
    }
}
