//! Cross-engine bit-identity proptests for every engine-parameterized
//! `pga-core` entry point.
//!
//! The shared `pga-runtime` kernel promises that the sequential and
//! sharded executors are bit-identical — outputs, metrics (including
//! the per-round congestion and I/O profiles), and errors — at every
//! thread count, and that the packed-codec message plane is
//! bit-identical to the enum plane. These tests pin both promises at
//! the public API level: each `*_cfg` entry point is run sequentially
//! (the reference) and at thread counts {1, 2, 4, 8} with the codec
//! plane both off and on, on uniform `connected_gnm` and heavy-tailed
//! Barabási–Albert instances plus a quiescent-tail lollipop and a
//! disconnected instance (the error path: Phase II's BFS tree requires
//! connectivity).

use pga_congest::RunConfig;
use pga_core::mds::congest_g2::g2_mds_congest_cfg;
use pga_core::mds::estimator::estimate_two_hop_sizes_cfg;
use pga_core::mpc::{g2_mds_congest_mpc_cfg, g2_mvc_congest_mpc_cfg};
use pga_core::mvc::clique_det::g2_mvc_clique_det_cfg;
use pga_core::mvc::clique_rand::g2_mvc_clique_rand_cfg;
use pga_core::mvc::congest::{g2_mvc_congest_cfg, G2MvcResult, LocalSolver};
use pga_core::mvc::weighted::g2_mwvc_congest_cfg;
use pga_graph::{generators, Graph, GraphBuilder, NodeId, VertexWeights};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The thread counts every entry point is checked at.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Every non-sequential configuration under test: each thread count
/// with the enum plane and with the packed-codec plane.
fn parallel_cfgs() -> impl Iterator<Item = RunConfig> {
    THREADS.into_iter().flat_map(|t| {
        [false, true]
            .into_iter()
            .map(move |codec| RunConfig::new().parallel(t).codec(codec))
    })
}

/// Instance families: uniform gnm, heavy-tailed BA, a quiescent-tail
/// lollipop (gnm blob + path tail, the shard-skew shape the
/// cost-balanced exchange must handle), and a disconnected union of two
/// paths (drives the `PreconditionViolated` error path of the
/// BFS-tree-based phases).
fn arb_instance() -> impl Strategy<Value = Graph> {
    (6usize..24, any::<u64>(), 0u8..4).prop_map(|(n, seed, family)| match family {
        0 => {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = (n + seed as usize % (2 * n)).min(n * (n - 1) / 2);
            generators::connected_gnm(n, m, &mut rng)
        }
        1 => generators::barabasi_albert(n, 3.min(n - 1).max(1), seed),
        2 => {
            // Lollipop: connected gnm blob with a path tail attached at
            // the largest id.
            let blob_m = (n + n / 2).min(n * (n - 1) / 2);
            generators::gnm_lollipop(n, blob_m, 1 + (seed as usize % 8), seed)
        }
        _ => {
            // Disconnected: two path components.
            let half = n / 2;
            let mut b = GraphBuilder::new(n);
            for i in 0..half.saturating_sub(1) {
                b.add_edge(NodeId::from_index(i), NodeId::from_index(i + 1));
            }
            for i in half..n - 1 {
                b.add_edge(NodeId::from_index(i), NodeId::from_index(i + 1));
            }
            b.build()
        }
    })
}

/// Comparable projection of a `G2MvcResult` (all fields, metrics with
/// their full congestion profiles).
#[allow(clippy::type_complexity)]
fn mvc_key(
    r: Result<G2MvcResult, pga_congest::SimError>,
) -> Result<
    (
        Vec<bool>,
        usize,
        usize,
        pga_congest::Metrics,
        pga_congest::Metrics,
    ),
    pga_congest::SimError,
> {
    r.map(|r| {
        (
            r.cover,
            r.s_size,
            r.r_star_size,
            r.phase1_metrics,
            r.phase2_metrics,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Theorem 1 (G²-MVC in CONGEST), success and error cases alike.
    #[test]
    fn g2_mvc_engines_bit_identical(g in arb_instance()) {
        let reference = mvc_key(g2_mvc_congest_cfg(&g, 0.4, LocalSolver::Exact, &RunConfig::new()));
        for cfg in parallel_cfgs() {
            let par = mvc_key(g2_mvc_congest_cfg(&g, 0.4, LocalSolver::Exact, &cfg));
            prop_assert_eq!(&par, &reference, "{:?}", cfg);
        }
    }

    /// Theorem 7 (weighted G²-MVC).
    #[test]
    fn g2_mwvc_engines_bit_identical(g in arb_instance(), wseed in any::<u64>()) {
        let n = g.num_nodes();
        let weights: Vec<u64> = (0..n).map(|i| 1 + (wseed.wrapping_mul(i as u64 + 7) % 9)).collect();
        let w = VertexWeights::from_vec(weights);
        let reference = g2_mwvc_congest_cfg(&g, &w, 0.4, &RunConfig::new())
            .map(|r| (r.cover, r.s_weight, r.r_star_weight, r.phase1_metrics, r.phase2_metrics));
        for cfg in parallel_cfgs() {
            let par = g2_mwvc_congest_cfg(&g, &w, 0.4, &cfg)
                .map(|r| (r.cover, r.s_weight, r.r_star_weight, r.phase1_metrics, r.phase2_metrics));
            prop_assert_eq!(&par, &reference, "{:?}", cfg);
        }
    }

    /// Corollary 10 (deterministic CONGESTED CLIQUE).
    #[test]
    fn g2_mvc_clique_det_engines_bit_identical(g in arb_instance()) {
        let reference = mvc_key(g2_mvc_clique_det_cfg(
            &g, 0.4, LocalSolver::FiveThirds, &RunConfig::new(),
        ));
        for cfg in parallel_cfgs() {
            let par = mvc_key(g2_mvc_clique_det_cfg(&g, 0.4, LocalSolver::FiveThirds, &cfg));
            prop_assert_eq!(&par, &reference, "{:?}", cfg);
        }
    }

    /// Corollary 10 with BMM preprocessing: the direct Phase I on
    /// materialized G² rows is engine- and thread-bit-identical, and
    /// its *cover* equals the relay pipeline's on every instance
    /// (metrics differ by design — the prep run is charged).
    #[test]
    fn g2_mvc_clique_det_bmm_prep_bit_identical(g in arb_instance()) {
        let base = RunConfig::new().bmm_prep();
        let reference = mvc_key(g2_mvc_clique_det_cfg(&g, 0.4, LocalSolver::FiveThirds, &base));
        let relay = mvc_key(g2_mvc_clique_det_cfg(
            &g, 0.4, LocalSolver::FiveThirds, &RunConfig::new(),
        ));
        match (&reference, &relay) {
            (Ok(bmm), Ok(relay)) => prop_assert_eq!(&bmm.0, &relay.0, "cover diverged from relay"),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            _ => prop_assert!(false, "one pipeline errored, the other did not"),
        }
        for cfg in parallel_cfgs() {
            let cfg = cfg.bmm_prep();
            let par = mvc_key(g2_mvc_clique_det_cfg(&g, 0.4, LocalSolver::FiveThirds, &cfg));
            prop_assert_eq!(&par, &reference, "{:?}", cfg);
        }
    }

    /// SBM is the workload BMM preprocessing targets: clustered rows
    /// pack into few words, so the prep stays exact and fast. Pin the
    /// bit-identity acceptance criterion on it explicitly.
    #[test]
    fn g2_mvc_clique_det_bmm_prep_sbm(n in 24usize..96, seed in any::<u64>()) {
        let g = generators::planted_partition(n, n / 12 + 1, 0.5, 0.05, seed);
        let base = RunConfig::new().bmm_prep();
        let reference = mvc_key(g2_mvc_clique_det_cfg(&g, 0.4, LocalSolver::FiveThirds, &base));
        let relay = mvc_key(g2_mvc_clique_det_cfg(
            &g, 0.4, LocalSolver::FiveThirds, &RunConfig::new(),
        ));
        let cover = reference.as_ref().unwrap().0.clone();
        prop_assert_eq!(&cover, &relay.unwrap().0, "cover diverged from relay");
        prop_assert!(pga_graph::cover::is_vertex_cover_on_square(&g, &cover));
        for cfg in parallel_cfgs() {
            let cfg = cfg.bmm_prep();
            let par = mvc_key(g2_mvc_clique_det_cfg(&g, 0.4, LocalSolver::FiveThirds, &cfg));
            prop_assert_eq!(&par, &reference, "{:?}", cfg);
        }
    }

    /// Theorem 11 (randomized CONGESTED CLIQUE; same seed, same result).
    #[test]
    fn g2_mvc_clique_rand_engines_bit_identical(g in arb_instance(), seed in any::<u64>()) {
        let reference = mvc_key(g2_mvc_clique_rand_cfg(
            &g, 0.4, LocalSolver::FiveThirds, seed, &RunConfig::new(),
        ));
        for cfg in parallel_cfgs() {
            let par = mvc_key(g2_mvc_clique_rand_cfg(
                &g, 0.4, LocalSolver::FiveThirds, seed, &cfg,
            ));
            prop_assert_eq!(&par, &reference, "{:?}", cfg);
        }
    }

    /// Theorem 28 (G²-MDS; randomized, seed-pinned).
    #[test]
    fn g2_mds_engines_bit_identical(g in arb_instance(), seed in any::<u64>()) {
        let reference = g2_mds_congest_cfg(&g, 2, seed, &RunConfig::new())
            .map(|r| (r.dominating_set, r.metrics, r.samples_per_phase));
        for cfg in parallel_cfgs() {
            let par = g2_mds_congest_cfg(&g, 2, seed, &cfg)
                .map(|r| (r.dominating_set, r.metrics, r.samples_per_phase));
            prop_assert_eq!(&par, &reference, "{:?}", cfg);
        }
    }

    /// Lemma 29 (2-hop estimator; exact f64 equality is the point —
    /// the engines must deliver identical samples in identical order,
    /// and the codec must round-trip every f64 bit pattern).
    #[test]
    fn estimator_engines_bit_identical(g in arb_instance(), seed in any::<u64>()) {
        let n = g.num_nodes();
        let in_u: Vec<bool> = (0..n).map(|i| (seed >> (i % 64)) & 1 == 1).collect();
        let reference = estimate_two_hop_sizes_cfg(&g, &in_u, 3, seed, &RunConfig::new());
        for cfg in parallel_cfgs() {
            let par = estimate_two_hop_sizes_cfg(&g, &in_u, 3, seed, &cfg);
            prop_assert_eq!(&par, &reference, "{:?}", cfg);
        }
    }

    /// The MPC-executed Theorem 1: engine-parameterized at the MPC
    /// layer, compared on result, machine count, and full MPC metrics
    /// (I/O profile included) — with and without packed cross-machine
    /// batches.
    #[test]
    fn g2_mvc_mpc_engines_bit_identical(g in arb_instance()) {
        let budget = pga_mpc::recommended_memory_words(
            &g,
            pga_congest::default_bandwidth_bits(g.num_nodes()),
        ) * 2
            + 4096;
        let reference = g2_mvc_congest_mpc_cfg(&g, 0.4, LocalSolver::Exact, budget, &RunConfig::new())
            .map(|e| (mvc_key(Ok(e.result)).unwrap(), e.machines, e.mpc_metrics));
        for cfg in parallel_cfgs() {
            let par = g2_mvc_congest_mpc_cfg(&g, 0.4, LocalSolver::Exact, budget, &cfg)
                .map(|e| (mvc_key(Ok(e.result)).unwrap(), e.machines, e.mpc_metrics));
            prop_assert_eq!(&par, &reference, "{:?}", cfg);
        }
    }

    /// The MPC-executed Theorem 28.
    #[test]
    fn g2_mds_mpc_engines_bit_identical(g in arb_instance(), seed in any::<u64>()) {
        let budget = pga_mpc::recommended_memory_words(
            &g,
            pga_congest::default_bandwidth_bits(g.num_nodes()),
        ) * 2
            + 4096;
        let reference = g2_mds_congest_mpc_cfg(&g, 2, seed, budget, &RunConfig::new())
            .map(|e| ((e.result.dominating_set, e.result.metrics), e.machines, e.mpc_metrics));
        for cfg in parallel_cfgs() {
            let par = g2_mds_congest_mpc_cfg(&g, 2, seed, budget, &cfg)
                .map(|e| ((e.result.dominating_set, e.result.metrics), e.machines, e.mpc_metrics));
            prop_assert_eq!(&par, &reference, "{:?}", cfg);
        }
    }
}
