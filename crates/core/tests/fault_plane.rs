//! Property-based tests for the reliability plane at the pipeline
//! level: with ARQ plus phase timeouts armed, every `G²`-MVC pipeline
//! must return a *valid* cover no matter how hostile the (seeded)
//! adversary is — timeouts may only degrade the approximation, never
//! feasibility — and the degraded result must stay bit-identical
//! across engines, thread counts, and message planes. On clean runs
//! the armed timeouts must be invisible.

use pga_congest::{FaultSpec, ReliabilitySpec, RunConfig};
use pga_core::mpc::g2_mvc_congest_mpc_cfg;
use pga_core::mvc::clique_det::g2_mvc_clique_det_cfg;
use pga_core::mvc::clique_rand::g2_mvc_clique_rand_cfg;
use pga_core::mvc::congest::{g2_mvc_congest, g2_mvc_congest_cfg, LocalSolver};
use pga_core::mvc::weighted::g2_mwvc_congest_cfg;
use pga_graph::cover::is_vertex_cover_on_square;
use pga_graph::weights::VertexWeights;
use pga_graph::{generators, Graph};
use proptest::prelude::*;

fn arb_instance() -> impl Strategy<Value = Graph> {
    (4usize..12, any::<u64>()).prop_map(|(n, seed)| {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = (n + seed as usize % (2 * n)).min(n * (n - 1) / 2);
        generators::connected_gnm(n, m, &mut rng)
    })
}

/// Every fault class at once, including crashes — the schedule the
/// phase timeouts exist for: a crashed sender's links go dead under
/// ARQ, so without the deadline fallback a gather phase would wait
/// forever for edges that can no longer arrive.
fn hostile(seed: u64) -> FaultSpec {
    FaultSpec::seeded(seed)
        .drop(0.05)
        .duplicate(0.02)
        .delay(0.03, 3)
        .crash(0.03, 4)
}

/// ARQ with a small retry budget (so crashed links die quickly) and
/// phase timeouts at 2× the clean round bound.
fn recovery() -> ReliabilitySpec {
    ReliabilitySpec::arq()
        .with_max_retries(3)
        .with_phase_timeouts(2)
}

fn hostile_cfg(seed: u64, threads: usize, codec: bool) -> RunConfig {
    let base = if threads == 0 {
        RunConfig::new().sequential()
    } else {
        RunConfig::new().parallel(threads)
    };
    base.codec(codec)
        .max_rounds(200_000)
        .adversary(hostile(seed))
        .reliability(recovery())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Armed-but-unneeded timeouts are invisible: with no adversary,
    /// ARQ + phase timeouts reproduce the clean pipeline bit for bit.
    #[test]
    fn armed_timeouts_are_invisible_on_clean_runs(g in arb_instance()) {
        let clean = g2_mvc_congest(&g, 0.4, LocalSolver::Exact).unwrap();
        let cfg = RunConfig::new().reliability(recovery());
        let r = g2_mvc_congest_cfg(&g, 0.4, LocalSolver::Exact, &cfg).unwrap();
        prop_assert_eq!(&r.cover, &clean.cover);
        prop_assert_eq!(r.phase1_metrics.fault.degraded, 0);
        prop_assert_eq!(r.phase2_metrics.fault.degraded, 0);
    }

    /// Theorem 1's CONGEST pipeline under the full hostile schedule:
    /// the recovered cover is always feasible on `G²`, and the whole
    /// degraded result is replay-identical across engines, thread
    /// counts, and codec planes.
    #[test]
    fn congest_mvc_timeout_fallback_is_always_valid(g in arb_instance(), seed in any::<u64>()) {
        let base = g2_mvc_congest_cfg(&g, 0.4, LocalSolver::Exact, &hostile_cfg(seed, 0, false))
            .unwrap();
        prop_assert!(is_vertex_cover_on_square(&g, &base.cover));
        for threads in [1usize, 4] {
            for codec in [false, true] {
                let r = g2_mvc_congest_cfg(&g, 0.4, LocalSolver::Exact, &hostile_cfg(seed, threads, codec))
                    .unwrap();
                prop_assert_eq!(&r.cover, &base.cover, "threads {} codec {}", threads, codec);
                prop_assert_eq!(
                    r.phase2_metrics.fault.degraded,
                    base.phase2_metrics.fault.degraded,
                    "threads {} codec {}", threads, codec
                );
            }
        }
    }

    /// The weighted pipeline (Theorem 24) under the hostile schedule:
    /// valid cover, deterministic degradation.
    #[test]
    fn weighted_mvc_timeout_fallback_is_always_valid(g in arb_instance(), seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5eed);
        let w = VertexWeights::random(g.num_nodes(), 1..100, &mut rng);
        let base = g2_mwvc_congest_cfg(&g, &w, 0.5, &hostile_cfg(seed, 0, false)).unwrap();
        prop_assert!(is_vertex_cover_on_square(&g, &base.cover));
        for threads in [1usize, 4] {
            let r = g2_mwvc_congest_cfg(&g, &w, 0.5, &hostile_cfg(seed, threads, true)).unwrap();
            prop_assert_eq!(&r.cover, &base.cover, "threads {}", threads);
        }
    }

    /// Both clique pipelines (deterministic Phase I + leader verdicts,
    /// randomized voting Phase I) under the hostile schedule: valid
    /// covers, deterministic across engines.
    #[test]
    fn clique_mvc_timeout_fallback_is_always_valid(g in arb_instance(), seed in any::<u64>()) {
        let det = g2_mvc_clique_det_cfg(&g, 0.4, LocalSolver::Exact, &hostile_cfg(seed, 0, false))
            .unwrap();
        prop_assert!(is_vertex_cover_on_square(&g, &det.cover));
        let rand = g2_mvc_clique_rand_cfg(&g, 0.4, LocalSolver::Exact, seed, &hostile_cfg(seed, 0, false))
            .unwrap();
        prop_assert!(is_vertex_cover_on_square(&g, &rand.cover));
        for threads in [1usize, 4] {
            let d = g2_mvc_clique_det_cfg(&g, 0.4, LocalSolver::Exact, &hostile_cfg(seed, threads, true))
                .unwrap();
            prop_assert_eq!(&d.cover, &det.cover, "det threads {}", threads);
            let r = g2_mvc_clique_rand_cfg(&g, 0.4, LocalSolver::Exact, seed, &hostile_cfg(seed, threads, true))
                .unwrap();
            prop_assert_eq!(&r.cover, &rand.cover, "rand threads {}", threads);
        }
    }

    /// The MPC-executed pipeline under the hostile schedule applied to
    /// the cross-machine exchange: valid cover, deterministic across
    /// engines and batch planes.
    #[test]
    fn mpc_mvc_timeout_fallback_is_always_valid(g in arb_instance(), seed in any::<u64>()) {
        let budget = pga_mpc::recommended_memory_words(
            &g,
            pga_congest::default_bandwidth_bits(g.num_nodes()),
        ) * 2
            + 4096;
        let base = g2_mvc_congest_mpc_cfg(&g, 0.4, LocalSolver::Exact, budget, &hostile_cfg(seed, 0, false))
            .unwrap();
        prop_assert!(is_vertex_cover_on_square(&g, &base.result.cover));
        for threads in [1usize, 4] {
            let r = g2_mvc_congest_mpc_cfg(&g, 0.4, LocalSolver::Exact, budget, &hostile_cfg(seed, threads, true))
                .unwrap();
            prop_assert_eq!(&r.result.cover, &base.result.cover, "threads {}", threads);
        }
    }
}
