//! Property-based tests for the paper's algorithms — Lemma-level
//! invariants beyond end-to-end ratios.

use pga_core::mvc::centralized::five_thirds_vertex_cover;
use pga_core::mvc::congest::{g2_mvc_congest, LocalSolver};
use pga_core::mvc::trivial::{independent_set_upper_bound, vertex_cover_lower_bound};
use pga_core::sequential::g2_mvc_sequential;
use pga_exact::vc::mvc_size;
use pga_graph::cover::{is_vertex_cover_on_square, set_size};
use pga_graph::power::{power, square};
use pga_graph::{generators, Graph};
use proptest::prelude::*;

fn arb_connected(max_n: usize) -> impl Strategy<Value = Graph> {
    (3..max_n, any::<u64>()).prop_map(|(n, seed)| {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        generators::connected_gnp(n, 0.12, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Lemma 4: the two-phase cover is always feasible on G².
    #[test]
    fn lemma4_validity(g in arb_connected(16), eps in 0.15f64..0.9) {
        let r = g2_mvc_congest(&g, eps, LocalSolver::Exact).unwrap();
        prop_assert!(is_vertex_cover_on_square(&g, &r.cover));
    }

    /// Lemma 5's consequence: the Phase-I set S alone never exceeds
    /// (1+ε)·OPT — S is a (1+ε)-approximation *for the part it covers*,
    /// so in particular |S| ≤ (1+ε)·OPT(G²).
    #[test]
    fn lemma5_phase1_bounded(g in arb_connected(14)) {
        let eps = 0.5;
        let r = g2_mvc_congest(&g, eps, LocalSolver::Exact).unwrap();
        let opt = mvc_size(&square(&g));
        prop_assert!(
            r.s_size as f64 <= (1.0 + eps) * opt as f64 + 1e-9,
            "|S| = {} vs OPT = {}", r.s_size, opt
        );
    }

    /// Distributed and sequential Algorithm 1 always produce equal-size
    /// covers (same rule, same exact finisher).
    #[test]
    fn distributed_equals_sequential(g in arb_connected(14)) {
        let dist = g2_mvc_congest(&g, 0.5, LocalSolver::Exact).unwrap();
        let seq = g2_mvc_sequential(&g, 0.5, LocalSolver::Exact);
        prop_assert_eq!(dist.size(), set_size(&seq.cover));
    }

    /// Lemma 6's two bounds hold on every connected graph and power.
    #[test]
    fn lemma6_bounds(g in arb_connected(13), r in 2usize..5) {
        let n = g.num_nodes();
        let gr = power(&g, r);
        let opt = mvc_size(&gr);
        prop_assert!(opt >= vertex_cover_lower_bound(n, r));
        // complement bound: max independent set of G^r ≤ ⌈n/α⌉
        let is_max = n - opt; // complement of a minimum VC is a max IS
        prop_assert!(is_max <= independent_set_upper_bound(n, r));
    }

    /// The 5/3 algorithm's parts partition its cover.
    #[test]
    fn five_thirds_parts_partition(g in arb_connected(14)) {
        let g2 = square(&g);
        let r = five_thirds_vertex_cover(&g2);
        let mut seen = vec![false; g2.num_nodes()];
        for v in r.part1.iter().chain(&r.part2).chain(&r.part3) {
            prop_assert!(!seen[v.index()], "vertex taken twice");
            seen[v.index()] = true;
        }
        prop_assert_eq!(
            seen.iter().filter(|&&b| b).count(),
            set_size(&r.cover)
        );
    }

    /// Triangle accounting: part 1 takes vertices in groups of 3, and on
    /// triangle-free squares (matchings) part 1 is empty.
    #[test]
    fn five_thirds_triangle_accounting(g in arb_connected(14)) {
        let g2 = square(&g);
        let r = five_thirds_vertex_cover(&g2);
        prop_assert_eq!(r.part1.len() % 3, 0, "triangles come in threes");
    }

    /// Rounds are deterministic: same input, same round count.
    #[test]
    fn deterministic_rounds(g in arb_connected(12)) {
        let a = g2_mvc_congest(&g, 0.5, LocalSolver::Exact).unwrap();
        let b = g2_mvc_congest(&g, 0.5, LocalSolver::Exact).unwrap();
        prop_assert_eq!(a.total_rounds(), b.total_rounds());
        prop_assert_eq!(a.cover, b.cover);
    }
}
