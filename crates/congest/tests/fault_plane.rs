//! Property-based tests for the adversarial execution plane at the
//! simulator level: a no-fault adversary must reproduce the clean
//! engines bit for bit (outputs, metrics, errors), a seeded adversary
//! must be deterministic across engines, thread counts, and message
//! planes, and a recorded trace must replay bit for bit.

use pga_congest::primitives::FloodMax;
use pga_congest::{FaultSpec, ReliabilitySpec, RunConfig, Simulator};
use pga_graph::{generators, Graph, NodeId};
use proptest::prelude::*;

/// The instance families the fault plane is exercised on: uniform gnm,
/// heavy-tailed Barabási–Albert, and the quiescent-tail lollipop.
fn arb_instance() -> impl Strategy<Value = Graph> {
    (4usize..24, any::<u64>(), 0u8..3).prop_map(|(n, seed, family)| match family {
        0 => {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let m = (n + seed as usize % (2 * n)).min(n * (n - 1) / 2);
            generators::connected_gnm(n, m, &mut rng)
        }
        1 => generators::barabasi_albert(n, 3.min(n - 1).max(1), seed),
        _ => {
            let blob_m = (n + n / 2).min(n * (n - 1) / 2);
            generators::gnm_lollipop(n, blob_m, 1 + (seed as usize % 10), seed)
        }
    })
}

fn flood(n: usize) -> Vec<FloodMax> {
    (0..n)
        .map(|i| FloodMax::new(NodeId::from_index(i)))
        .collect()
}

/// A moderately hostile schedule: every fault class active, bounded
/// delays, a small crash budget.
fn hostile(seed: u64) -> FaultSpec {
    FaultSpec::seeded(seed)
        .drop(0.03)
        .duplicate(0.02)
        .delay(0.03, 3)
        .crash(0.02, 6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `FaultSpec::none()` routes through the adversarial executor but
    /// must be indistinguishable from the clean engines: same outputs
    /// and same metrics at every thread count and on both planes.
    #[test]
    fn none_spec_is_bit_identical_to_clean_engines(g in arb_instance()) {
        let n = g.num_nodes();
        let sim = Simulator::congest(&g);
        let clean = sim.run(flood(n)).unwrap();
        for threads in [1usize, 2, 4, 8] {
            for codec in [false, true] {
                let cfg = RunConfig::new()
                    .parallel(threads)
                    .codec(codec)
                    .adversary(FaultSpec::none());
                let r = sim.run_cfg(flood(n), &cfg).unwrap();
                prop_assert_eq!(&r.outputs, &clean.outputs, "threads {} codec {}", threads, codec);
                prop_assert_eq!(&r.metrics, &clean.metrics, "threads {} codec {}", threads, codec);
            }
        }
    }

    /// `FaultSpec::none()` also reproduces the clean engines' *errors*:
    /// an exhausted round budget surfaces as the same `SimError` either
    /// way.
    #[test]
    fn none_spec_reproduces_clean_round_limit_error(g in arb_instance()) {
        let n = g.num_nodes();
        let sim = Simulator::congest(&g);
        let clean = sim
            .run_cfg(flood(n), &RunConfig::new().max_rounds(1))
            .unwrap_err();
        for threads in [1usize, 4] {
            let cfg = RunConfig::new()
                .parallel(threads)
                .max_rounds(1)
                .adversary(FaultSpec::none());
            let faulty = sim.run_cfg(flood(n), &cfg).unwrap_err();
            prop_assert_eq!(&faulty, &clean, "threads {}", threads);
        }
    }

    /// The same `(seed, FaultSpec)` produces bit-identical runs on every
    /// engine, thread count, and message plane: fault decisions are pure
    /// functions of `(round, sender, seq)`, never of the execution
    /// schedule.
    #[test]
    fn seeded_faults_are_bit_identical_across_engines(g in arb_instance(), seed in any::<u64>()) {
        let n = g.num_nodes();
        let sim = Simulator::congest(&g);
        let spec = hostile(seed);
        let base_cfg = RunConfig::new().sequential().max_rounds(300).adversary(spec);
        let base = sim.run_cfg(flood(n), &base_cfg);
        for threads in [1usize, 2, 4, 8] {
            for codec in [false, true] {
                let cfg = RunConfig::new()
                    .parallel(threads)
                    .codec(codec)
                    .max_rounds(300)
                    .adversary(spec);
                let r = sim.run_cfg(flood(n), &cfg);
                match (&base, &r) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(&a.outputs, &b.outputs, "threads {} codec {}", threads, codec);
                        prop_assert_eq!(&a.metrics, &b.metrics, "threads {} codec {}", threads, codec);
                    }
                    (Err(a), Err(b)) => prop_assert_eq!(a, b, "threads {} codec {}", threads, codec),
                    _ => prop_assert!(false, "Ok/Err divergence at threads {} codec {}", threads, codec),
                }
            }
        }
    }

    /// With no adversary armed, the reliable (ARQ) executor reproduces
    /// the clean engines' outputs at every thread count and on both
    /// message planes, and the whole run (metrics included) is
    /// bit-identical across those choices.
    #[test]
    fn arq_without_faults_reproduces_clean_outputs(g in arb_instance()) {
        let n = g.num_nodes();
        let sim = Simulator::congest(&g);
        let clean = sim.run(flood(n)).unwrap();
        let base_cfg = RunConfig::new().sequential().reliability(ReliabilitySpec::arq());
        let base = sim.run_cfg(flood(n), &base_cfg).unwrap();
        prop_assert_eq!(&base.outputs, &clean.outputs);
        for threads in [1usize, 2, 4, 8] {
            for codec in [false, true] {
                let cfg = RunConfig::new()
                    .parallel(threads)
                    .codec(codec)
                    .reliability(ReliabilitySpec::arq());
                let r = sim.run_cfg(flood(n), &cfg).unwrap();
                prop_assert_eq!(&r.outputs, &clean.outputs, "threads {} codec {}", threads, codec);
                prop_assert_eq!(&r.metrics, &base.metrics, "threads {} codec {}", threads, codec);
            }
        }
    }

    /// ARQ under drop-only faults (below the dead-link threshold)
    /// delivers the clean run's outputs **bit-identically** — the
    /// barrier absorbs retransmission jitter, so actors never observe
    /// the loss — at threads {1, 2, 4, 8} × both codec planes, with
    /// replay-identical metrics across all of them.
    #[test]
    fn arq_drop_only_recovers_clean_outputs(g in arb_instance(), seed in any::<u64>()) {
        let n = g.num_nodes();
        let sim = Simulator::congest(&g);
        let clean = sim.run(flood(n)).unwrap();
        let spec = FaultSpec::seeded(seed).drop(0.10);
        let base_cfg = RunConfig::new()
            .sequential()
            .max_rounds(5_000)
            .adversary(spec)
            .reliability(ReliabilitySpec::arq());
        let base = sim.run_cfg(flood(n), &base_cfg).unwrap();
        prop_assert_eq!(&base.outputs, &clean.outputs);
        for threads in [1usize, 2, 4, 8] {
            for codec in [false, true] {
                let cfg = RunConfig::new()
                    .parallel(threads)
                    .codec(codec)
                    .max_rounds(5_000)
                    .adversary(spec)
                    .reliability(ReliabilitySpec::arq());
                let r = sim.run_cfg(flood(n), &cfg).unwrap();
                prop_assert_eq!(&r.outputs, &clean.outputs, "threads {} codec {}", threads, codec);
                prop_assert_eq!(&r.metrics, &base.metrics, "threads {} codec {}", threads, codec);
            }
        }
    }

    /// The full hostile schedule (drops, duplicates, delays, crashes)
    /// under ARQ stays deterministic across engines, thread counts, and
    /// planes — degraded, possibly, but reproducibly so.
    #[test]
    fn arq_hostile_is_bit_identical_across_engines(g in arb_instance(), seed in any::<u64>()) {
        let n = g.num_nodes();
        let sim = Simulator::congest(&g);
        let spec = hostile(seed);
        let rel = ReliabilitySpec::arq().with_max_retries(4);
        let base_cfg = RunConfig::new()
            .sequential()
            .max_rounds(2_000)
            .adversary(spec)
            .reliability(rel);
        let base = sim.run_cfg(flood(n), &base_cfg);
        for threads in [1usize, 2, 4, 8] {
            for codec in [false, true] {
                let cfg = RunConfig::new()
                    .parallel(threads)
                    .codec(codec)
                    .max_rounds(2_000)
                    .adversary(spec)
                    .reliability(rel);
                let r = sim.run_cfg(flood(n), &cfg);
                match (&base, &r) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(&a.outputs, &b.outputs, "threads {} codec {}", threads, codec);
                        prop_assert_eq!(&a.metrics, &b.metrics, "threads {} codec {}", threads, codec);
                    }
                    (Err(a), Err(b)) => prop_assert_eq!(a, b, "threads {} codec {}", threads, codec),
                    _ => prop_assert!(false, "Ok/Err divergence at threads {} codec {}", threads, codec),
                }
            }
        }
    }

    /// Record-and-replay: `run_traced` captures every inflicted fault,
    /// and `run_replay` of that trace reproduces the recorded run bit
    /// for bit — including on a different engine and thread count.
    #[test]
    fn trace_replay_is_bit_identical(g in arb_instance(), seed in any::<u64>()) {
        let n = g.num_nodes();
        let sim = Simulator::congest(&g);
        let spec = hostile(seed);
        let cfg = RunConfig::new().sequential().max_rounds(300);
        let Ok((recorded, trace)) = sim.run_traced(flood(n), spec, &cfg) else {
            // Adversarially starved run: recording it again must at
            // least reproduce the same error deterministically.
            let a = sim.run_traced(flood(n), spec, &cfg).map(|_| ()).unwrap_err();
            let b = sim.run_traced(flood(n), spec, &cfg).map(|_| ()).unwrap_err();
            prop_assert_eq!(a, b);
            return Ok(());
        };
        prop_assert_eq!(trace.spec, spec);
        for threads in [1usize, 4] {
            let replay_cfg = RunConfig::new().parallel(threads).max_rounds(300);
            let replayed = sim.run_replay(flood(n), &trace, &replay_cfg).unwrap();
            prop_assert_eq!(&replayed.outputs, &recorded.outputs, "threads {}", threads);
            prop_assert_eq!(&replayed.metrics, &recorded.metrics, "threads {}", threads);
        }
    }
}
