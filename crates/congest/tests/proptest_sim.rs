//! Property-based tests for the simulator and the gather–scatter
//! primitive.

use pga_congest::primitives::{FloodMax, GatherScatter, LeaderCompute, SizedU64};
use pga_congest::{Algorithm, Ctx, MsgSize, Simulator};
use pga_graph::traversal::{bfs_distances, diameter};
use pga_graph::{generators, Graph, NodeId};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_connected() -> impl Strategy<Value = Graph> {
    (2usize..25, any::<u64>()).prop_map(|(n, seed)| {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        generators::connected_gnp(n, 0.1, &mut rng)
    })
}

/// The instance families whose load shapes the cost-balanced exchange
/// must handle: uniform gnm, heavy-tailed Barabási–Albert, and the
/// quiescent-tail lollipop.
fn arb_exchange_instance() -> impl Strategy<Value = Graph> {
    (4usize..28, any::<u64>(), 0u8..3).prop_map(|(n, seed, family)| match family {
        0 => {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let m = (n + seed as usize % (2 * n)).min(n * (n - 1) / 2);
            generators::connected_gnm(n, m, &mut rng)
        }
        1 => generators::barabasi_albert(n, 3.min(n - 1).max(1), seed),
        _ => {
            let blob_m = (n + n / 2).min(n * (n - 1) / 2);
            generators::gnm_lollipop(n, blob_m, 1 + (seed as usize % 12), seed)
        }
    })
}

/// A BFS-layer algorithm: node 0 floods; every node outputs its first
/// round of contact, which must equal its BFS distance.
struct Layer {
    dist: Option<usize>,
    announce: bool,
}

#[derive(Clone)]
struct Ping;
impl MsgSize for Ping {
    fn size_bits(&self, _id_bits: usize) -> usize {
        1
    }
}

impl Algorithm for Layer {
    type Msg = Ping;
    type Output = Option<usize>;
    fn round(&mut self, ctx: &Ctx, inbox: &[(NodeId, Ping)]) -> Vec<(NodeId, Ping)> {
        if ctx.round == 0 && ctx.id == NodeId(0) {
            self.dist = Some(0);
            self.announce = false;
            return ctx.graph_neighbors.iter().map(|&v| (v, Ping)).collect();
        }
        if !inbox.is_empty() && self.dist.is_none() {
            self.dist = Some(ctx.round);
            self.announce = true;
        }
        if self.announce {
            self.announce = false;
            return ctx.graph_neighbors.iter().map(|&v| (v, Ping)).collect();
        }
        Vec::new()
    }
    fn is_done(&self, _ctx: &Ctx) -> bool {
        self.dist.is_some() && !self.announce
    }
    fn output(&self, _ctx: &Ctx) -> Option<usize> {
        self.dist
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// One hop per round: flooding reaches each vertex exactly at its BFS
    /// distance, and the run finishes within diameter + O(1) rounds.
    #[test]
    fn flooding_matches_bfs(g in arb_connected()) {
        let n = g.num_nodes();
        let report = Simulator::congest(&g)
            .run((0..n).map(|_| Layer { dist: None, announce: false }).collect())
            .unwrap();
        let bfs = bfs_distances(&g, NodeId(0));
        for (v, &dist) in bfs.iter().enumerate() {
            prop_assert_eq!(report.outputs[v], dist, "node {}", v);
        }
        let d = diameter(&g).unwrap();
        prop_assert!(report.metrics.rounds <= d + 3);
    }

    /// Gather–scatter computes a global sum on arbitrary connected
    /// topologies, with every node receiving the same response.
    #[test]
    fn gather_scatter_global_sum(g in arb_connected()) {
        let n = g.num_nodes();
        let compute: LeaderCompute<SizedU64, SizedU64> = Arc::new(|items| {
            let s: u64 = items.iter().map(|i: &SizedU64| i.value).sum();
            vec![SizedU64 { value: s, bits: 64 }]
        });
        let nodes = (0..n)
            .map(|i| {
                GatherScatter::new(
                    vec![SizedU64 { value: (i * i) as u64, bits: 64 }],
                    Arc::clone(&compute),
                )
            })
            .collect();
        let report = Simulator::congest(&g).run(nodes).unwrap();
        let expect: u64 = (0..n as u64).map(|i| i * i).sum();
        for o in &report.outputs {
            prop_assert_eq!(o.response.len(), 1);
            prop_assert_eq!(o.response[0].value, expect);
            prop_assert!(o.complete);
        }
    }

    /// Pipelining bound: k items over diameter D finish in O(k + D).
    #[test]
    fn gather_scatter_round_bound(g in arb_connected(), per_node in 0usize..4) {
        let n = g.num_nodes();
        let compute: LeaderCompute<SizedU64, SizedU64> =
            Arc::new(|items| items); // echo everything back
        let nodes = (0..n)
            .map(|i| {
                GatherScatter::new(
                    (0..per_node)
                        .map(|j| SizedU64 { value: (i * 10 + j) as u64, bits: 32 })
                        .collect(),
                    Arc::clone(&compute),
                )
            })
            .collect();
        let report = Simulator::congest(&g).run(nodes).unwrap();
        let k = n * per_node;
        let d = diameter(&g).unwrap();
        prop_assert!(
            report.metrics.rounds <= 6 * (k + d) + 12,
            "rounds {} for k={} d={}",
            report.metrics.rounds, k, d
        );
        // Every node received all k items.
        for o in &report.outputs {
            prop_assert_eq!(o.response.len(), k);
            prop_assert!(o.complete);
        }
    }

    /// Determinism of the sharded engine: for random graphs and every
    /// thread count, `run_parallel(t)` produces outputs AND metrics
    /// bit-identical to the sequential reference engine.
    #[test]
    fn parallel_engine_is_bit_identical(g in arb_connected(), t_idx in 0usize..4) {
        let threads = [1usize, 2, 4, 8][t_idx];
        let n = g.num_nodes();

        // Workload 1: BFS layers (sparse, data-dependent quiescence).
        let seq = Simulator::congest(&g)
            .run((0..n).map(|_| Layer { dist: None, announce: false }).collect())
            .unwrap();
        let par = Simulator::congest(&g)
            .run_parallel((0..n).map(|_| Layer { dist: None, announce: false }).collect(), threads)
            .unwrap();
        prop_assert_eq!(&par.outputs, &seq.outputs, "Layer outputs, t={}", threads);
        prop_assert_eq!(&par.metrics, &seq.metrics, "Layer metrics, t={}", threads);

        // Workload 2: flood-max leader election (dense message flow).
        let mk = || (0..n).map(|i| FloodMax::new(NodeId::from_index(i))).collect();
        let seq = Simulator::congest(&g).run(mk()).unwrap();
        let par = Simulator::congest(&g).run_parallel(mk(), threads).unwrap();
        prop_assert_eq!(&par.outputs, &seq.outputs, "FloodMax outputs, t={}", threads);
        prop_assert_eq!(&par.metrics, &seq.metrics, "FloodMax metrics, t={}", threads);
    }

    /// The gather–scatter primitive (BFS tree + pipelining, the paper's
    /// Lemma 2 workhorse) is engine-independent too.
    #[test]
    fn gather_scatter_parallel_bit_identical(g in arb_connected(), t_idx in 0usize..3) {
        let threads = [2usize, 4, 8][t_idx];
        let n = g.num_nodes();
        let compute: LeaderCompute<SizedU64, SizedU64> = Arc::new(|mut items| {
            items.sort_by_key(|i: &SizedU64| i.value);
            items
        });
        let mk = || (0..n)
            .map(|i| {
                GatherScatter::new(
                    vec![SizedU64 { value: (i * 7 + 1) as u64, bits: 32 }],
                    Arc::clone(&compute),
                )
            })
            .collect();
        let seq = Simulator::congest(&g).run(mk()).unwrap();
        let par = Simulator::congest(&g).run_parallel(mk(), threads).unwrap();
        prop_assert_eq!(&par.outputs, &seq.outputs, "outputs, t={}", threads);
        prop_assert_eq!(&par.metrics, &seq.metrics, "metrics, t={}", threads);
    }

    /// Both scheduling policies are bit-identical on the primitives with
    /// data-dependent quiescence (Layer goes quiet per-node as the BFS
    /// wave passes; GatherScatter's phases re-activate on messages).
    #[test]
    fn scheduling_policies_bit_identical(g in arb_connected(), t_idx in 0usize..3) {
        use pga_congest::Scheduling;
        let threads = [1usize, 3, 8][t_idx];
        let n = g.num_nodes();
        let mk_layer = || (0..n).map(|_| Layer { dist: None, announce: false }).collect::<Vec<_>>();
        let compute: LeaderCompute<SizedU64, SizedU64> = Arc::new(|items| items);
        let mk_gs = || (0..n)
            .map(|i| {
                GatherScatter::new(
                    vec![SizedU64 { value: i as u64, bits: 32 }],
                    Arc::clone(&compute),
                )
            })
            .collect::<Vec<_>>();

        let full = Simulator::congest(&g)
            .with_scheduling(Scheduling::FullSweep)
            .run(mk_layer())
            .unwrap();
        let active = Simulator::congest(&g)
            .with_scheduling(Scheduling::ActiveSet)
            .run_parallel(mk_layer(), threads)
            .unwrap();
        prop_assert_eq!(&active.outputs, &full.outputs, "Layer outputs, t={}", threads);
        prop_assert_eq!(&active.metrics, &full.metrics, "Layer metrics, t={}", threads);

        let full = Simulator::congest(&g)
            .with_scheduling(Scheduling::FullSweep)
            .run(mk_gs())
            .unwrap();
        let active = Simulator::congest(&g)
            .with_scheduling(Scheduling::ActiveSet)
            .run_parallel(mk_gs(), threads)
            .unwrap();
        prop_assert_eq!(&active.outputs, &full.outputs, "GS outputs, t={}", threads);
        prop_assert_eq!(&active.metrics, &full.metrics, "GS metrics, t={}", threads);
    }

    /// The cost-balanced shard boundaries are always a valid partition:
    /// they start at 0, end at n, are strictly increasing (every shard
    /// non-empty), and never exceed the requested shard count — on every
    /// instance family and thread count.
    #[test]
    fn shard_boundaries_form_valid_partition(
        g in arb_exchange_instance(),
        threads in 1usize..12,
    ) {
        let n = g.num_nodes();
        let sim = Simulator::congest(&g);
        let bounds = sim.shard_boundaries(threads);
        prop_assert_eq!(*bounds.first().unwrap(), 0);
        prop_assert_eq!(*bounds.last().unwrap(), n);
        prop_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "{:?}", bounds);
        prop_assert!(bounds.len() - 1 <= threads.max(1), "{:?}", bounds);
        // Covering: the per-shard lengths sum to n.
        let covered: usize = bounds.windows(2).map(|w| w[1] - w[0]).sum();
        prop_assert_eq!(covered, n);
    }

    /// Under the counting-sort exchange, `run_parallel` stays
    /// bit-identical to `run` across thread counts {1, 2, 3, 5, 8} on
    /// uniform gnm, heavy-tailed Barabási–Albert, and quiescent-tail
    /// lollipop instances.
    #[test]
    fn counting_sort_exchange_bit_identical(g in arb_exchange_instance()) {
        let n = g.num_nodes();
        let mk = || (0..n).map(|i| FloodMax::new(NodeId::from_index(i))).collect::<Vec<_>>();
        let seq = Simulator::congest(&g).run(mk()).unwrap();
        for threads in [1usize, 2, 3, 5, 8] {
            let par = Simulator::congest(&g).run_parallel(mk(), threads).unwrap();
            prop_assert_eq!(&par.outputs, &seq.outputs, "outputs, t={}", threads);
            prop_assert_eq!(&par.metrics, &seq.metrics, "metrics, t={}", threads);
        }
    }

    /// Messages never exceed the bandwidth, and metrics are consistent.
    #[test]
    fn metrics_consistency(g in arb_connected()) {
        let n = g.num_nodes();
        let report = Simulator::congest(&g)
            .run((0..n).map(|_| Layer { dist: None, announce: false }).collect())
            .unwrap();
        let m = &report.metrics;
        prop_assert!(m.bits >= m.messages, "each Ping is ≥1 bit");
        prop_assert!(m.max_message_bits <= pga_congest::default_bandwidth_bits(n));
        if m.messages > 0 {
            prop_assert!(m.avg_message_bits() >= 1.0);
        }
    }
}
