//! Property-based tests for the telemetry plane at the CONGEST
//! simulator level: **observer neutrality** — attaching any probe must
//! leave outputs, metrics, and errors bit-identical to the unobserved
//! run across engines, thread counts, message planes, and fault
//! specs — plus consistency checks between what the `RecordingProbe`
//! captures and what the `Metrics` report.

use pga_congest::primitives::FloodMax;
use pga_congest::{FaultSpec, NoopProbe, RecordingProbe, RunConfig, Simulator};
use pga_graph::{generators, Graph, NodeId};
use proptest::prelude::*;

/// The instance families of the engine-parity suites: uniform gnm,
/// heavy-tailed Barabási–Albert, and the quiescent-tail lollipop.
fn arb_instance() -> impl Strategy<Value = Graph> {
    (4usize..24, any::<u64>(), 0u8..3).prop_map(|(n, seed, family)| match family {
        0 => {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let m = (n + seed as usize % (2 * n)).min(n * (n - 1) / 2);
            generators::connected_gnm(n, m, &mut rng)
        }
        1 => generators::barabasi_albert(n, 3.min(n - 1).max(1), seed),
        _ => {
            let blob_m = (n + n / 2).min(n * (n - 1) / 2);
            generators::gnm_lollipop(n, blob_m, 1 + (seed as usize % 10), seed)
        }
    })
}

fn flood(n: usize) -> Vec<FloodMax> {
    (0..n)
        .map(|i| FloodMax::new(NodeId::from_index(i)))
        .collect()
}

/// A moderately hostile schedule: every fault class active, bounded
/// delays, a small crash budget.
fn hostile(seed: u64) -> FaultSpec {
    FaultSpec::seeded(seed)
        .drop(0.03)
        .duplicate(0.02)
        .delay(0.03, 3)
        .crash(0.02, 6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Observer neutrality, clean runs: a `RecordingProbe` leaves
    /// outputs and metrics bit-identical to the `NoopProbe` run at
    /// every thread count and on both message planes.
    #[test]
    fn recording_probe_is_neutral_on_clean_runs(g in arb_instance()) {
        let n = g.num_nodes();
        let sim = Simulator::congest(&g);
        for threads in [1usize, 2, 4, 8] {
            for codec in [false, true] {
                let cfg = RunConfig::new().parallel(threads).codec(codec);
                let plain = sim.run_cfg_probed(flood(n), &cfg, &NoopProbe).unwrap();
                let probe = RecordingProbe::new();
                let observed = sim.run_cfg_probed(flood(n), &cfg, &probe).unwrap();
                prop_assert_eq!(&observed.outputs, &plain.outputs,
                    "outputs, threads {} codec {}", threads, codec);
                prop_assert_eq!(&observed.metrics, &plain.metrics,
                    "metrics, threads {} codec {}", threads, codec);

                // And the recorded telemetry agrees with the metrics it
                // observed (clean runs deliver everything they charge).
                let t = probe.into_telemetry();
                prop_assert!(t.completed);
                prop_assert_eq!(t.rounds.len(), observed.metrics.rounds);
                let msgs: u64 = t.rounds.iter().map(|r| r.messages).sum();
                prop_assert_eq!(msgs, observed.metrics.messages);
                let bits: u64 = t.rounds.iter().map(|r| r.volume).sum();
                prop_assert_eq!(bits, observed.metrics.bits);
            }
        }
    }

    /// Observer neutrality under seeded faults: the hostile adversary's
    /// run is bit-identical with and without a `RecordingProbe`, at
    /// every thread count and on both planes — whether it converges or
    /// errors.
    #[test]
    fn recording_probe_is_neutral_under_faults(g in arb_instance(), seed in any::<u64>()) {
        let n = g.num_nodes();
        let sim = Simulator::congest(&g);
        for threads in [1usize, 2, 4, 8] {
            for codec in [false, true] {
                let cfg = RunConfig::new()
                    .parallel(threads)
                    .codec(codec)
                    .max_rounds(300)
                    .adversary(hostile(seed));
                let plain = sim.run_cfg_probed(flood(n), &cfg, &NoopProbe);
                let probe = RecordingProbe::new();
                let observed = sim.run_cfg_probed(flood(n), &cfg, &probe);
                match (&plain, &observed) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(&a.outputs, &b.outputs,
                            "outputs, threads {} codec {}", threads, codec);
                        prop_assert_eq!(&a.metrics, &b.metrics,
                            "metrics, threads {} codec {}", threads, codec);
                        // The probe's fault tally is the metrics' tally.
                        let t = probe.into_telemetry();
                        prop_assert!(t.completed);
                        prop_assert_eq!(&t.fault, &b.metrics.fault,
                            "fault tally, threads {} codec {}", threads, codec);
                    }
                    (Err(a), Err(b)) => {
                        prop_assert_eq!(a, b, "threads {} codec {}", threads, codec);
                        // Aborted runs never see `on_run_end`.
                        prop_assert!(!probe.into_telemetry().completed);
                    }
                    _ => prop_assert!(false,
                        "Ok/Err divergence at threads {} codec {}", threads, codec),
                }
            }
        }
    }

    /// Error neutrality: an exhausted round budget surfaces as the same
    /// `SimError` with any probe attached.
    #[test]
    fn recording_probe_is_neutral_on_errors(g in arb_instance()) {
        let n = g.num_nodes();
        let sim = Simulator::congest(&g);
        let cfg = RunConfig::new().max_rounds(1);
        let plain = sim.run_cfg_probed(flood(n), &cfg, &NoopProbe).unwrap_err();
        for threads in [1usize, 4] {
            let cfg = RunConfig::new().parallel(threads).max_rounds(1);
            let probe = RecordingProbe::new();
            let observed = sim.run_cfg_probed(flood(n), &cfg, &probe).unwrap_err();
            prop_assert_eq!(&observed, &plain, "threads {}", threads);
            prop_assert!(!probe.into_telemetry().completed);
        }
    }
}
