//! Engine-behavior tests for the CONGEST simulator: model enforcement,
//! termination, and bit-identity of the sequential and sharded
//! executors (and of both scheduling policies) across thread counts.
//!
//! These exercise the shared `pga_runtime` kernel through the public
//! `Simulator` API; the kernel's own unit tests cover it through a toy
//! model.

use pga_congest::{
    balanced_partition, id_bits, Algorithm, Ctx, Engine, MsgSize, Scheduling, SimError, Simulator,
};
use pga_graph::{generators, NodeId};

#[derive(Clone)]
struct U32Msg(u32);
impl MsgSize for U32Msg {
    fn size_bits(&self, id_bits: usize) -> usize {
        id_bits
    }
}

/// Every node floods the max id it has seen; outputs it.
struct FloodMax {
    best: u32,
    changed: bool,
    quiet: bool,
}

impl FloodMax {
    fn new(i: usize) -> Self {
        FloodMax {
            best: i as u32,
            changed: false,
            quiet: false,
        }
    }
}

impl Algorithm for FloodMax {
    type Msg = U32Msg;
    type Output = u32;
    fn round(&mut self, ctx: &Ctx, inbox: &[(NodeId, U32Msg)]) -> Vec<(NodeId, U32Msg)> {
        for (_, m) in inbox {
            if m.0 > self.best {
                self.best = m.0;
                self.changed = true;
            }
        }
        let send = ctx.round == 0 || self.changed;
        self.changed = false;
        self.quiet = !send;
        if send {
            ctx.graph_neighbors
                .iter()
                .map(|&v| (v, U32Msg(self.best)))
                .collect()
        } else {
            Vec::new()
        }
    }
    fn is_done(&self, _ctx: &Ctx) -> bool {
        self.quiet
    }
    fn output(&self, _ctx: &Ctx) -> u32 {
        self.best
    }
}

#[test]
fn flood_max_on_path() {
    let g = generators::path(10);
    let report = Simulator::congest(&g)
        .run((0..10).map(FloodMax::new).collect())
        .unwrap();
    assert!(report.outputs.iter().all(|&b| b == 9));
    // Max id must travel 9 hops: at least 9 rounds.
    assert!(report.metrics.rounds >= 9, "{}", report.metrics.rounds);
    assert!(report.metrics.messages > 0);
}

#[test]
fn flood_max_on_clique_topology_one_hop() {
    let g = generators::path(10); // input graph is a path...
    struct Shout {
        best: u32,
        done: bool,
    }
    impl Algorithm for Shout {
        type Msg = U32Msg;
        type Output = u32;
        fn round(&mut self, ctx: &Ctx, inbox: &[(NodeId, U32Msg)]) -> Vec<(NodeId, U32Msg)> {
            for (_, m) in inbox {
                self.best = self.best.max(m.0);
            }
            if ctx.round == 0 {
                // ...but the clique topology lets everyone shout once.
                (0..ctx.n)
                    .filter(|&j| j != ctx.id.index())
                    .map(|j| (NodeId::from_index(j), U32Msg(self.best)))
                    .collect()
            } else {
                self.done = true;
                Vec::new()
            }
        }
        fn is_done(&self, _ctx: &Ctx) -> bool {
            self.done
        }
        fn output(&self, _ctx: &Ctx) -> u32 {
            self.best
        }
    }
    let report = Simulator::congested_clique(&g)
        .run(
            (0..10)
                .map(|i| Shout {
                    best: i as u32,
                    done: false,
                })
                .collect(),
        )
        .unwrap();
    assert!(report.outputs.iter().all(|&b| b == 9));
    assert!(report.metrics.rounds <= 3);
}

#[test]
fn illegal_destination_congest() {
    let g = generators::path(4);
    struct Bad;
    impl Algorithm for Bad {
        type Msg = U32Msg;
        type Output = ();
        fn round(&mut self, ctx: &Ctx, _inbox: &[(NodeId, U32Msg)]) -> Vec<(NodeId, U32Msg)> {
            if ctx.id == NodeId(0) && ctx.round == 0 {
                vec![(NodeId(3), U32Msg(0))] // not a path-neighbor
            } else {
                Vec::new()
            }
        }
        fn is_done(&self, _ctx: &Ctx) -> bool {
            false
        }
        fn output(&self, _ctx: &Ctx) {}
    }
    let err = Simulator::congest(&g)
        .run(vec![Bad, Bad, Bad, Bad])
        .unwrap_err();
    assert!(matches!(err, SimError::IllegalDestination { .. }));
}

#[test]
fn bandwidth_violation() {
    let g = generators::path(2);
    #[derive(Clone)]
    struct Huge;
    impl MsgSize for Huge {
        fn size_bits(&self, _id_bits: usize) -> usize {
            1 << 20
        }
    }
    struct Sender;
    impl Algorithm for Sender {
        type Msg = Huge;
        type Output = ();
        fn round(&mut self, ctx: &Ctx, _inbox: &[(NodeId, Huge)]) -> Vec<(NodeId, Huge)> {
            if ctx.round == 0 && ctx.id == NodeId(0) {
                vec![(NodeId(1), Huge)]
            } else {
                Vec::new()
            }
        }
        fn is_done(&self, _ctx: &Ctx) -> bool {
            false
        }
        fn output(&self, _ctx: &Ctx) {}
    }
    let err = Simulator::congest(&g)
        .run(vec![Sender, Sender])
        .unwrap_err();
    assert!(matches!(err, SimError::BandwidthExceeded { .. }));
}

#[test]
fn duplicate_message_rejected() {
    let g = generators::path(2);
    struct Dup;
    impl Algorithm for Dup {
        type Msg = U32Msg;
        type Output = ();
        fn round(&mut self, ctx: &Ctx, _inbox: &[(NodeId, U32Msg)]) -> Vec<(NodeId, U32Msg)> {
            if ctx.round == 0 && ctx.id == NodeId(0) {
                vec![(NodeId(1), U32Msg(1)), (NodeId(1), U32Msg(2))]
            } else {
                Vec::new()
            }
        }
        fn is_done(&self, _ctx: &Ctx) -> bool {
            false
        }
        fn output(&self, _ctx: &Ctx) {}
    }
    let err = Simulator::congest(&g).run(vec![Dup, Dup]).unwrap_err();
    assert!(matches!(err, SimError::DuplicateMessage { .. }));
}

#[test]
fn round_limit() {
    let g = generators::path(2);
    struct Chatter;
    impl Algorithm for Chatter {
        type Msg = U32Msg;
        type Output = ();
        fn round(&mut self, ctx: &Ctx, _inbox: &[(NodeId, U32Msg)]) -> Vec<(NodeId, U32Msg)> {
            ctx.graph_neighbors
                .iter()
                .map(|&v| (v, U32Msg(0)))
                .collect()
        }
        fn is_done(&self, _ctx: &Ctx) -> bool {
            false
        }
        fn output(&self, _ctx: &Ctx) {}
    }
    let err = Simulator::congest(&g)
        .with_max_rounds(10)
        .run(vec![Chatter, Chatter])
        .unwrap_err();
    assert_eq!(err, SimError::RoundLimitExceeded { limit: 10 });
}

#[test]
fn parallel_matches_sequential_bit_identically() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(12);
    let graphs = [
        generators::path(10),
        generators::grid(5, 5),
        generators::star(17),
        generators::connected_gnm(64, 200, &mut rng),
    ];
    for g in &graphs {
        let n = g.num_nodes();
        let seq = Simulator::congest(g)
            .run((0..n).map(FloodMax::new).collect())
            .unwrap();
        for threads in [1, 2, 3, 4, 8] {
            let par = Simulator::congest(g)
                .run_parallel((0..n).map(FloodMax::new).collect(), threads)
                .unwrap();
            assert_eq!(par.outputs, seq.outputs, "outputs, t={threads}");
            assert_eq!(par.metrics, seq.metrics, "metrics, t={threads}");
        }
    }
}

#[test]
fn parallel_matches_sequential_on_heavy_tail_and_lollipop() {
    // The cost-balanced exchange must stay bit-identical on exactly the
    // instance families whose skew it exists to balance: heavy-tailed
    // Barabási–Albert (hubs at the low-id prefix) and the lollipop
    // (dense blob + degree-2 tail).
    let graphs = [
        generators::barabasi_albert(60, 4, 9),
        generators::gnm_lollipop(24, 60, 16, 5),
    ];
    for g in &graphs {
        let n = g.num_nodes();
        let seq = Simulator::congest(g)
            .run((0..n).map(FloodMax::new).collect())
            .unwrap();
        for threads in [1, 2, 3, 5, 8] {
            let par = Simulator::congest(g)
                .run_parallel((0..n).map(FloodMax::new).collect(), threads)
                .unwrap();
            assert_eq!(par.outputs, seq.outputs, "outputs, t={threads}");
            assert_eq!(par.metrics, seq.metrics, "metrics, t={threads}");
        }
    }
}

#[test]
fn shard_boundaries_are_a_valid_balanced_partition() {
    // A star: the hub carries n-1 cost units, every leaf 2. The hub
    // must sit alone-ish in the first shard and the boundaries must be
    // a valid contiguous partition.
    let g = generators::star(33);
    let sim = Simulator::congest(&g);
    for threads in [1, 2, 4, 7] {
        let bounds = sim.shard_boundaries(threads);
        assert_eq!(*bounds.first().unwrap(), 0, "t={threads}");
        assert_eq!(*bounds.last().unwrap(), 33, "t={threads}");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "t={threads}");
        assert!(bounds.len() - 1 <= threads.max(1), "t={threads}");
    }
    // At 4 threads the hub's shard must not also hold a proportional
    // share of the leaves (degree-balanced, not count-balanced).
    let bounds = sim.shard_boundaries(4);
    assert!(
        bounds[1] < 33 / 4,
        "hub shard too wide: {bounds:?} (expected a short first range)"
    );
    // And the re-exported partition function agrees with the simulator.
    let costs: Vec<u64> = (0..33).map(|i| sim.vertex_cost(i)).collect();
    assert_eq!(bounds, balanced_partition(&costs, 4));
}

#[test]
fn scheduling_policies_match_bit_identically() {
    // The active-set policy may only skip no-op calls, so a full-sweep
    // run is the reference for both executors at every thread count.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(77);
    let graphs = [
        generators::grid(6, 7),
        generators::connected_gnm(60, 150, &mut rng),
    ];
    for g in &graphs {
        let n = g.num_nodes();
        let reference = Simulator::congest(g)
            .with_scheduling(Scheduling::FullSweep)
            .run((0..n).map(FloodMax::new).collect())
            .unwrap();
        for scheduling in [Scheduling::FullSweep, Scheduling::ActiveSet] {
            let seq = Simulator::congest(g)
                .with_scheduling(scheduling)
                .run((0..n).map(FloodMax::new).collect())
                .unwrap();
            assert_eq!(seq.outputs, reference.outputs, "{scheduling:?}");
            assert_eq!(seq.metrics, reference.metrics, "{scheduling:?}");
            for threads in [2, 3, 5] {
                let par = Simulator::congest(g)
                    .with_scheduling(scheduling)
                    .run_parallel((0..n).map(FloodMax::new).collect(), threads)
                    .unwrap();
                assert_eq!(par.outputs, reference.outputs, "{scheduling:?} t={threads}");
                assert_eq!(par.metrics, reference.metrics, "{scheduling:?} t={threads}");
            }
        }
    }
}

#[test]
fn parallel_congested_clique_matches() {
    // Clique topology: every destination shard receives from every
    // sender shard, exercising the full exchange matrix.
    let g = generators::path(12);
    struct Shout(u32, bool);
    impl Algorithm for Shout {
        type Msg = U32Msg;
        type Output = u32;
        fn round(&mut self, ctx: &Ctx, inbox: &[(NodeId, U32Msg)]) -> Vec<(NodeId, U32Msg)> {
            for (_, m) in inbox {
                self.0 = self.0.max(m.0);
            }
            if ctx.round == 0 {
                (0..ctx.n)
                    .filter(|&j| j != ctx.id.index())
                    .map(|j| (NodeId::from_index(j), U32Msg(self.0)))
                    .collect()
            } else {
                self.1 = true;
                Vec::new()
            }
        }
        fn is_done(&self, _ctx: &Ctx) -> bool {
            self.1
        }
        fn output(&self, _ctx: &Ctx) -> u32 {
            self.0
        }
    }
    let mk = || (0..12).map(|i| Shout(i as u32, false)).collect();
    let seq = Simulator::congested_clique(&g).run(mk()).unwrap();
    for threads in [2, 4, 6] {
        let par = Simulator::congested_clique(&g)
            .run_parallel(mk(), threads)
            .unwrap();
        assert_eq!(par.outputs, seq.outputs);
        assert_eq!(par.metrics, seq.metrics);
    }
}

#[test]
fn parallel_errors_match_sequential() {
    // An illegal send from a high id: both engines must report the
    // same error even though the sender sits in the last shard.
    let g = generators::path(8);
    struct Bad;
    impl Algorithm for Bad {
        type Msg = U32Msg;
        type Output = ();
        fn round(&mut self, ctx: &Ctx, _inbox: &[(NodeId, U32Msg)]) -> Vec<(NodeId, U32Msg)> {
            if ctx.id == NodeId(6) && ctx.round == 0 {
                vec![(NodeId(0), U32Msg(0))] // not a path-neighbor
            } else {
                Vec::new()
            }
        }
        fn is_done(&self, _ctx: &Ctx) -> bool {
            false
        }
        fn output(&self, _ctx: &Ctx) {}
    }
    let seq = Simulator::congest(&g)
        .run((0..8).map(|_| Bad).collect::<Vec<_>>())
        .unwrap_err();
    for threads in [2, 4] {
        let par = Simulator::congest(&g)
            .run_parallel((0..8).map(|_| Bad).collect::<Vec<_>>(), threads)
            .unwrap_err();
        assert_eq!(par, seq, "t={threads}");
    }
    assert_eq!(
        seq,
        SimError::IllegalDestination {
            from: NodeId(6),
            to: NodeId(0),
            round: 0
        }
    );
}

#[test]
fn parallel_round_limit_matches() {
    let g = generators::path(8);
    struct Chatter;
    impl Algorithm for Chatter {
        type Msg = U32Msg;
        type Output = ();
        fn round(&mut self, ctx: &Ctx, _inbox: &[(NodeId, U32Msg)]) -> Vec<(NodeId, U32Msg)> {
            ctx.graph_neighbors
                .iter()
                .map(|&v| (v, U32Msg(0)))
                .collect()
        }
        fn is_done(&self, _ctx: &Ctx) -> bool {
            false
        }
        fn output(&self, _ctx: &Ctx) {}
    }
    let err = Simulator::congest(&g)
        .with_max_rounds(7)
        .run_parallel((0..8).map(|_| Chatter).collect::<Vec<_>>(), 4)
        .unwrap_err();
    assert_eq!(err, SimError::RoundLimitExceeded { limit: 7 });
}

#[test]
fn run_with_dispatches_both_engines() {
    let g = generators::path(10);
    for engine in [
        Engine::Sequential,
        Engine::Parallel { threads: 3 },
        Engine::parallel_auto(),
    ] {
        let report = Simulator::congest(&g)
            .run_with((0..10).map(FloodMax::new).collect(), engine)
            .unwrap();
        assert!(report.outputs.iter().all(|&b| b == 9), "{engine:?}");
    }
}

#[test]
fn congestion_profile_invariants() {
    let g = generators::grid(4, 5);
    let report = Simulator::congest(&g)
        .run((0..20).map(FloodMax::new).collect())
        .unwrap();
    let m = &report.metrics;
    assert_eq!(m.congestion_profile.len(), m.rounds);
    // One message per directed edge per round, so the run-wide peak
    // equals the largest message ever sent.
    assert_eq!(m.peak_edge_bits(), m.max_message_bits);
    assert!(m
        .congestion_profile
        .iter()
        .all(|&b| b <= m.max_message_bits));
}

#[test]
fn id_bits_values() {
    assert_eq!(id_bits(2), 1);
    assert_eq!(id_bits(3), 2);
    assert_eq!(id_bits(4), 2);
    assert_eq!(id_bits(5), 3);
    assert_eq!(id_bits(1024), 10);
    assert_eq!(id_bits(1025), 11);
}

#[test]
fn zero_round_algorithm() {
    // A node set that is immediately done runs 0 rounds and sends
    // nothing (Lemma 6's trivial approximation is such an algorithm).
    let g = generators::path(3);
    struct Lazy;
    impl Algorithm for Lazy {
        type Msg = U32Msg;
        type Output = bool;
        fn round(&mut self, _ctx: &Ctx, _inbox: &[(NodeId, U32Msg)]) -> Vec<(NodeId, U32Msg)> {
            Vec::new()
        }
        fn is_done(&self, _ctx: &Ctx) -> bool {
            true
        }
        fn output(&self, _ctx: &Ctx) -> bool {
            true
        }
    }
    let report = Simulator::congest(&g).run(vec![Lazy, Lazy, Lazy]).unwrap();
    assert_eq!(report.metrics.messages, 0);
    assert!(report.outputs.iter().all(|&b| b));
}
