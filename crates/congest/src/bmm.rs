//! `clique_bmm`: distributed `G²`-row materialization on the congested
//! clique via blocked Boolean matrix multiplication.
//!
//! Row `u` of the Boolean product `A ∨ A·A` is
//! `N(u) ∨ ⋁_{v ∈ N(u)} N(v)` — so every node can assemble its own `G²`
//! row if each neighbor ships it its adjacency-row bitmap. This
//! primitive does exactly that with packed words: node `v` walks the
//! **nonzero 64-bit blocks** of its `N(v)` bitmap and broadcasts one
//! `(block index, word)` pair per round to all its `G`-neighbors;
//! receivers `OR` the words into their accumulating row (seeded with
//! their own one-hop bits) and clear the diagonal at output time.
//!
//! The round count is therefore `max_v min(blocks(v), cap)` where
//! `blocks(v)` is the number of nonzero words in `N(v)`'s bitmap —
//! `O(1)` on clustered inputs such as
//! [`pga_graph::generators::planted_partition`] graphs, whose rows
//! concentrate in their cluster's blocks (the observation of Lingas,
//! arXiv 2405.16103, that congested-clique BMM is fast on clustered
//! data), and at most the `O(log n)` word cap elsewhere. A node with
//! more nonzero blocks than the cap sends only its first `cap` blocks,
//! flagging the last one `truncated`; its neighbors' rows become
//! degree-capped *sketches* and carry [`G2Row::exact`]` == false`, so
//! consumers can fall back to an exact protocol wholesale (the clique
//! MVC pipeline does — see `pga-core`) and keep their outputs
//! bit-identical.
//!
//! Every message fits the default CONGEST bandwidth
//! (`64 + id_bits + 2 ≤ 16·id_bits + 64` bits), and the whole run goes
//! through [`Simulator::run_cfg`], so engine/thread/codec choices are
//! bit-identical by the kernel contract.

use crate::sim::{Algorithm, Ctx, MsgSize, Report, SimError, Simulator};
use pga_graph::{Graph, NodeId};
use pga_runtime::{MsgCodec, RunConfig};
use std::collections::BTreeMap;

/// One 64-column block of a node's adjacency-row bitmap, broadcast to
/// its `G`-neighbors during [`clique_bmm`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BmmBlock {
    /// Index of the 64-bit block inside the `⌈n/64⌉`-word row bitmap.
    pub block: u32,
    /// The block's bits: column `64·block + i` is set iff bit `i` is.
    pub word: u64,
    /// Whether this is the sender's final block.
    pub last: bool,
    /// Whether the sender ran out of word budget: it holds further
    /// nonzero blocks beyond this one, so the receiver's row is a
    /// sketch, not the exact `G²` row.
    pub truncated: bool,
}

impl MsgSize for BmmBlock {
    fn size_bits(&self, id_bits: usize) -> usize {
        // The 64 payload bits, a block index (bounded by n/64 < n, so
        // one identifier's worth), and the two flags.
        64 + id_bits + 2
    }
}

impl MsgCodec for BmmBlock {
    type Word = u128;

    fn encode(&self) -> u128 {
        u128::from(self.word)
            | (u128::from(self.block) << 64)
            | (u128::from(self.last) << 96)
            | (u128::from(self.truncated) << 97)
    }

    fn decode(word: u128) -> Self {
        BmmBlock {
            block: (word >> 64) as u32,
            word: word as u64,
            last: (word >> 96) & 1 == 1,
            truncated: (word >> 97) & 1 == 1,
        }
    }

    fn encoded_bits(_word: u128, id_bits: usize) -> usize {
        64 + id_bits + 2
    }
}

/// A node's materialized `G²` row, the per-node output of
/// [`clique_bmm`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct G2Row {
    /// The sorted `G²`-neighborhood of the node (vertices at distance 1
    /// or 2, the node itself excluded). When `exact` is `false` this is
    /// a subset: the union of the blocks that fit the word budget.
    pub neighbors: Vec<NodeId>,
    /// Whether the row is the exact `G²` row (`true`) or a degree-capped
    /// sketch (`false`: some contributing neighbor truncated its
    /// broadcast).
    pub exact: bool,
}

/// Per-node state machine of [`clique_bmm`].
///
/// Round `r` broadcasts the node's `r`-th nonzero block (if any) to all
/// `G`-neighbors; every round folds the received blocks into the
/// accumulating row. The node is done once its own blocks are out; the
/// simulator's quiescence detection ends the run when the last block has
/// landed.
pub struct CliqueBmm {
    /// This node's nonzero `(block, word)` pairs, ascending, already
    /// truncated to the word cap.
    blocks: Vec<(u32, u64)>,
    /// Whether `blocks` was truncated (the final block is flagged).
    self_truncated: bool,
    /// The accumulating row: block index → OR of all words seen.
    row: BTreeMap<u32, u64>,
    /// Whether every contribution so far was untruncated.
    exact: bool,
}

impl CliqueBmm {
    /// State for node `v` of `g` with the given word budget.
    ///
    /// The row starts seeded with `v`'s own one-hop bits (local
    /// knowledge, no communication), **all** of them — the cap only
    /// limits what travels over the wire.
    pub fn new(g: &Graph, v: NodeId, cap_words: usize) -> Self {
        let cap = cap_words.max(1);
        let mut row = BTreeMap::new();
        for &u in g.neighbors(v) {
            *row.entry((u.index() >> 6) as u32).or_insert(0) |= 1u64 << (u.index() & 63);
        }
        let all: Vec<(u32, u64)> = row.iter().map(|(&b, &w)| (b, w)).collect();
        let self_truncated = all.len() > cap;
        let blocks = if self_truncated {
            all[..cap].to_vec()
        } else {
            all
        };
        CliqueBmm {
            blocks,
            self_truncated,
            row,
            exact: true,
        }
    }
}

impl Algorithm for CliqueBmm {
    type Msg = BmmBlock;
    type Output = G2Row;

    fn round(&mut self, ctx: &Ctx, inbox: &[(NodeId, BmmBlock)]) -> Vec<(NodeId, BmmBlock)> {
        for (_, m) in inbox {
            *self.row.entry(m.block).or_insert(0) |= m.word;
            if m.truncated {
                self.exact = false;
            }
        }
        match self.blocks.get(ctx.round) {
            Some(&(block, word)) => {
                let last = ctx.round + 1 == self.blocks.len();
                let msg = BmmBlock {
                    block,
                    word,
                    last,
                    truncated: last && self.self_truncated,
                };
                ctx.graph_neighbors.iter().map(|&u| (u, msg)).collect()
            }
            None => Vec::new(),
        }
    }

    fn is_done(&self, ctx: &Ctx) -> bool {
        ctx.round >= self.blocks.len()
    }

    fn output(&self, ctx: &Ctx) -> G2Row {
        let mut neighbors = Vec::new();
        for (&block, &word) in &self.row {
            let base = (block as usize) << 6;
            let mut w = word;
            // Knock out the diagonal bit if it sits in this block.
            if base <= ctx.id.index() && ctx.id.index() < base + 64 {
                w &= !(1u64 << (ctx.id.index() & 63));
            }
            while w != 0 {
                neighbors.push(NodeId::from_index(base + w.trailing_zeros() as usize));
                w &= w - 1;
            }
        }
        G2Row {
            neighbors,
            exact: self.exact,
        }
    }
}

/// The default word budget: `4·⌈log₂ n⌉` blocks, i.e. `O(log n)` rounds
/// worst case while still covering `256·log n` columns of spread before
/// any truncation.
pub fn default_cap_words(n: usize) -> usize {
    4 * crate::sim::id_bits(n)
}

/// Materializes every node's `G²` row (or degree-capped sketch) on the
/// congested clique with input graph `g`.
///
/// Runs `max_v min(blocks(v), cap_words)` broadcast rounds plus one
/// drain round (see the module docs for why clustered inputs finish in
/// `O(1)`), under the engine/scheduling/codec choices of `cfg` — all
/// bit-identical by the kernel contract. The returned report's
/// [`Metrics`](crate::Metrics) can be merged into a downstream
/// consumer's accounting.
///
/// # Errors
///
/// Returns a [`SimError`] if the run violates the communication model
/// (it cannot, by construction: every message fits the default
/// bandwidth) or exhausts the round budget.
pub fn clique_bmm(g: &Graph, cap_words: usize, cfg: &RunConfig) -> Result<Report<G2Row>, SimError> {
    let sim = Simulator::congested_clique(g);
    let nodes: Vec<CliqueBmm> = g.nodes().map(|v| CliqueBmm::new(g, v, cap_words)).collect();
    sim.run_cfg(nodes, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_graph::generators;
    use pga_graph::power::square_scalar;
    use pga_runtime::RunConfig;

    fn exact_rows_match_square(g: &Graph) {
        let g2 = square_scalar(g);
        let report = clique_bmm(g, usize::MAX, &RunConfig::new()).unwrap();
        for v in g.nodes() {
            let row = &report.outputs[v.index()];
            assert!(row.exact, "row {v:?} unexpectedly truncated");
            assert_eq!(row.neighbors.as_slice(), g2.neighbors(v), "row {v:?}");
        }
    }

    #[test]
    fn rows_match_square_on_families() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(23);
        exact_rows_match_square(&generators::path(30));
        exact_rows_match_square(&generators::star(40));
        exact_rows_match_square(&generators::gnp(60, 0.1, &mut rng));
        exact_rows_match_square(&generators::planted_partition(128, 4, 0.3, 0.02, 3));
        exact_rows_match_square(&pga_graph::Graph::empty(1));
    }

    #[test]
    fn truncation_caps_rows_and_clears_exact() {
        // star(200): the center's bitmap spans ceil(200/64) = 4 nonzero
        // blocks. cap = 1 truncates its broadcast, so every leaf row is
        // a sketch; each leaf's own bitmap is 1 block (bit 0 only), so
        // the center's row stays exact.
        let g = generators::star(200);
        let report = clique_bmm(&g, 1, &RunConfig::new()).unwrap();
        assert!(report.outputs[0].exact, "center saw no truncated source");
        assert_eq!(report.outputs[0].neighbors.len(), 199);
        let leaf = &report.outputs[5];
        assert!(!leaf.exact, "leaf must be flagged as a sketch");
        // The sketch holds the first block's columns (minus itself)
        // plus nothing beyond column 63.
        assert!(leaf.neighbors.iter().all(|v| v.index() < 64));
        // Rounds stay at the cap, not at the center's 4 blocks.
        assert!(
            report.metrics.rounds <= 3,
            "rounds {}",
            report.metrics.rounds
        );
    }

    #[test]
    fn clustered_input_finishes_in_constant_rounds() {
        // 8 word-aligned clusters of 64, no inter-cluster edges: every
        // bitmap occupies exactly one block, so one broadcast round
        // (plus the drain) suffices regardless of n.
        let g = generators::planted_partition(512, 8, 0.5, 0.0, 7);
        let report = clique_bmm(&g, default_cap_words(512), &RunConfig::new()).unwrap();
        assert!(
            report.metrics.rounds <= 2,
            "rounds {}",
            report.metrics.rounds
        );
        assert!(report.outputs.iter().all(|r| r.exact));
        let g2 = square_scalar(&g);
        for v in g.nodes() {
            assert_eq!(
                report.outputs[v.index()].neighbors.as_slice(),
                g2.neighbors(v)
            );
        }
    }

    #[test]
    fn engines_and_codec_bit_identical() {
        let g = generators::planted_partition(192, 3, 0.25, 0.03, 9);
        let base = clique_bmm(&g, default_cap_words(192), &RunConfig::new()).unwrap();
        for cfg in [
            RunConfig::new().parallel(2),
            RunConfig::new().parallel(4).codec(true),
            RunConfig::new().parallel(8),
        ] {
            let other = clique_bmm(&g, default_cap_words(192), &cfg).unwrap();
            assert_eq!(other.outputs, base.outputs);
            assert_eq!(other.metrics.rounds, base.metrics.rounds);
            assert_eq!(other.metrics.messages, base.metrics.messages);
            assert_eq!(other.metrics.bits, base.metrics.bits);
        }
    }

    #[test]
    fn message_fits_default_bandwidth() {
        for n in [2usize, 100, 60_000, 1 << 20] {
            let bits = crate::sim::id_bits(n);
            let msg = BmmBlock {
                block: 0,
                word: u64::MAX,
                last: true,
                truncated: true,
            };
            assert!(msg.size_bits(bits) <= crate::sim::default_bandwidth_bits(n));
        }
    }
}

#[cfg(test)]
mod codec_roundtrip_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn bmm_block_codec_roundtrips(
            block in any::<u32>(),
            word in any::<u64>(),
            last in any::<bool>(),
            truncated in any::<bool>(),
        ) {
            let m = BmmBlock { block, word, last, truncated };
            prop_assert_eq!(BmmBlock::decode(m.encode()), m);
            prop_assert_eq!(
                <BmmBlock as MsgCodec>::encoded_bits(m.encode(), 17),
                m.size_bits(17)
            );
        }
    }
}
