//! The synchronous round-based simulation engine.

use crate::Metrics;
use pga_graph::{Graph, NodeId};

/// Communication topology of a simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Messages travel only along edges of the input graph (the CONGEST
    /// model of Peleg).
    Congest,
    /// Any vertex may message any other vertex (the CONGESTED CLIQUE model
    /// of Lotker et al.); the input graph remains each node's local
    /// knowledge.
    CongestedClique,
}

/// Size accounting for messages.
///
/// `id_bits = ⌈log₂ n⌉` is passed in so message types can charge the
/// model-correct `O(log n)` bits for every node identifier they carry.
pub trait MsgSize {
    /// The size of this message in bits.
    fn size_bits(&self, id_bits: usize) -> usize;
}

/// Per-node view of the network, passed to every [`Algorithm`] callback.
#[derive(Debug)]
pub struct Ctx<'a> {
    /// This node's identifier.
    pub id: NodeId,
    /// Total number of nodes (globally known, as the paper assumes).
    pub n: usize,
    /// `⌈log₂ n⌉`, the number of bits of a node identifier.
    pub id_bits: usize,
    /// Neighbors of this node in the *input graph* `G` (sorted).
    pub graph_neighbors: &'a [NodeId],
    /// Current round number, starting at 0.
    pub round: usize,
    /// The communication topology.
    pub topology: Topology,
    /// The bandwidth `B` in bits available per directed edge per round.
    pub bandwidth_bits: usize,
}

impl Ctx<'_> {
    /// Whether this node may send a message to `to` in the current
    /// topology.
    pub fn can_send(&self, to: NodeId) -> bool {
        match self.topology {
            Topology::Congest => self.graph_neighbors.binary_search(&to).is_ok(),
            Topology::CongestedClique => to.index() < self.n && to != self.id,
        }
    }
}

/// A distributed algorithm, written as a per-node state machine.
///
/// The simulator calls [`Algorithm::round`] once per node per round (in
/// node-id order, though well-formed algorithms must not depend on that),
/// delivering the messages sent to this node in the previous round. The
/// run ends when every node reports [`Algorithm::is_done`] and no messages
/// are in flight.
pub trait Algorithm {
    /// Message type exchanged by this algorithm.
    type Msg: Clone + MsgSize;
    /// Per-node output produced at the end of the run.
    type Output;

    /// Executes one round: consume the inbox, return the outbox.
    ///
    /// The inbox contains `(sender, message)` pairs sorted by sender id.
    /// Each outbox entry `(to, msg)` must satisfy the topology
    /// ([`Ctx::can_send`]), at most one message per destination, each at
    /// most [`Ctx::bandwidth_bits`] bits — violations abort the run with a
    /// [`SimError`].
    fn round(&mut self, ctx: &Ctx, inbox: &[(NodeId, Self::Msg)]) -> Vec<(NodeId, Self::Msg)>;

    /// Whether this node has terminated (quiescent and output-ready).
    fn is_done(&self, ctx: &Ctx) -> bool;

    /// The node's final output.
    fn output(&self, ctx: &Ctx) -> Self::Output;
}

/// Result of a completed run.
#[derive(Debug)]
pub struct Report<O> {
    /// Output of every node, indexed by node id.
    pub outputs: Vec<O>,
    /// Communication metrics of the run.
    pub metrics: Metrics,
}

/// Errors that abort a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A node sent a message to a non-neighbor (CONGEST) or out-of-range
    /// destination.
    IllegalDestination {
        /// Sending node.
        from: NodeId,
        /// Intended destination.
        to: NodeId,
        /// Round in which the violation occurred.
        round: usize,
    },
    /// A node sent two messages to the same destination in one round.
    DuplicateMessage {
        /// Sending node.
        from: NodeId,
        /// Destination that received two messages.
        to: NodeId,
        /// Round in which the violation occurred.
        round: usize,
    },
    /// A message exceeded the bandwidth `B`.
    BandwidthExceeded {
        /// Sending node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
        /// Size of the offending message in bits.
        size_bits: usize,
        /// The bandwidth limit in bits.
        limit_bits: usize,
        /// Round in which the violation occurred.
        round: usize,
    },
    /// The round budget was exhausted before all nodes terminated.
    RoundLimitExceeded {
        /// The limit that was hit.
        limit: usize,
    },
    /// The algorithm's precondition on the input graph was violated
    /// (e.g. a spanning-tree-based phase requires a connected graph).
    PreconditionViolated {
        /// Human-readable description of the violated precondition.
        what: &'static str,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::IllegalDestination { from, to, round } => {
                write!(f, "round {round}: {from:?} sent to non-reachable {to:?}")
            }
            SimError::DuplicateMessage { from, to, round } => {
                write!(f, "round {round}: {from:?} sent two messages to {to:?}")
            }
            SimError::BandwidthExceeded {
                from,
                to,
                size_bits,
                limit_bits,
                round,
            } => write!(
                f,
                "round {round}: message {from:?} → {to:?} has {size_bits} bits > B = {limit_bits}"
            ),
            SimError::RoundLimitExceeded { limit } => {
                write!(f, "round limit {limit} exceeded without termination")
            }
            SimError::PreconditionViolated { what } => {
                write!(f, "algorithm precondition violated: {what}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The simulation driver.
///
/// Construct with [`Simulator::congest`] or [`Simulator::congested_clique`]
/// and tune with the builder-style setters.
pub struct Simulator<'g> {
    g: &'g Graph,
    topology: Topology,
    bandwidth_bits: usize,
    max_rounds: usize,
}

/// Default bandwidth: `16·⌈log₂ n⌉ + 64` bits.
///
/// The CONGEST model allows `B = O(log n)`; the constant is chosen so a
/// message can carry a small constant number of identifiers plus a tag and
/// a 64-bit numeric payload (used by the randomized estimator of Lemma 29).
pub fn default_bandwidth_bits(n: usize) -> usize {
    16 * id_bits(n) + 64
}

/// `⌈log₂ n⌉`, with a minimum of 1.
pub fn id_bits(n: usize) -> usize {
    if n <= 2 {
        1
    } else {
        (n - 1).ilog2() as usize + 1
    }
}

impl<'g> Simulator<'g> {
    /// A CONGEST simulator over the communication graph `g`.
    pub fn congest(g: &'g Graph) -> Self {
        Simulator {
            g,
            topology: Topology::Congest,
            bandwidth_bits: default_bandwidth_bits(g.num_nodes()),
            max_rounds: 1_000_000,
        }
    }

    /// A CONGESTED CLIQUE simulator with input graph `g`.
    pub fn congested_clique(g: &'g Graph) -> Self {
        Simulator {
            topology: Topology::CongestedClique,
            ..Simulator::congest(g)
        }
    }

    /// Overrides the per-edge bandwidth `B` (bits per message).
    pub fn with_bandwidth_bits(mut self, bits: usize) -> Self {
        self.bandwidth_bits = bits;
        self
    }

    /// Overrides the safety round budget (default one million).
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    fn ctx(&self, id: NodeId, round: usize) -> Ctx<'_> {
        Ctx {
            id,
            n: self.g.num_nodes(),
            id_bits: id_bits(self.g.num_nodes()),
            graph_neighbors: self.g.neighbors(id),
            round,
            topology: self.topology,
            bandwidth_bits: self.bandwidth_bits,
        }
    }

    /// Runs `nodes` (one algorithm state per vertex, indexed by id) to
    /// completion.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if a node violates the communication model
    /// or the round budget is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the graph size.
    pub fn run<A: Algorithm>(&self, mut nodes: Vec<A>) -> Result<Report<A::Output>, SimError> {
        let n = self.g.num_nodes();
        assert_eq!(nodes.len(), n, "one algorithm state per vertex required");
        let idb = id_bits(n);
        let mut metrics = Metrics::default();
        let mut inboxes: Vec<Vec<(NodeId, A::Msg)>> = (0..n).map(|_| Vec::new()).collect();
        let mut round = 0;

        loop {
            // Termination: all done and no messages in flight.
            let in_flight = inboxes.iter().any(|ib| !ib.is_empty());
            let all_done = (0..n).all(|i| {
                let ctx = self.ctx(NodeId::from_index(i), round);
                nodes[i].is_done(&ctx)
            });
            if all_done && !in_flight {
                break;
            }
            if round >= self.max_rounds {
                return Err(SimError::RoundLimitExceeded {
                    limit: self.max_rounds,
                });
            }

            let mut next_inboxes: Vec<Vec<(NodeId, A::Msg)>> = (0..n).map(|_| Vec::new()).collect();
            let mut sent_any = false;

            for i in 0..n {
                let id = NodeId::from_index(i);
                let ctx = self.ctx(id, round);
                let inbox = std::mem::take(&mut inboxes[i]);
                let outbox = nodes[i].round(&ctx, &inbox);
                let mut seen: Vec<NodeId> = Vec::with_capacity(outbox.len());
                for (to, msg) in outbox {
                    if !ctx.can_send(to) {
                        return Err(SimError::IllegalDestination {
                            from: id,
                            to,
                            round,
                        });
                    }
                    if seen.contains(&to) {
                        return Err(SimError::DuplicateMessage {
                            from: id,
                            to,
                            round,
                        });
                    }
                    seen.push(to);
                    let size = msg.size_bits(idb);
                    if size > self.bandwidth_bits {
                        return Err(SimError::BandwidthExceeded {
                            from: id,
                            to,
                            size_bits: size,
                            limit_bits: self.bandwidth_bits,
                            round,
                        });
                    }
                    metrics.messages += 1;
                    metrics.bits += size as u64;
                    metrics.max_message_bits = metrics.max_message_bits.max(size);
                    next_inboxes[to.index()].push((id, msg));
                    sent_any = true;
                }
            }

            // Deterministic delivery order.
            for ib in &mut next_inboxes {
                ib.sort_by_key(|&(from, _)| from);
            }
            inboxes = next_inboxes;
            round += 1;
            metrics.rounds = round;

            // Fast-path termination check to avoid an extra empty round:
            // if nothing was sent and everyone is done, stop.
            if !sent_any {
                let all_done_now = (0..n).all(|i| {
                    let ctx = self.ctx(NodeId::from_index(i), round);
                    nodes[i].is_done(&ctx)
                });
                if all_done_now {
                    break;
                }
            }
        }

        let outputs = (0..n)
            .map(|i| {
                let ctx = self.ctx(NodeId::from_index(i), round);
                nodes[i].output(&ctx)
            })
            .collect();
        Ok(Report { outputs, metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_graph::generators;

    #[derive(Clone)]
    struct U32Msg(u32);
    impl MsgSize for U32Msg {
        fn size_bits(&self, id_bits: usize) -> usize {
            id_bits
        }
    }

    /// Every node floods the max id it has seen; outputs it.
    struct FloodMax {
        best: u32,
        changed: bool,
        quiet: bool,
    }

    impl FloodMax {
        fn new(i: usize) -> Self {
            FloodMax {
                best: i as u32,
                changed: false,
                quiet: false,
            }
        }
    }

    impl Algorithm for FloodMax {
        type Msg = U32Msg;
        type Output = u32;
        fn round(&mut self, ctx: &Ctx, inbox: &[(NodeId, U32Msg)]) -> Vec<(NodeId, U32Msg)> {
            for (_, m) in inbox {
                if m.0 > self.best {
                    self.best = m.0;
                    self.changed = true;
                }
            }
            let send = ctx.round == 0 || self.changed;
            self.changed = false;
            self.quiet = !send;
            if send {
                ctx.graph_neighbors
                    .iter()
                    .map(|&v| (v, U32Msg(self.best)))
                    .collect()
            } else {
                Vec::new()
            }
        }
        fn is_done(&self, _ctx: &Ctx) -> bool {
            self.quiet
        }
        fn output(&self, _ctx: &Ctx) -> u32 {
            self.best
        }
    }

    #[test]
    fn flood_max_on_path() {
        let g = generators::path(10);
        let report = Simulator::congest(&g)
            .run((0..10).map(FloodMax::new).collect())
            .unwrap();
        assert!(report.outputs.iter().all(|&b| b == 9));
        // Max id must travel 9 hops: at least 9 rounds.
        assert!(report.metrics.rounds >= 9, "{}", report.metrics.rounds);
        assert!(report.metrics.messages > 0);
    }

    #[test]
    fn flood_max_on_clique_topology_one_hop() {
        let g = generators::path(10); // input graph is a path...
        struct Shout {
            best: u32,
            done: bool,
        }
        impl Algorithm for Shout {
            type Msg = U32Msg;
            type Output = u32;
            fn round(&mut self, ctx: &Ctx, inbox: &[(NodeId, U32Msg)]) -> Vec<(NodeId, U32Msg)> {
                for (_, m) in inbox {
                    self.best = self.best.max(m.0);
                }
                if ctx.round == 0 {
                    // ...but the clique topology lets everyone shout once.
                    (0..ctx.n)
                        .filter(|&j| j != ctx.id.index())
                        .map(|j| (NodeId::from_index(j), U32Msg(self.best)))
                        .collect()
                } else {
                    self.done = true;
                    Vec::new()
                }
            }
            fn is_done(&self, _ctx: &Ctx) -> bool {
                self.done
            }
            fn output(&self, _ctx: &Ctx) -> u32 {
                self.best
            }
        }
        let report = Simulator::congested_clique(&g)
            .run(
                (0..10)
                    .map(|i| Shout {
                        best: i as u32,
                        done: false,
                    })
                    .collect(),
            )
            .unwrap();
        assert!(report.outputs.iter().all(|&b| b == 9));
        assert!(report.metrics.rounds <= 3);
    }

    #[test]
    fn illegal_destination_congest() {
        let g = generators::path(4);
        struct Bad;
        impl Algorithm for Bad {
            type Msg = U32Msg;
            type Output = ();
            fn round(&mut self, ctx: &Ctx, _inbox: &[(NodeId, U32Msg)]) -> Vec<(NodeId, U32Msg)> {
                if ctx.id == NodeId(0) && ctx.round == 0 {
                    vec![(NodeId(3), U32Msg(0))] // not a path-neighbor
                } else {
                    Vec::new()
                }
            }
            fn is_done(&self, _ctx: &Ctx) -> bool {
                false
            }
            fn output(&self, _ctx: &Ctx) {}
        }
        let err = Simulator::congest(&g)
            .run(vec![Bad, Bad, Bad, Bad])
            .unwrap_err();
        assert!(matches!(err, SimError::IllegalDestination { .. }));
    }

    #[test]
    fn bandwidth_violation() {
        let g = generators::path(2);
        #[derive(Clone)]
        struct Huge;
        impl MsgSize for Huge {
            fn size_bits(&self, _id_bits: usize) -> usize {
                1 << 20
            }
        }
        struct Sender;
        impl Algorithm for Sender {
            type Msg = Huge;
            type Output = ();
            fn round(&mut self, ctx: &Ctx, _inbox: &[(NodeId, Huge)]) -> Vec<(NodeId, Huge)> {
                if ctx.round == 0 && ctx.id == NodeId(0) {
                    vec![(NodeId(1), Huge)]
                } else {
                    Vec::new()
                }
            }
            fn is_done(&self, _ctx: &Ctx) -> bool {
                false
            }
            fn output(&self, _ctx: &Ctx) {}
        }
        let err = Simulator::congest(&g)
            .run(vec![Sender, Sender])
            .unwrap_err();
        assert!(matches!(err, SimError::BandwidthExceeded { .. }));
    }

    #[test]
    fn duplicate_message_rejected() {
        let g = generators::path(2);
        struct Dup;
        impl Algorithm for Dup {
            type Msg = U32Msg;
            type Output = ();
            fn round(&mut self, ctx: &Ctx, _inbox: &[(NodeId, U32Msg)]) -> Vec<(NodeId, U32Msg)> {
                if ctx.round == 0 && ctx.id == NodeId(0) {
                    vec![(NodeId(1), U32Msg(1)), (NodeId(1), U32Msg(2))]
                } else {
                    Vec::new()
                }
            }
            fn is_done(&self, _ctx: &Ctx) -> bool {
                false
            }
            fn output(&self, _ctx: &Ctx) {}
        }
        let err = Simulator::congest(&g).run(vec![Dup, Dup]).unwrap_err();
        assert!(matches!(err, SimError::DuplicateMessage { .. }));
    }

    #[test]
    fn round_limit() {
        let g = generators::path(2);
        struct Chatter;
        impl Algorithm for Chatter {
            type Msg = U32Msg;
            type Output = ();
            fn round(&mut self, ctx: &Ctx, _inbox: &[(NodeId, U32Msg)]) -> Vec<(NodeId, U32Msg)> {
                ctx.graph_neighbors
                    .iter()
                    .map(|&v| (v, U32Msg(0)))
                    .collect()
            }
            fn is_done(&self, _ctx: &Ctx) -> bool {
                false
            }
            fn output(&self, _ctx: &Ctx) {}
        }
        let err = Simulator::congest(&g)
            .with_max_rounds(10)
            .run(vec![Chatter, Chatter])
            .unwrap_err();
        assert_eq!(err, SimError::RoundLimitExceeded { limit: 10 });
    }

    #[test]
    fn id_bits_values() {
        assert_eq!(id_bits(2), 1);
        assert_eq!(id_bits(3), 2);
        assert_eq!(id_bits(4), 2);
        assert_eq!(id_bits(5), 3);
        assert_eq!(id_bits(1024), 10);
        assert_eq!(id_bits(1025), 11);
    }

    #[test]
    fn zero_round_algorithm() {
        // A node set that is immediately done runs 0 rounds and sends
        // nothing (Lemma 6's trivial approximation is such an algorithm).
        let g = generators::path(3);
        struct Lazy;
        impl Algorithm for Lazy {
            type Msg = U32Msg;
            type Output = bool;
            fn round(&mut self, _ctx: &Ctx, _inbox: &[(NodeId, U32Msg)]) -> Vec<(NodeId, U32Msg)> {
                Vec::new()
            }
            fn is_done(&self, _ctx: &Ctx) -> bool {
                true
            }
            fn output(&self, _ctx: &Ctx) -> bool {
                true
            }
        }
        let report = Simulator::congest(&g).run(vec![Lazy, Lazy, Lazy]).unwrap();
        assert_eq!(report.metrics.messages, 0);
        assert!(report.outputs.iter().all(|&b| b));
    }
}
