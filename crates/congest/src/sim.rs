//! The synchronous round-based simulation engine.
//!
//! The round loop itself — termination, scheduling, message staging,
//! sharding, and the deterministic exchange — lives in the shared
//! [`pga_runtime`] kernel; this module supplies the CONGEST /
//! CONGESTED CLIQUE *model*: topology and addressing, per-message
//! validation and bit charging ([`check_message`]), and the mapping of
//! the kernel's per-round accounting onto [`Metrics`].

pub use crate::error::SimError;
use crate::Metrics;
use pga_graph::{Graph, NodeId};
use pga_runtime::{CodecFns, ExecModel, FaultStats, KernelConfig, MsgSink, Poll, RoundProfile};

pub use pga_runtime::{
    Adversary, Engine, FaultSpec, FaultTrace, JsonlProbe, MsgCodec, NoopProbe, Probe, RunConfig,
    Scheduling, SeededAdversary, TraceAdversary, PARALLEL_MIN_NODES,
};

/// Communication topology of a simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Messages travel only along edges of the input graph (the CONGEST
    /// model of Peleg).
    Congest,
    /// Any vertex may message any other vertex (the CONGESTED CLIQUE model
    /// of Lotker et al.); the input graph remains each node's local
    /// knowledge.
    CongestedClique,
}

/// Size accounting for messages — the historical CONGEST name for the
/// runtime-level [`pga_runtime::MsgCost`] trait.
///
/// `id_bits = ⌈log₂ n⌉` is passed to
/// [`size_bits`](pga_runtime::MsgCost::size_bits) so message types can
/// charge the model-correct `O(log n)` bits for every node identifier
/// they carry. Existing `impl MsgSize for …` blocks compile unchanged;
/// the same impl now also powers MPC word charging through the defaulted
/// [`size_words`](pga_runtime::MsgCost::size_words).
pub use pga_runtime::MsgCost as MsgSize;

/// Per-node view of the network, passed to every [`Algorithm`] callback.
#[derive(Debug)]
pub struct Ctx<'a> {
    /// This node's identifier.
    pub id: NodeId,
    /// Total number of nodes (globally known, as the paper assumes).
    pub n: usize,
    /// `⌈log₂ n⌉`, the number of bits of a node identifier.
    pub id_bits: usize,
    /// Neighbors of this node in the *input graph* `G` (sorted).
    pub graph_neighbors: &'a [NodeId],
    /// Current round number, starting at 0.
    pub round: usize,
    /// The communication topology.
    pub topology: Topology,
    /// The bandwidth `B` in bits available per directed edge per round.
    pub bandwidth_bits: usize,
}

impl Ctx<'_> {
    /// Whether this node may send a message to `to` in the current
    /// topology.
    pub fn can_send(&self, to: NodeId) -> bool {
        match self.topology {
            Topology::Congest => self.graph_neighbors.binary_search(&to).is_ok(),
            Topology::CongestedClique => to.index() < self.n && to != self.id,
        }
    }
}

/// A distributed algorithm, written as a per-node state machine.
///
/// The simulator calls [`Algorithm::round`] once per node per round (in
/// node-id order, though well-formed algorithms must not depend on that),
/// delivering the messages sent to this node in the previous round. The
/// run ends when every node reports [`Algorithm::is_done`] and no messages
/// are in flight.
pub trait Algorithm {
    /// Message type exchanged by this algorithm.
    type Msg: Clone + MsgSize;
    /// Per-node output produced at the end of the run.
    type Output;

    /// Executes one round: consume the inbox, return the outbox.
    ///
    /// The inbox contains `(sender, message)` pairs sorted by sender id.
    /// Each outbox entry `(to, msg)` must satisfy the topology
    /// ([`Ctx::can_send`]), at most one message per destination, each at
    /// most [`Ctx::bandwidth_bits`] bits — violations abort the run with a
    /// [`SimError`].
    fn round(&mut self, ctx: &Ctx, inbox: &[(NodeId, Self::Msg)]) -> Vec<(NodeId, Self::Msg)>;

    /// Whether this node has terminated (quiescent and output-ready).
    fn is_done(&self, ctx: &Ctx) -> bool;

    /// Whether the engine may *skip* this node's [`Algorithm::round`]
    /// call in rounds where its inbox is empty (the
    /// [`Scheduling::ActiveSet`] policy).
    ///
    /// **Contract:** if `can_skip` returns `true` and the node's inbox
    /// is empty, `round` must be a pure no-op — no state mutation and an
    /// empty outbox — and both `is_done` and `can_skip` must remain
    /// `true` for the unchanged state until a message arrives (the
    /// engine may stop re-polling a skippable quiet node). Skipping a
    /// call that would have done nothing is unobservable, so both
    /// scheduling policies stay bit-identical. The default (`is_done`)
    /// satisfies this for plain state machines that go quiet once
    /// finished; algorithms whose `round` has residual side effects
    /// after `is_done` (stale-flag clearing, per-cycle resets) override
    /// this to exclude those states and are then simply never skipped.
    fn can_skip(&self, ctx: &Ctx) -> bool {
        self.is_done(ctx)
    }

    /// The node's final output.
    fn output(&self, ctx: &Ctx) -> Self::Output;
}

/// Result of a completed run.
#[derive(Debug)]
pub struct Report<O> {
    /// Output of every node, indexed by node id.
    pub outputs: Vec<O>,
    /// Communication metrics of the run.
    pub metrics: Metrics,
}

impl<O> From<pga_runtime::Run<O, Metrics>> for Report<O> {
    fn from(run: pga_runtime::Run<O, Metrics>) -> Self {
        Report {
            outputs: run.outputs,
            metrics: run.metrics,
        }
    }
}

/// The simulation driver.
///
/// Construct with [`Simulator::congest`] or [`Simulator::congested_clique`]
/// and tune with the builder-style setters.
#[derive(Clone, Copy)]
pub struct Simulator<'g> {
    g: &'g Graph,
    topology: Topology,
    bandwidth_bits: usize,
    max_rounds: usize,
    scheduling: Scheduling,
}

/// Validates one outgoing message against the communication model and
/// returns its size in bits.
///
/// Shared by both engines so their model enforcement (and the errors they
/// raise) cannot drift apart. Public so external executors that simulate
/// the CONGEST model on another substrate (the `pga-mpc` adapter) apply
/// the exact same checks and raise the exact same errors.
///
/// `seen` accumulates the destinations this node has already sent to in
/// the current round (for the one-message-per-destination rule); pass the
/// same vector across all of a node's messages in one round.
///
/// # Errors
///
/// Returns the same [`SimError`] the engines raise: an illegal
/// destination for the topology, a duplicate destination, or a message
/// larger than the bandwidth `B`.
pub fn check_message<M: MsgSize>(
    ctx: &Ctx,
    seen: &mut Vec<NodeId>,
    to: NodeId,
    msg: &M,
) -> Result<usize, SimError> {
    if !ctx.can_send(to) {
        return Err(SimError::IllegalDestination {
            from: ctx.id,
            to,
            round: ctx.round,
        });
    }
    if seen.contains(&to) {
        return Err(SimError::DuplicateMessage {
            from: ctx.id,
            to,
            round: ctx.round,
        });
    }
    seen.push(to);
    let size = msg.size_bits(ctx.id_bits);
    if size > ctx.bandwidth_bits {
        return Err(SimError::BandwidthExceeded {
            from: ctx.id,
            to,
            size_bits: size,
            limit_bits: ctx.bandwidth_bits,
            round: ctx.round,
        });
    }
    Ok(size)
}

/// Default bandwidth: `16·⌈log₂ n⌉ + 64` bits.
///
/// The CONGEST model allows `B = O(log n)`; the constant is chosen so a
/// message can carry a small constant number of identifiers plus a tag and
/// a 64-bit numeric payload (used by the randomized estimator of Lemma 29).
pub fn default_bandwidth_bits(n: usize) -> usize {
    16 * id_bits(n) + 64
}

/// `⌈log₂ n⌉`, with a minimum of 1.
pub fn id_bits(n: usize) -> usize {
    if n <= 2 {
        1
    } else {
        (n - 1).ilog2() as usize + 1
    }
}

/// The [`ExecModel`] instantiation that turns the shared round kernel
/// into the CONGEST / CONGESTED CLIQUE engine: per-message validation
/// via [`check_message`], bit charging, and [`Metrics`] accumulation
/// (including the per-round congestion profile).
///
/// `W` is the packed word type of the message codec, `()` when the run
/// uses the plain enum plane. When a codec is installed
/// ([`Simulator::run_cfg`] with [`RunConfig::codec`] on), the kernel's
/// counting-sort exchange moves `W` words through its CSR inbox arenas
/// instead of cloned `A::Msg` enums; validation and charging still
/// happen here on the decoded messages, so both planes are
/// bit-identical by construction.
struct CongestModel<'s, 'g, A: Algorithm, W = ()> {
    sim: &'s Simulator<'g>,
    codec: Option<CodecFns<A::Msg, W>>,
    _algorithm: std::marker::PhantomData<fn(A)>,
}

impl<A: Algorithm, W: Copy + Send> ExecModel for CongestModel<'_, '_, A, W> {
    type Id = NodeId;
    type Node = A;
    type Msg = A::Msg;
    type Output = A::Output;
    type Error = SimError;
    type Metrics = Metrics;
    type SendScratch = Vec<NodeId>;
    type Packed = W;

    fn packs(&self) -> bool {
        self.codec.is_some()
    }

    fn pack(&self, msg: &A::Msg) -> W {
        let c = self.codec.expect("pack called without an installed codec");
        let word = (c.enc)(msg);
        debug_assert_eq!(
            (c.bits)(word, id_bits(self.sim.g.num_nodes())),
            msg.size_bits(id_bits(self.sim.g.num_nodes())),
            "MsgCodec::encoded_bits must agree with MsgCost::size_bits"
        );
        word
    }

    fn unpack(&self, word: W) -> A::Msg {
        (self
            .codec
            .expect("unpack called without an installed codec")
            .dec)(word)
    }

    fn actor_cost(&self, _node: &A, idx: usize) -> u64 {
        self.sim.vertex_cost(idx)
    }

    fn poll(&self, node: &A, idx: usize, round: usize) -> Poll {
        let ctx = self.sim.ctx(NodeId::from_index(idx), round);
        Poll {
            done: node.is_done(&ctx),
            skippable: node.can_skip(&ctx),
        }
    }

    fn output(&self, node: &A, idx: usize, round: usize) -> A::Output {
        node.output(&self.sim.ctx(NodeId::from_index(idx), round))
    }

    fn round_limit_error(&self, limit: usize) -> SimError {
        SimError::RoundLimitExceeded { limit }
    }

    fn step<S: MsgSink<Self>>(
        &self,
        node: &mut A,
        idx: usize,
        round: usize,
        inbox: &[(NodeId, A::Msg)],
        seen: &mut Vec<NodeId>,
        acc: &mut RoundProfile,
        sink: &mut S,
    ) -> Result<(), SimError> {
        let ctx = self.sim.ctx(NodeId::from_index(idx), round);
        let outbox = node.round(&ctx, inbox);
        seen.clear();
        // Accumulate in locals and fold into the shard profile once per
        // actor, so the hot loop keeps its counters in registers.
        let mut messages = 0u64;
        let mut volume = 0u64;
        let mut peak = 0usize;
        for (to, msg) in outbox {
            let size = check_message(&ctx, seen, to, &msg)?;
            // Congestion is charged at actual delivery: the sink
            // reports how many copies traverse the edge (always 1 on
            // the clean engines; an adversary's drop charges 0, a
            // duplicate 2, a delay 1 at the transmit round).
            let copies = sink.deliver(self, to, ctx.id, msg);
            messages += u64::from(copies);
            volume += u64::from(copies) * size as u64;
            peak = peak.max(size * copies as usize);
            // Telemetry only: a no-op unless a probe allocated the
            // histogram, so the clean path stays branch-plus-nothing.
            acc.observe_size(size as u64, copies);
        }
        acc.messages += messages;
        acc.volume += volume;
        acc.peak_link = acc.peak_link.max(peak);
        Ok(())
    }

    fn wire_charge(&self, msg: &A::Msg) -> u64 {
        msg.size_bits(id_bits(self.sim.g.num_nodes())) as u64
    }

    fn arq_header_charge(&self) -> u64 {
        // One fixed 64-bit control word per data copy: the per-link
        // sequence number (and piggyback room), same width as the
        // B = Θ(log n) message budget's id fields.
        64
    }

    fn arq_ack_charge(&self) -> u64 {
        // A cumulative ack is one control word.
        64
    }

    fn end_round(&self, acc: &RoundProfile, _recv: &[usize], round: usize, metrics: &mut Metrics) {
        metrics.messages += acc.messages;
        metrics.bits += acc.volume;
        metrics.max_message_bits = metrics.max_message_bits.max(acc.peak_link);
        metrics.rounds = round + 1;
        metrics.congestion_profile.push(acc.peak_link);
    }

    fn finish(&self, metrics: &mut Metrics, fault: &FaultStats, convergence_round: usize) {
        metrics.fault = *fault;
        metrics.convergence_round = convergence_round;
    }
}

impl<'g> Simulator<'g> {
    /// A CONGEST simulator over the communication graph `g`.
    pub fn congest(g: &'g Graph) -> Self {
        Simulator {
            g,
            topology: Topology::Congest,
            bandwidth_bits: default_bandwidth_bits(g.num_nodes()),
            max_rounds: 1_000_000,
            scheduling: Scheduling::default(),
        }
    }

    /// A CONGESTED CLIQUE simulator with input graph `g`.
    pub fn congested_clique(g: &'g Graph) -> Self {
        Simulator {
            topology: Topology::CongestedClique,
            ..Simulator::congest(g)
        }
    }

    /// Overrides the per-edge bandwidth `B` (bits per message).
    pub fn with_bandwidth_bits(mut self, bits: usize) -> Self {
        self.bandwidth_bits = bits;
        self
    }

    /// Overrides the safety round budget (default one million).
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Overrides the round-scheduling policy (default
    /// [`Scheduling::ActiveSet`]); both policies are bit-identical, see
    /// [`Algorithm::can_skip`].
    pub fn with_scheduling(mut self, scheduling: Scheduling) -> Self {
        self.scheduling = scheduling;
        self
    }

    /// The per-vertex cost estimate the sharded engine balances on:
    /// `degree + 1` (a vertex's per-round message work is proportional
    /// to its adjacency; the constant covers poll/step overhead).
    pub fn vertex_cost(&self, idx: usize) -> u64 {
        self.g.degree(NodeId::from_index(idx)) as u64 + 1
    }

    /// The contiguous shard boundaries [`Simulator::run_parallel`] will
    /// use for an explicit `threads` count: the cost-balanced partition
    /// of [`pga_runtime::balanced_partition`] over
    /// [`Simulator::vertex_cost`]. Exposed so benches and tests can
    /// inspect per-shard load; boundaries never affect outputs, only
    /// wall-clock balance.
    pub fn shard_boundaries(&self, threads: usize) -> Vec<usize> {
        let costs: Vec<u64> = (0..self.g.num_nodes())
            .map(|i| self.vertex_cost(i))
            .collect();
        pga_runtime::balanced_partition(&costs, threads)
    }

    fn ctx(&self, id: NodeId, round: usize) -> Ctx<'_> {
        Ctx {
            id,
            n: self.g.num_nodes(),
            id_bits: id_bits(self.g.num_nodes()),
            graph_neighbors: self.g.neighbors(id),
            round,
            topology: self.topology,
            bandwidth_bits: self.bandwidth_bits,
        }
    }

    fn kernel_config(&self) -> KernelConfig {
        KernelConfig {
            max_rounds: self.max_rounds,
            scheduling: self.scheduling,
        }
    }

    fn model<A: Algorithm>(&self) -> CongestModel<'_, 'g, A> {
        CongestModel {
            sim: self,
            codec: None,
            _algorithm: std::marker::PhantomData,
        }
    }

    fn model_codec<A>(&self) -> CongestModel<'_, 'g, A, <A::Msg as MsgCodec>::Word>
    where
        A: Algorithm,
        A::Msg: MsgCodec,
    {
        CongestModel {
            sim: self,
            codec: Some(CodecFns::new()),
            _algorithm: std::marker::PhantomData,
        }
    }

    fn assert_node_count<T>(&self, nodes: &[T]) {
        assert_eq!(
            nodes.len(),
            self.g.num_nodes(),
            "one algorithm state per vertex required"
        );
    }

    /// Runs `nodes` (one algorithm state per vertex, indexed by id) to
    /// completion on the single-threaded reference engine.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if a node violates the communication model
    /// or the round budget is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the graph size.
    pub fn run<A: Algorithm>(&self, nodes: Vec<A>) -> Result<Report<A::Output>, SimError> {
        self.assert_node_count(&nodes);
        Ok(pga_runtime::run_sequential(&self.model::<A>(), nodes, self.kernel_config())?.into())
    }

    /// Runs `nodes` to completion on the sharded multi-threaded engine.
    ///
    /// Vertices are partitioned into at most `threads` contiguous
    /// shards with degree-balanced boundaries
    /// ([`Simulator::shard_boundaries`]) driven by the shared
    /// [`pga_runtime`] kernel and its counting-sort exchange; outputs,
    /// [`Metrics`] (profile included) and errors all match
    /// [`Simulator::run`] exactly, for every thread count (see
    /// [`pga_runtime::run_sharded`] for why the shard-order scatter
    /// needs no sorting). A model
    /// violation aborts with the first offending node's error, though
    /// `round` callbacks of higher-id nodes in other shards may already
    /// have executed by then.
    ///
    /// `threads == 0` selects one shard per available CPU. With one
    /// thread (or fewer than two nodes per shard) the call falls through
    /// to the sequential engine.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if a node violates the communication model
    /// or the round budget is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the graph size.
    pub fn run_parallel<A>(
        &self,
        nodes: Vec<A>,
        threads: usize,
    ) -> Result<Report<A::Output>, SimError>
    where
        A: Algorithm + Send,
        A::Msg: Send,
    {
        self.assert_node_count(&nodes);
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            threads
        };
        Ok(
            pga_runtime::run_sharded(&self.model::<A>(), nodes, threads, self.kernel_config())?
                .into(),
        )
    }

    /// Runs `nodes` on the engine selected by `engine`.
    ///
    /// Both engines produce bit-identical [`Report`]s, so callers can be
    /// ported to this entry point and choose the engine per run (the
    /// experiment binaries default to [`Engine::parallel_auto`]).
    ///
    /// With the auto-threaded parallel engine (`threads == 0`), instances
    /// below [`PARALLEL_MIN_NODES`] vertices run on the sequential engine
    /// instead: the workers are spawned per round, and below that size
    /// the per-round shard work is smaller than the spawn cost, so
    /// parallelism would only add overhead. An explicit thread count
    /// always gets the parallel executor (the determinism tests rely on
    /// that).
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if a node violates the communication model
    /// or the round budget is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the graph size.
    pub fn run_with<A>(&self, nodes: Vec<A>, engine: Engine) -> Result<Report<A::Output>, SimError>
    where
        A: Algorithm + Send,
        A::Msg: Send,
    {
        match engine {
            Engine::Sequential => self.run(nodes),
            Engine::Parallel { threads: 0 } if self.g.num_nodes() < PARALLEL_MIN_NODES => {
                self.run(nodes)
            }
            Engine::Parallel { threads } => self.run_parallel(nodes, threads),
        }
    }

    /// Runs `nodes` on the sharded multi-threaded engine with the
    /// message codec of `A::Msg` installed: the kernel exchange moves
    /// packed [`MsgCodec::Word`]s through its flat CSR inbox arenas
    /// instead of cloned message enums.
    ///
    /// Validation ([`check_message`]) and bit charging still run on the
    /// decoded messages, so outputs, [`Metrics`] (congestion profile
    /// included) and errors are bit-identical to [`Simulator::run`] and
    /// [`Simulator::run_parallel`] at every thread count. Debug builds
    /// additionally assert that [`MsgCodec::encoded_bits`] agrees with
    /// [`MsgSize::size_bits`](pga_runtime::MsgCost::size_bits) for every
    /// packed message.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if a node violates the communication model
    /// or the round budget is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the graph size.
    pub fn run_parallel_codec<A>(
        &self,
        nodes: Vec<A>,
        threads: usize,
    ) -> Result<Report<A::Output>, SimError>
    where
        A: Algorithm + Send,
        A::Msg: MsgCodec + Send,
    {
        self.assert_node_count(&nodes);
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            threads
        };
        Ok(pga_runtime::run_sharded(
            &self.model_codec::<A>(),
            nodes,
            threads,
            self.kernel_config(),
        )?
        .into())
    }

    /// Runs `nodes` under a [`RunConfig`]: engine, scheduling policy and
    /// codec selection in one value.
    ///
    /// The configured [`RunConfig::scheduling`] overrides this
    /// simulator's policy for the run. Engine dispatch matches
    /// [`Simulator::run_with`] (including the
    /// [`PARALLEL_MIN_NODES`] auto-threads fallback); with
    /// [`RunConfig::codec`] on, parallel runs go through
    /// [`Simulator::run_parallel_codec`]. The sequential engine always
    /// uses the enum plane — packing lives in the sharded exchange.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if a node violates the communication model
    /// or the round budget is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the graph size.
    pub fn run_cfg<A>(&self, nodes: Vec<A>, cfg: &RunConfig) -> Result<Report<A::Output>, SimError>
    where
        A: Algorithm + Send,
        A::Msg: MsgCodec + Send,
    {
        match JsonlProbe::from_run_config(cfg, "congest") {
            Some(probe) => self.run_cfg_probed(nodes, cfg, &probe),
            None => self.run_cfg_probed(nodes, cfg, &NoopProbe),
        }
    }

    /// [`Simulator::run_cfg`] with an explicit [`Probe`] attached.
    ///
    /// The probe observes every executor this dispatch can select —
    /// sequential, sharded (either plane), or adversarial — without
    /// changing outputs, [`Metrics`], or errors (*observer neutrality*;
    /// see [`pga_runtime::probe`]). Passing [`NoopProbe`] is exactly the
    /// un-probed run: the kernel monomorphizes every callback and timer
    /// away.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if a node violates the communication model
    /// or the round budget is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the graph size.
    pub fn run_cfg_probed<A, P>(
        &self,
        nodes: Vec<A>,
        cfg: &RunConfig,
        probe: &P,
    ) -> Result<Report<A::Output>, SimError>
    where
        A: Algorithm + Send,
        A::Msg: MsgCodec + Send,
        P: Probe,
    {
        self.assert_node_count(&nodes);
        let mut sim = *self;
        sim.scheduling = cfg.scheduling;
        if let Some(max) = cfg.max_rounds {
            sim.max_rounds = max;
        }
        if let Some(rel) = cfg.reliability {
            // The reliable (ARQ) executor subsumes the adversary: with
            // no fault armed it runs over a never-interfering one.
            let adversary = SeededAdversary::new(cfg.fault.unwrap_or_else(FaultSpec::none));
            let threads = sim.fault_threads(cfg.engine);
            #[allow(clippy::disallowed_methods)] // the sanctioned wrapper
            let run: Result<Report<A::Output>, SimError> = if cfg.codec {
                pga_runtime::arq::run_reliable_probed(
                    &sim.model_codec::<A>(),
                    nodes,
                    threads,
                    sim.kernel_config(),
                    rel,
                    &adversary,
                    probe,
                )
                .map(Into::into)
            } else {
                pga_runtime::arq::run_reliable_probed(
                    &sim.model::<A>(),
                    nodes,
                    threads,
                    sim.kernel_config(),
                    rel,
                    &adversary,
                    probe,
                )
                .map(Into::into)
            };
            return run;
        }
        if let Some(spec) = cfg.fault {
            let adversary = SeededAdversary::new(spec);
            let threads = sim.fault_threads(cfg.engine);
            #[allow(clippy::disallowed_methods)] // the sanctioned wrapper
            let run: Result<Report<A::Output>, SimError> = if cfg.codec {
                pga_runtime::fault::run_faulty_probed(
                    &sim.model_codec::<A>(),
                    nodes,
                    threads,
                    sim.kernel_config(),
                    &adversary,
                    probe,
                )
                .map(Into::into)
            } else {
                pga_runtime::fault::run_faulty_probed(
                    &sim.model::<A>(),
                    nodes,
                    threads,
                    sim.kernel_config(),
                    &adversary,
                    probe,
                )
                .map(Into::into)
            };
            return run;
        }
        let sequential = |nodes: Vec<A>| -> Result<Report<A::Output>, SimError> {
            Ok(pga_runtime::run_sequential_probed(
                &sim.model::<A>(),
                nodes,
                sim.kernel_config(),
                probe,
            )?
            .into())
        };
        match cfg.engine {
            Engine::Sequential => sequential(nodes),
            Engine::Parallel { threads: 0 } if self.g.num_nodes() < PARALLEL_MIN_NODES => {
                sequential(nodes)
            }
            Engine::Parallel { threads } => {
                let threads = if threads == 0 {
                    std::thread::available_parallelism().map_or(1, |p| p.get())
                } else {
                    threads
                };
                if cfg.codec {
                    Ok(pga_runtime::run_sharded_probed(
                        &sim.model_codec::<A>(),
                        nodes,
                        threads,
                        sim.kernel_config(),
                        probe,
                    )?
                    .into())
                } else {
                    Ok(pga_runtime::run_sharded_probed(
                        &sim.model::<A>(),
                        nodes,
                        threads,
                        sim.kernel_config(),
                        probe,
                    )?
                    .into())
                }
            }
        }
    }

    /// [`Simulator::run_cfg`] for algorithms whose message type has no
    /// [`MsgCodec`] impl: [`RunConfig::codec`] is ignored and the run
    /// always uses the enum plane.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if a node violates the communication model
    /// or the round budget is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the graph size.
    pub fn run_cfg_plain<A>(
        &self,
        nodes: Vec<A>,
        cfg: &RunConfig,
    ) -> Result<Report<A::Output>, SimError>
    where
        A: Algorithm + Send,
        A::Msg: Send,
    {
        match JsonlProbe::from_run_config(cfg, "congest") {
            Some(probe) => self.run_cfg_plain_probed(nodes, cfg, &probe),
            None => self.run_cfg_plain_probed(nodes, cfg, &NoopProbe),
        }
    }

    /// [`Simulator::run_cfg_plain`] with an explicit [`Probe`] attached
    /// (enum plane only; see [`Simulator::run_cfg_probed`] for the
    /// neutrality contract).
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if a node violates the communication model
    /// or the round budget is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the graph size.
    pub fn run_cfg_plain_probed<A, P>(
        &self,
        nodes: Vec<A>,
        cfg: &RunConfig,
        probe: &P,
    ) -> Result<Report<A::Output>, SimError>
    where
        A: Algorithm + Send,
        A::Msg: Send,
        P: Probe,
    {
        self.assert_node_count(&nodes);
        let mut sim = *self;
        sim.scheduling = cfg.scheduling;
        if let Some(max) = cfg.max_rounds {
            sim.max_rounds = max;
        }
        if let Some(rel) = cfg.reliability {
            let adversary = SeededAdversary::new(cfg.fault.unwrap_or_else(FaultSpec::none));
            #[allow(clippy::disallowed_methods)] // the sanctioned wrapper
            return Ok(pga_runtime::arq::run_reliable_probed(
                &sim.model::<A>(),
                nodes,
                sim.fault_threads(cfg.engine),
                sim.kernel_config(),
                rel,
                &adversary,
                probe,
            )?
            .into());
        }
        if let Some(spec) = cfg.fault {
            let adversary = SeededAdversary::new(spec);
            #[allow(clippy::disallowed_methods)] // the sanctioned wrapper
            return Ok(pga_runtime::fault::run_faulty_probed(
                &sim.model::<A>(),
                nodes,
                sim.fault_threads(cfg.engine),
                sim.kernel_config(),
                &adversary,
                probe,
            )?
            .into());
        }
        let sequential = |nodes: Vec<A>| -> Result<Report<A::Output>, SimError> {
            Ok(pga_runtime::run_sequential_probed(
                &sim.model::<A>(),
                nodes,
                sim.kernel_config(),
                probe,
            )?
            .into())
        };
        match cfg.engine {
            Engine::Sequential => sequential(nodes),
            Engine::Parallel { threads: 0 } if self.g.num_nodes() < PARALLEL_MIN_NODES => {
                sequential(nodes)
            }
            Engine::Parallel { threads } => {
                let threads = if threads == 0 {
                    std::thread::available_parallelism().map_or(1, |p| p.get())
                } else {
                    threads
                };
                Ok(pga_runtime::run_sharded_probed(
                    &sim.model::<A>(),
                    nodes,
                    threads,
                    sim.kernel_config(),
                    probe,
                )?
                .into())
            }
        }
    }

    /// The thread count a fault run uses for `engine`: the adversarial
    /// executor has no separate sequential/sharded split, so the engine
    /// choice reduces to a thread count (with the same
    /// [`PARALLEL_MIN_NODES`] auto-threads fallback as the clean
    /// dispatch — and the same bit-identical results either way).
    fn fault_threads(&self, engine: Engine) -> usize {
        match engine {
            Engine::Sequential => 1,
            Engine::Parallel { threads: 0 } => {
                if self.g.num_nodes() < PARALLEL_MIN_NODES {
                    1
                } else {
                    std::thread::available_parallelism().map_or(1, |p| p.get())
                }
            }
            Engine::Parallel { threads } => threads,
        }
    }

    /// Runs `nodes` on the adversarial executor under an explicit
    /// [`Adversary`] (enum message plane).
    ///
    /// Fault decisions are pure functions of `(round, sender, seq)`, so
    /// the run is bit-identical for every `engine` choice, and an
    /// adversary that never interferes reproduces [`Simulator::run`]
    /// bit for bit. Most callers want [`Simulator::run_cfg`] with
    /// [`RunConfig::adversary`] instead; this entry point exists for
    /// custom [`Adversary`] implementations and replay tooling.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if a node violates the communication
    /// model or the round budget is exhausted (which adversarially
    /// starved runs routinely do — bound the budget via
    /// [`Simulator::with_max_rounds`] or [`RunConfig::max_rounds`]).
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the graph size.
    pub fn run_adversary<A>(
        &self,
        nodes: Vec<A>,
        engine: Engine,
        adversary: &dyn Adversary,
    ) -> Result<Report<A::Output>, SimError>
    where
        A: Algorithm + Send,
        A::Msg: Send,
    {
        self.assert_node_count(&nodes);
        #[allow(clippy::disallowed_methods)] // the sanctioned wrapper
        Ok(pga_runtime::fault::run_faulty(
            &self.model::<A>(),
            nodes,
            self.fault_threads(engine),
            self.kernel_config(),
            adversary,
        )?
        .into())
    }

    /// [`Simulator::run_adversary`] with the message codec of `A::Msg`
    /// installed: the adversarial executor moves packed
    /// [`MsgCodec::Word`]s, with fates decided on exactly the same
    /// `(round, sender, seq)` coordinates — both planes stay
    /// bit-identical under any adversary.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] like [`Simulator::run_adversary`].
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the graph size.
    pub fn run_adversary_codec<A>(
        &self,
        nodes: Vec<A>,
        engine: Engine,
        adversary: &dyn Adversary,
    ) -> Result<Report<A::Output>, SimError>
    where
        A: Algorithm + Send,
        A::Msg: MsgCodec + Send,
    {
        self.assert_node_count(&nodes);
        #[allow(clippy::disallowed_methods)] // the sanctioned wrapper
        Ok(pga_runtime::fault::run_faulty(
            &self.model_codec::<A>(),
            nodes,
            self.fault_threads(engine),
            self.kernel_config(),
            adversary,
        )?
        .into())
    }

    /// Runs `nodes` under `spec` while recording every inflicted fault,
    /// returning the report together with the [`FaultTrace`] that
    /// [`Simulator::run_replay`] re-executes bit for bit.
    ///
    /// Engine, scheduling, and round budget come from `cfg`;
    /// [`RunConfig::fault`] and [`RunConfig::codec`] are ignored (`spec`
    /// is explicit, and the recording run uses the enum plane — the
    /// planes are bit-identical, so the trace is valid for both).
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] like [`Simulator::run_adversary`].
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the graph size.
    pub fn run_traced<A>(
        &self,
        nodes: Vec<A>,
        spec: FaultSpec,
        cfg: &RunConfig,
    ) -> Result<(Report<A::Output>, FaultTrace), SimError>
    where
        A: Algorithm + Send,
        A::Msg: Send,
    {
        let mut sim = *self;
        sim.scheduling = cfg.scheduling;
        if let Some(max) = cfg.max_rounds {
            sim.max_rounds = max;
        }
        let n = self.g.num_nodes();
        let adversary = SeededAdversary::recording(spec);
        let report = sim.run_adversary(nodes, cfg.engine, &adversary)?;
        Ok((report, adversary.into_trace(n)))
    }

    /// Re-executes a recorded fault schedule: every coordinate in
    /// `trace` gets its recorded fate, everything else is delivered
    /// clean, so the run reproduces the recorded one bit for bit (same
    /// outputs, same [`Metrics`], at any engine/thread choice).
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] like [`Simulator::run_adversary`].
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the graph size.
    pub fn run_replay<A>(
        &self,
        nodes: Vec<A>,
        trace: &FaultTrace,
        cfg: &RunConfig,
    ) -> Result<Report<A::Output>, SimError>
    where
        A: Algorithm + Send,
        A::Msg: Send,
    {
        let mut sim = *self;
        sim.scheduling = cfg.scheduling;
        if let Some(max) = cfg.max_rounds {
            sim.max_rounds = max;
        }
        sim.run_adversary(nodes, cfg.engine, &TraceAdversary::new(trace))
    }
}
