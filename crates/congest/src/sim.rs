//! The synchronous round-based simulation engine.

use crate::Metrics;
use pga_graph::{Graph, NodeId};

/// Communication topology of a simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Messages travel only along edges of the input graph (the CONGEST
    /// model of Peleg).
    Congest,
    /// Any vertex may message any other vertex (the CONGESTED CLIQUE model
    /// of Lotker et al.); the input graph remains each node's local
    /// knowledge.
    CongestedClique,
}

/// Size accounting for messages.
///
/// `id_bits = ⌈log₂ n⌉` is passed in so message types can charge the
/// model-correct `O(log n)` bits for every node identifier they carry.
pub trait MsgSize {
    /// The size of this message in bits.
    fn size_bits(&self, id_bits: usize) -> usize;
}

/// Per-node view of the network, passed to every [`Algorithm`] callback.
#[derive(Debug)]
pub struct Ctx<'a> {
    /// This node's identifier.
    pub id: NodeId,
    /// Total number of nodes (globally known, as the paper assumes).
    pub n: usize,
    /// `⌈log₂ n⌉`, the number of bits of a node identifier.
    pub id_bits: usize,
    /// Neighbors of this node in the *input graph* `G` (sorted).
    pub graph_neighbors: &'a [NodeId],
    /// Current round number, starting at 0.
    pub round: usize,
    /// The communication topology.
    pub topology: Topology,
    /// The bandwidth `B` in bits available per directed edge per round.
    pub bandwidth_bits: usize,
}

impl Ctx<'_> {
    /// Whether this node may send a message to `to` in the current
    /// topology.
    pub fn can_send(&self, to: NodeId) -> bool {
        match self.topology {
            Topology::Congest => self.graph_neighbors.binary_search(&to).is_ok(),
            Topology::CongestedClique => to.index() < self.n && to != self.id,
        }
    }
}

/// A distributed algorithm, written as a per-node state machine.
///
/// The simulator calls [`Algorithm::round`] once per node per round (in
/// node-id order, though well-formed algorithms must not depend on that),
/// delivering the messages sent to this node in the previous round. The
/// run ends when every node reports [`Algorithm::is_done`] and no messages
/// are in flight.
pub trait Algorithm {
    /// Message type exchanged by this algorithm.
    type Msg: Clone + MsgSize;
    /// Per-node output produced at the end of the run.
    type Output;

    /// Executes one round: consume the inbox, return the outbox.
    ///
    /// The inbox contains `(sender, message)` pairs sorted by sender id.
    /// Each outbox entry `(to, msg)` must satisfy the topology
    /// ([`Ctx::can_send`]), at most one message per destination, each at
    /// most [`Ctx::bandwidth_bits`] bits — violations abort the run with a
    /// [`SimError`].
    fn round(&mut self, ctx: &Ctx, inbox: &[(NodeId, Self::Msg)]) -> Vec<(NodeId, Self::Msg)>;

    /// Whether this node has terminated (quiescent and output-ready).
    fn is_done(&self, ctx: &Ctx) -> bool;

    /// The node's final output.
    fn output(&self, ctx: &Ctx) -> Self::Output;
}

/// Result of a completed run.
#[derive(Debug)]
pub struct Report<O> {
    /// Output of every node, indexed by node id.
    pub outputs: Vec<O>,
    /// Communication metrics of the run.
    pub metrics: Metrics,
}

/// Errors that abort a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A node sent a message to a non-neighbor (CONGEST) or out-of-range
    /// destination.
    IllegalDestination {
        /// Sending node.
        from: NodeId,
        /// Intended destination.
        to: NodeId,
        /// Round in which the violation occurred.
        round: usize,
    },
    /// A node sent two messages to the same destination in one round.
    DuplicateMessage {
        /// Sending node.
        from: NodeId,
        /// Destination that received two messages.
        to: NodeId,
        /// Round in which the violation occurred.
        round: usize,
    },
    /// A message exceeded the bandwidth `B`.
    BandwidthExceeded {
        /// Sending node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
        /// Size of the offending message in bits.
        size_bits: usize,
        /// The bandwidth limit in bits.
        limit_bits: usize,
        /// Round in which the violation occurred.
        round: usize,
    },
    /// The round budget was exhausted before all nodes terminated.
    RoundLimitExceeded {
        /// The limit that was hit.
        limit: usize,
    },
    /// The algorithm's precondition on the input graph was violated
    /// (e.g. a spanning-tree-based phase requires a connected graph).
    PreconditionViolated {
        /// Human-readable description of the violated precondition.
        what: &'static str,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::IllegalDestination { from, to, round } => {
                write!(f, "round {round}: {from:?} sent to non-reachable {to:?}")
            }
            SimError::DuplicateMessage { from, to, round } => {
                write!(f, "round {round}: {from:?} sent two messages to {to:?}")
            }
            SimError::BandwidthExceeded {
                from,
                to,
                size_bits,
                limit_bits,
                round,
            } => write!(
                f,
                "round {round}: message {from:?} → {to:?} has {size_bits} bits > B = {limit_bits}"
            ),
            SimError::RoundLimitExceeded { limit } => {
                write!(f, "round limit {limit} exceeded without termination")
            }
            SimError::PreconditionViolated { what } => {
                write!(f, "algorithm precondition violated: {what}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Selects which round executor drives a run (see [`Simulator::run_with`]).
///
/// Both engines are **bit-identical**: for the same algorithm states they
/// produce the same outputs, the same [`Metrics`] (including the
/// per-round congestion profile), and the same [`SimError`] on model
/// violations, regardless of thread count. The sequential engine is the
/// reference oracle; the parallel engine exists to make large instances
/// run as fast as the hardware allows.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Engine {
    /// The single-threaded reference engine ([`Simulator::run`]).
    #[default]
    Sequential,
    /// The sharded multi-threaded engine ([`Simulator::run_parallel`]).
    Parallel {
        /// Number of worker shards; `0` means one per available CPU.
        threads: usize,
    },
}

impl Engine {
    /// The parallel engine with one shard per available CPU.
    pub fn parallel_auto() -> Self {
        Engine::Parallel { threads: 0 }
    }
}

/// The simulation driver.
///
/// Construct with [`Simulator::congest`] or [`Simulator::congested_clique`]
/// and tune with the builder-style setters.
pub struct Simulator<'g> {
    g: &'g Graph,
    topology: Topology,
    bandwidth_bits: usize,
    max_rounds: usize,
}

/// Validates one outgoing message against the communication model and
/// returns its size in bits.
///
/// Shared by both engines so their model enforcement (and the errors they
/// raise) cannot drift apart. Public so external executors that simulate
/// the CONGEST model on another substrate (the `pga-mpc` adapter) apply
/// the exact same checks and raise the exact same errors.
///
/// `seen` accumulates the destinations this node has already sent to in
/// the current round (for the one-message-per-destination rule); pass the
/// same vector across all of a node's messages in one round.
///
/// # Errors
///
/// Returns the same [`SimError`] the engines raise: an illegal
/// destination for the topology, a duplicate destination, or a message
/// larger than the bandwidth `B`.
pub fn check_message<M: MsgSize>(
    ctx: &Ctx,
    seen: &mut Vec<NodeId>,
    to: NodeId,
    msg: &M,
) -> Result<usize, SimError> {
    if !ctx.can_send(to) {
        return Err(SimError::IllegalDestination {
            from: ctx.id,
            to,
            round: ctx.round,
        });
    }
    if seen.contains(&to) {
        return Err(SimError::DuplicateMessage {
            from: ctx.id,
            to,
            round: ctx.round,
        });
    }
    seen.push(to);
    let size = msg.size_bits(ctx.id_bits);
    if size > ctx.bandwidth_bits {
        return Err(SimError::BandwidthExceeded {
            from: ctx.id,
            to,
            size_bits: size,
            limit_bits: ctx.bandwidth_bits,
            round: ctx.round,
        });
    }
    Ok(size)
}

/// One shard's bucket of routed messages: `(to, from, msg)` triples.
type Bucket<M> = Vec<(NodeId, NodeId, M)>;

/// What one shard produces for one round: outgoing messages bucketed by
/// destination shard, plus its share of the round's metrics.
struct ShardOutput<M> {
    /// `buckets[j]` holds `(to, from, msg)` for destinations in shard `j`,
    /// in ascending sender order (nodes are processed in id order).
    buckets: Vec<Bucket<M>>,
    messages: u64,
    bits: u64,
    max_bits: usize,
}

/// Default bandwidth: `16·⌈log₂ n⌉ + 64` bits.
///
/// The CONGEST model allows `B = O(log n)`; the constant is chosen so a
/// message can carry a small constant number of identifiers plus a tag and
/// a 64-bit numeric payload (used by the randomized estimator of Lemma 29).
pub fn default_bandwidth_bits(n: usize) -> usize {
    16 * id_bits(n) + 64
}

/// `⌈log₂ n⌉`, with a minimum of 1.
pub fn id_bits(n: usize) -> usize {
    if n <= 2 {
        1
    } else {
        (n - 1).ilog2() as usize + 1
    }
}

impl<'g> Simulator<'g> {
    /// A CONGEST simulator over the communication graph `g`.
    pub fn congest(g: &'g Graph) -> Self {
        Simulator {
            g,
            topology: Topology::Congest,
            bandwidth_bits: default_bandwidth_bits(g.num_nodes()),
            max_rounds: 1_000_000,
        }
    }

    /// A CONGESTED CLIQUE simulator with input graph `g`.
    pub fn congested_clique(g: &'g Graph) -> Self {
        Simulator {
            topology: Topology::CongestedClique,
            ..Simulator::congest(g)
        }
    }

    /// Overrides the per-edge bandwidth `B` (bits per message).
    pub fn with_bandwidth_bits(mut self, bits: usize) -> Self {
        self.bandwidth_bits = bits;
        self
    }

    /// Overrides the safety round budget (default one million).
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    fn ctx(&self, id: NodeId, round: usize) -> Ctx<'_> {
        Ctx {
            id,
            n: self.g.num_nodes(),
            id_bits: id_bits(self.g.num_nodes()),
            graph_neighbors: self.g.neighbors(id),
            round,
            topology: self.topology,
            bandwidth_bits: self.bandwidth_bits,
        }
    }

    /// Whether every node reports [`Algorithm::is_done`] at `round`.
    fn all_done<A: Algorithm>(&self, nodes: &[A], round: usize) -> bool {
        nodes.iter().enumerate().all(|(i, node)| {
            let ctx = self.ctx(NodeId::from_index(i), round);
            node.is_done(&ctx)
        })
    }

    /// Collects every node's final output.
    fn outputs<A: Algorithm>(&self, nodes: &[A], round: usize) -> Vec<A::Output> {
        nodes
            .iter()
            .enumerate()
            .map(|(i, node)| {
                let ctx = self.ctx(NodeId::from_index(i), round);
                node.output(&ctx)
            })
            .collect()
    }

    /// Runs `nodes` (one algorithm state per vertex, indexed by id) to
    /// completion on the single-threaded reference engine.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if a node violates the communication model
    /// or the round budget is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the graph size.
    pub fn run<A: Algorithm>(&self, mut nodes: Vec<A>) -> Result<Report<A::Output>, SimError> {
        let n = self.g.num_nodes();
        assert_eq!(nodes.len(), n, "one algorithm state per vertex required");
        let mut metrics = Metrics::default();
        let mut inboxes: Vec<Vec<(NodeId, A::Msg)>> = (0..n).map(|_| Vec::new()).collect();
        let mut round = 0;

        loop {
            // Termination: all done and no messages in flight.
            let in_flight = inboxes.iter().any(|ib| !ib.is_empty());
            if self.all_done(&nodes, round) && !in_flight {
                break;
            }
            if round >= self.max_rounds {
                return Err(SimError::RoundLimitExceeded {
                    limit: self.max_rounds,
                });
            }

            let mut next_inboxes: Vec<Vec<(NodeId, A::Msg)>> = (0..n).map(|_| Vec::new()).collect();
            let mut sent_any = false;
            let mut round_peak = 0usize;

            for i in 0..n {
                let id = NodeId::from_index(i);
                let ctx = self.ctx(id, round);
                let inbox = std::mem::take(&mut inboxes[i]);
                let outbox = nodes[i].round(&ctx, &inbox);
                let mut seen: Vec<NodeId> = Vec::with_capacity(outbox.len());
                for (to, msg) in outbox {
                    let size = check_message(&ctx, &mut seen, to, &msg)?;
                    metrics.messages += 1;
                    metrics.bits += size as u64;
                    metrics.max_message_bits = metrics.max_message_bits.max(size);
                    round_peak = round_peak.max(size);
                    next_inboxes[to.index()].push((id, msg));
                    sent_any = true;
                }
            }

            // Deterministic delivery order.
            for ib in &mut next_inboxes {
                ib.sort_by_key(|&(from, _)| from);
            }
            inboxes = next_inboxes;
            round += 1;
            metrics.rounds = round;
            metrics.congestion_profile.push(round_peak);

            // Fast-path termination check to avoid an extra empty round:
            // if nothing was sent and everyone is done, stop.
            if !sent_any && self.all_done(&nodes, round) {
                break;
            }
        }

        Ok(Report {
            outputs: self.outputs(&nodes, round),
            metrics,
        })
    }

    /// Runs `nodes` to completion on the sharded multi-threaded engine.
    ///
    /// Vertices are partitioned into `threads` contiguous shards; every
    /// round, each shard executes its nodes' [`Algorithm::round`] calls on
    /// its own worker thread into per-shard outboxes (bucketed by
    /// destination shard), then the buckets are exchanged and appended in
    /// shard order. Because shards cover ascending id ranges and each
    /// shard visits its nodes in id order, the concatenation is already
    /// sorted by sender — next round's inboxes are **bit-identical** to
    /// the sequential engine's without any sorting, for every thread
    /// count. Outputs, [`Metrics`] (profile included) and errors all
    /// match [`Simulator::run`] exactly; a model violation aborts with the
    /// first offending node's error, though `round` callbacks of
    /// higher-id nodes in other shards may already have executed by then.
    ///
    /// `threads == 0` selects one shard per available CPU. With one
    /// thread (or fewer than two nodes per shard) the call falls through
    /// to the sequential engine.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if a node violates the communication model
    /// or the round budget is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the graph size.
    pub fn run_parallel<A>(
        &self,
        mut nodes: Vec<A>,
        threads: usize,
    ) -> Result<Report<A::Output>, SimError>
    where
        A: Algorithm + Send,
        A::Msg: Send,
    {
        let n = self.g.num_nodes();
        assert_eq!(nodes.len(), n, "one algorithm state per vertex required");
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            threads
        };
        if threads <= 1 || n < 2 * threads {
            // Trivial shards: the sequential engine is the same function.
            return self.run(nodes);
        }
        let shard_size = n.div_ceil(threads);
        let num_shards = n.div_ceil(shard_size);

        let mut metrics = Metrics::default();
        let mut inboxes: Vec<Vec<(NodeId, A::Msg)>> = (0..n).map(|_| Vec::new()).collect();
        let mut round = 0;

        loop {
            let in_flight = inboxes.iter().any(|ib| !ib.is_empty());
            if self.all_done(&nodes, round) && !in_flight {
                break;
            }
            if round >= self.max_rounds {
                return Err(SimError::RoundLimitExceeded {
                    limit: self.max_rounds,
                });
            }

            // Phase A: every shard runs its nodes for this round.
            let shard_results: Vec<Result<ShardOutput<A::Msg>, SimError>> =
                std::thread::scope(|s| {
                    let handles: Vec<_> = nodes
                        .chunks_mut(shard_size)
                        .zip(inboxes.chunks_mut(shard_size))
                        .enumerate()
                        .map(|(si, (shard_nodes, shard_inboxes))| {
                            s.spawn(move || {
                                self.run_shard_round(
                                    si * shard_size,
                                    shard_nodes,
                                    shard_inboxes,
                                    round,
                                    shard_size,
                                    num_shards,
                                )
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                        .collect()
                });

            // Shard 0 holds the lowest ids and each shard stops at its
            // first violation, so taking the first error in shard order
            // reproduces the sequential engine's error exactly.
            let mut yields = Vec::with_capacity(num_shards);
            for r in shard_results {
                yields.push(r?);
            }

            let mut sent_any = false;
            let mut round_peak = 0usize;
            for y in &yields {
                metrics.messages += y.messages;
                metrics.bits += y.bits;
                round_peak = round_peak.max(y.max_bits);
                sent_any |= y.messages > 0;
            }
            metrics.max_message_bits = metrics.max_message_bits.max(round_peak);

            // Phase B: deterministic exchange. Transpose the per-shard
            // buckets into per-destination-shard columns, then let each
            // destination shard append its column in shard order.
            let mut columns: Vec<Vec<Bucket<A::Msg>>> = (0..num_shards)
                .map(|_| Vec::with_capacity(num_shards))
                .collect();
            for y in yields {
                for (j, bucket) in y.buckets.into_iter().enumerate() {
                    columns[j].push(bucket);
                }
            }
            let mut next_inboxes: Vec<Vec<(NodeId, A::Msg)>> = (0..n).map(|_| Vec::new()).collect();
            std::thread::scope(|s| {
                for (j, (column, dst)) in columns
                    .into_iter()
                    .zip(next_inboxes.chunks_mut(shard_size))
                    .enumerate()
                {
                    s.spawn(move || {
                        let base = j * shard_size;
                        for bucket in column {
                            for (to, from, msg) in bucket {
                                dst[to.index() - base].push((from, msg));
                            }
                        }
                    });
                }
            });
            inboxes = next_inboxes;
            round += 1;
            metrics.rounds = round;
            metrics.congestion_profile.push(round_peak);

            if !sent_any && self.all_done(&nodes, round) {
                break;
            }
        }

        Ok(Report {
            outputs: self.outputs(&nodes, round),
            metrics,
        })
    }

    /// Executes one round for the shard whose first vertex is `base`.
    fn run_shard_round<A: Algorithm>(
        &self,
        base: usize,
        shard_nodes: &mut [A],
        shard_inboxes: &mut [Vec<(NodeId, A::Msg)>],
        round: usize,
        shard_size: usize,
        num_shards: usize,
    ) -> Result<ShardOutput<A::Msg>, SimError> {
        let mut out = ShardOutput {
            buckets: (0..num_shards).map(|_| Vec::new()).collect(),
            messages: 0,
            bits: 0,
            max_bits: 0,
        };
        for (k, node) in shard_nodes.iter_mut().enumerate() {
            let id = NodeId::from_index(base + k);
            let ctx = self.ctx(id, round);
            let inbox = std::mem::take(&mut shard_inboxes[k]);
            let outbox = node.round(&ctx, &inbox);
            let mut seen: Vec<NodeId> = Vec::with_capacity(outbox.len());
            for (to, msg) in outbox {
                let size = check_message(&ctx, &mut seen, to, &msg)?;
                out.messages += 1;
                out.bits += size as u64;
                out.max_bits = out.max_bits.max(size);
                out.buckets[to.index() / shard_size].push((to, id, msg));
            }
        }
        Ok(out)
    }

    /// Runs `nodes` on the engine selected by `engine`.
    ///
    /// Both engines produce bit-identical [`Report`]s, so callers can be
    /// ported to this entry point and choose the engine per run (the
    /// experiment binaries default to [`Engine::parallel_auto`]).
    ///
    /// With the auto-threaded parallel engine (`threads == 0`), instances
    /// below [`PARALLEL_MIN_NODES`] vertices run on the sequential engine
    /// instead: the workers are spawned per round, and below that size
    /// the per-round shard work is smaller than the spawn cost, so
    /// parallelism would only add overhead. An explicit thread count
    /// always gets the parallel executor (the determinism tests rely on
    /// that).
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if a node violates the communication model
    /// or the round budget is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the graph size.
    pub fn run_with<A>(&self, nodes: Vec<A>, engine: Engine) -> Result<Report<A::Output>, SimError>
    where
        A: Algorithm + Send,
        A::Msg: Send,
    {
        match engine {
            Engine::Sequential => self.run(nodes),
            Engine::Parallel { threads: 0 } if self.g.num_nodes() < PARALLEL_MIN_NODES => {
                self.run(nodes)
            }
            Engine::Parallel { threads } => self.run_parallel(nodes, threads),
        }
    }
}

/// Below this vertex count, [`Engine::parallel_auto`] (threads = 0) falls
/// back to the sequential engine: worker threads are spawned per round,
/// and on small instances that fixed cost exceeds the per-round compute.
/// Explicit thread counts are always honored.
pub const PARALLEL_MIN_NODES: usize = 1024;

#[cfg(test)]
mod tests {
    use super::*;
    use pga_graph::generators;

    #[derive(Clone)]
    struct U32Msg(u32);
    impl MsgSize for U32Msg {
        fn size_bits(&self, id_bits: usize) -> usize {
            id_bits
        }
    }

    /// Every node floods the max id it has seen; outputs it.
    struct FloodMax {
        best: u32,
        changed: bool,
        quiet: bool,
    }

    impl FloodMax {
        fn new(i: usize) -> Self {
            FloodMax {
                best: i as u32,
                changed: false,
                quiet: false,
            }
        }
    }

    impl Algorithm for FloodMax {
        type Msg = U32Msg;
        type Output = u32;
        fn round(&mut self, ctx: &Ctx, inbox: &[(NodeId, U32Msg)]) -> Vec<(NodeId, U32Msg)> {
            for (_, m) in inbox {
                if m.0 > self.best {
                    self.best = m.0;
                    self.changed = true;
                }
            }
            let send = ctx.round == 0 || self.changed;
            self.changed = false;
            self.quiet = !send;
            if send {
                ctx.graph_neighbors
                    .iter()
                    .map(|&v| (v, U32Msg(self.best)))
                    .collect()
            } else {
                Vec::new()
            }
        }
        fn is_done(&self, _ctx: &Ctx) -> bool {
            self.quiet
        }
        fn output(&self, _ctx: &Ctx) -> u32 {
            self.best
        }
    }

    #[test]
    fn flood_max_on_path() {
        let g = generators::path(10);
        let report = Simulator::congest(&g)
            .run((0..10).map(FloodMax::new).collect())
            .unwrap();
        assert!(report.outputs.iter().all(|&b| b == 9));
        // Max id must travel 9 hops: at least 9 rounds.
        assert!(report.metrics.rounds >= 9, "{}", report.metrics.rounds);
        assert!(report.metrics.messages > 0);
    }

    #[test]
    fn flood_max_on_clique_topology_one_hop() {
        let g = generators::path(10); // input graph is a path...
        struct Shout {
            best: u32,
            done: bool,
        }
        impl Algorithm for Shout {
            type Msg = U32Msg;
            type Output = u32;
            fn round(&mut self, ctx: &Ctx, inbox: &[(NodeId, U32Msg)]) -> Vec<(NodeId, U32Msg)> {
                for (_, m) in inbox {
                    self.best = self.best.max(m.0);
                }
                if ctx.round == 0 {
                    // ...but the clique topology lets everyone shout once.
                    (0..ctx.n)
                        .filter(|&j| j != ctx.id.index())
                        .map(|j| (NodeId::from_index(j), U32Msg(self.best)))
                        .collect()
                } else {
                    self.done = true;
                    Vec::new()
                }
            }
            fn is_done(&self, _ctx: &Ctx) -> bool {
                self.done
            }
            fn output(&self, _ctx: &Ctx) -> u32 {
                self.best
            }
        }
        let report = Simulator::congested_clique(&g)
            .run(
                (0..10)
                    .map(|i| Shout {
                        best: i as u32,
                        done: false,
                    })
                    .collect(),
            )
            .unwrap();
        assert!(report.outputs.iter().all(|&b| b == 9));
        assert!(report.metrics.rounds <= 3);
    }

    #[test]
    fn illegal_destination_congest() {
        let g = generators::path(4);
        struct Bad;
        impl Algorithm for Bad {
            type Msg = U32Msg;
            type Output = ();
            fn round(&mut self, ctx: &Ctx, _inbox: &[(NodeId, U32Msg)]) -> Vec<(NodeId, U32Msg)> {
                if ctx.id == NodeId(0) && ctx.round == 0 {
                    vec![(NodeId(3), U32Msg(0))] // not a path-neighbor
                } else {
                    Vec::new()
                }
            }
            fn is_done(&self, _ctx: &Ctx) -> bool {
                false
            }
            fn output(&self, _ctx: &Ctx) {}
        }
        let err = Simulator::congest(&g)
            .run(vec![Bad, Bad, Bad, Bad])
            .unwrap_err();
        assert!(matches!(err, SimError::IllegalDestination { .. }));
    }

    #[test]
    fn bandwidth_violation() {
        let g = generators::path(2);
        #[derive(Clone)]
        struct Huge;
        impl MsgSize for Huge {
            fn size_bits(&self, _id_bits: usize) -> usize {
                1 << 20
            }
        }
        struct Sender;
        impl Algorithm for Sender {
            type Msg = Huge;
            type Output = ();
            fn round(&mut self, ctx: &Ctx, _inbox: &[(NodeId, Huge)]) -> Vec<(NodeId, Huge)> {
                if ctx.round == 0 && ctx.id == NodeId(0) {
                    vec![(NodeId(1), Huge)]
                } else {
                    Vec::new()
                }
            }
            fn is_done(&self, _ctx: &Ctx) -> bool {
                false
            }
            fn output(&self, _ctx: &Ctx) {}
        }
        let err = Simulator::congest(&g)
            .run(vec![Sender, Sender])
            .unwrap_err();
        assert!(matches!(err, SimError::BandwidthExceeded { .. }));
    }

    #[test]
    fn duplicate_message_rejected() {
        let g = generators::path(2);
        struct Dup;
        impl Algorithm for Dup {
            type Msg = U32Msg;
            type Output = ();
            fn round(&mut self, ctx: &Ctx, _inbox: &[(NodeId, U32Msg)]) -> Vec<(NodeId, U32Msg)> {
                if ctx.round == 0 && ctx.id == NodeId(0) {
                    vec![(NodeId(1), U32Msg(1)), (NodeId(1), U32Msg(2))]
                } else {
                    Vec::new()
                }
            }
            fn is_done(&self, _ctx: &Ctx) -> bool {
                false
            }
            fn output(&self, _ctx: &Ctx) {}
        }
        let err = Simulator::congest(&g).run(vec![Dup, Dup]).unwrap_err();
        assert!(matches!(err, SimError::DuplicateMessage { .. }));
    }

    #[test]
    fn round_limit() {
        let g = generators::path(2);
        struct Chatter;
        impl Algorithm for Chatter {
            type Msg = U32Msg;
            type Output = ();
            fn round(&mut self, ctx: &Ctx, _inbox: &[(NodeId, U32Msg)]) -> Vec<(NodeId, U32Msg)> {
                ctx.graph_neighbors
                    .iter()
                    .map(|&v| (v, U32Msg(0)))
                    .collect()
            }
            fn is_done(&self, _ctx: &Ctx) -> bool {
                false
            }
            fn output(&self, _ctx: &Ctx) {}
        }
        let err = Simulator::congest(&g)
            .with_max_rounds(10)
            .run(vec![Chatter, Chatter])
            .unwrap_err();
        assert_eq!(err, SimError::RoundLimitExceeded { limit: 10 });
    }

    #[test]
    fn parallel_matches_sequential_bit_identically() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(12);
        let graphs = [
            generators::path(10),
            generators::grid(5, 5),
            generators::star(17),
            generators::connected_gnm(64, 200, &mut rng),
        ];
        for g in &graphs {
            let n = g.num_nodes();
            let seq = Simulator::congest(g)
                .run((0..n).map(FloodMax::new).collect())
                .unwrap();
            for threads in [1, 2, 3, 4, 8] {
                let par = Simulator::congest(g)
                    .run_parallel((0..n).map(FloodMax::new).collect(), threads)
                    .unwrap();
                assert_eq!(par.outputs, seq.outputs, "outputs, t={threads}");
                assert_eq!(par.metrics, seq.metrics, "metrics, t={threads}");
            }
        }
    }

    #[test]
    fn parallel_congested_clique_matches() {
        // Clique topology: every destination shard receives from every
        // sender shard, exercising the full exchange matrix.
        let g = generators::path(12);
        struct Shout(u32, bool);
        impl Algorithm for Shout {
            type Msg = U32Msg;
            type Output = u32;
            fn round(&mut self, ctx: &Ctx, inbox: &[(NodeId, U32Msg)]) -> Vec<(NodeId, U32Msg)> {
                for (_, m) in inbox {
                    self.0 = self.0.max(m.0);
                }
                if ctx.round == 0 {
                    (0..ctx.n)
                        .filter(|&j| j != ctx.id.index())
                        .map(|j| (NodeId::from_index(j), U32Msg(self.0)))
                        .collect()
                } else {
                    self.1 = true;
                    Vec::new()
                }
            }
            fn is_done(&self, _ctx: &Ctx) -> bool {
                self.1
            }
            fn output(&self, _ctx: &Ctx) -> u32 {
                self.0
            }
        }
        let mk = || (0..12).map(|i| Shout(i as u32, false)).collect();
        let seq = Simulator::congested_clique(&g).run(mk()).unwrap();
        for threads in [2, 4, 6] {
            let par = Simulator::congested_clique(&g)
                .run_parallel(mk(), threads)
                .unwrap();
            assert_eq!(par.outputs, seq.outputs);
            assert_eq!(par.metrics, seq.metrics);
        }
    }

    #[test]
    fn parallel_errors_match_sequential() {
        // An illegal send from a high id: both engines must report the
        // same error even though the sender sits in the last shard.
        let g = generators::path(8);
        struct Bad;
        impl Algorithm for Bad {
            type Msg = U32Msg;
            type Output = ();
            fn round(&mut self, ctx: &Ctx, _inbox: &[(NodeId, U32Msg)]) -> Vec<(NodeId, U32Msg)> {
                if ctx.id == NodeId(6) && ctx.round == 0 {
                    vec![(NodeId(0), U32Msg(0))] // not a path-neighbor
                } else {
                    Vec::new()
                }
            }
            fn is_done(&self, _ctx: &Ctx) -> bool {
                false
            }
            fn output(&self, _ctx: &Ctx) {}
        }
        let seq = Simulator::congest(&g)
            .run((0..8).map(|_| Bad).collect::<Vec<_>>())
            .unwrap_err();
        for threads in [2, 4] {
            let par = Simulator::congest(&g)
                .run_parallel((0..8).map(|_| Bad).collect::<Vec<_>>(), threads)
                .unwrap_err();
            assert_eq!(par, seq, "t={threads}");
        }
        assert_eq!(
            seq,
            SimError::IllegalDestination {
                from: NodeId(6),
                to: NodeId(0),
                round: 0
            }
        );
    }

    #[test]
    fn parallel_round_limit_matches() {
        let g = generators::path(8);
        struct Chatter;
        impl Algorithm for Chatter {
            type Msg = U32Msg;
            type Output = ();
            fn round(&mut self, ctx: &Ctx, _inbox: &[(NodeId, U32Msg)]) -> Vec<(NodeId, U32Msg)> {
                ctx.graph_neighbors
                    .iter()
                    .map(|&v| (v, U32Msg(0)))
                    .collect()
            }
            fn is_done(&self, _ctx: &Ctx) -> bool {
                false
            }
            fn output(&self, _ctx: &Ctx) {}
        }
        let err = Simulator::congest(&g)
            .with_max_rounds(7)
            .run_parallel((0..8).map(|_| Chatter).collect::<Vec<_>>(), 4)
            .unwrap_err();
        assert_eq!(err, SimError::RoundLimitExceeded { limit: 7 });
    }

    #[test]
    fn run_with_dispatches_both_engines() {
        let g = generators::path(10);
        for engine in [
            Engine::Sequential,
            Engine::Parallel { threads: 3 },
            Engine::parallel_auto(),
        ] {
            let report = Simulator::congest(&g)
                .run_with((0..10).map(FloodMax::new).collect(), engine)
                .unwrap();
            assert!(report.outputs.iter().all(|&b| b == 9), "{engine:?}");
        }
    }

    #[test]
    fn congestion_profile_invariants() {
        let g = generators::grid(4, 5);
        let report = Simulator::congest(&g)
            .run((0..20).map(FloodMax::new).collect())
            .unwrap();
        let m = &report.metrics;
        assert_eq!(m.congestion_profile.len(), m.rounds);
        // One message per directed edge per round, so the run-wide peak
        // equals the largest message ever sent.
        assert_eq!(m.peak_edge_bits(), m.max_message_bits);
        assert!(m
            .congestion_profile
            .iter()
            .all(|&b| b <= m.max_message_bits));
    }

    #[test]
    fn id_bits_values() {
        assert_eq!(id_bits(2), 1);
        assert_eq!(id_bits(3), 2);
        assert_eq!(id_bits(4), 2);
        assert_eq!(id_bits(5), 3);
        assert_eq!(id_bits(1024), 10);
        assert_eq!(id_bits(1025), 11);
    }

    #[test]
    fn zero_round_algorithm() {
        // A node set that is immediately done runs 0 rounds and sends
        // nothing (Lemma 6's trivial approximation is such an algorithm).
        let g = generators::path(3);
        struct Lazy;
        impl Algorithm for Lazy {
            type Msg = U32Msg;
            type Output = bool;
            fn round(&mut self, _ctx: &Ctx, _inbox: &[(NodeId, U32Msg)]) -> Vec<(NodeId, U32Msg)> {
                Vec::new()
            }
            fn is_done(&self, _ctx: &Ctx) -> bool {
                true
            }
            fn output(&self, _ctx: &Ctx) -> bool {
                true
            }
        }
        let report = Simulator::congest(&g).run(vec![Lazy, Lazy, Lazy]).unwrap();
        assert_eq!(report.metrics.messages, 0);
        assert!(report.outputs.iter().all(|&b| b));
    }
}
