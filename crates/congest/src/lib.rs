//! A synchronous message-passing simulator for the **CONGEST** and
//! **CONGESTED CLIQUE** models.
//!
//! The PODC 2020 paper measures algorithms by the number of synchronous
//! rounds in which every vertex may send one `O(log n)`-bit message across
//! each incident communication link. This crate simulates exactly that
//! model and *enforces* its constraints:
//!
//! * one message per directed edge per round,
//! * every message at most `B` bits (configurable, default `Θ(log n)`),
//! * in [`Topology::Congest`] messages travel only along edges of the
//!   input graph; in [`Topology::CongestedClique`] any vertex may message
//!   any other, while the *input* graph is still available to each node as
//!   its local knowledge.
//!
//! Algorithms implement the [`Algorithm`] trait as explicit per-node state
//! machines; the [`Simulator`] drives them round by round, deterministic in
//! node ids, and reports [`Metrics`] (rounds, messages, bits, and the
//! per-round congestion profile).
//!
//! Two round executors are provided and are **bit-identical** for every
//! thread count: the single-threaded reference engine ([`Simulator::run`])
//! and the sharded multi-threaded engine ([`Simulator::run_parallel`]),
//! which exploits the fact that rounds are barriers while nodes within a
//! round are embarrassingly parallel. Select one per run with
//! [`Simulator::run_with`] and [`Engine`].
//!
//! # Example: flooding the maximum id (leader election)
//!
//! ```
//! use pga_congest::{Algorithm, Ctx, MsgSize, Simulator, Topology};
//! use pga_graph::{generators, NodeId};
//!
//! #[derive(Clone)]
//! struct Max(u32);
//! impl MsgSize for Max {
//!     fn size_bits(&self, id_bits: usize) -> usize { id_bits }
//! }
//!
//! struct Flood { best: u32, changed: bool, quiet: bool }
//! impl Algorithm for Flood {
//!     type Msg = Max;
//!     type Output = u32;
//!     fn round(&mut self, ctx: &Ctx, inbox: &[(NodeId, Max)]) -> Vec<(NodeId, Max)> {
//!         for (_, m) in inbox { if m.0 > self.best { self.best = m.0; self.changed = true; } }
//!         let send = ctx.round == 0 || self.changed;
//!         self.changed = false;
//!         self.quiet = !send;
//!         if send {
//!             ctx.graph_neighbors.iter().map(|&v| (v, Max(self.best))).collect()
//!         } else { Vec::new() }
//!     }
//!     fn is_done(&self, _ctx: &Ctx) -> bool { self.quiet }
//!     fn output(&self, _ctx: &Ctx) -> u32 { self.best }
//! }
//!
//! let g = generators::path(8);
//! let sim = Simulator::congest(&g);
//! let nodes = (0..8).map(|i| Flood { best: i, changed: false, quiet: false }).collect();
//! let report = sim.run(nodes).unwrap();
//! assert!(report.outputs.iter().all(|&b| b == 7));
//! // Information travels one hop per round: diameter rounds needed.
//! assert!(report.metrics.rounds >= 7);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod metrics;
mod sim;

pub mod bmm;
pub mod primitives;

pub use bmm::{clique_bmm, default_cap_words, BmmBlock, CliqueBmm, G2Row};
pub use metrics::Metrics;
/// Re-exported so engine consumers (benches, tests) can inspect the
/// cost-balanced shard boundaries the parallel engine draws.
pub use pga_runtime::balanced_partition;
/// Fault-injection vocabulary of the adversarial execution plane,
/// re-exported so algorithm crates and benches can build [`FaultSpec`]s
/// and replay [`FaultTrace`]s without depending on `pga-runtime`
/// directly.
pub use pga_runtime::{
    Adversary, Fate, FaultEvent, FaultSpec, FaultStats, FaultTrace, ReliabilitySpec,
    SeededAdversary, TraceAdversary,
};
/// Runtime-level message-plane vocabulary, re-exported so algorithm
/// crates can implement packed codecs and build [`RunConfig`]s without
/// depending on `pga-runtime` directly.
pub use pga_runtime::{CodecFns, G2Prep, MsgCodec, MsgCost, RunConfig};
/// Telemetry-plane vocabulary ([`Probe`] and its stock
/// implementations), re-exported so benches and tests can attach probes
/// to [`Simulator::run_cfg_probed`] without depending on `pga-runtime`
/// directly.
pub use pga_runtime::{
    JsonlProbe, NoopProbe, Probe, ProbeMode, RecordingProbe, RoundObs, RoundTelemetry,
    RunTelemetry, ShardTelemetry, SizeHist,
};
pub use sim::{
    check_message, default_bandwidth_bits, id_bits, Algorithm, Ctx, Engine, MsgSize, Report,
    Scheduling, SimError, Simulator, Topology, PARALLEL_MIN_NODES,
};
