//! The typed error of the CONGEST simulation engines.
//!
//! Raised identically by both executors (and by external substrates
//! simulating the CONGEST model, such as the `pga-mpc` adapter, which
//! wraps it in `MpcError::Congest`).

use pga_graph::NodeId;

/// Errors that abort a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A node sent a message to a non-neighbor (CONGEST) or out-of-range
    /// destination.
    IllegalDestination {
        /// Sending node.
        from: NodeId,
        /// Intended destination.
        to: NodeId,
        /// Round in which the violation occurred.
        round: usize,
    },
    /// A node sent two messages to the same destination in one round.
    DuplicateMessage {
        /// Sending node.
        from: NodeId,
        /// Destination that received two messages.
        to: NodeId,
        /// Round in which the violation occurred.
        round: usize,
    },
    /// A message exceeded the bandwidth `B`.
    BandwidthExceeded {
        /// Sending node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
        /// Size of the offending message in bits.
        size_bits: usize,
        /// The bandwidth limit in bits.
        limit_bits: usize,
        /// Round in which the violation occurred.
        round: usize,
    },
    /// The round budget was exhausted before all nodes terminated.
    RoundLimitExceeded {
        /// The limit that was hit.
        limit: usize,
    },
    /// The algorithm's precondition on the input graph was violated
    /// (e.g. a spanning-tree-based phase requires a connected graph).
    PreconditionViolated {
        /// Human-readable description of the violated precondition.
        what: &'static str,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::IllegalDestination { from, to, round } => {
                write!(f, "round {round}: {from:?} sent to non-reachable {to:?}")
            }
            SimError::DuplicateMessage { from, to, round } => {
                write!(f, "round {round}: {from:?} sent two messages to {to:?}")
            }
            SimError::BandwidthExceeded {
                from,
                to,
                size_bits,
                limit_bits,
                round,
            } => write!(
                f,
                "round {round}: message {from:?} → {to:?} has {size_bits} bits > B = {limit_bits}"
            ),
            SimError::RoundLimitExceeded { limit } => {
                write!(f, "round limit {limit} exceeded without termination")
            }
            SimError::PreconditionViolated { what } => {
                write!(f, "algorithm precondition violated: {what}")
            }
        }
    }
}

impl std::error::Error for SimError {}
