//! Reusable distributed primitives.
//!
//! The centerpiece is [`GatherScatter`], the pattern Algorithm 1's second
//! phase is built from (Lemma 2 of the paper): build a BFS tree rooted at a
//! leader, *pipeline* every node's items up the tree to the leader
//! (convergecast), let the leader compute a response locally, and pipeline
//! the response back down to every node (broadcast). With `k` total items
//! and diameter `D`, the whole pattern costs `O(k + D)` rounds — the
//! pipelining argument the paper invokes for "the leader can learn `c`
//! pieces of information per node in `O(c · n)` rounds".
//!
//! The leader is fixed to node 0. The paper elects a leader by id; with the
//! globally-known dense id space `0..n` this election is free, and it does
//! not affect any asymptotic round count (leader election costs `O(D)`,
//! dominated by every use of this primitive).

use crate::sim::{Algorithm, Ctx, MsgCodec, MsgSize};
use pga_graph::NodeId;
use std::collections::VecDeque;
use std::sync::Arc;

/// Messages exchanged by [`GatherScatter`].
#[derive(Clone, Debug, PartialEq)]
pub enum GsMsg<I, D> {
    /// BFS-tree construction: "I have joined the tree; my parent is ...".
    /// `parent == Some(you)` tells the receiver the sender is its child;
    /// the root sends `parent == None`.
    Explore {
        /// The sender's chosen parent in the BFS tree.
        parent: Option<NodeId>,
    },
    /// One pipelined item traveling toward the root.
    Up(I),
    /// The sender's subtree has no more items to send.
    UpDone,
    /// One pipelined response item traveling from the root to everyone.
    Down(D),
    /// No more response items. `complete` tells the subtree whether the
    /// response was computed from the *full* gather (`true` on every
    /// clean run) or from a partial aggregate after the root's phase
    /// deadline expired (see [`GatherScatter::with_deadline`]).
    DownEnd {
        /// Whether the broadcast response reflects every item in the
        /// network.
        complete: bool,
    },
}

impl<I: MsgSize, D: MsgSize> MsgSize for GsMsg<I, D> {
    fn size_bits(&self, id_bits: usize) -> usize {
        // 3 tag bits plus the payload.
        3 + match self {
            GsMsg::Explore { parent } => 1 + parent.map_or(0, |_| id_bits),
            GsMsg::Up(i) => i.size_bits(id_bits),
            GsMsg::UpDone => 0,
            GsMsg::Down(d) => d.size_bits(id_bits),
            GsMsg::DownEnd { .. } => 1,
        }
    }
}

/// Fixed-width packing of one gather–scatter payload: three words plus
/// one spare flag bit carried in the envelope word.
///
/// Implementing this for the item and response types of a
/// [`GatherScatter`] instantiation gives its [`GsMsg`] a [`MsgCodec`]
/// (packed into `[u64; 4]`) through the blanket impl below — the orphan
/// rule lets downstream crates implement `GsPack` for their own payload
/// types where they could not implement `MsgCodec` for the foreign
/// `GsMsg` directly. Round-trip contract: `unpack3(pack3(x)) == x`.
pub trait GsPack: Sized {
    /// Encodes into three words plus a flag bit.
    fn pack3(&self) -> ([u64; 3], bool);
    /// Decodes from three words plus the flag bit.
    fn unpack3(words: [u64; 3], flag: bool) -> Self;
}

// Packed layout ([u64; 4]): word 0 is the envelope — tag in bits 0..3,
// Explore parent-presence bit at 3, the payload's flag bit at 4, and
// the Explore parent id in bits 32..64; Up/Down payloads fill words
// 1..4 via [`GsPack`].
impl<I, D> MsgCodec for GsMsg<I, D>
where
    I: MsgSize + GsPack,
    D: MsgSize + GsPack,
{
    type Word = [u64; 4];

    fn encode(&self) -> [u64; 4] {
        match self {
            GsMsg::Explore { parent } => {
                let w0 = match parent {
                    Some(p) => (1 << 3) | (u64::from(p.0) << 32),
                    None => 0,
                };
                [w0, 0, 0, 0]
            }
            GsMsg::Up(i) => {
                let (w, flag) = i.pack3();
                [1 | (u64::from(flag) << 4), w[0], w[1], w[2]]
            }
            GsMsg::UpDone => [2, 0, 0, 0],
            GsMsg::Down(d) => {
                let (w, flag) = d.pack3();
                [3 | (u64::from(flag) << 4), w[0], w[1], w[2]]
            }
            GsMsg::DownEnd { complete } => [4 | (u64::from(*complete) << 4), 0, 0, 0],
        }
    }

    fn decode(word: [u64; 4]) -> Self {
        let flag = word[0] & (1 << 4) != 0;
        let payload = [word[1], word[2], word[3]];
        match word[0] & 0x7 {
            0 => GsMsg::Explore {
                parent: (word[0] & (1 << 3) != 0).then_some(NodeId((word[0] >> 32) as u32)),
            },
            1 => GsMsg::Up(I::unpack3(payload, flag)),
            2 => GsMsg::UpDone,
            3 => GsMsg::Down(D::unpack3(payload, flag)),
            4 => GsMsg::DownEnd { complete: flag },
            tag => unreachable!("invalid GsMsg tag {tag}"),
        }
    }
}

/// The local computation performed by the leader once it has gathered all
/// items: it receives every item in the network (including its own) and
/// returns the response to broadcast.
///
/// `Send + Sync` so [`GatherScatter`] states can be driven by the sharded
/// multi-threaded engine ([`crate::Simulator::run_parallel`]) as well as
/// the sequential one.
pub type LeaderCompute<I, D> = Arc<dyn Fn(Vec<I>) -> Vec<D> + Send + Sync>;

enum Phase {
    /// Waiting to join the BFS tree (root starts immediately).
    Joining,
    /// Announcing tree membership next round.
    Announce,
    /// Forwarding items toward the root.
    Upcast,
    /// Forwarding response items toward the leaves.
    Downcast,
    /// Finished.
    Done,
}

/// Per-node result of a [`GatherScatter`] run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GsOutput<D> {
    /// The response items this node received (the full leader response
    /// on a clean run; a prefix of it after a timeout).
    pub response: Vec<D>,
    /// Whether this node knows the response reflects **every** item in
    /// the network: `true` exactly when a `DownEnd` flagged complete
    /// arrived. Always `true` on a clean run; after a phase timeout a
    /// node with `complete == false` must treat its own contribution as
    /// unprocessed and fall back conservatively.
    pub complete: bool,
}

/// Per-node state machine for the gather–compute–scatter pattern.
///
/// Every node contributes a list of items; node 0 acts as the leader,
/// applies `compute` to the multiset of all items, and the result is
/// broadcast so every node's output is the full response vector.
///
/// Requires a connected input graph.
pub struct GatherScatter<I, D> {
    items: VecDeque<I>,
    compute: LeaderCompute<I, D>,
    phase: Phase,
    parent: Option<NodeId>,
    /// Neighbors whose Explore we have heard (to learn child status).
    heard_from: Vec<NodeId>,
    children: Vec<NodeId>,
    children_done: usize,
    gathered: Vec<I>,
    response: Vec<D>,
    down_queue: VecDeque<D>,
    down_end_pending: bool,
    sent_up_done: bool,
    /// Phase deadline in rounds (see [`GatherScatter::with_deadline`]).
    deadline: Option<usize>,
    /// Whether the received (or, at the root, computed) response covers
    /// every item in the network.
    complete: bool,
}

impl<I, D> GatherScatter<I, D> {
    /// Creates the state for one node with its local `items`.
    ///
    /// `compute` is only invoked at node 0 but every node carries a handle
    /// (the states are homogeneous).
    pub fn new(items: Vec<I>, compute: LeaderCompute<I, D>) -> Self {
        GatherScatter {
            items: items.into(),
            compute,
            phase: Phase::Joining,
            parent: None,
            heard_from: Vec::new(),
            children: Vec::new(),
            children_done: 0,
            gathered: Vec::new(),
            response: Vec::new(),
            down_queue: VecDeque::new(),
            down_end_pending: false,
            sent_up_done: false,
            deadline: None,
            complete: false,
        }
    }

    /// Arms the phase timeout: if the root has not completed its gather
    /// by round `deadline`, it computes from the **partial aggregate**
    /// it holds and broadcasts the response flagged incomplete; any node
    /// still unfinished at the hard deadline (`2 * deadline + 8`,
    /// covering the downcast of the late response) finalizes with what
    /// it has, `complete == false`. On a run where every message
    /// eventually arrives (e.g. under the ARQ plane with no dead links)
    /// a large enough deadline never fires and the output is exactly
    /// the clean run's. `None` (the default) waits forever.
    pub fn with_deadline(mut self, deadline: Option<usize>) -> Self {
        self.deadline = deadline;
        self
    }

    fn is_root(&self, ctx: &Ctx) -> bool {
        ctx.id == NodeId(0)
    }

    fn tree_known(&self, ctx: &Ctx) -> bool {
        // All neighbors have announced, so the children set is final.
        self.heard_from.len() == ctx.graph_neighbors.len()
    }

    /// Whether the root has received everything: all children reported
    /// their subtrees drained. (The root's own items never travel and are
    /// merged in [`GatherScatter::start_downcast`].)
    fn upcast_complete(&self) -> bool {
        self.children_done == self.children.len()
    }
}

impl<I, D: Clone> GatherScatter<I, D> {
    fn start_downcast(&mut self, ctx: &Ctx, complete: bool) {
        let gathered = std::mem::take(&mut self.gathered);
        let mut items: Vec<I> = gathered;
        items.extend(std::mem::take(&mut self.items));
        self.response = (self.compute)(items);
        self.down_queue = self.response.iter().cloned().collect::<VecDeque<D>>();
        self.down_end_pending = true;
        self.complete = complete;
        self.phase = Phase::Downcast;
        let _ = ctx;
    }
}

impl<I: Clone + MsgSize, D: Clone + MsgSize> Algorithm for GatherScatter<I, D> {
    type Msg = GsMsg<I, D>;
    type Output = GsOutput<D>;

    fn round(&mut self, ctx: &Ctx, inbox: &[(NodeId, Self::Msg)]) -> Vec<(NodeId, Self::Msg)> {
        let mut out: Vec<(NodeId, Self::Msg)> = Vec::new();

        // Ingest messages.
        for (from, msg) in inbox {
            match msg {
                GsMsg::Explore { parent } => {
                    self.heard_from.push(*from);
                    if *parent == Some(ctx.id) {
                        self.children.push(*from);
                    }
                    if matches!(self.phase, Phase::Joining)
                        && !self.is_root(ctx)
                        && self.parent.is_none()
                    {
                        // First Explore this round: choose the smallest
                        // sender as parent (inbox is sorted by sender).
                        self.parent = Some(*from);
                        self.phase = Phase::Announce;
                    }
                }
                GsMsg::Up(item) => self.gathered.push(item.clone()),
                GsMsg::UpDone => self.children_done += 1,
                GsMsg::Down(d) => {
                    self.response.push(d.clone());
                    self.down_queue.push_back(d.clone());
                }
                GsMsg::DownEnd { complete } => {
                    self.down_end_pending = true;
                    self.complete = *complete;
                }
            }
        }

        // Phase-timeout fallback (see `with_deadline`): past the hard
        // deadline every node finalizes with what it holds; past the
        // soft deadline the root computes from its partial aggregate
        // and downcasts the response flagged incomplete.
        if let Some(d) = self.deadline {
            if ctx.round >= 2 * d + 8 && !matches!(self.phase, Phase::Done) {
                self.phase = Phase::Done;
                return out;
            }
            if self.is_root(ctx) && matches!(self.phase, Phase::Upcast) && ctx.round >= d {
                self.start_downcast(ctx, false);
            }
        }

        // Root bootstraps the BFS wave.
        if self.is_root(ctx) && ctx.round == 0 {
            self.phase = Phase::Upcast;
            for &v in ctx.graph_neighbors {
                out.push((v, GsMsg::Explore { parent: None }));
            }
            // Handle the single-node network.
            if ctx.graph_neighbors.is_empty() {
                self.start_downcast(ctx, true);
                self.phase = Phase::Done;
            }
            return out;
        }

        match self.phase {
            Phase::Joining => {}
            Phase::Announce => {
                // Tell every neighbor our parent; this is both the BFS wave
                // and the child/non-child notification.
                for &v in ctx.graph_neighbors {
                    out.push((
                        v,
                        GsMsg::Explore {
                            parent: self.parent,
                        },
                    ));
                }
                self.phase = Phase::Upcast;
            }
            Phase::Upcast => {
                if self.tree_known(ctx) {
                    if self.is_root(ctx) {
                        if self.upcast_complete() {
                            self.start_downcast(ctx, true);
                        }
                    } else if let Some(p) = self.parent {
                        // Pipeline: forward received items first, then our
                        // own, one per round; finish with UpDone.
                        if let Some(item) = self.gathered.pop() {
                            out.push((p, GsMsg::Up(item)));
                        } else if let Some(item) = self.items.pop_front() {
                            out.push((p, GsMsg::Up(item)));
                        } else if self.children_done == self.children.len() && !self.sent_up_done {
                            out.push((p, GsMsg::UpDone));
                            self.sent_up_done = true;
                            self.phase = Phase::Downcast;
                        }
                    }
                }
            }
            Phase::Downcast => {}
            Phase::Done => {}
        }

        // Downcast forwarding runs for every node that has a queue, even
        // the root right after computing.
        if matches!(self.phase, Phase::Downcast) {
            if let Some(d) = self.down_queue.pop_front() {
                for &c in &self.children {
                    out.push((c, GsMsg::Down(d.clone())));
                }
            } else if self.down_end_pending {
                for &c in &self.children {
                    out.push((
                        c,
                        GsMsg::DownEnd {
                            complete: self.complete,
                        },
                    ));
                }
                self.down_end_pending = false;
                self.phase = Phase::Done;
            }
        }

        out
    }

    fn is_done(&self, _ctx: &Ctx) -> bool {
        matches!(self.phase, Phase::Done)
    }

    fn output(&self, _ctx: &Ctx) -> GsOutput<D> {
        GsOutput {
            response: self.response.clone(),
            complete: self.complete,
        }
    }
}

/// A `u64` payload counted as a given number of bits.
///
/// Convenience for tests and simple algorithms: wraps a value together
/// with its declared model size.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SizedU64 {
    /// The payload value.
    pub value: u64,
    /// Declared size in bits.
    pub bits: usize,
}

impl MsgSize for SizedU64 {
    fn size_bits(&self, _id_bits: usize) -> usize {
        self.bits
    }
}

impl GsPack for SizedU64 {
    fn pack3(&self) -> ([u64; 3], bool) {
        ([self.value, self.bits as u64, 0], false)
    }

    fn unpack3(words: [u64; 3], _flag: bool) -> Self {
        SizedU64 {
            value: words[0],
            bits: words[1] as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use pga_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_sum(g: &pga_graph::Graph) -> (Vec<GsOutput<SizedU64>>, crate::Metrics) {
        let n = g.num_nodes();
        let compute: LeaderCompute<SizedU64, SizedU64> = Arc::new(|items: Vec<SizedU64>| {
            let s: u64 = items.iter().map(|i| i.value).sum();
            vec![SizedU64 { value: s, bits: 64 }]
        });
        let nodes = (0..n)
            .map(|i| {
                GatherScatter::new(
                    vec![SizedU64 {
                        value: i as u64,
                        bits: 64,
                    }],
                    Arc::clone(&compute),
                )
            })
            .collect();
        let report = Simulator::congest(g).run(nodes).unwrap();
        (report.outputs, report.metrics)
    }

    #[test]
    fn gather_scatter_sums_on_path() {
        let g = generators::path(7);
        let (outputs, metrics) = run_sum(&g);
        let expect: u64 = (0..7).sum();
        for o in &outputs {
            assert_eq!(o.response.len(), 1);
            assert_eq!(o.response[0].value, expect);
            assert!(o.complete);
        }
        assert!(metrics.rounds > 0);
    }

    #[test]
    fn gather_scatter_on_single_node() {
        let g = pga_graph::Graph::empty(1);
        let (outputs, _metrics) = run_sum(&g);
        assert_eq!(outputs[0].response[0].value, 0);
        assert!(outputs[0].complete);
    }

    #[test]
    fn gather_scatter_on_star_and_grid() {
        for g in [generators::star(9), generators::grid(4, 4)] {
            let n = g.num_nodes();
            let (outputs, _m) = run_sum(&g);
            let expect: u64 = (0..n as u64).sum();
            assert!(outputs
                .iter()
                .all(|o| o.response[0].value == expect && o.complete));
        }
    }

    #[test]
    fn gather_scatter_on_random_connected() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..5 {
            let g = generators::connected_gnp(40, 0.05, &mut rng);
            let (outputs, _m) = run_sum(&g);
            let expect: u64 = (0..40u64).sum();
            assert!(outputs
                .iter()
                .all(|o| o.response[0].value == expect && o.complete));
        }
    }

    #[test]
    fn multi_item_multi_response() {
        // Every node contributes 3 items; leader echoes all back sorted.
        let g = generators::cycle(6);
        let compute: LeaderCompute<SizedU64, SizedU64> = Arc::new(|mut items: Vec<SizedU64>| {
            items.sort_by_key(|i| i.value);
            items
        });
        let nodes = (0..6)
            .map(|i| {
                GatherScatter::new(
                    (0..3)
                        .map(|j| SizedU64 {
                            value: (i * 3 + j) as u64,
                            bits: 32,
                        })
                        .collect(),
                    Arc::clone(&compute),
                )
            })
            .collect();
        let report = Simulator::congest(&g).run(nodes).unwrap();
        for o in &report.outputs {
            assert_eq!(o.response.len(), 18);
            let values: Vec<u64> = o.response.iter().map(|d| d.value).collect();
            assert_eq!(values, (0..18u64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pipelining_round_bound() {
        // k total items over diameter D must finish in O(k + D) rounds;
        // check a generous constant.
        let g = generators::path(20); // D = 19
        let (outputs, metrics) = run_sum(&g);
        assert_eq!(outputs.len(), 20);
        let k = 20; // one item per node
        let d = 19;
        assert!(
            metrics.rounds <= 4 * (k + d) + 10,
            "rounds {} too large",
            metrics.rounds
        );
    }

    #[test]
    fn empty_items_everywhere() {
        let g = generators::path(4);
        let compute: LeaderCompute<SizedU64, SizedU64> = Arc::new(|items: Vec<SizedU64>| {
            assert!(items.is_empty());
            vec![SizedU64 { value: 7, bits: 8 }]
        });
        let nodes = (0..4)
            .map(|_| GatherScatter::new(Vec::new(), Arc::clone(&compute)))
            .collect();
        let report = Simulator::congest(&g).run(nodes).unwrap();
        assert!(report
            .outputs
            .iter()
            .all(|o| o.response == vec![SizedU64 { value: 7, bits: 8 }] && o.complete));
    }

    /// A deadline larger than the clean round count never fires: the
    /// output is exactly the clean run's, complete everywhere.
    #[test]
    fn generous_deadline_is_invisible() {
        let g = generators::path(7);
        let compute: LeaderCompute<SizedU64, SizedU64> = Arc::new(|items: Vec<SizedU64>| {
            let s: u64 = items.iter().map(|i| i.value).sum();
            vec![SizedU64 { value: s, bits: 64 }]
        });
        let nodes = (0..7)
            .map(|i| {
                GatherScatter::new(
                    vec![SizedU64 {
                        value: i as u64,
                        bits: 64,
                    }],
                    Arc::clone(&compute),
                )
                .with_deadline(Some(1_000))
            })
            .collect();
        let report = Simulator::congest(&g).run(nodes).unwrap();
        let (clean, _) = run_sum(&g);
        assert_eq!(report.outputs, clean);
    }

    /// A deadline shorter than the gather forces the root to compute
    /// from a partial aggregate: the run still terminates, the root's
    /// output is flagged incomplete, and every node that received the
    /// late response carries the same (partial) sum.
    #[test]
    fn tight_deadline_degrades_to_partial_aggregate() {
        let g = generators::path(7);
        let compute: LeaderCompute<SizedU64, SizedU64> = Arc::new(|items: Vec<SizedU64>| {
            let s: u64 = items.iter().map(|i| i.value).sum();
            vec![SizedU64 { value: s, bits: 64 }]
        });
        let nodes = (0..7)
            .map(|i| {
                GatherScatter::new(
                    vec![SizedU64 {
                        value: i as u64,
                        bits: 64,
                    }],
                    Arc::clone(&compute),
                )
                .with_deadline(Some(2))
            })
            .collect();
        let report = Simulator::congest(&g).run(nodes).unwrap();
        // The root times out before the far end of the path reports.
        assert!(!report.outputs[0].complete);
        let full: u64 = (0..7).sum();
        assert!(report.outputs[0].response[0].value < full);
        // Incomplete outputs are never mistaken for complete ones.
        for o in &report.outputs {
            assert!(!o.complete);
        }
    }
}

/// Classic flood-max leader election: every node repeatedly forwards the
/// largest id it has heard; after the flood quiesces every node knows the
/// global maximum. Terminates in `O(D)` rounds on a connected graph.
///
/// Provided as a reference algorithm and engine validation — the paper's
/// constructions fix node 0 as the leader instead (ids `0..n` are global
/// knowledge), which costs zero rounds.
pub struct FloodMax {
    best: u32,
    changed: bool,
    quiet: bool,
}

/// Message of [`FloodMax`]: a candidate maximum id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MaxId(pub u32);

impl MsgSize for MaxId {
    fn size_bits(&self, id_bits: usize) -> usize {
        id_bits
    }
}

impl MsgCodec for MaxId {
    type Word = u64;

    fn encode(&self) -> u64 {
        u64::from(self.0)
    }

    fn decode(word: u64) -> Self {
        MaxId(word as u32)
    }
}

impl FloodMax {
    /// State for the node with the given id.
    pub fn new(id: NodeId) -> Self {
        FloodMax {
            best: id.0,
            changed: false,
            quiet: false,
        }
    }
}

impl Algorithm for FloodMax {
    type Msg = MaxId;
    type Output = NodeId;

    fn round(&mut self, ctx: &Ctx, inbox: &[(NodeId, MaxId)]) -> Vec<(NodeId, MaxId)> {
        for (_, m) in inbox {
            if m.0 > self.best {
                self.best = m.0;
                self.changed = true;
            }
        }
        let send = ctx.round == 0 || self.changed;
        self.changed = false;
        self.quiet = !send;
        if send {
            ctx.graph_neighbors
                .iter()
                .map(|&v| (v, MaxId(self.best)))
                .collect()
        } else {
            Vec::new()
        }
    }

    fn is_done(&self, _ctx: &Ctx) -> bool {
        self.quiet
    }

    fn output(&self, _ctx: &Ctx) -> NodeId {
        NodeId(self.best)
    }
}

#[cfg(test)]
mod flood_tests {
    use super::*;
    use crate::sim::Simulator;
    use pga_graph::generators;
    use pga_graph::traversal::diameter;

    #[test]
    fn flood_max_elects_global_maximum() {
        for g in [
            generators::path(12),
            generators::star(9),
            generators::grid(3, 4),
        ] {
            let n = g.num_nodes();
            let report = Simulator::congest(&g)
                .run(
                    (0..n)
                        .map(|i| FloodMax::new(NodeId::from_index(i)))
                        .collect(),
                )
                .unwrap();
            assert!(report
                .outputs
                .iter()
                .all(|&l| l == NodeId::from_index(n - 1)));
            let d = diameter(&g).unwrap();
            assert!(report.metrics.rounds <= 2 * d + 3);
        }
    }

    #[test]
    fn flood_max_on_single_vertex() {
        let g = pga_graph::Graph::empty(1);
        let report = Simulator::congest(&g)
            .run(vec![FloodMax::new(NodeId(0))])
            .unwrap();
        assert_eq!(report.outputs[0], NodeId(0));
    }
}

#[cfg(test)]
mod codec_roundtrip_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_sized() -> impl Strategy<Value = SizedU64> {
        (any::<u64>(), any::<usize>()).prop_map(|(value, bits)| SizedU64 { value, bits })
    }

    /// Every arm of [`GsMsg`], with full-range payloads.
    fn arb_gs_msg() -> impl Strategy<Value = GsMsg<SizedU64, SizedU64>> {
        prop_oneof![
            Just(GsMsg::Explore { parent: None }),
            any::<u32>().prop_map(|p| GsMsg::Explore {
                parent: Some(NodeId(p)),
            }),
            arb_sized().prop_map(GsMsg::Up),
            Just(GsMsg::UpDone),
            arb_sized().prop_map(GsMsg::Down),
            any::<bool>().prop_map(|complete| GsMsg::DownEnd { complete }),
        ]
    }

    proptest! {
        #[test]
        fn max_id_codec_roundtrips(id in any::<u32>()) {
            let m = MaxId(id);
            prop_assert_eq!(MaxId::decode(m.encode()), m);
        }

        #[test]
        fn gs_msg_codec_roundtrips(m in arb_gs_msg()) {
            let word = m.encode();
            prop_assert_eq!(GsMsg::<SizedU64, SizedU64>::decode(word), m);
        }

        #[test]
        fn sized_u64_pack3_roundtrips(s in arb_sized()) {
            let (words, flag) = s.pack3();
            prop_assert_eq!(SizedU64::unpack3(words, flag), s);
        }
    }
}
