//! Run metrics: rounds, messages, bits, and the per-round congestion
//! profile.

use pga_runtime::FaultStats;

/// Aggregate communication metrics of a simulated run.
///
/// `rounds` is the quantity the paper's theorems bound; messages and bits
/// are reported for congestion analysis. The `congestion_profile` records
/// how loaded the busiest link was in every round, so bursty algorithms
/// cannot hide a congested round behind benign totals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Number of synchronous rounds executed (rounds in which at least one
    /// node was still active).
    pub rounds: usize,
    /// Total number of messages delivered.
    pub messages: u64,
    /// Total number of message bits delivered.
    pub bits: u64,
    /// Largest single message observed, in bits.
    pub max_message_bits: usize,
    /// Per-round congestion profile: element `r` is the largest number of
    /// bits that crossed any single directed edge in round `r` (0 for a
    /// round in which nothing was sent). Always has length `rounds`.
    ///
    /// Because the model admits at most one message per directed edge per
    /// round, this equals the largest message of round `r`; the profile
    /// preserves the per-round peaks that the run-wide
    /// [`max_message_bits`](Self::max_message_bits) maximum collapses.
    ///
    /// Under an adversary the profile charges each link at **actual
    /// delivery**: a dropped message never loads its edge, a duplicated
    /// one loads it twice, and a delayed one is charged in its transmit
    /// round. Clean runs are unaffected.
    pub congestion_profile: Vec<usize>,
    /// The adversary's whole-run fault tally (all zeros except
    /// [`FaultStats::delivered`] on a clean run).
    pub fault: FaultStats,
    /// The kernel's message-quiescence detector: the first round index
    /// from which no message was in flight for the rest of the run (0
    /// when the run never exchanged a message). Under faults this is
    /// the observable convergence round — how long the adversary kept
    /// the message plane busy.
    pub convergence_round: usize,
}

impl Metrics {
    /// Average bits per message, or 0.0 when no messages were sent.
    pub fn avg_message_bits(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.bits as f64 / self.messages as f64
        }
    }

    /// Peak per-edge load over the whole run: the maximum entry of the
    /// [`congestion_profile`](Self::congestion_profile), or 0 when no
    /// round sent anything.
    pub fn peak_edge_bits(&self) -> usize {
        self.congestion_profile.iter().copied().max().unwrap_or(0)
    }

    /// The `q`-th percentile (`0 ≤ q ≤ 1`) of the per-round
    /// [`congestion_profile`](Self::congestion_profile), or 0 for an empty
    /// profile (a zero-round run has no congestion to report).
    ///
    /// Uses the nearest-rank definition: the smallest profile entry `x`
    /// such that at least `q · rounds` rounds peaked at `≤ x` bits. The
    /// rank is floored at 1, so `q = 0.0` degenerates to the quietest
    /// round's peak (the profile minimum) rather than an out-of-range
    /// rank, and `q = 1.0` is the profile maximum. The bench harness
    /// reports `congestion_percentile(0.95)` next to the maximum so a
    /// single bursty round cannot masquerade as the typical load.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0, 1]` (NaN included).
    pub fn congestion_percentile(&self, q: f64) -> usize {
        assert!((0.0..=1.0).contains(&q), "percentile must be in [0, 1]");
        if self.congestion_profile.is_empty() {
            return 0;
        }
        let mut sorted = self.congestion_profile.clone();
        sorted.sort_unstable();
        let rank = (q * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} rounds, {} messages, {} bits (max msg {} bits, peak edge {} bits/round)",
            self.rounds,
            self.messages,
            self.bits,
            self.max_message_bits,
            self.peak_edge_bits()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_bits() {
        let m = Metrics {
            rounds: 3,
            messages: 4,
            bits: 100,
            max_message_bits: 40,
            congestion_profile: vec![40, 30, 30],
            ..Default::default()
        };
        assert!((m.avg_message_bits() - 25.0).abs() < 1e-9);
        assert_eq!(Metrics::default().avg_message_bits(), 0.0);
    }

    #[test]
    fn peak_edge_bits_is_profile_max() {
        let m = Metrics {
            rounds: 3,
            messages: 3,
            bits: 60,
            max_message_bits: 30,
            congestion_profile: vec![10, 30, 20],
            ..Default::default()
        };
        assert_eq!(m.peak_edge_bits(), 30);
        assert_eq!(Metrics::default().peak_edge_bits(), 0);
    }

    #[test]
    fn congestion_percentile_nearest_rank() {
        let m = Metrics {
            rounds: 20,
            messages: 20,
            bits: 0,
            max_message_bits: 20,
            congestion_profile: (1..=20).collect(),
            ..Default::default()
        };
        assert_eq!(m.congestion_percentile(0.95), 19);
        assert_eq!(m.congestion_percentile(1.0), 20);
        assert_eq!(m.congestion_percentile(0.05), 1);
        assert_eq!(Metrics::default().congestion_percentile(0.95), 0);
    }

    #[test]
    fn congestion_percentile_zero_is_profile_minimum() {
        let m = Metrics {
            rounds: 3,
            messages: 3,
            bits: 0,
            max_message_bits: 9,
            congestion_profile: vec![9, 4, 7],
            ..Default::default()
        };
        assert_eq!(m.congestion_percentile(0.0), 4);
    }

    #[test]
    fn congestion_percentile_empty_profile_is_zero() {
        // A zero-round run reports 0 at every percentile, including the
        // boundary arguments.
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(Metrics::default().congestion_percentile(q), 0);
        }
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn congestion_percentile_rejects_out_of_range() {
        Metrics::default().congestion_percentile(1.5);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn congestion_percentile_rejects_nan() {
        Metrics::default().congestion_percentile(f64::NAN);
    }

    #[test]
    fn display_contains_fields() {
        let m = Metrics {
            rounds: 2,
            messages: 5,
            bits: 50,
            max_message_bits: 10,
            congestion_profile: vec![10, 8],
            ..Default::default()
        };
        let s = format!("{m}");
        assert!(s.contains("2 rounds"));
        assert!(s.contains("5 messages"));
        assert!(s.contains("peak edge 10 bits/round"));
    }
}
