//! Run metrics: rounds, messages, and bits.

/// Aggregate communication metrics of a simulated run.
///
/// `rounds` is the quantity the paper's theorems bound; messages and bits
/// are reported for congestion analysis.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Number of synchronous rounds executed (rounds in which at least one
    /// node was still active).
    pub rounds: usize,
    /// Total number of messages delivered.
    pub messages: u64,
    /// Total number of message bits delivered.
    pub bits: u64,
    /// Largest single message observed, in bits.
    pub max_message_bits: usize,
}

impl Metrics {
    /// Average bits per message, or 0.0 when no messages were sent.
    pub fn avg_message_bits(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.bits as f64 / self.messages as f64
        }
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} rounds, {} messages, {} bits (max msg {} bits)",
            self.rounds, self.messages, self.bits, self.max_message_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_bits() {
        let m = Metrics {
            rounds: 3,
            messages: 4,
            bits: 100,
            max_message_bits: 40,
        };
        assert!((m.avg_message_bits() - 25.0).abs() < 1e-9);
        assert_eq!(Metrics::default().avg_message_bits(), 0.0);
    }

    #[test]
    fn display_contains_fields() {
        let m = Metrics {
            rounds: 2,
            messages: 5,
            bits: 50,
            max_message_bits: 10,
        };
        let s = format!("{m}");
        assert!(s.contains("2 rounds"));
        assert!(s.contains("5 messages"));
    }
}
