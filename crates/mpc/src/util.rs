//! Partitioning and bucketing helpers shared by the CONGEST adapter and
//! the native MPC algorithms.

use crate::engine::MpcError;

/// Greedy contiguous packing of per-vertex costs into machines: returns
/// `starts` with machine `k` hosting vertices `starts[k]..starts[k + 1]`,
/// every machine's total cost at most `cap`.
///
/// Shared by the CONGEST adapter and the native algorithms so their
/// partitioning (and its failure mode) cannot drift apart.
///
/// # Errors
///
/// [`MpcError::PreconditionViolated`] if a single vertex's cost exceeds
/// `cap` — no partition can host it within the memory budget.
pub(crate) fn greedy_partition(
    costs: impl Iterator<Item = usize>,
    cap: usize,
    too_fat: &'static str,
) -> Result<Vec<usize>, MpcError> {
    let mut starts = vec![0usize];
    let mut current = 0usize;
    let mut n = 0usize;
    for (v, cost) in costs.enumerate() {
        n = v + 1;
        if cost > cap {
            return Err(MpcError::PreconditionViolated { what: too_fat });
        }
        if current + cost > cap && current > 0 {
            starts.push(v);
            current = 0;
        }
        current += cost;
    }
    if n > 0 {
        starts.push(n);
    }
    Ok(starts)
}

/// Sparse per-destination-machine buckets: a machine's outbox usually
/// spans only its few boundary-neighbor machines, so collecting into a
/// dense `Vec` of length `M` would make every round `O(M)` per machine
/// (`O(M²)` total) regardless of traffic. Linear scan on insert is fine
/// — the distinct-destination count per machine is small — and
/// [`SparseBuckets::into_sorted`] restores the deterministic
/// ascending-destination order the engines rely on.
pub(crate) struct SparseBuckets<T> {
    /// `(destination machine, entries, total words)` in first-touch order.
    buckets: Vec<(usize, Vec<T>, usize)>,
}

impl<T> SparseBuckets<T> {
    pub(crate) fn new() -> Self {
        SparseBuckets {
            buckets: Vec::new(),
        }
    }

    /// Appends `item` (of `words` words) to `dest`'s bucket.
    pub(crate) fn add(&mut self, dest: usize, item: T, words: usize) {
        if let Some((_, entries, w)) = self.buckets.iter_mut().find(|(d, _, _)| *d == dest) {
            entries.push(item);
            *w += words;
        } else {
            self.buckets.push((dest, vec![item], words));
        }
    }

    /// The buckets in ascending destination order.
    pub(crate) fn into_sorted(mut self) -> Vec<(usize, Vec<T>, usize)> {
        self.buckets.sort_by_key(|&(d, _, _)| d);
        self.buckets
    }
}
