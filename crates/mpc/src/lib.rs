//! A resource-accounted simulator for the **low-space MPC** model
//! (Massively Parallel Computation), with a CONGEST-to-MPC adapter and
//! native MPC algorithms.
//!
//! The paper's `G²` algorithms are stated in CONGEST, but the closest
//! related work targets low-space MPC — deterministic MPC ruling sets
//! (Pai–Pemmaraju, arXiv:2205.12686) and component-stability in
//! low-space MPC (Czumaj–Davies–Parter, arXiv:2106.01880). This crate
//! adds that second execution model to the workspace:
//!
//! * [`MpcSimulator`] — `M` machines with an enforced per-machine memory
//!   budget `S = O(n^δ)` words, synchronous rounds, arbitrary
//!   point-to-point messaging with per-round send *and* receive volume
//!   each capped at `S` words per machine. Violations are typed
//!   [`MpcError`]s, mirroring `pga_congest::SimError`; delivery order is
//!   deterministic; [`MpcMetrics`] accounts rounds, peak machine memory,
//!   and total communication. Two bit-identical round executors are
//!   provided ([`MpcSimulator::run`] and the sharded multi-threaded
//!   [`MpcSimulator::run_parallel`], reusing the `std::thread::scope`
//!   pattern of `pga-congest`).
//! * [`CongestOnMpc`] — the adapter: vertex-partitions any existing
//!   [`pga_congest::Algorithm`] across machines and routes its messages
//!   through the MPC exchange, bit-identical to `Simulator::run`
//!   (outputs, CONGEST metrics, and errors) while additionally
//!   accounting the run against the MPC budgets.
//! * [`ruling_set`] — a native MPC algorithm: the greedy 2-ruling set of
//!   `G²` (à la Pai–Pemmaraju), an independent dominating set of the
//!   square usable as an alternative cover seed.
//!
//! # Example: FloodMax through the adapter
//!
//! ```
//! use pga_congest::primitives::FloodMax;
//! use pga_congest::Simulator;
//! use pga_graph::{generators, NodeId};
//! use pga_mpc::CongestOnMpc;
//!
//! let g = generators::grid(4, 5);
//! let states = || (0..20).map(|i| FloodMax::new(NodeId::from_index(i))).collect();
//!
//! let congest = Simulator::congest(&g).run(states()).unwrap();
//! let mpc = CongestOnMpc::congest(&g).run(states()).unwrap();
//!
//! // Same outputs, same CONGEST metrics — plus MPC accounting.
//! assert_eq!(mpc.outputs, congest.outputs);
//! assert_eq!(mpc.congest, congest.metrics);
//! assert!(mpc.mpc.peak_memory_words > 0);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod adapter;
mod engine;
mod metrics;
mod util;

pub mod ruling_set;

pub use adapter::{
    adapter_vertex_cost, recommended_memory_words, AdapterReport, CongestOnMpc, CongestShard,
    RoutedBatch,
};
pub use engine::{
    low_space_words, Engine, Machine, MachineId, MpcCtx, MpcError, MpcReport, MpcSimulator,
    Scheduling, WordSize,
};
pub use metrics::MpcMetrics;
/// Fault-injection vocabulary of the adversarial execution plane
/// (shared with `pga-congest`), re-exported for the same reason.
pub use pga_congest::{
    Adversary, Fate, FaultEvent, FaultSpec, FaultStats, FaultTrace, ReliabilitySpec,
    SeededAdversary, TraceAdversary,
};
/// Runtime-level message-plane vocabulary (shared with `pga-congest`),
/// re-exported so adapter callers can implement packed codecs and build
/// [`RunConfig`]s without another dependency edge.
pub use pga_congest::{CodecFns, MsgCodec, MsgCost, RunConfig};
/// Telemetry-plane vocabulary (shared with `pga-congest`), re-exported
/// so benches and tests can attach probes to
/// [`MpcSimulator::run_cfg_probed`] without another dependency edge.
pub use pga_congest::{
    JsonlProbe, NoopProbe, Probe, ProbeMode, RecordingProbe, RoundObs, RoundTelemetry,
    RunTelemetry, ShardTelemetry, SizeHist,
};
pub use ruling_set::{
    g2_ruling_set_mpc, g2_ruling_set_mpc_auto, g2_ruling_set_mpc_cfg, lex_first_g2_mis,
    recommended_ruling_set_memory_words, RulingSetResult,
};
