//! The CONGEST-to-MPC adapter: runs any [`pga_congest::Algorithm`] on
//! the MPC engine by vertex-partitioning its nodes across machines.
//!
//! Each machine hosts a contiguous range of vertices together with their
//! adjacency lists (the standard vertex-partitioned input distribution of
//! the low-space MPC literature). One MPC round simulates exactly one
//! CONGEST round: a machine drives every hosted node's
//! [`Algorithm::round`] callback, validates each outgoing message with
//! the *same* [`pga_congest::check_message`] the CONGEST engines use
//! (so model violations raise the identical `SimError`, wrapped in
//! [`MpcError::Congest`]), and routes messages whose destination lives
//! on another machine through the MPC exchange, batched per destination
//! machine. Messages between co-hosted vertices stay machine-local and
//! cost no MPC communication.
//!
//! The adapter is **bit-identical** to `Simulator::run`: same per-node
//! outputs, same CONGEST [`Metrics`] (messages, bits, per-round
//! congestion profile), same round count, same error on a model
//! violation — property-tested for FloodMax and the paper's `G²` entry
//! points. On top of that fidelity it *accounts* the run in MPC terms:
//! machine memory against the budget `S`, and per-round send/receive
//! volume against the same `S`.

use crate::engine::{Engine, Machine, MachineId, MpcCtx, MpcError, MpcSimulator, WordSize};
use crate::metrics::MpcMetrics;
use pga_congest::{
    check_message, id_bits, Algorithm, CodecFns, Ctx, Metrics, MsgCodec, RunConfig, Scheduling,
    Topology,
};
use pga_graph::{Graph, NodeId};
use std::sync::Arc;

/// Words charged per hosted vertex for bookkeeping state beyond the
/// algorithm state itself (inbox cursors, done flags, ...).
const NODE_OVERHEAD_WORDS: usize = 4;

/// A batch of routed CONGEST messages traveling between two machines in
/// one MPC round: `(from, to, payload)` triples in ascending sender
/// order, with the total word size precomputed at send time (word
/// accounting needs `id_bits`, which only the sender knows).
///
/// When the hosting shards carry a message codec
/// ([`CongestOnMpc::run_cfg`] with [`RunConfig::codec`] on), the
/// payloads travel as packed [`MsgCodec::Word`]s `W` instead of cloned
/// message enums. The charged word size is computed from the declared
/// bit sizes *before* encoding, so both representations account
/// identically and [`MpcMetrics`] stays bit-identical across planes.
pub struct RoutedBatch<M, W = ()> {
    repr: BatchRepr<M, W>,
    words: usize,
}

enum BatchRepr<M, W> {
    /// Cloned message enums — the default plane.
    Plain(Vec<(NodeId, NodeId, M)>),
    /// Codec-packed fixed-width words.
    Packed(Vec<(NodeId, NodeId, W)>),
}

impl<M: Clone, W: Clone> Clone for RoutedBatch<M, W> {
    fn clone(&self) -> Self {
        RoutedBatch {
            repr: match &self.repr {
                BatchRepr::Plain(v) => BatchRepr::Plain(v.clone()),
                BatchRepr::Packed(v) => BatchRepr::Packed(v.clone()),
            },
            words: self.words,
        }
    }
}

impl<M, W> WordSize for RoutedBatch<M, W> {
    fn size_bits(&self, _id_bits: usize) -> usize {
        64 * self.words
    }

    fn size_words(&self) -> usize {
        self.words
    }
}

/// Words one routed CONGEST message occupies: a one-word envelope
/// (sender and destination ids pack into 64 bits) plus the payload
/// rounded up to whole words.
fn entry_words(bits: usize) -> usize {
    1 + bits.div_ceil(64)
}

/// One MPC machine hosting the CONGEST nodes `starts[id]..starts[id+1]`.
///
/// `W` is the packed word type of the message codec, `()` when the run
/// uses the plain enum plane (see [`RoutedBatch`]).
pub struct CongestShard<'g, A: Algorithm, W = ()> {
    g: &'g Graph,
    /// First hosted vertex index.
    lo: usize,
    nodes: Vec<A>,
    /// Machine `k` hosts vertices `starts[k]..starts[k + 1]`; shared so
    /// every machine routes by destination with one binary search.
    starts: Arc<Vec<usize>>,
    topology: Topology,
    bandwidth_bits: usize,
    /// CONGEST messages between co-hosted vertices, carried to the next
    /// round without touching the MPC exchange (never encoded — packing
    /// only pays off on cross-machine traffic).
    local_next: Vec<(NodeId, NodeId, A::Msg)>,
    /// Word size of `local_next` (counted toward machine memory).
    local_words: usize,
    /// This machine's share of the CONGEST-level metrics.
    metrics: Metrics,
    /// Cached `Σ deg(v)` over hosted vertices.
    adjacency_words: usize,
    /// Message codec for cross-machine batches, if the run packs.
    codec: Option<CodecFns<A::Msg, W>>,
}

impl<'g, A: Algorithm, W> CongestShard<'g, A, W> {
    fn hosted(&self) -> usize {
        self.nodes.len()
    }

    fn congest_ctx(&self, k: usize, round: usize) -> Ctx<'g> {
        let id = NodeId::from_index(self.lo + k);
        Ctx {
            id,
            n: self.g.num_nodes(),
            id_bits: id_bits(self.g.num_nodes()),
            graph_neighbors: self.g.neighbors(id),
            round,
            topology: self.topology,
            bandwidth_bits: self.bandwidth_bits,
        }
    }

    /// The machine hosting vertex `v`.
    fn machine_of(&self, v: NodeId) -> usize {
        // starts is sorted; the owner is the last range starting at or
        // before v.
        self.starts.partition_point(|&s| s <= v.index()) - 1
    }
}

impl<A: Algorithm, W: Copy + Send> Machine for CongestShard<'_, A, W> {
    type Msg = RoutedBatch<A::Msg, W>;
    type Output = (Vec<A::Output>, Metrics);

    fn round(
        &mut self,
        ctx: &MpcCtx,
        inbox: &[(MachineId, Self::Msg)],
    ) -> Result<Vec<(MachineId, Self::Msg)>, MpcError> {
        // 1. Deliver: remote batches plus carried-over local messages
        //    into per-node inboxes, sorted by sender (the CONGEST
        //    contract).
        let mut node_inboxes: Vec<Vec<(NodeId, A::Msg)>> =
            (0..self.hosted()).map(|_| Vec::new()).collect();
        for (_, batch) in inbox {
            match &batch.repr {
                BatchRepr::Plain(entries) => {
                    for (from, to, msg) in entries {
                        node_inboxes[to.index() - self.lo].push((*from, msg.clone()));
                    }
                }
                BatchRepr::Packed(entries) => {
                    let c = self
                        .codec
                        .expect("packed batch delivered to a shard without a codec");
                    for &(from, to, w) in entries {
                        node_inboxes[to.index() - self.lo].push((from, (c.dec)(w)));
                    }
                }
            }
        }
        for (from, to, msg) in self.local_next.drain(..) {
            node_inboxes[to.index() - self.lo].push((from, msg));
        }
        self.local_words = 0;
        for ib in &mut node_inboxes {
            ib.sort_by_key(|&(from, _)| from);
        }

        // 2. Execute one CONGEST round for every hosted node, in id
        //    order, enforcing the CONGEST model with the engines' own
        //    check and bucketing cross-machine messages by destination.
        let mut buckets: crate::util::SparseBuckets<(NodeId, NodeId, A::Msg)> =
            crate::util::SparseBuckets::new();
        let mut round_peak = 0usize;
        let msgs_before = self.metrics.messages;
        for (k, node_inbox) in node_inboxes.iter_mut().enumerate() {
            let cctx = self.congest_ctx(k, ctx.round);
            let inbox = std::mem::take(node_inbox);
            let outbox = self.nodes[k].round(&cctx, &inbox);
            let mut seen: Vec<NodeId> = Vec::with_capacity(outbox.len());
            for (to, msg) in outbox {
                let bits = check_message(&cctx, &mut seen, to, &msg).map_err(MpcError::Congest)?;
                self.metrics.messages += 1;
                self.metrics.bits += bits as u64;
                self.metrics.max_message_bits = self.metrics.max_message_bits.max(bits);
                round_peak = round_peak.max(bits);
                let dest = self.machine_of(to);
                if dest == ctx.id.index() {
                    self.local_words += entry_words(bits);
                    self.local_next.push((cctx.id, to, msg));
                } else {
                    buckets.add(dest, (cctx.id, to, msg), entry_words(bits));
                }
            }
        }
        self.metrics.rounds += 1;
        self.metrics.congestion_profile.push(round_peak);
        if self.metrics.messages > msgs_before {
            // Mirrors the kernel's quiescence detector: mail staged in
            // CONGEST round r is consumed in round r + 1, so the plane
            // can only be quiet from r + 2 on.
            self.metrics.convergence_round = ctx.round + 2;
        }

        Ok(buckets
            .into_sorted()
            .into_iter()
            .map(|(j, entries, words)| {
                let repr = match self.codec {
                    Some(c) => {
                        let idb = id_bits(self.g.num_nodes());
                        BatchRepr::Packed(
                            entries
                                .into_iter()
                                .map(|(from, to, msg)| {
                                    let w = (c.enc)(&msg);
                                    debug_assert_eq!(
                                        (c.bits)(w, idb),
                                        msg.size_bits(idb),
                                        "MsgCodec::encoded_bits must agree with MsgCost::size_bits"
                                    );
                                    (from, to, w)
                                })
                                .collect(),
                        )
                    }
                    None => BatchRepr::Plain(entries),
                };
                (MachineId::from_index(j), RoutedBatch { repr, words })
            })
            .collect())
    }

    fn memory_words(&self) -> usize {
        self.adjacency_words
            + self.hosted() * (NODE_OVERHEAD_WORDS + std::mem::size_of::<A>().div_ceil(8))
            + self.local_words
    }

    fn is_done(&self, ctx: &MpcCtx) -> bool {
        self.local_next.is_empty()
            && self
                .nodes
                .iter()
                .enumerate()
                .all(|(k, node)| node.is_done(&self.congest_ctx(k, ctx.round)))
    }

    fn can_skip(&self, _ctx: &MpcCtx) -> bool {
        // Every invocation advances the simulated CONGEST round for the
        // hosted nodes and accounts it in the shard's `Metrics`, so a
        // skipped call would desynchronize this shard's round count from
        // machines that kept running. Never skippable.
        false
    }

    fn output(&self, ctx: &MpcCtx) -> (Vec<A::Output>, Metrics) {
        (
            self.nodes
                .iter()
                .enumerate()
                .map(|(k, node)| node.output(&self.congest_ctx(k, ctx.round)))
                .collect(),
            self.metrics.clone(),
        )
    }
}

/// Result of a CONGEST algorithm executed through the MPC adapter.
#[derive(Debug)]
pub struct AdapterReport<O> {
    /// Output of every CONGEST node, indexed by node id — identical to
    /// `Simulator::run(..).outputs`.
    pub outputs: Vec<O>,
    /// CONGEST-level metrics, merged across machines — identical to
    /// `Simulator::run(..).metrics`.
    pub congest: Metrics,
    /// MPC-level resource metrics of the same execution.
    pub mpc: MpcMetrics,
    /// Number of machines the vertex set was partitioned onto.
    pub machines: usize,
}

/// Driver for running CONGEST algorithms through the MPC adapter.
///
/// Mirrors the `Simulator` builder: construct with
/// [`CongestOnMpc::congest`] (or [`CongestOnMpc::congested_clique`]),
/// tune budgets with the setters, then [`CongestOnMpc::run`] /
/// [`CongestOnMpc::run_with`].
pub struct CongestOnMpc<'g> {
    g: &'g Graph,
    topology: Topology,
    bandwidth_bits: usize,
    memory_words: usize,
    max_rounds: usize,
}

/// A memory budget `S` (in words) sufficient for the adapter to host
/// `g`'s fattest vertex and its worst-case per-round message traffic:
/// `max(256, n^0.7, 2 · worst vertex cost)`.
///
/// The worst vertex cost includes a 64-word (512-byte) allowance for
/// per-node algorithm state; run an algorithm with a larger `Self` via
/// an explicit [`CongestOnMpc::with_memory_words`] budget (the core
/// crate's `_mpc` entry points compute the exact bound).
///
/// The direct simulation sends CONGEST messages in the round they are
/// issued, so the machine hosting a degree-`Δ` vertex genuinely needs
/// `Ω(Δ)` words — graphs with `Δ ≫ n^δ` would need the round-stretching
/// (graph exponentiation) techniques of the MPC literature to run in
/// truly sublinear space.
pub fn recommended_memory_words(g: &Graph, bandwidth_bits: usize) -> usize {
    const STATE_ALLOWANCE_WORDS: usize = 64;
    let worst = (0..g.num_nodes())
        .map(|v| {
            adapter_vertex_cost(
                g.degree(NodeId::from_index(v)),
                bandwidth_bits,
                STATE_ALLOWANCE_WORDS,
            )
        })
        .max()
        .unwrap_or(0);
    crate::engine::low_space_words(g.num_nodes().max(1), 0.7)
        .max(2 * worst)
        .max(256)
}

/// Words the adapter reserves per hosted vertex when packing the
/// partition: bookkeeping overhead, the algorithm state, and room for
/// one full-bandwidth message per incident edge.
///
/// Public so callers that know their algorithm's exact state size (the
/// core crate's `_mpc` entry points use `size_of::<A>()` words) can
/// compute a tight budget: a partition always exists iff
/// `S ≥ 2 · max_v adapter_vertex_cost(deg(v), B, state)`.
pub fn adapter_vertex_cost(degree: usize, bandwidth_bits: usize, state_words: usize) -> usize {
    NODE_OVERHEAD_WORDS + state_words + degree * entry_words(bandwidth_bits)
}

impl<'g> CongestOnMpc<'g> {
    /// An adapter for the CONGEST topology over the communication graph
    /// `g`, with the CONGEST default bandwidth and a memory budget from
    /// [`recommended_memory_words`].
    pub fn congest(g: &'g Graph) -> Self {
        let bandwidth_bits = pga_congest::default_bandwidth_bits(g.num_nodes());
        CongestOnMpc {
            g,
            topology: Topology::Congest,
            bandwidth_bits,
            memory_words: recommended_memory_words(g, bandwidth_bits),
            max_rounds: 1_000_000,
        }
    }

    /// An adapter for the CONGESTED CLIQUE topology with input graph `g`.
    ///
    /// Every vertex may message all `n - 1` others per round, so hosting
    /// a vertex costs `Ω(n)` words of I/O headroom — the default budget
    /// here is correspondingly large (direct clique simulation is not a
    /// low-space workload).
    pub fn congested_clique(g: &'g Graph) -> Self {
        let bandwidth_bits = pga_congest::default_bandwidth_bits(g.num_nodes());
        let n = g.num_nodes();
        let worst = adapter_vertex_cost(n.saturating_sub(1), bandwidth_bits, 64);
        CongestOnMpc {
            g,
            topology: Topology::CongestedClique,
            bandwidth_bits,
            memory_words: (2 * worst).max(256),
            max_rounds: 1_000_000,
        }
    }

    /// Overrides the per-machine memory budget `S` (words).
    pub fn with_memory_words(mut self, words: usize) -> Self {
        self.memory_words = words;
        self
    }

    /// Overrides the CONGEST per-edge bandwidth `B` (bits per message).
    pub fn with_bandwidth_bits(mut self, bits: usize) -> Self {
        self.bandwidth_bits = bits;
        self
    }

    /// Overrides the safety round budget (default one million).
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// The per-machine memory budget `S` in words.
    pub fn memory_words(&self) -> usize {
        self.memory_words
    }

    /// Vertex partition for state size `state_words`: returns `starts`
    /// with machine `k` hosting `starts[k]..starts[k + 1]`. Contiguous
    /// greedy packing, each machine's reserved cost at most `S / 2`
    /// (the other half is runtime headroom for message buffers).
    fn partition(&self, state_words: usize) -> Result<Vec<usize>, MpcError> {
        let n = self.g.num_nodes();
        let costs = (0..n).map(|v| {
            let degree = match self.topology {
                Topology::Congest => self.g.degree(NodeId::from_index(v)),
                Topology::CongestedClique => n - 1,
            };
            adapter_vertex_cost(degree, self.bandwidth_bits, state_words)
        });
        crate::util::greedy_partition(
            costs,
            self.memory_words / 2,
            "memory budget S cannot host the busiest vertex; raise S with with_memory_words \
             (the adapter needs S ≥ 2·(Δ·(1 + ⌈B/64⌉) + state))",
        )
    }

    /// Runs `nodes` (one CONGEST state per vertex, indexed by id)
    /// through the adapter on the sequential MPC engine.
    ///
    /// # Errors
    ///
    /// [`MpcError::Congest`] wraps the exact `SimError` the CONGEST
    /// engines would raise on a model violation; the other variants
    /// report MPC budget violations.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the graph size.
    pub fn run<A>(&self, nodes: Vec<A>) -> Result<AdapterReport<A::Output>, MpcError>
    where
        A: Algorithm + Send,
        A::Msg: Send,
    {
        self.run_with(nodes, Engine::Sequential)
    }

    /// [`CongestOnMpc::run`] on an explicit MPC [`Engine`] (both engines
    /// are bit-identical).
    ///
    /// # Errors
    ///
    /// Returns an [`MpcError`] like [`CongestOnMpc::run`].
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the graph size.
    pub fn run_with<A>(
        &self,
        nodes: Vec<A>,
        engine: Engine,
    ) -> Result<AdapterReport<A::Output>, MpcError>
    where
        A: Algorithm + Send,
        A::Msg: Send,
    {
        self.run_impl(
            nodes,
            engine,
            Scheduling::default(),
            None::<CodecFns<A::Msg, ()>>,
        )
    }

    /// Runs `nodes` under a [`RunConfig`]: engine, scheduling policy and
    /// codec selection in one value.
    ///
    /// With [`RunConfig::codec`] on, cross-machine [`RoutedBatch`]es
    /// carry packed [`MsgCodec::Word`]s instead of cloned message enums.
    /// Word charging happens on the declared bit sizes before encoding,
    /// so outputs, CONGEST [`Metrics`], [`MpcMetrics`] (I/O profile
    /// included) and errors are bit-identical to the enum plane.
    ///
    /// # Errors
    ///
    /// Returns an [`MpcError`] like [`CongestOnMpc::run`].
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the graph size.
    pub fn run_cfg<A>(
        &self,
        nodes: Vec<A>,
        cfg: &RunConfig,
    ) -> Result<AdapterReport<A::Output>, MpcError>
    where
        A: Algorithm + Send,
        A::Msg: MsgCodec + Send,
    {
        if cfg.codec {
            self.run_impl(nodes, cfg.engine, cfg.scheduling, Some(CodecFns::new()))
        } else {
            self.run_impl(
                nodes,
                cfg.engine,
                cfg.scheduling,
                None::<CodecFns<A::Msg, ()>>,
            )
        }
    }

    fn run_impl<A, W>(
        &self,
        nodes: Vec<A>,
        engine: Engine,
        scheduling: Scheduling,
        codec: Option<CodecFns<A::Msg, W>>,
    ) -> Result<AdapterReport<A::Output>, MpcError>
    where
        A: Algorithm + Send,
        A::Msg: Send,
        W: Copy + Send,
    {
        let n = self.g.num_nodes();
        assert_eq!(nodes.len(), n, "one algorithm state per vertex required");
        let starts = Arc::new(self.partition(std::mem::size_of::<A>().div_ceil(8))?);
        let num_machines = starts.len() - 1;

        let mut nodes = nodes;
        let mut machines: Vec<CongestShard<'_, A, W>> = Vec::with_capacity(num_machines);
        for k in (0..num_machines).rev() {
            let (lo, hi) = (starts[k], starts[k + 1]);
            let hosted: Vec<A> = nodes.split_off(lo);
            machines.push(CongestShard {
                g: self.g,
                lo,
                nodes: hosted,
                starts: Arc::clone(&starts),
                topology: self.topology,
                bandwidth_bits: self.bandwidth_bits,
                local_next: Vec::new(),
                local_words: 0,
                metrics: Metrics::default(),
                adjacency_words: (lo..hi).map(|v| self.g.degree(NodeId::from_index(v))).sum(),
                codec,
            });
        }
        machines.reverse();

        let sim = MpcSimulator::new(self.memory_words)
            .with_max_rounds(self.max_rounds)
            .with_scheduling(scheduling);
        let report = sim.run_with(machines, engine)?;

        let mut outputs = Vec::with_capacity(n);
        let mut congest = Metrics::default();
        for (shard_outputs, shard_metrics) in report.outputs {
            outputs.extend(shard_outputs);
            congest.messages += shard_metrics.messages;
            congest.bits += shard_metrics.bits;
            congest.max_message_bits = congest.max_message_bits.max(shard_metrics.max_message_bits);
            congest.rounds = congest.rounds.max(shard_metrics.rounds);
            if congest.congestion_profile.len() < shard_metrics.congestion_profile.len() {
                congest
                    .congestion_profile
                    .resize(shard_metrics.congestion_profile.len(), 0);
            }
            for (slot, &peak) in congest
                .congestion_profile
                .iter_mut()
                .zip(&shard_metrics.congestion_profile)
            {
                *slot = (*slot).max(peak);
            }
            congest.convergence_round = congest
                .convergence_round
                .max(shard_metrics.convergence_round);
        }
        // The adapter simulates the clean CONGEST plane: every charged
        // message is delivered, matching the native engines' tally.
        congest.fault.delivered = congest.messages;
        Ok(AdapterReport {
            outputs,
            congest,
            mpc: report.metrics,
            machines: num_machines,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_congest::primitives::FloodMax;
    use pga_congest::Simulator;
    use pga_graph::generators;

    fn floodmax_states(n: usize) -> Vec<FloodMax> {
        (0..n)
            .map(|i| FloodMax::new(NodeId::from_index(i)))
            .collect()
    }

    #[test]
    fn floodmax_bit_identical_to_congest_sim() {
        for g in [
            generators::path(30),
            generators::grid(6, 7),
            generators::star(25),
            generators::clique_chain(4, 6),
        ] {
            let n = g.num_nodes();
            let reference = Simulator::congest(&g).run(floodmax_states(n)).unwrap();
            let adapter = CongestOnMpc::congest(&g)
                .with_memory_words(512)
                .run(floodmax_states(n))
                .unwrap();
            assert_eq!(adapter.outputs, reference.outputs, "{g:?}");
            assert_eq!(adapter.congest, reference.metrics, "{g:?}");
            assert!(adapter.machines >= 1);
            assert!(adapter.mpc.peak_memory_words <= 512);
        }
    }

    #[test]
    fn partition_covers_all_vertices_contiguously() {
        let g = generators::grid(8, 8);
        let adapter = CongestOnMpc::congest(&g).with_memory_words(300);
        let starts = adapter.partition(4).unwrap();
        assert_eq!(starts[0], 0);
        assert_eq!(*starts.last().unwrap(), 64);
        assert!(starts.windows(2).all(|w| w[0] < w[1]));
        assert!(
            starts.len() - 1 > 1,
            "small budget must yield several machines"
        );
    }

    #[test]
    fn budget_too_small_for_hub_is_rejected() {
        let g = generators::star(40);
        let err = CongestOnMpc::congest(&g)
            .with_memory_words(64)
            .run(floodmax_states(40))
            .unwrap_err();
        assert!(matches!(err, MpcError::PreconditionViolated { .. }));
    }

    #[test]
    fn congest_violation_surfaces_identically() {
        use pga_congest::{MsgSize, SimError};
        #[derive(Clone)]
        struct Ping;
        impl MsgSize for Ping {
            fn size_bits(&self, _id_bits: usize) -> usize {
                1
            }
        }
        struct Bad;
        impl Algorithm for Bad {
            type Msg = Ping;
            type Output = ();
            fn round(&mut self, ctx: &Ctx, _inbox: &[(NodeId, Ping)]) -> Vec<(NodeId, Ping)> {
                if ctx.id == NodeId(5) && ctx.round == 0 {
                    vec![(NodeId(0), Ping)] // not a path-neighbor
                } else {
                    Vec::new()
                }
            }
            fn is_done(&self, _ctx: &Ctx) -> bool {
                false
            }
            fn output(&self, _ctx: &Ctx) {}
        }
        let g = generators::path(8);
        let reference = Simulator::congest(&g)
            .run((0..8).map(|_| Bad).collect::<Vec<_>>())
            .unwrap_err();
        let adapter = CongestOnMpc::congest(&g)
            .run((0..8).map(|_| Bad).collect::<Vec<_>>())
            .unwrap_err();
        assert_eq!(adapter, MpcError::Congest(reference.clone()));
        assert!(matches!(
            reference,
            SimError::IllegalDestination {
                from: NodeId(5),
                ..
            }
        ));
    }

    #[test]
    fn clique_topology_supported() {
        use pga_congest::MsgSize;
        #[derive(Clone)]
        struct Val(u32);
        impl MsgSize for Val {
            fn size_bits(&self, id_bits: usize) -> usize {
                id_bits
            }
        }
        struct Shout {
            best: u32,
            done: bool,
        }
        impl Algorithm for Shout {
            type Msg = Val;
            type Output = u32;
            fn round(&mut self, ctx: &Ctx, inbox: &[(NodeId, Val)]) -> Vec<(NodeId, Val)> {
                for (_, m) in inbox {
                    self.best = self.best.max(m.0);
                }
                if ctx.round == 0 {
                    (0..ctx.n)
                        .filter(|&j| j != ctx.id.index())
                        .map(|j| (NodeId::from_index(j), Val(self.best)))
                        .collect()
                } else {
                    self.done = true;
                    Vec::new()
                }
            }
            fn is_done(&self, _ctx: &Ctx) -> bool {
                self.done
            }
            fn output(&self, _ctx: &Ctx) -> u32 {
                self.best
            }
        }
        let g = generators::path(10);
        let mk = || {
            (0..10)
                .map(|i| Shout {
                    best: i as u32,
                    done: false,
                })
                .collect::<Vec<_>>()
        };
        let reference = Simulator::congested_clique(&g).run(mk()).unwrap();
        let adapter = CongestOnMpc::congested_clique(&g).run(mk()).unwrap();
        assert_eq!(adapter.outputs, reference.outputs);
        assert_eq!(adapter.congest, reference.metrics);
    }

    #[test]
    fn parallel_engine_matches_sequential_adapter() {
        let g = generators::grid(7, 9);
        let n = g.num_nodes();
        let driver = CongestOnMpc::congest(&g).with_memory_words(400);
        let seq = driver.run(floodmax_states(n)).unwrap();
        for threads in [2, 4] {
            let par = driver
                .run_with(floodmax_states(n), Engine::Parallel { threads })
                .unwrap();
            assert_eq!(par.outputs, seq.outputs, "t={threads}");
            assert_eq!(par.congest, seq.congest, "t={threads}");
            assert_eq!(par.mpc, seq.mpc, "t={threads}");
        }
    }

    #[test]
    fn empty_graph_trivial() {
        let g = Graph::empty(0);
        let report = CongestOnMpc::congest(&g)
            .run(Vec::<FloodMax>::new())
            .unwrap();
        assert!(report.outputs.is_empty());
        assert_eq!(report.congest, Metrics::default());
        assert_eq!(report.machines, 0);
    }

    /// Builds a shard by hand (bypassing the partitioner, whose headroom
    /// reservation exists precisely to keep honest runs within budget).
    fn raw_shard<'a, A: Algorithm>(
        g: &'a Graph,
        lo: usize,
        nodes: Vec<A>,
        starts: &Arc<Vec<usize>>,
        bandwidth_bits: usize,
    ) -> CongestShard<'a, A> {
        let hi = lo + nodes.len();
        CongestShard {
            g,
            lo,
            nodes,
            starts: Arc::clone(starts),
            topology: Topology::Congest,
            bandwidth_bits,
            local_next: Vec::new(),
            local_words: 0,
            metrics: Metrics::default(),
            adjacency_words: (lo..hi).map(|v| g.degree(NodeId::from_index(v))).sum(),
            codec: None,
        }
    }

    #[test]
    fn memory_budget_enforced_on_overpacked_shard() {
        // Everything on one machine: the initial memory check rejects the
        // partition with a typed violation before any round runs.
        let g = generators::path(40);
        let starts = Arc::new(vec![0, 40]);
        let shard = raw_shard(&g, 0, floodmax_states(40), &starts, 64);
        let err = MpcSimulator::new(64).run(vec![shard]).unwrap_err();
        assert!(
            matches!(
                err,
                MpcError::MemoryExceeded {
                    machine: MachineId(0),
                    round: 0,
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn io_budget_enforced_on_fat_messages() {
        // A star hub shipping full-bandwidth messages to every leaf in
        // one round: each CONGEST message is legal, but the hub machine's
        // aggregate send volume blows the MPC cap.
        use pga_congest::MsgSize;
        #[derive(Clone)]
        struct Fat;
        impl MsgSize for Fat {
            fn size_bits(&self, _id_bits: usize) -> usize {
                4096
            }
        }
        struct Hub {
            sent: bool,
        }
        impl Algorithm for Hub {
            type Msg = Fat;
            type Output = ();
            fn round(&mut self, ctx: &Ctx, _inbox: &[(NodeId, Fat)]) -> Vec<(NodeId, Fat)> {
                if ctx.round == 0 && ctx.id == NodeId(0) {
                    self.sent = true;
                    ctx.graph_neighbors.iter().map(|&v| (v, Fat)).collect()
                } else {
                    Vec::new()
                }
            }
            fn is_done(&self, _ctx: &Ctx) -> bool {
                self.sent
            }
            fn output(&self, _ctx: &Ctx) {}
        }
        let g = generators::star(20);
        let starts = Arc::new(vec![0, 1, 20]);
        let hub = raw_shard(&g, 0, vec![Hub { sent: false }], &starts, 4096);
        let leaves = raw_shard(
            &g,
            1,
            (1..20).map(|_| Hub { sent: false }).collect(),
            &starts,
            4096,
        );
        // Hub memory: 19 + 5 words; leaves: 19 + 19·5 words — both fit
        // S = 300, but the hub's round-0 batch is 19·(1 + 64) = 1235 words.
        let err = MpcSimulator::new(300).run(vec![hub, leaves]).unwrap_err();
        assert_eq!(
            err,
            MpcError::SendVolumeExceeded {
                machine: MachineId(0),
                words: 1235,
                limit_words: 300,
                round: 0
            }
        );
    }
}
