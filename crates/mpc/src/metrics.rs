//! Resource accounting for MPC runs: rounds, communication volume, and
//! peak per-machine memory.

use pga_runtime::FaultStats;

/// Aggregate resource metrics of a simulated MPC run.
///
/// The low-space MPC model is judged on three axes: the number of
/// synchronous rounds, the peak memory any single machine ever held
/// (which must stay within the `S = O(n^δ)` budget), and the total
/// communication volume. All sizes are in 64-bit **words**, the unit the
/// MPC literature charges (a word holds one `O(log n)`-bit identifier or
/// numeric value).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MpcMetrics {
    /// Number of synchronous rounds executed.
    pub rounds: usize,
    /// Total number of point-to-point messages delivered.
    pub messages: u64,
    /// Total communication volume in words.
    pub words: u64,
    /// Largest memory footprint any machine declared at the end of a
    /// round (or before round 0), in words.
    pub peak_memory_words: usize,
    /// Largest per-machine, per-round I/O volume observed (the maximum
    /// over machines and rounds of words sent and of words received).
    pub peak_round_io_words: usize,
    /// Per-round I/O profile: element `r` is the largest number of words
    /// any single machine sent or received in round `r`. Always has
    /// length [`rounds`](Self::rounds).
    pub io_profile: Vec<usize>,
    /// The adversary's whole-run fault tally (all zeros except
    /// [`FaultStats::delivered`] on a clean run).
    pub fault: FaultStats,
    /// The kernel's message-quiescence detector: the first round index
    /// from which no message was in flight for the rest of the run (0
    /// when the run never exchanged a message). Under faults this is
    /// the observable convergence round — how long the adversary kept
    /// the message plane busy.
    pub convergence_round: usize,
}

impl MpcMetrics {
    /// Average words per message, or 0.0 when nothing was sent.
    pub fn avg_message_words(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.words as f64 / self.messages as f64
        }
    }

    /// Folds `other` into `self` as a later execution phase: rounds,
    /// messages and words add; peaks take the maximum; the I/O profiles
    /// concatenate. Used by multi-phase drivers (Theorem 1 runs Phase I
    /// and Phase II as two MPC executions whose round counts add).
    pub fn absorb(&mut self, other: &MpcMetrics) {
        // A later phase's convergence round is offset by the rounds
        // already executed; a quiet phase leaves the detector alone.
        if other.convergence_round > 0 {
            self.convergence_round = self.rounds + other.convergence_round;
        }
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.words += other.words;
        self.peak_memory_words = self.peak_memory_words.max(other.peak_memory_words);
        self.peak_round_io_words = self.peak_round_io_words.max(other.peak_round_io_words);
        self.io_profile.extend_from_slice(&other.io_profile);
        self.fault.delivered += other.fault.delivered;
        self.fault.dropped += other.fault.dropped;
        self.fault.duplicated += other.fault.duplicated;
        self.fault.delayed += other.fault.delayed;
        self.fault.crashed += other.fault.crashed;
    }
}

impl std::fmt::Display for MpcMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} rounds, {} messages, {} words (peak memory {} words, peak round I/O {} words)",
            self.rounds,
            self.messages,
            self.words,
            self.peak_memory_words,
            self.peak_round_io_words
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_words() {
        let m = MpcMetrics {
            rounds: 2,
            messages: 4,
            words: 10,
            ..MpcMetrics::default()
        };
        assert!((m.avg_message_words() - 2.5).abs() < 1e-9);
        assert_eq!(MpcMetrics::default().avg_message_words(), 0.0);
    }

    #[test]
    fn absorb_adds_and_maxes() {
        let mut a = MpcMetrics {
            rounds: 3,
            messages: 5,
            words: 50,
            peak_memory_words: 100,
            peak_round_io_words: 20,
            io_profile: vec![20, 10, 5],
            ..Default::default()
        };
        let b = MpcMetrics {
            rounds: 2,
            messages: 1,
            words: 8,
            peak_memory_words: 70,
            peak_round_io_words: 30,
            io_profile: vec![30, 8],
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.messages, 6);
        assert_eq!(a.words, 58);
        assert_eq!(a.peak_memory_words, 100);
        assert_eq!(a.peak_round_io_words, 30);
        assert_eq!(a.io_profile, vec![20, 10, 5, 30, 8]);
    }

    #[test]
    fn display_contains_fields() {
        let m = MpcMetrics {
            rounds: 7,
            messages: 2,
            words: 9,
            peak_memory_words: 11,
            peak_round_io_words: 3,
            io_profile: vec![3; 7],
            ..Default::default()
        };
        let s = format!("{m}");
        assert!(s.contains("7 rounds"));
        assert!(s.contains("peak memory 11 words"));
    }
}
