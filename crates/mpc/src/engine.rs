//! The synchronous low-space MPC execution engine.
//!
//! The model: `M` machines, each holding at most `S` words of local
//! memory, communicate in synchronous rounds. In every round a machine
//! may send arbitrary point-to-point messages, but its total outgoing
//! volume and its total incoming volume are each capped at `S` words —
//! a machine cannot emit or absorb more than it can store. Violations
//! are typed [`MpcError`]s, mirroring `pga_congest::SimError`.
//!
//! The round loop itself lives in the shared [`pga_runtime`] kernel
//! (the same one that drives the CONGEST simulator); this module
//! supplies the MPC *model*: machine addressing, word charging with the
//! per-round send/receive caps, the memory-budget check, and the
//! mapping of the kernel's per-round accounting onto [`MpcMetrics`].

use crate::MpcMetrics;
use pga_congest::SimError;
use pga_runtime::{ActorId, ExecModel, FaultStats, KernelConfig, MsgSink, Poll, RoundProfile};
use std::fmt;

pub use pga_congest::{Engine, Scheduling};
pub use pga_runtime::{
    Adversary, FaultSpec, FaultTrace, JsonlProbe, NoopProbe, Probe, RunConfig, SeededAdversary,
    TraceAdversary,
};

/// Identifier of a machine in an MPC execution.
///
/// Machine identifiers are dense indices `0..M`, newtyped so vertex ids
/// ([`pga_graph::NodeId`]) and machine ids cannot be confused.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MachineId(pub u32);

impl MachineId {
    /// Returns the identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a `MachineId` from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `i` does not fit into `u32`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        MachineId(u32::try_from(i).expect("machine index exceeds u32::MAX"))
    }
}

impl ActorId for MachineId {
    #[inline]
    fn index(self) -> usize {
        MachineId::index(self)
    }
    #[inline]
    fn from_index(i: usize) -> Self {
        MachineId::from_index(i)
    }
}

impl fmt::Debug for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Size accounting for MPC messages, in 64-bit words — the historical
/// MPC name for the runtime-level [`pga_runtime::MsgCost`] trait.
///
/// The engine charges [`size_words`](pga_runtime::MsgCost::size_words),
/// flooring at 1 even for declared-zero payloads (a message occupies an
/// envelope). Implementors also state
/// [`size_bits`](pga_runtime::MsgCost::size_bits), which keeps the bit
/// and word accountings of one message type in a single impl.
pub use pga_runtime::MsgCost as WordSize;

/// Per-machine view of the execution, passed to every [`Machine`]
/// callback.
#[derive(Debug)]
pub struct MpcCtx {
    /// This machine's identifier.
    pub id: MachineId,
    /// Total number of machines `M` (globally known).
    pub machines: usize,
    /// Current round number, starting at 0.
    pub round: usize,
    /// The per-machine memory budget `S`, in words.
    pub memory_words: usize,
}

impl MpcCtx {
    /// Whether this machine may address `to`: any other in-range machine
    /// (MPC communication is all-to-all).
    pub fn can_send(&self, to: MachineId) -> bool {
        to.index() < self.machines && to != self.id
    }
}

/// A machine-local program, written as a per-machine state machine —
/// the MPC analogue of `pga_congest::Algorithm`.
///
/// The simulator calls [`Machine::round`] once per machine per round (in
/// machine-id order, though well-formed programs must not depend on
/// that), delivering the messages sent to this machine in the previous
/// round sorted by sender. The run ends when every machine reports
/// [`Machine::is_done`] and no messages are in flight.
pub trait Machine {
    /// Message type exchanged by this program.
    type Msg: Clone + WordSize;
    /// Per-machine output produced at the end of the run.
    type Output;

    /// Executes one round: consume the inbox, return the outbox.
    ///
    /// Unlike CONGEST there is no per-link bandwidth or one-message-per-
    /// destination rule — any number of messages to any machines — but
    /// the engine enforces the per-round I/O caps (total sent and total
    /// received each at most `S` words per machine) and the memory
    /// budget ([`Machine::memory_words`] at most `S` after every round).
    ///
    /// Programs may abort the run with their own [`MpcError`] (the
    /// CONGEST adapter propagates `SimError`s this way).
    ///
    /// # Errors
    ///
    /// Returns an [`MpcError`] to abort the whole execution.
    fn round(
        &mut self,
        ctx: &MpcCtx,
        inbox: &[(MachineId, Self::Msg)],
    ) -> Result<Vec<(MachineId, Self::Msg)>, MpcError>;

    /// The machine's current local memory footprint in words.
    ///
    /// Checked against the budget `S` before round 0 and after every
    /// round. Self-declared (the simulator cannot introspect arbitrary
    /// state), so implementations must account for their resident data —
    /// the provided machines charge adjacency, per-vertex state, and
    /// ghost tables.
    fn memory_words(&self) -> usize;

    /// Whether this machine has terminated (quiescent and output-ready).
    fn is_done(&self, ctx: &MpcCtx) -> bool;

    /// Whether the engine may *skip* this machine's [`Machine::round`]
    /// call in rounds where its inbox is empty (the
    /// [`Scheduling::ActiveSet`] policy).
    ///
    /// **Contract:** if `can_skip` returns `true` and the machine's
    /// inbox is empty, `round` must be a pure no-op — no state mutation
    /// (including the declared [`Machine::memory_words`] footprint), an
    /// empty outbox, and `Ok` — and both `is_done` and `can_skip` must
    /// remain `true` for the unchanged state until a message arrives
    /// (the engine may stop re-polling a skippable quiet machine).
    /// Skipping a call that would have done nothing is unobservable, so
    /// both scheduling policies stay bit-identical. The default
    /// (`is_done`) satisfies this for plain state machines that go quiet
    /// once finished; programs whose `round` has residual per-cycle side
    /// effects (ghost-table resets, internal clocks) override this to
    /// return `false` and are then simply never skipped.
    fn can_skip(&self, ctx: &MpcCtx) -> bool {
        self.is_done(ctx)
    }

    /// The machine's final output.
    fn output(&self, ctx: &MpcCtx) -> Self::Output;
}

/// Result of a completed MPC run.
#[derive(Debug)]
pub struct MpcReport<O> {
    /// Output of every machine, indexed by machine id.
    pub outputs: Vec<O>,
    /// Resource metrics of the run.
    pub metrics: MpcMetrics,
}

impl<O> From<pga_runtime::Run<O, MpcMetrics>> for MpcReport<O> {
    fn from(run: pga_runtime::Run<O, MpcMetrics>) -> Self {
        MpcReport {
            outputs: run.outputs,
            metrics: run.metrics,
        }
    }
}

/// Errors that abort an MPC execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpcError {
    /// A machine addressed a message to itself or out of range.
    IllegalMachine {
        /// Sending machine.
        from: MachineId,
        /// Intended destination.
        to: MachineId,
        /// Round in which the violation occurred.
        round: usize,
    },
    /// A machine's declared memory exceeded the budget `S`.
    MemoryExceeded {
        /// The offending machine.
        machine: MachineId,
        /// Declared footprint in words.
        used_words: usize,
        /// The budget `S` in words.
        limit_words: usize,
        /// Round after which the violation was detected (0 for the
        /// pre-round-0 check of the initial state).
        round: usize,
    },
    /// A machine sent more than `S` words in one round.
    SendVolumeExceeded {
        /// The offending machine.
        machine: MachineId,
        /// Words it attempted to send.
        words: usize,
        /// The budget `S` in words.
        limit_words: usize,
        /// Round in which the violation occurred.
        round: usize,
    },
    /// A machine was addressed more than `S` words in one round.
    RecvVolumeExceeded {
        /// The overwhelmed machine.
        machine: MachineId,
        /// Words addressed to it.
        words: usize,
        /// The budget `S` in words.
        limit_words: usize,
        /// Round in which the violation occurred.
        round: usize,
    },
    /// The round budget was exhausted before all machines terminated.
    RoundLimitExceeded {
        /// The limit that was hit.
        limit: usize,
    },
    /// A program precondition on the input was violated (e.g. the
    /// memory budget cannot host the highest-degree vertex).
    PreconditionViolated {
        /// Human-readable description of the violated precondition.
        what: &'static str,
    },
    /// The simulated CONGEST algorithm violated the CONGEST model
    /// (raised by the adapter, wrapping the exact `SimError` the CONGEST
    /// engines would raise).
    Congest(SimError),
}

impl fmt::Display for MpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpcError::IllegalMachine { from, to, round } => {
                write!(
                    f,
                    "round {round}: {from:?} addressed invalid machine {to:?}"
                )
            }
            MpcError::MemoryExceeded {
                machine,
                used_words,
                limit_words,
                round,
            } => write!(
                f,
                "round {round}: {machine:?} holds {used_words} words > S = {limit_words}"
            ),
            MpcError::SendVolumeExceeded {
                machine,
                words,
                limit_words,
                round,
            } => write!(
                f,
                "round {round}: {machine:?} sent {words} words > S = {limit_words}"
            ),
            MpcError::RecvVolumeExceeded {
                machine,
                words,
                limit_words,
                round,
            } => write!(
                f,
                "round {round}: {machine:?} was sent {words} words > S = {limit_words}"
            ),
            MpcError::RoundLimitExceeded { limit } => {
                write!(f, "round limit {limit} exceeded without termination")
            }
            MpcError::PreconditionViolated { what } => {
                write!(f, "program precondition violated: {what}")
            }
            MpcError::Congest(e) => write!(f, "simulated CONGEST violation: {e}"),
        }
    }
}

impl std::error::Error for MpcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MpcError::Congest(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for MpcError {
    fn from(e: SimError) -> Self {
        MpcError::Congest(e)
    }
}

/// The per-machine cost estimate the sharded engine balances on: the
/// machine's declared resident words (its adjacency, per-vertex state,
/// and ghost tables dominate its per-round message work), floored at 1
/// so empty machines still count as actors.
fn machine_cost<A: Machine>(machine: &A) -> u64 {
    machine.memory_words().max(1) as u64
}

/// The per-machine memory budget `S = max(floor, c · n^δ)` in words.
///
/// `δ ∈ (0, 1)` is the low-space exponent (the literature's sublinear
/// regime); the floor keeps tiny instances runnable (a budget below a
/// few cache lines is not a meaningful machine).
pub fn low_space_words(n: usize, delta: f64) -> usize {
    assert!(delta > 0.0 && delta < 1.0, "δ must be in (0, 1)");
    ((n as f64).powf(delta).ceil() as usize).max(64)
}

/// The MPC execution driver.
///
/// Construct with [`MpcSimulator::new`] and tune with the builder-style
/// setters; run machine programs with [`MpcSimulator::run`] (sequential
/// reference engine), [`MpcSimulator::run_parallel`] (sharded
/// multi-threaded engine, bit-identical), or [`MpcSimulator::run_with`].
#[derive(Clone, Copy, Debug)]
pub struct MpcSimulator {
    memory_words: usize,
    max_rounds: usize,
    scheduling: Scheduling,
}

/// The [`ExecModel`] instantiation that turns the shared round kernel
/// into the MPC engine: word charging with the send cap, the
/// receive-volume tally, the per-machine memory-budget check, and
/// [`MpcMetrics`] accumulation (including the per-round I/O profile).
struct MpcModel<'s, A> {
    sim: &'s MpcSimulator,
    /// Total machine count `M` (the `nodes` vector length, fixed per run).
    machines: usize,
    _machine: std::marker::PhantomData<fn(A)>,
}

impl<A: Machine> MpcModel<'_, A> {
    fn ctx(&self, id: MachineId, round: usize) -> MpcCtx {
        MpcCtx {
            id,
            machines: self.machines,
            round,
            memory_words: self.sim.memory_words,
        }
    }

    /// Checks one machine's declared memory against the budget.
    fn check_memory(&self, machine: &A, id: MachineId, round: usize) -> Result<usize, MpcError> {
        let used = machine.memory_words();
        if used > self.sim.memory_words {
            return Err(MpcError::MemoryExceeded {
                machine: id,
                used_words: used,
                limit_words: self.sim.memory_words,
                round,
            });
        }
        Ok(used)
    }

    /// Validates one outgoing message against the model — destination in
    /// range, running send volume within `S` — and returns its charged
    /// word size (at least 1: the envelope). Mirrors
    /// `pga_congest::check_message`.
    fn charge_message(
        &self,
        ctx: &MpcCtx,
        to: MachineId,
        msg: &A::Msg,
        sent: &mut usize,
    ) -> Result<usize, MpcError> {
        if !ctx.can_send(to) {
            return Err(MpcError::IllegalMachine {
                from: ctx.id,
                to,
                round: ctx.round,
            });
        }
        let w = msg.size_words().max(1);
        *sent += w;
        if *sent > self.sim.memory_words {
            return Err(MpcError::SendVolumeExceeded {
                machine: ctx.id,
                words: *sent,
                limit_words: self.sim.memory_words,
                round: ctx.round,
            });
        }
        Ok(w)
    }
}

impl<A: Machine> ExecModel for MpcModel<'_, A> {
    type Id = MachineId;
    type Node = A;
    type Msg = A::Msg;
    type Output = A::Output;
    type Error = MpcError;
    type Metrics = MpcMetrics;
    type SendScratch = usize;
    // The MPC plane keeps the enum exchange at kernel level; the
    // adapter's cross-machine batches pack internally instead (see
    // `RoutedBatch`), which compresses the payload without constraining
    // arbitrary `Machine::Msg` types to a fixed-width word.
    type Packed = ();

    const TRACK_RECV: bool = true;

    fn pre_run(&self, nodes: &[A], metrics: &mut MpcMetrics) -> Result<(), MpcError> {
        // The initial partition must already fit the budget.
        for (i, machine) in nodes.iter().enumerate() {
            let used = self.check_memory(machine, MachineId::from_index(i), 0)?;
            metrics.peak_memory_words = metrics.peak_memory_words.max(used);
        }
        Ok(())
    }

    fn actor_cost(&self, node: &A, _idx: usize) -> u64 {
        machine_cost(node)
    }

    fn poll(&self, node: &A, idx: usize, round: usize) -> Poll {
        let ctx = self.ctx(MachineId::from_index(idx), round);
        Poll {
            done: node.is_done(&ctx),
            skippable: node.can_skip(&ctx),
        }
    }

    fn output(&self, node: &A, idx: usize, round: usize) -> A::Output {
        node.output(&self.ctx(MachineId::from_index(idx), round))
    }

    fn round_limit_error(&self, limit: usize) -> MpcError {
        MpcError::RoundLimitExceeded { limit }
    }

    fn step<S: MsgSink<Self>>(
        &self,
        node: &mut A,
        idx: usize,
        round: usize,
        inbox: &[(MachineId, A::Msg)],
        sent: &mut usize,
        acc: &mut RoundProfile,
        sink: &mut S,
    ) -> Result<(), MpcError> {
        let ctx = self.ctx(MachineId::from_index(idx), round);
        let outbox = node.round(&ctx, inbox)?;
        *sent = 0;
        // Accumulate in locals and fold into the shard profile once per
        // machine, so the hot loop keeps its counters in registers.
        let mut messages = 0u64;
        let mut volume = 0u64;
        for (to, msg) in outbox {
            let w = self.charge_message(&ctx, to, &msg, sent)?;
            // The send-side cap (`sent`) charges the attempt; delivered
            // volume is charged by the copies that actually traverse
            // the network (always 1 on the clean engines; an
            // adversary's drop charges 0, a duplicate 2).
            let copies = sink.deliver(self, to, ctx.id, msg);
            messages += u64::from(copies);
            volume += u64::from(copies) * w as u64;
            // Telemetry only: a no-op unless a probe allocated the
            // histogram (word sizes, not bits, on this plane).
            acc.observe_size(w as u64, copies);
        }
        acc.messages += messages;
        acc.volume += volume;
        acc.peak_actor_out = acc.peak_actor_out.max(*sent);
        let used = self.check_memory(node, ctx.id, round)?;
        acc.peak_state = acc.peak_state.max(used);
        Ok(())
    }

    fn recv_charge(&self, msg: &A::Msg) -> usize {
        msg.size_words().max(1)
    }

    fn wire_charge(&self, msg: &A::Msg) -> u64 {
        msg.size_words().max(1) as u64
    }

    fn arq_header_charge(&self) -> u64 {
        // The per-link sequence number rides in one machine word.
        1
    }

    fn arq_ack_charge(&self) -> u64 {
        // A cumulative ack is one machine word.
        1
    }

    fn check_recv(&self, recv: &[usize], round: usize) -> Result<(), MpcError> {
        // Checked in machine order so both engines report the same
        // first violation.
        for (j, &w) in recv.iter().enumerate() {
            if w > self.sim.memory_words {
                return Err(MpcError::RecvVolumeExceeded {
                    machine: MachineId::from_index(j),
                    words: w,
                    limit_words: self.sim.memory_words,
                    round,
                });
            }
        }
        Ok(())
    }

    fn end_round(
        &self,
        acc: &RoundProfile,
        recv: &[usize],
        round: usize,
        metrics: &mut MpcMetrics,
    ) {
        metrics.messages += acc.messages;
        metrics.words += acc.volume;
        metrics.peak_memory_words = metrics.peak_memory_words.max(acc.peak_state);
        let round_io = acc
            .peak_actor_out
            .max(recv.iter().copied().max().unwrap_or(0));
        metrics.rounds = round + 1;
        metrics.peak_round_io_words = metrics.peak_round_io_words.max(round_io);
        metrics.io_profile.push(round_io);
    }

    fn finish(&self, metrics: &mut MpcMetrics, fault: &FaultStats, convergence_round: usize) {
        metrics.fault = *fault;
        metrics.convergence_round = convergence_round;
    }
}

impl MpcSimulator {
    /// An MPC simulator with per-machine budget `S = memory_words`.
    pub fn new(memory_words: usize) -> Self {
        MpcSimulator {
            memory_words,
            max_rounds: 1_000_000,
            scheduling: Scheduling::default(),
        }
    }

    /// Overrides the safety round budget (default one million).
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Overrides the round-scheduling policy (default
    /// [`Scheduling::ActiveSet`]); both policies are bit-identical, see
    /// [`Machine::can_skip`].
    pub fn with_scheduling(mut self, scheduling: Scheduling) -> Self {
        self.scheduling = scheduling;
        self
    }

    /// The per-machine memory budget `S` in words.
    pub fn memory_words(&self) -> usize {
        self.memory_words
    }

    /// The contiguous shard boundaries [`MpcSimulator::run_parallel`]
    /// will use for an explicit `threads` count: the cost-balanced
    /// partition of [`pga_runtime::balanced_partition`] over each
    /// machine's declared resident words. Exposed so benches and tests
    /// can inspect per-shard load; boundaries never affect outputs,
    /// only wall-clock balance.
    pub fn shard_boundaries<A: Machine>(&self, machines: &[A], threads: usize) -> Vec<usize> {
        let costs: Vec<u64> = machines.iter().map(machine_cost).collect();
        pga_runtime::balanced_partition(&costs, threads)
    }

    fn kernel_config(&self) -> KernelConfig {
        KernelConfig {
            max_rounds: self.max_rounds,
            scheduling: self.scheduling,
        }
    }

    fn model<A: Machine>(&self, machines: usize) -> MpcModel<'_, A> {
        MpcModel {
            sim: self,
            machines,
            _machine: std::marker::PhantomData,
        }
    }

    /// Runs `machines` (one program state per machine, indexed by id) to
    /// completion on the single-threaded reference engine.
    ///
    /// # Errors
    ///
    /// Returns an [`MpcError`] if a machine violates the memory or I/O
    /// budget, a program aborts, or the round budget is exhausted.
    pub fn run<A: Machine>(&self, machines: Vec<A>) -> Result<MpcReport<A::Output>, MpcError> {
        let m = machines.len();
        Ok(
            pga_runtime::run_sequential(&self.model::<A>(m), machines, self.kernel_config())?
                .into(),
        )
    }

    /// Runs `machines` to completion on the sharded multi-threaded
    /// engine — the same [`pga_runtime`] kernel that drives
    /// `pga_congest::Simulator::run_parallel`, sharded over machines.
    ///
    /// **Bit-identical** to [`MpcSimulator::run`]: same outputs, same
    /// [`MpcMetrics`], same [`MpcError`] on violations, for every
    /// thread count. A violation aborts with the first offending
    /// machine's error, though `round` callbacks of higher-id machines
    /// in other shards may already have executed by then.
    ///
    /// `threads == 0` selects one shard per available CPU. With one
    /// thread (or fewer than two machines per shard) the call falls
    /// through to the sequential engine.
    ///
    /// # Errors
    ///
    /// Returns an [`MpcError`] like [`MpcSimulator::run`].
    pub fn run_parallel<A>(
        &self,
        machines: Vec<A>,
        threads: usize,
    ) -> Result<MpcReport<A::Output>, MpcError>
    where
        A: Machine + Send,
        A::Msg: Send,
    {
        let m = machines.len();
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            threads
        };
        Ok(
            pga_runtime::run_sharded(&self.model::<A>(m), machines, threads, self.kernel_config())?
                .into(),
        )
    }

    /// Runs `machines` on the engine selected by `engine` (the same
    /// [`Engine`] enum the CONGEST simulator dispatches on). Both engines
    /// produce bit-identical [`MpcReport`]s.
    ///
    /// # Errors
    ///
    /// Returns an [`MpcError`] like [`MpcSimulator::run`].
    pub fn run_with<A>(
        &self,
        machines: Vec<A>,
        engine: Engine,
    ) -> Result<MpcReport<A::Output>, MpcError>
    where
        A: Machine + Send,
        A::Msg: Send,
    {
        match engine {
            Engine::Sequential => self.run(machines),
            Engine::Parallel { threads } => self.run_parallel(machines, threads),
        }
    }

    /// Runs `machines` under a [`RunConfig`]: engine, scheduling
    /// policy, round budget, and fault plan in one value.
    ///
    /// The configured [`RunConfig::scheduling`] and
    /// [`RunConfig::max_rounds`] override this simulator's settings for
    /// the run; with [`RunConfig::fault`] set the run goes through the
    /// adversarial executor ([`MpcSimulator::run_adversary`]).
    /// [`RunConfig::codec`] is ignored — the MPC plane keeps the enum
    /// exchange at kernel level (see the `Packed` note on the model).
    ///
    /// # Errors
    ///
    /// Returns an [`MpcError`] like [`MpcSimulator::run`].
    pub fn run_cfg<A>(
        &self,
        machines: Vec<A>,
        cfg: &RunConfig,
    ) -> Result<MpcReport<A::Output>, MpcError>
    where
        A: Machine + Send,
        A::Msg: Send,
    {
        match JsonlProbe::from_run_config(cfg, "mpc") {
            Some(probe) => self.run_cfg_probed(machines, cfg, &probe),
            None => self.run_cfg_probed(machines, cfg, &NoopProbe),
        }
    }

    /// [`MpcSimulator::run_cfg`] with an explicit [`Probe`] attached.
    ///
    /// The probe observes every executor this dispatch can select —
    /// sequential, sharded, or adversarial — without changing outputs,
    /// [`MpcMetrics`], or errors (*observer neutrality*; see
    /// [`pga_runtime::probe`]). Passing [`NoopProbe`] is exactly the
    /// un-probed run: the kernel monomorphizes every callback and timer
    /// away.
    ///
    /// # Errors
    ///
    /// Returns an [`MpcError`] like [`MpcSimulator::run`].
    pub fn run_cfg_probed<A, P>(
        &self,
        machines: Vec<A>,
        cfg: &RunConfig,
        probe: &P,
    ) -> Result<MpcReport<A::Output>, MpcError>
    where
        A: Machine + Send,
        A::Msg: Send,
        P: Probe,
    {
        let mut sim = *self;
        sim.scheduling = cfg.scheduling;
        if let Some(max) = cfg.max_rounds {
            sim.max_rounds = max;
        }
        let m = machines.len();
        if let Some(rel) = cfg.reliability {
            // The reliable (ARQ) executor subsumes the adversary: with
            // no fault armed it runs over a never-interfering one.
            let adversary = SeededAdversary::new(cfg.fault.unwrap_or_else(FaultSpec::none));
            #[allow(clippy::disallowed_methods)] // the sanctioned wrapper
            return Ok(pga_runtime::arq::run_reliable_probed(
                &sim.model::<A>(m),
                machines,
                Self::fault_threads(cfg.engine),
                sim.kernel_config(),
                rel,
                &adversary,
                probe,
            )?
            .into());
        }
        if let Some(spec) = cfg.fault {
            let adversary = SeededAdversary::new(spec);
            #[allow(clippy::disallowed_methods)] // the sanctioned wrapper
            return Ok(pga_runtime::fault::run_faulty_probed(
                &sim.model::<A>(m),
                machines,
                Self::fault_threads(cfg.engine),
                sim.kernel_config(),
                &adversary,
                probe,
            )?
            .into());
        }
        match cfg.engine {
            Engine::Sequential => Ok(pga_runtime::run_sequential_probed(
                &sim.model::<A>(m),
                machines,
                sim.kernel_config(),
                probe,
            )?
            .into()),
            Engine::Parallel { threads } => {
                let threads = if threads == 0 {
                    std::thread::available_parallelism().map_or(1, |p| p.get())
                } else {
                    threads
                };
                Ok(pga_runtime::run_sharded_probed(
                    &sim.model::<A>(m),
                    machines,
                    threads,
                    sim.kernel_config(),
                    probe,
                )?
                .into())
            }
        }
    }

    /// The thread count a fault run uses for `engine` (the adversarial
    /// executor has no separate sequential/sharded split — results are
    /// bit-identical either way).
    fn fault_threads(engine: Engine) -> usize {
        match engine {
            Engine::Sequential => 1,
            Engine::Parallel { threads: 0 } => {
                std::thread::available_parallelism().map_or(1, |p| p.get())
            }
            Engine::Parallel { threads } => threads,
        }
    }

    /// Runs `machines` on the adversarial executor under an explicit
    /// [`Adversary`]. Fault decisions are pure functions of
    /// `(round, sender, seq)`, so the run is bit-identical for every
    /// `engine` choice, and an adversary that never interferes
    /// reproduces [`MpcSimulator::run`] bit for bit. Most callers want
    /// [`MpcSimulator::run_cfg`] with [`RunConfig::adversary`]; this
    /// entry point exists for custom [`Adversary`] implementations and
    /// replay tooling.
    ///
    /// # Errors
    ///
    /// Returns an [`MpcError`] if a machine violates the memory or I/O
    /// budget, a program aborts, or the round budget is exhausted
    /// (which adversarially starved runs routinely do — bound the
    /// budget via [`MpcSimulator::with_max_rounds`] or
    /// [`RunConfig::max_rounds`]).
    pub fn run_adversary<A>(
        &self,
        machines: Vec<A>,
        engine: Engine,
        adversary: &dyn Adversary,
    ) -> Result<MpcReport<A::Output>, MpcError>
    where
        A: Machine + Send,
        A::Msg: Send,
    {
        let m = machines.len();
        #[allow(clippy::disallowed_methods)] // the sanctioned wrapper
        Ok(pga_runtime::fault::run_faulty(
            &self.model::<A>(m),
            machines,
            Self::fault_threads(engine),
            self.kernel_config(),
            adversary,
        )?
        .into())
    }

    /// Runs `machines` under `spec` while recording every inflicted
    /// fault, returning the report together with the [`FaultTrace`]
    /// that [`MpcSimulator::run_replay`] re-executes bit for bit.
    ///
    /// Engine, scheduling, and round budget come from `cfg`;
    /// [`RunConfig::fault`] is ignored (`spec` is explicit).
    ///
    /// # Errors
    ///
    /// Returns an [`MpcError`] like [`MpcSimulator::run_adversary`].
    pub fn run_traced<A>(
        &self,
        machines: Vec<A>,
        spec: FaultSpec,
        cfg: &RunConfig,
    ) -> Result<(MpcReport<A::Output>, FaultTrace), MpcError>
    where
        A: Machine + Send,
        A::Msg: Send,
    {
        let mut sim = *self;
        sim.scheduling = cfg.scheduling;
        if let Some(max) = cfg.max_rounds {
            sim.max_rounds = max;
        }
        let m = machines.len();
        let adversary = SeededAdversary::recording(spec);
        let report = sim.run_adversary(machines, cfg.engine, &adversary)?;
        Ok((report, adversary.into_trace(m)))
    }

    /// Re-executes a recorded fault schedule bit for bit (same outputs,
    /// same [`MpcMetrics`], at any engine/thread choice).
    ///
    /// # Errors
    ///
    /// Returns an [`MpcError`] like [`MpcSimulator::run_adversary`].
    pub fn run_replay<A>(
        &self,
        machines: Vec<A>,
        trace: &FaultTrace,
        cfg: &RunConfig,
    ) -> Result<MpcReport<A::Output>, MpcError>
    where
        A: Machine + Send,
        A::Msg: Send,
    {
        let mut sim = *self;
        sim.scheduling = cfg.scheduling;
        if let Some(max) = cfg.max_rounds {
            sim.max_rounds = max;
        }
        sim.run_adversary(machines, cfg.engine, &TraceAdversary::new(trace))
    }
}
