//! The synchronous low-space MPC execution engine.
//!
//! The model: `M` machines, each holding at most `S` words of local
//! memory, communicate in synchronous rounds. In every round a machine
//! may send arbitrary point-to-point messages, but its total outgoing
//! volume and its total incoming volume are each capped at `S` words —
//! a machine cannot emit or absorb more than it can store. Violations
//! are typed [`MpcError`]s, mirroring `pga_congest::SimError`.

use crate::MpcMetrics;
use pga_congest::SimError;
use std::fmt;

pub use pga_congest::Engine;

/// Identifier of a machine in an MPC execution.
///
/// Machine identifiers are dense indices `0..M`, newtyped so vertex ids
/// ([`pga_graph::NodeId`]) and machine ids cannot be confused.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MachineId(pub u32);

impl MachineId {
    /// Returns the identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a `MachineId` from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `i` does not fit into `u32`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        MachineId(u32::try_from(i).expect("machine index exceeds u32::MAX"))
    }
}

impl fmt::Debug for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Size accounting for MPC messages, in 64-bit words.
pub trait WordSize {
    /// The size of this message in words (at least 1 is charged by the
    /// engine even for declared-zero payloads — a message occupies an
    /// envelope).
    fn size_words(&self) -> usize;
}

/// Per-machine view of the execution, passed to every [`Machine`]
/// callback.
#[derive(Debug)]
pub struct MpcCtx {
    /// This machine's identifier.
    pub id: MachineId,
    /// Total number of machines `M` (globally known).
    pub machines: usize,
    /// Current round number, starting at 0.
    pub round: usize,
    /// The per-machine memory budget `S`, in words.
    pub memory_words: usize,
}

impl MpcCtx {
    /// Whether this machine may address `to`: any other in-range machine
    /// (MPC communication is all-to-all).
    pub fn can_send(&self, to: MachineId) -> bool {
        to.index() < self.machines && to != self.id
    }
}

/// A machine-local program, written as a per-machine state machine —
/// the MPC analogue of `pga_congest::Algorithm`.
///
/// The simulator calls [`Machine::round`] once per machine per round (in
/// machine-id order, though well-formed programs must not depend on
/// that), delivering the messages sent to this machine in the previous
/// round sorted by sender. The run ends when every machine reports
/// [`Machine::is_done`] and no messages are in flight.
pub trait Machine {
    /// Message type exchanged by this program.
    type Msg: Clone + WordSize;
    /// Per-machine output produced at the end of the run.
    type Output;

    /// Executes one round: consume the inbox, return the outbox.
    ///
    /// Unlike CONGEST there is no per-link bandwidth or one-message-per-
    /// destination rule — any number of messages to any machines — but
    /// the engine enforces the per-round I/O caps (total sent and total
    /// received each at most `S` words per machine) and the memory
    /// budget ([`Machine::memory_words`] at most `S` after every round).
    ///
    /// Programs may abort the run with their own [`MpcError`] (the
    /// CONGEST adapter propagates `SimError`s this way).
    ///
    /// # Errors
    ///
    /// Returns an [`MpcError`] to abort the whole execution.
    fn round(
        &mut self,
        ctx: &MpcCtx,
        inbox: &[(MachineId, Self::Msg)],
    ) -> Result<Vec<(MachineId, Self::Msg)>, MpcError>;

    /// The machine's current local memory footprint in words.
    ///
    /// Checked against the budget `S` before round 0 and after every
    /// round. Self-declared (the simulator cannot introspect arbitrary
    /// state), so implementations must account for their resident data —
    /// the provided machines charge adjacency, per-vertex state, and
    /// ghost tables.
    fn memory_words(&self) -> usize;

    /// Whether this machine has terminated (quiescent and output-ready).
    fn is_done(&self, ctx: &MpcCtx) -> bool;

    /// The machine's final output.
    fn output(&self, ctx: &MpcCtx) -> Self::Output;
}

/// Result of a completed MPC run.
#[derive(Debug)]
pub struct MpcReport<O> {
    /// Output of every machine, indexed by machine id.
    pub outputs: Vec<O>,
    /// Resource metrics of the run.
    pub metrics: MpcMetrics,
}

/// Errors that abort an MPC execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpcError {
    /// A machine addressed a message to itself or out of range.
    IllegalMachine {
        /// Sending machine.
        from: MachineId,
        /// Intended destination.
        to: MachineId,
        /// Round in which the violation occurred.
        round: usize,
    },
    /// A machine's declared memory exceeded the budget `S`.
    MemoryExceeded {
        /// The offending machine.
        machine: MachineId,
        /// Declared footprint in words.
        used_words: usize,
        /// The budget `S` in words.
        limit_words: usize,
        /// Round after which the violation was detected (0 for the
        /// pre-round-0 check of the initial state).
        round: usize,
    },
    /// A machine sent more than `S` words in one round.
    SendVolumeExceeded {
        /// The offending machine.
        machine: MachineId,
        /// Words it attempted to send.
        words: usize,
        /// The budget `S` in words.
        limit_words: usize,
        /// Round in which the violation occurred.
        round: usize,
    },
    /// A machine was addressed more than `S` words in one round.
    RecvVolumeExceeded {
        /// The overwhelmed machine.
        machine: MachineId,
        /// Words addressed to it.
        words: usize,
        /// The budget `S` in words.
        limit_words: usize,
        /// Round in which the violation occurred.
        round: usize,
    },
    /// The round budget was exhausted before all machines terminated.
    RoundLimitExceeded {
        /// The limit that was hit.
        limit: usize,
    },
    /// A program precondition on the input was violated (e.g. the
    /// memory budget cannot host the highest-degree vertex).
    PreconditionViolated {
        /// Human-readable description of the violated precondition.
        what: &'static str,
    },
    /// The simulated CONGEST algorithm violated the CONGEST model
    /// (raised by the adapter, wrapping the exact `SimError` the CONGEST
    /// engines would raise).
    Congest(SimError),
}

impl fmt::Display for MpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpcError::IllegalMachine { from, to, round } => {
                write!(
                    f,
                    "round {round}: {from:?} addressed invalid machine {to:?}"
                )
            }
            MpcError::MemoryExceeded {
                machine,
                used_words,
                limit_words,
                round,
            } => write!(
                f,
                "round {round}: {machine:?} holds {used_words} words > S = {limit_words}"
            ),
            MpcError::SendVolumeExceeded {
                machine,
                words,
                limit_words,
                round,
            } => write!(
                f,
                "round {round}: {machine:?} sent {words} words > S = {limit_words}"
            ),
            MpcError::RecvVolumeExceeded {
                machine,
                words,
                limit_words,
                round,
            } => write!(
                f,
                "round {round}: {machine:?} was sent {words} words > S = {limit_words}"
            ),
            MpcError::RoundLimitExceeded { limit } => {
                write!(f, "round limit {limit} exceeded without termination")
            }
            MpcError::PreconditionViolated { what } => {
                write!(f, "program precondition violated: {what}")
            }
            MpcError::Congest(e) => write!(f, "simulated CONGEST violation: {e}"),
        }
    }
}

impl std::error::Error for MpcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MpcError::Congest(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for MpcError {
    fn from(e: SimError) -> Self {
        MpcError::Congest(e)
    }
}

/// The per-machine memory budget `S = max(floor, c · n^δ)` in words.
///
/// `δ ∈ (0, 1)` is the low-space exponent (the literature's sublinear
/// regime); the floor keeps tiny instances runnable (a budget below a
/// few cache lines is not a meaningful machine).
pub fn low_space_words(n: usize, delta: f64) -> usize {
    assert!(delta > 0.0 && delta < 1.0, "δ must be in (0, 1)");
    ((n as f64).powf(delta).ceil() as usize).max(64)
}

/// Greedy contiguous packing of per-vertex costs into machines: returns
/// `starts` with machine `k` hosting vertices `starts[k]..starts[k + 1]`,
/// every machine's total cost at most `cap`.
///
/// Shared by the CONGEST adapter and the native algorithms so their
/// partitioning (and its failure mode) cannot drift apart.
///
/// # Errors
///
/// [`MpcError::PreconditionViolated`] if a single vertex's cost exceeds
/// `cap` — no partition can host it within the memory budget.
pub(crate) fn greedy_partition(
    costs: impl Iterator<Item = usize>,
    cap: usize,
    too_fat: &'static str,
) -> Result<Vec<usize>, MpcError> {
    let mut starts = vec![0usize];
    let mut current = 0usize;
    let mut n = 0usize;
    for (v, cost) in costs.enumerate() {
        n = v + 1;
        if cost > cap {
            return Err(MpcError::PreconditionViolated { what: too_fat });
        }
        if current + cost > cap && current > 0 {
            starts.push(v);
            current = 0;
        }
        current += cost;
    }
    if n > 0 {
        starts.push(n);
    }
    Ok(starts)
}

/// Sparse per-destination-machine buckets: a machine's outbox usually
/// spans only its few boundary-neighbor machines, so collecting into a
/// dense `Vec` of length `M` would make every round `O(M)` per machine
/// (`O(M²)` total) regardless of traffic. Linear scan on insert is fine
/// — the distinct-destination count per machine is small — and
/// [`SparseBuckets::into_sorted`] restores the deterministic
/// ascending-destination order the engines rely on.
pub(crate) struct SparseBuckets<T> {
    /// `(destination machine, entries, total words)` in first-touch order.
    buckets: Vec<(usize, Vec<T>, usize)>,
}

impl<T> SparseBuckets<T> {
    pub(crate) fn new() -> Self {
        SparseBuckets {
            buckets: Vec::new(),
        }
    }

    /// Appends `item` (of `words` words) to `dest`'s bucket.
    pub(crate) fn add(&mut self, dest: usize, item: T, words: usize) {
        if let Some((_, entries, w)) = self.buckets.iter_mut().find(|(d, _, _)| *d == dest) {
            entries.push(item);
            *w += words;
        } else {
            self.buckets.push((dest, vec![item], words));
        }
    }

    /// The buckets in ascending destination order.
    pub(crate) fn into_sorted(mut self) -> Vec<(usize, Vec<T>, usize)> {
        self.buckets.sort_by_key(|&(d, _, _)| d);
        self.buckets
    }
}

/// One shard's per-round yield: outgoing messages bucketed by destination
/// shard, plus its share of the round's accounting.
struct ShardOutput<M> {
    /// `buckets[j]` holds `(to, from, msg)` for destinations in shard
    /// `j`, in ascending sender order.
    buckets: Vec<Vec<(MachineId, MachineId, M)>>,
    messages: u64,
    words: u64,
    max_send_words: usize,
    max_memory_words: usize,
}

/// The MPC execution driver.
///
/// Construct with [`MpcSimulator::new`] and tune with the builder-style
/// setters; run machine programs with [`MpcSimulator::run`] (sequential
/// reference engine), [`MpcSimulator::run_parallel`] (sharded
/// multi-threaded engine, bit-identical), or [`MpcSimulator::run_with`].
#[derive(Clone, Copy, Debug)]
pub struct MpcSimulator {
    memory_words: usize,
    max_rounds: usize,
}

impl MpcSimulator {
    /// An MPC simulator with per-machine budget `S = memory_words`.
    pub fn new(memory_words: usize) -> Self {
        MpcSimulator {
            memory_words,
            max_rounds: 1_000_000,
        }
    }

    /// Overrides the safety round budget (default one million).
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// The per-machine memory budget `S` in words.
    pub fn memory_words(&self) -> usize {
        self.memory_words
    }

    fn ctx(&self, id: MachineId, machines: usize, round: usize) -> MpcCtx {
        MpcCtx {
            id,
            machines,
            round,
            memory_words: self.memory_words,
        }
    }

    /// Whether every machine reports [`Machine::is_done`] at `round`.
    fn all_done<A: Machine>(&self, machines: &[A], round: usize) -> bool {
        machines.iter().enumerate().all(|(i, m)| {
            let ctx = self.ctx(MachineId::from_index(i), machines.len(), round);
            m.is_done(&ctx)
        })
    }

    fn outputs<A: Machine>(&self, machines: &[A], round: usize) -> Vec<A::Output> {
        machines
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let ctx = self.ctx(MachineId::from_index(i), machines.len(), round);
                m.output(&ctx)
            })
            .collect()
    }

    /// Checks one machine's declared memory against the budget.
    fn check_memory<A: Machine>(
        &self,
        machine: &A,
        id: MachineId,
        round: usize,
    ) -> Result<usize, MpcError> {
        let used = machine.memory_words();
        if used > self.memory_words {
            return Err(MpcError::MemoryExceeded {
                machine: id,
                used_words: used,
                limit_words: self.memory_words,
                round,
            });
        }
        Ok(used)
    }

    /// Validates one outgoing message against the model — destination in
    /// range, running send volume within `S` — and returns its charged
    /// word size (at least 1: the envelope).
    ///
    /// Shared by both engines so their enforcement (and the errors they
    /// raise) cannot drift apart, mirroring `pga_congest::check_message`.
    fn charge_message<M: WordSize>(
        &self,
        ctx: &MpcCtx,
        to: MachineId,
        msg: &M,
        sent: &mut usize,
    ) -> Result<usize, MpcError> {
        if !ctx.can_send(to) {
            return Err(MpcError::IllegalMachine {
                from: ctx.id,
                to,
                round: ctx.round,
            });
        }
        let w = msg.size_words().max(1);
        *sent += w;
        if *sent > self.memory_words {
            return Err(MpcError::SendVolumeExceeded {
                machine: ctx.id,
                words: *sent,
                limit_words: self.memory_words,
                round: ctx.round,
            });
        }
        Ok(w)
    }

    /// Validates one machine's outbox: destinations in range, send volume
    /// within `S`. Returns `(message_count, total_words)` and adds each
    /// message's words to the destination's receive tally.
    fn check_outbox<M: WordSize>(
        &self,
        id: MachineId,
        round: usize,
        machines: usize,
        outbox: &[(MachineId, M)],
        recv_words: &mut [usize],
    ) -> Result<(u64, usize), MpcError> {
        let ctx = self.ctx(id, machines, round);
        let mut sent = 0usize;
        for (to, msg) in outbox {
            let w = self.charge_message(&ctx, *to, msg, &mut sent)?;
            recv_words[to.index()] += w;
        }
        Ok((outbox.len() as u64, sent))
    }

    /// After all sends of a round: the receive caps, checked in machine
    /// order so both engines report the same first violation.
    fn check_recv_caps(&self, recv_words: &[usize], round: usize) -> Result<(), MpcError> {
        for (j, &w) in recv_words.iter().enumerate() {
            if w > self.memory_words {
                return Err(MpcError::RecvVolumeExceeded {
                    machine: MachineId::from_index(j),
                    words: w,
                    limit_words: self.memory_words,
                    round,
                });
            }
        }
        Ok(())
    }

    /// Runs `machines` (one program state per machine, indexed by id) to
    /// completion on the single-threaded reference engine.
    ///
    /// # Errors
    ///
    /// Returns an [`MpcError`] if a machine violates the memory or I/O
    /// budget, a program aborts, or the round budget is exhausted.
    pub fn run<A: Machine>(&self, mut machines: Vec<A>) -> Result<MpcReport<A::Output>, MpcError> {
        let m = machines.len();
        let mut metrics = MpcMetrics::default();

        // The initial partition must already fit the budget.
        for (i, machine) in machines.iter().enumerate() {
            let used = self.check_memory(machine, MachineId::from_index(i), 0)?;
            metrics.peak_memory_words = metrics.peak_memory_words.max(used);
        }

        let mut inboxes: Vec<Vec<(MachineId, A::Msg)>> = (0..m).map(|_| Vec::new()).collect();
        let mut round = 0;

        loop {
            let in_flight = inboxes.iter().any(|ib| !ib.is_empty());
            if self.all_done(&machines, round) && !in_flight {
                break;
            }
            if round >= self.max_rounds {
                return Err(MpcError::RoundLimitExceeded {
                    limit: self.max_rounds,
                });
            }

            let mut next_inboxes: Vec<Vec<(MachineId, A::Msg)>> =
                (0..m).map(|_| Vec::new()).collect();
            let mut recv_words = vec![0usize; m];
            let mut round_io = 0usize;
            let mut sent_any = false;

            for i in 0..m {
                let id = MachineId::from_index(i);
                let ctx = self.ctx(id, m, round);
                let inbox = std::mem::take(&mut inboxes[i]);
                let outbox = machines[i].round(&ctx, &inbox)?;
                let (msgs, sent) = self.check_outbox(id, round, m, &outbox, &mut recv_words)?;
                for (to, msg) in outbox {
                    next_inboxes[to.index()].push((id, msg));
                }
                metrics.messages += msgs;
                metrics.words += sent as u64;
                round_io = round_io.max(sent);
                sent_any |= msgs > 0;
                let used = self.check_memory(&machines[i], id, round)?;
                metrics.peak_memory_words = metrics.peak_memory_words.max(used);
            }

            self.check_recv_caps(&recv_words, round)?;
            round_io = round_io.max(recv_words.iter().copied().max().unwrap_or(0));

            // Deterministic delivery order: machines were processed in id
            // order, so each inbox is already sorted by sender.
            inboxes = next_inboxes;
            round += 1;
            metrics.rounds = round;
            metrics.peak_round_io_words = metrics.peak_round_io_words.max(round_io);
            metrics.io_profile.push(round_io);

            if !sent_any && self.all_done(&machines, round) {
                break;
            }
        }

        Ok(MpcReport {
            outputs: self.outputs(&machines, round),
            metrics,
        })
    }

    /// Runs `machines` to completion on the sharded multi-threaded
    /// engine — the `std::thread::scope` pattern of
    /// `pga_congest::Simulator::run_parallel`, sharded over machines.
    ///
    /// **Bit-identical** to [`MpcSimulator::run`]: shards cover
    /// ascending machine-id ranges and each shard visits its machines in
    /// id order, so the shard-order exchange reproduces the sequential
    /// delivery order exactly — same outputs, same [`MpcMetrics`], same
    /// [`MpcError`] on violations, for every thread count. A violation
    /// aborts with the first offending machine's error, though `round`
    /// callbacks of higher-id machines in other shards may already have
    /// executed by then.
    ///
    /// `threads == 0` selects one shard per available CPU. With one
    /// thread (or fewer than two machines per shard) the call falls
    /// through to the sequential engine.
    ///
    /// # Errors
    ///
    /// Returns an [`MpcError`] like [`MpcSimulator::run`].
    pub fn run_parallel<A>(
        &self,
        mut machines: Vec<A>,
        threads: usize,
    ) -> Result<MpcReport<A::Output>, MpcError>
    where
        A: Machine + Send,
        A::Msg: Send,
    {
        let m = machines.len();
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            threads
        };
        if threads <= 1 || m < 2 * threads {
            return self.run(machines);
        }
        let shard_size = m.div_ceil(threads);
        let num_shards = m.div_ceil(shard_size);

        let mut metrics = MpcMetrics::default();
        for (i, machine) in machines.iter().enumerate() {
            let used = self.check_memory(machine, MachineId::from_index(i), 0)?;
            metrics.peak_memory_words = metrics.peak_memory_words.max(used);
        }

        let mut inboxes: Vec<Vec<(MachineId, A::Msg)>> = (0..m).map(|_| Vec::new()).collect();
        let mut round = 0;

        loop {
            let in_flight = inboxes.iter().any(|ib| !ib.is_empty());
            if self.all_done(&machines, round) && !in_flight {
                break;
            }
            if round >= self.max_rounds {
                return Err(MpcError::RoundLimitExceeded {
                    limit: self.max_rounds,
                });
            }

            // Phase A: every shard runs its machines for this round.
            let shard_results: Vec<Result<ShardOutput<A::Msg>, MpcError>> =
                std::thread::scope(|s| {
                    let handles: Vec<_> = machines
                        .chunks_mut(shard_size)
                        .zip(inboxes.chunks_mut(shard_size))
                        .enumerate()
                        .map(|(si, (shard_machines, shard_inboxes))| {
                            s.spawn(move || {
                                self.run_shard_round(
                                    si * shard_size,
                                    m,
                                    shard_machines,
                                    shard_inboxes,
                                    round,
                                    shard_size,
                                    num_shards,
                                )
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                        .collect()
                });

            // First error in shard order == first error in machine order.
            let mut yields = Vec::with_capacity(num_shards);
            for r in shard_results {
                yields.push(r?);
            }

            let mut recv_words = vec![0usize; m];
            let mut round_io = 0usize;
            let mut sent_any = false;
            let mut next_inboxes: Vec<Vec<(MachineId, A::Msg)>> =
                (0..m).map(|_| Vec::new()).collect();
            for y in &mut yields {
                metrics.messages += y.messages;
                metrics.words += y.words;
                metrics.peak_memory_words = metrics.peak_memory_words.max(y.max_memory_words);
                round_io = round_io.max(y.max_send_words);
                sent_any |= y.messages > 0;
                // Appending whole shards in shard order keeps each inbox
                // sorted by sender, exactly like the sequential engine.
                for bucket in &mut y.buckets {
                    for (to, from, msg) in bucket.drain(..) {
                        recv_words[to.index()] += msg.size_words().max(1);
                        next_inboxes[to.index()].push((from, msg));
                    }
                }
            }

            self.check_recv_caps(&recv_words, round)?;
            round_io = round_io.max(recv_words.iter().copied().max().unwrap_or(0));

            inboxes = next_inboxes;
            round += 1;
            metrics.rounds = round;
            metrics.peak_round_io_words = metrics.peak_round_io_words.max(round_io);
            metrics.io_profile.push(round_io);

            if !sent_any && self.all_done(&machines, round) {
                break;
            }
        }

        Ok(MpcReport {
            outputs: self.outputs(&machines, round),
            metrics,
        })
    }

    /// Executes one round for the shard whose first machine is `base`.
    #[allow(clippy::too_many_arguments)]
    fn run_shard_round<A: Machine>(
        &self,
        base: usize,
        total_machines: usize,
        shard_machines: &mut [A],
        shard_inboxes: &mut [Vec<(MachineId, A::Msg)>],
        round: usize,
        shard_size: usize,
        num_shards: usize,
    ) -> Result<ShardOutput<A::Msg>, MpcError> {
        let mut out = ShardOutput {
            buckets: (0..num_shards).map(|_| Vec::new()).collect(),
            messages: 0,
            words: 0,
            max_send_words: 0,
            max_memory_words: 0,
        };
        for (k, machine) in shard_machines.iter_mut().enumerate() {
            let id = MachineId::from_index(base + k);
            let ctx = self.ctx(id, total_machines, round);
            let inbox = std::mem::take(&mut shard_inboxes[k]);
            let outbox = machine.round(&ctx, &inbox)?;
            let mut sent = 0usize;
            for (to, msg) in outbox {
                let w = self.charge_message(&ctx, to, &msg, &mut sent)?;
                out.messages += 1;
                out.words += w as u64;
                out.buckets[to.index() / shard_size].push((to, id, msg));
            }
            out.max_send_words = out.max_send_words.max(sent);
            let used = self.check_memory(machine, id, round)?;
            out.max_memory_words = out.max_memory_words.max(used);
        }
        Ok(out)
    }

    /// Runs `machines` on the engine selected by `engine` (the same
    /// [`Engine`] enum the CONGEST simulator dispatches on). Both engines
    /// produce bit-identical [`MpcReport`]s.
    ///
    /// # Errors
    ///
    /// Returns an [`MpcError`] like [`MpcSimulator::run`].
    pub fn run_with<A>(
        &self,
        machines: Vec<A>,
        engine: Engine,
    ) -> Result<MpcReport<A::Output>, MpcError>
    where
        A: Machine + Send,
        A::Msg: Send,
    {
        match engine {
            Engine::Sequential => self.run(machines),
            Engine::Parallel { threads } => self.run_parallel(machines, threads),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A plain word-counted payload.
    #[derive(Clone, Debug, PartialEq, Eq)]
    struct Words(u64, usize);
    impl WordSize for Words {
        fn size_words(&self) -> usize {
            self.1
        }
    }

    /// Token ring: machine 0 emits a counter that each machine increments
    /// and forwards; after a full lap machine 0 stops.
    struct Ring {
        laps: usize,
        seen: u64,
        done: bool,
        mem: usize,
    }

    impl Machine for Ring {
        type Msg = Words;
        type Output = u64;
        fn round(
            &mut self,
            ctx: &MpcCtx,
            inbox: &[(MachineId, Words)],
        ) -> Result<Vec<(MachineId, Words)>, MpcError> {
            let next = MachineId::from_index((ctx.id.index() + 1) % ctx.machines);
            if ctx.id == MachineId(0) && ctx.round == 0 {
                return Ok(vec![(next, Words(1, 1))]);
            }
            let mut out = Vec::new();
            for (_, msg) in inbox {
                self.seen = msg.0;
                if ctx.id == MachineId(0) {
                    self.laps -= 1;
                    if self.laps == 0 {
                        self.done = true;
                        continue;
                    }
                }
                out.push((next, Words(msg.0 + 1, 1)));
            }
            if ctx.id != MachineId(0) {
                self.done = true; // done-until-messaged; inbox re-activates
            }
            Ok(out)
        }
        fn memory_words(&self) -> usize {
            self.mem
        }
        fn is_done(&self, _ctx: &MpcCtx) -> bool {
            self.done
        }
        fn output(&self, _ctx: &MpcCtx) -> u64 {
            self.seen
        }
    }

    fn ring(m: usize, laps: usize) -> Vec<Ring> {
        (0..m)
            .map(|_| Ring {
                laps,
                seen: 0,
                done: false,
                mem: 4,
            })
            .collect()
    }

    #[test]
    fn ring_completes_and_counts() {
        let report = MpcSimulator::new(64).run(ring(5, 1)).unwrap();
        assert_eq!(report.metrics.rounds, 6);
        assert_eq!(report.metrics.messages, 5);
        assert_eq!(report.outputs[0], 5);
        assert_eq!(report.metrics.peak_memory_words, 4);
        assert_eq!(report.metrics.io_profile.len(), report.metrics.rounds);
    }

    #[test]
    fn parallel_matches_sequential_bit_identically() {
        let seq = MpcSimulator::new(64).run(ring(16, 3)).unwrap();
        for threads in [2, 3, 4, 8] {
            let par = MpcSimulator::new(64)
                .run_parallel(ring(16, 3), threads)
                .unwrap();
            assert_eq!(par.outputs, seq.outputs, "t={threads}");
            assert_eq!(par.metrics, seq.metrics, "t={threads}");
        }
    }

    #[test]
    fn memory_violation_detected() {
        struct Hog;
        impl Machine for Hog {
            type Msg = Words;
            type Output = ();
            fn round(
                &mut self,
                _ctx: &MpcCtx,
                _inbox: &[(MachineId, Words)],
            ) -> Result<Vec<(MachineId, Words)>, MpcError> {
                Ok(Vec::new())
            }
            fn memory_words(&self) -> usize {
                1000
            }
            fn is_done(&self, _ctx: &MpcCtx) -> bool {
                true
            }
            fn output(&self, _ctx: &MpcCtx) {}
        }
        let err = MpcSimulator::new(64).run(vec![Hog, Hog]).unwrap_err();
        assert_eq!(
            err,
            MpcError::MemoryExceeded {
                machine: MachineId(0),
                used_words: 1000,
                limit_words: 64,
                round: 0
            }
        );
    }

    #[test]
    fn send_volume_violation_detected() {
        struct Blaster {
            fired: bool,
        }
        impl Machine for Blaster {
            type Msg = Words;
            type Output = ();
            fn round(
                &mut self,
                ctx: &MpcCtx,
                _inbox: &[(MachineId, Words)],
            ) -> Result<Vec<(MachineId, Words)>, MpcError> {
                if ctx.id == MachineId(0) && !self.fired {
                    self.fired = true;
                    return Ok(vec![(MachineId(1), Words(0, 100))]);
                }
                Ok(Vec::new())
            }
            fn memory_words(&self) -> usize {
                1
            }
            fn is_done(&self, _ctx: &MpcCtx) -> bool {
                self.fired
            }
            fn output(&self, _ctx: &MpcCtx) {}
        }
        let err = MpcSimulator::new(64)
            .run(vec![Blaster { fired: false }, Blaster { fired: true }])
            .unwrap_err();
        assert!(matches!(
            err,
            MpcError::SendVolumeExceeded { words: 100, .. }
        ));
    }

    #[test]
    fn recv_volume_violation_detected() {
        // Many machines each send S/2 words to machine 0: each send is
        // legal, the aggregate at the receiver is not.
        struct Shouter;
        impl Machine for Shouter {
            type Msg = Words;
            type Output = ();
            fn round(
                &mut self,
                ctx: &MpcCtx,
                _inbox: &[(MachineId, Words)],
            ) -> Result<Vec<(MachineId, Words)>, MpcError> {
                if ctx.round == 0 && ctx.id != MachineId(0) {
                    return Ok(vec![(MachineId(0), Words(0, 32))]);
                }
                Ok(Vec::new())
            }
            fn memory_words(&self) -> usize {
                1
            }
            fn is_done(&self, ctx: &MpcCtx) -> bool {
                ctx.round > 0
            }
            fn output(&self, _ctx: &MpcCtx) {}
        }
        let err = MpcSimulator::new(64)
            .run((0..4).map(|_| Shouter).collect::<Vec<_>>())
            .unwrap_err();
        assert_eq!(
            err,
            MpcError::RecvVolumeExceeded {
                machine: MachineId(0),
                words: 96,
                limit_words: 64,
                round: 0
            }
        );
    }

    #[test]
    fn illegal_machine_detected() {
        struct Stray;
        impl Machine for Stray {
            type Msg = Words;
            type Output = ();
            fn round(
                &mut self,
                ctx: &MpcCtx,
                _inbox: &[(MachineId, Words)],
            ) -> Result<Vec<(MachineId, Words)>, MpcError> {
                if ctx.id == MachineId(0) {
                    return Ok(vec![(MachineId(9), Words(0, 1))]);
                }
                Ok(Vec::new())
            }
            fn memory_words(&self) -> usize {
                1
            }
            fn is_done(&self, _ctx: &MpcCtx) -> bool {
                false
            }
            fn output(&self, _ctx: &MpcCtx) {}
        }
        let err = MpcSimulator::new(64).run(vec![Stray, Stray]).unwrap_err();
        assert!(matches!(
            err,
            MpcError::IllegalMachine {
                to: MachineId(9),
                ..
            }
        ));
    }

    #[test]
    fn round_limit_detected() {
        let err = MpcSimulator::new(64)
            .with_max_rounds(3)
            .run(ring(4, 1000))
            .unwrap_err();
        assert_eq!(err, MpcError::RoundLimitExceeded { limit: 3 });
    }

    #[test]
    fn parallel_errors_match_sequential() {
        struct Stray {
            id_to_err: usize,
        }
        impl Machine for Stray {
            type Msg = Words;
            type Output = ();
            fn round(
                &mut self,
                ctx: &MpcCtx,
                _inbox: &[(MachineId, Words)],
            ) -> Result<Vec<(MachineId, Words)>, MpcError> {
                if ctx.id.index() == self.id_to_err {
                    return Ok(vec![(MachineId(99), Words(0, 1))]);
                }
                Ok(Vec::new())
            }
            fn memory_words(&self) -> usize {
                1
            }
            fn is_done(&self, _ctx: &MpcCtx) -> bool {
                false
            }
            fn output(&self, _ctx: &MpcCtx) {}
        }
        let mk = || (0..8).map(|_| Stray { id_to_err: 6 }).collect::<Vec<_>>();
        let seq = MpcSimulator::new(64).run(mk()).unwrap_err();
        for threads in [2, 4] {
            let par = MpcSimulator::new(64)
                .run_parallel(mk(), threads)
                .unwrap_err();
            assert_eq!(par, seq, "t={threads}");
        }
    }

    #[test]
    fn zero_machines_trivial() {
        let report = MpcSimulator::new(64).run(Vec::<Ring>::new()).unwrap();
        assert_eq!(report.metrics.rounds, 0);
        assert!(report.outputs.is_empty());
    }

    #[test]
    fn low_space_words_scaling() {
        assert_eq!(low_space_words(0, 0.5), 64);
        assert_eq!(low_space_words(10_000, 0.5), 100);
        assert!(low_space_words(1_000_000, 0.6) > low_space_words(10_000, 0.6));
    }

    #[test]
    fn run_with_dispatches_both_engines() {
        for engine in [
            Engine::Sequential,
            Engine::Parallel { threads: 3 },
            Engine::parallel_auto(),
        ] {
            let report = MpcSimulator::new(64).run_with(ring(8, 2), engine).unwrap();
            assert_eq!(report.outputs[0], 16, "{engine:?}");
        }
    }
}
