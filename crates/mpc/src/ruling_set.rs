//! A native low-space MPC algorithm: the greedy 2-ruling set of `G²`.
//!
//! Following the deterministic MPC ruling-set line of Pai–Pemmaraju
//! (arXiv:2205.12686), this computes a set `R` that is **independent in
//! `G²`** (members are pairwise more than 2 `G`-hops apart) and
//! **dominating in `G²`** (every vertex is within 2 `G`-hops of `R`) —
//! i.e. a 2-ruling set of `G`, and simultaneously a maximal independent
//! set of the square. Because `R` dominates `G²`, it serves as an
//! alternative cover/dominating seed for the paper's `G²` problems.
//!
//! The algorithm is the vertex-partitioned *parallel greedy*: in every
//! iteration each undecided vertex whose id is minimal among the
//! undecided vertices of its closed 2-hop neighborhood joins `R`, and
//! everything within 2 hops of a new member is ruled out. This produces
//! exactly the **lexicographically-first MIS of `G²`** ([`lex_first_g2_mis`]
//! is the sequential oracle the tests compare against bit for bit), and
//! it terminates because the globally-minimal undecided id always joins.
//!
//! One iteration costs 4 MPC rounds of boundary-only traffic:
//!
//! 1. **A** — owners compute `m1(v) = min{undecided id in N[v] ∪ {v}}`
//!    and ship it to every machine hosting a neighbor of `v`;
//! 2. **B** — owners fold `m1` over `N[v]` to get the 2-hop minimum
//!    `m2(v)`; a vertex with `m2(v) = v` joins `R`; joins are announced;
//! 3. **C** — owners compute `r1(v) = [R ∩ (N[v] ∪ {v}) ≠ ∅]` and ship
//!    the true bits;
//! 4. **D** — an undecided vertex with `r1` true anywhere in `N[v] ∪ {v}`
//!    becomes *ruled* (it is within 2 hops of `R`); rulings are announced.
//!
//! Machines hold only their hosted adjacency plus ghost tables for
//! boundary neighbors, so memory stays proportional to the partition
//! slice, and per-round I/O is bounded by the boundary size — both
//! enforced by the engine against the budget `S`.

use crate::engine::{Engine, Machine, MachineId, MpcCtx, MpcError, MpcSimulator, WordSize};
use crate::metrics::MpcMetrics;
use crate::util::{greedy_partition, SparseBuckets};
use crate::RunConfig;
use pga_graph::{Graph, NodeId};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

const UNDECIDED: u8 = 0;
const IN_R: u8 = 1;
const RULED: u8 = 2;

/// One entry of a ruling-set exchange message.
#[derive(Clone, Debug)]
enum RsVal {
    /// New status of the named vertex ([`IN_R`] or [`RULED`]).
    Status(u8),
    /// The vertex's 1-hop undecided minimum `m1` for this iteration.
    M1(u32),
    /// The vertex's `r1` bit is true (false is implicit).
    R1,
}

/// A batch of `(vertex, value)` entries between two machines; one word
/// per entry (a 32-bit id packs with a 32-bit payload).
#[derive(Clone, Debug)]
pub struct RsMsg {
    entries: Vec<(u32, RsVal)>,
}

impl WordSize for RsMsg {
    fn size_bits(&self, _id_bits: usize) -> usize {
        64 * self.entries.len()
    }

    fn size_words(&self) -> usize {
        self.entries.len()
    }
}

/// One machine of the ruling-set computation, hosting vertices
/// `lo..lo + status.len()`.
struct RsMachine<'g> {
    g: &'g Graph,
    lo: usize,
    status: Vec<u8>,
    /// Hosted `m1`, recomputed each iteration in phase A.
    m1: Vec<u32>,
    /// Hosted `r1`, recomputed each iteration in phase C.
    r1: Vec<bool>,
    /// Status of boundary neighbors (vertices hosted elsewhere that are
    /// adjacent to a hosted vertex).
    ghost_status: HashMap<u32, u8>,
    /// Boundary neighbors' `m1` of the current iteration.
    ghost_m1: HashMap<u32, u32>,
    /// Boundary neighbors with a true `r1` this iteration.
    ghost_r1: HashSet<u32>,
    starts: Arc<Vec<usize>>,
    adjacency_words: usize,
    /// Phase deadline in rounds. At the deadline every hosted vertex
    /// still undecided joins `R`: `RULED` is truthful (only ever set
    /// within 2 hops of `R`), so force-joining the undecided preserves
    /// `G²`-domination — only independence (and the lex-first equality)
    /// can degrade. `None` (the default) never fires.
    deadline: Option<usize>,
    timed_out: bool,
}

impl RsMachine<'_> {
    fn hosted(&self) -> usize {
        self.status.len()
    }

    fn machine_of(&self, v: NodeId) -> usize {
        self.starts.partition_point(|&s| s <= v.index()) - 1
    }

    fn is_hosted(&self, v: NodeId) -> bool {
        let i = v.index();
        i >= self.lo && i < self.lo + self.hosted()
    }

    fn status_of(&self, v: NodeId) -> u8 {
        if self.is_hosted(v) {
            self.status[v.index() - self.lo]
        } else {
            self.ghost_status[&v.0]
        }
    }

    /// Whether any vertex this machine can see (hosted or ghost) is
    /// still undecided. Quiet machines skip all sends: if every vertex a
    /// machine sees is decided, no neighbor can still need its values.
    fn active(&self) -> bool {
        self.status.contains(&UNDECIDED) || self.ghost_status.values().any(|&s| s == UNDECIDED)
    }

    /// Appends `(v, val)` to the bucket of every *other* machine hosting
    /// a neighbor of `v`. Neighbor lists are sorted, so owning machines
    /// appear in nondecreasing order and deduplicate for free.
    fn send_to_peers(
        &self,
        v: NodeId,
        val: RsVal,
        my_id: usize,
        buckets: &mut SparseBuckets<(u32, RsVal)>,
    ) {
        let mut last: Option<usize> = None;
        for &u in self.g.neighbors(v) {
            let m = self.machine_of(u);
            if m != my_id && last != Some(m) {
                buckets.add(m, (v.0, val.clone()), 1);
            }
            last = Some(m);
        }
    }

    fn m1_of(&self, v: NodeId) -> u32 {
        if self.is_hosted(v) {
            self.m1[v.index() - self.lo]
        } else {
            // A missing entry means the neighbor's machine went quiet —
            // then its whole 1-hop neighborhood is decided and it
            // contributes no undecided minimum.
            *self.ghost_m1.get(&v.0).unwrap_or(&u32::MAX)
        }
    }

    fn r1_of(&self, v: NodeId) -> bool {
        if self.is_hosted(v) {
            self.r1[v.index() - self.lo]
        } else {
            self.ghost_r1.contains(&v.0)
        }
    }
}

impl Machine for RsMachine<'_> {
    type Msg = RsMsg;
    /// Hosted membership bits plus whether this machine fell back to
    /// the phase-timeout path.
    type Output = (Vec<bool>, bool);

    fn round(
        &mut self,
        ctx: &MpcCtx,
        inbox: &[(MachineId, RsMsg)],
    ) -> Result<Vec<(MachineId, RsMsg)>, MpcError> {
        for (_, msg) in inbox {
            for (v, val) in &msg.entries {
                match val {
                    RsVal::Status(s) => {
                        self.ghost_status.insert(*v, *s);
                    }
                    RsVal::M1(x) => {
                        self.ghost_m1.insert(*v, *x);
                    }
                    RsVal::R1 => {
                        self.ghost_r1.insert(*v);
                    }
                }
            }
        }

        // Phase-timeout fallback: all deadlines fire at the same global
        // round, so every machine force-decides consistently (see the
        // `deadline` field).
        if let Some(d) = self.deadline {
            if ctx.round >= d && self.active() {
                self.timed_out = true;
                for s in &mut self.status {
                    if *s == UNDECIDED {
                        *s = IN_R;
                    }
                }
                for s in self.ghost_status.values_mut() {
                    if *s == UNDECIDED {
                        *s = RULED;
                    }
                }
                return Ok(Vec::new());
            }
        }

        let mut buckets: SparseBuckets<(u32, RsVal)> = SparseBuckets::new();
        let my_id = ctx.id.index();
        match ctx.round % 4 {
            // Phase A: 1-hop undecided minima.
            0 => {
                if self.active() {
                    for k in 0..self.hosted() {
                        let v = NodeId::from_index(self.lo + k);
                        let mut m1 = if self.status[k] == UNDECIDED {
                            v.0
                        } else {
                            u32::MAX
                        };
                        for &u in self.g.neighbors(v) {
                            if self.status_of(u) == UNDECIDED {
                                m1 = m1.min(u.0);
                            }
                        }
                        self.m1[k] = m1;
                        self.send_to_peers(v, RsVal::M1(m1), my_id, &mut buckets);
                    }
                }
            }
            // Phase B: 2-hop minima; local minima join R.
            1 => {
                if self.active() {
                    let mut joined: Vec<usize> = Vec::new();
                    for k in 0..self.hosted() {
                        if self.status[k] != UNDECIDED {
                            continue;
                        }
                        let v = NodeId::from_index(self.lo + k);
                        let mut m2 = self.m1[k];
                        for &u in self.g.neighbors(v) {
                            m2 = m2.min(self.m1_of(u));
                        }
                        if m2 == v.0 {
                            joined.push(k);
                        }
                    }
                    for k in joined {
                        self.status[k] = IN_R;
                        let v = NodeId::from_index(self.lo + k);
                        self.send_to_peers(v, RsVal::Status(IN_R), my_id, &mut buckets);
                    }
                }
            }
            // Phase C: 1-hop R indicators.
            2 => {
                if self.active() {
                    for k in 0..self.hosted() {
                        let v = NodeId::from_index(self.lo + k);
                        let mut r1 = self.status[k] == IN_R;
                        for &u in self.g.neighbors(v) {
                            r1 |= self.status_of(u) == IN_R;
                        }
                        self.r1[k] = r1;
                        if r1 {
                            self.send_to_peers(v, RsVal::R1, my_id, &mut buckets);
                        }
                    }
                }
            }
            // Phase D: rule out everything within 2 hops of R.
            _ => {
                if self.active() {
                    let mut ruled: Vec<usize> = Vec::new();
                    for k in 0..self.hosted() {
                        if self.status[k] != UNDECIDED {
                            continue;
                        }
                        let v = NodeId::from_index(self.lo + k);
                        let mut covered = self.r1[k];
                        for &u in self.g.neighbors(v) {
                            covered |= self.r1_of(u);
                        }
                        if covered {
                            ruled.push(k);
                        }
                    }
                    for k in ruled {
                        self.status[k] = RULED;
                        let v = NodeId::from_index(self.lo + k);
                        self.send_to_peers(v, RsVal::Status(RULED), my_id, &mut buckets);
                    }
                }
                // Iteration boundary: per-iteration ghosts reset.
                self.ghost_m1.clear();
                self.ghost_r1.clear();
            }
        }

        Ok(buckets
            .into_sorted()
            .into_iter()
            .map(|(j, entries, _)| (MachineId::from_index(j), RsMsg { entries }))
            .collect())
    }

    fn memory_words(&self) -> usize {
        self.adjacency_words
            + 3 * self.hosted()
            + 2 * (self.ghost_status.len() + self.ghost_m1.len())
            + self.ghost_r1.len()
    }

    fn is_done(&self, _ctx: &MpcCtx) -> bool {
        !self.active()
    }

    fn can_skip(&self, _ctx: &MpcCtx) -> bool {
        // Phase D clears the per-iteration ghost tables unconditionally,
        // which changes the declared memory footprint — not a no-op even
        // for a decided machine. Never skippable.
        false
    }

    fn output(&self, _ctx: &MpcCtx) -> (Vec<bool>, bool) {
        // A vertex still UNDECIDED at collection time (the machine
        // crashed mid-run, before the deadline fallback could fire)
        // force-joins R: RULED verdicts are truthful — only ever set
        // with a ruler within two hops — so joining every undecided
        // vertex preserves G²-domination. Unreachable on a clean run,
        // where `is_done` requires every vertex decided.
        let undecided = self.status.contains(&UNDECIDED);
        (
            self.status.iter().map(|&s| s != RULED).collect(),
            self.timed_out || undecided,
        )
    }
}

/// Result of the MPC 2-ruling-set computation.
#[derive(Debug)]
pub struct RulingSetResult {
    /// Membership vector of `R`, indexed by vertex id.
    pub in_r: Vec<bool>,
    /// MPC resource metrics of the run.
    pub mpc: MpcMetrics,
    /// Number of machines used.
    pub machines: usize,
}

impl RulingSetResult {
    /// Size of the ruling set.
    pub fn size(&self) -> usize {
        self.in_r.iter().filter(|&&b| b).count()
    }
}

/// A memory budget sufficient to host `g`'s fattest vertex with the
/// ruling set's per-vertex cost.
pub fn recommended_ruling_set_memory_words(g: &Graph) -> usize {
    let worst = (0..g.num_nodes())
        .map(|v| ruling_set_vertex_cost(g.degree(NodeId::from_index(v))))
        .max()
        .unwrap_or(0);
    crate::engine::low_space_words(g.num_nodes().max(1), 0.7)
        .max(2 * worst)
        .max(256)
}

/// Words reserved per hosted vertex when packing the partition:
/// per-vertex state, the adjacency slice, ghost-table shares, and one
/// one-word boundary message per incident edge.
fn ruling_set_vertex_cost(degree: usize) -> usize {
    4 + 4 * degree
}

/// Computes the greedy 2-ruling set of `G²` on the MPC engine.
///
/// The result equals [`lex_first_g2_mis`]`(g)` bit for bit (the
/// distributed rounds and the sequential greedy compute the same set),
/// is independent in `G²`, dominating in `G²`, and defined on
/// disconnected graphs too (unlike the BFS-tree-based CONGEST phases).
///
/// # Errors
///
/// Returns an [`MpcError`] if `memory_words` cannot host the busiest
/// vertex or a budget is violated at runtime.
pub fn g2_ruling_set_mpc(
    g: &Graph,
    memory_words: usize,
    engine: Engine,
) -> Result<RulingSetResult, MpcError> {
    g2_ruling_set_mpc_cfg(g, memory_words, &RunConfig::new().engine(engine))
}

/// [`g2_ruling_set_mpc`] under a full [`RunConfig`]: engine, scheduling
/// policy, round budget, and fault plan in one value (see
/// [`MpcSimulator::run_cfg`]). With [`RunConfig::fault`] set the
/// distributed rounds execute under the seeded adversary, so the
/// result may lose the [`lex_first_g2_mis`] equality — and even
/// `G²`-domination — which is exactly the degradation the fault bench
/// measures.
///
/// # Errors
///
/// Returns an [`MpcError`] like [`g2_ruling_set_mpc`].
pub fn g2_ruling_set_mpc_cfg(
    g: &Graph,
    memory_words: usize,
    cfg: &RunConfig,
) -> Result<RulingSetResult, MpcError> {
    let n = g.num_nodes();
    let starts = Arc::new(greedy_partition(
        (0..n).map(|v| ruling_set_vertex_cost(g.degree(NodeId::from_index(v)))),
        memory_words / 2,
        "memory budget S cannot host the busiest vertex; the ruling set needs \
         S ≥ 2·(4·Δ + 4) words",
    )?);
    let num_machines = starts.len().saturating_sub(1);

    let mut machines = Vec::with_capacity(num_machines);
    for k in 0..num_machines {
        let (lo, hi) = (starts[k], starts[k + 1]);
        let mut ghost_status = HashMap::new();
        for v in lo..hi {
            for &u in g.neighbors(NodeId::from_index(v)) {
                if u.index() < lo || u.index() >= hi {
                    ghost_status.insert(u.0, UNDECIDED);
                }
            }
        }
        machines.push(RsMachine {
            g,
            lo,
            status: vec![UNDECIDED; hi - lo],
            m1: vec![u32::MAX; hi - lo],
            r1: vec![false; hi - lo],
            ghost_status,
            ghost_m1: HashMap::new(),
            ghost_r1: HashSet::new(),
            starts: Arc::clone(&starts),
            adjacency_words: (lo..hi).map(|v| g.degree(NodeId::from_index(v))).sum(),
            // Clean bound: ≤ n+1 four-round iterations (the globally
            // minimal undecided id joins R every iteration).
            deadline: cfg.phase_deadline(4 * (n + 1) + 8),
            timed_out: false,
        });
    }

    let report = MpcSimulator::new(memory_words).run_cfg(machines, cfg)?;
    let mut in_r = Vec::with_capacity(n);
    let mut mpc = report.metrics;
    for (shard, timed_out) in report.outputs {
        in_r.extend(shard);
        mpc.fault.degraded += u64::from(timed_out);
    }
    Ok(RulingSetResult {
        in_r,
        mpc,
        machines: num_machines,
    })
}

/// [`g2_ruling_set_mpc`] with the recommended memory budget and the
/// sequential engine.
///
/// # Errors
///
/// Returns an [`MpcError`] like [`g2_ruling_set_mpc`].
pub fn g2_ruling_set_mpc_auto(g: &Graph) -> Result<RulingSetResult, MpcError> {
    g2_ruling_set_mpc(
        g,
        recommended_ruling_set_memory_words(g),
        Engine::Sequential,
    )
}

/// The sequential oracle: the lexicographically-first maximal
/// independent set of `G²`, computed greedily by ascending id without
/// materializing the square (`O(Σ_v deg(v)²)` time).
pub fn lex_first_g2_mis(g: &Graph) -> Vec<bool> {
    let n = g.num_nodes();
    let mut in_r = vec![false; n];
    let mut blocked = vec![false; n];
    for v in 0..n {
        if blocked[v] {
            continue;
        }
        in_r[v] = true;
        blocked[v] = true;
        let v = NodeId::from_index(v);
        for &u in g.neighbors(v) {
            blocked[u.index()] = true;
            for &w in g.neighbors(u) {
                blocked[w.index()] = true;
            }
        }
    }
    in_r
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_graph::cover::is_dominating_set_on_square;
    use pga_graph::generators;
    use pga_graph::power::square;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_ruling_set(g: &Graph) {
        let result = g2_ruling_set_mpc_auto(g).unwrap();
        // Matches the sequential greedy bit for bit.
        assert_eq!(result.in_r, lex_first_g2_mis(g), "{g:?}");
        if g.num_nodes() == 0 {
            return;
        }
        // Independent in G².
        let g2 = square(g);
        let members: Vec<NodeId> = (0..g.num_nodes())
            .filter(|&v| result.in_r[v])
            .map(NodeId::from_index)
            .collect();
        for (i, &u) in members.iter().enumerate() {
            for &v in &members[i + 1..] {
                assert!(!g2.has_edge(u, v), "{u:?},{v:?} both in R at distance ≤ 2");
            }
        }
        // Dominating in G² (every vertex within 2 hops of R).
        assert!(is_dominating_set_on_square(g, &result.in_r), "{g:?}");
    }

    #[test]
    fn valid_on_families() {
        for g in [
            generators::path(23),
            generators::cycle(17),
            generators::star(30),
            generators::grid(5, 8),
            generators::clique_chain(4, 5),
            generators::complete(9),
            Graph::empty(0),
            Graph::empty(7),
        ] {
            check_ruling_set(&g);
        }
    }

    #[test]
    fn valid_on_disconnected_graphs() {
        let g = generators::disjoint_union(&generators::path(9), &generators::grid(3, 4));
        check_ruling_set(&g);
    }

    #[test]
    fn valid_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..6 {
            let g = generators::connected_gnp(40, 0.08, &mut rng);
            check_ruling_set(&g);
        }
        check_ruling_set(&generators::barabasi_albert(120, 3, 9));
    }

    #[test]
    fn engines_bit_identical() {
        let g = generators::grid(9, 9);
        let s = recommended_ruling_set_memory_words(&g);
        let seq = g2_ruling_set_mpc(&g, s, Engine::Sequential).unwrap();
        for threads in [2, 4] {
            let par = g2_ruling_set_mpc(&g, s, Engine::Parallel { threads }).unwrap();
            assert_eq!(par.in_r, seq.in_r, "t={threads}");
            assert_eq!(par.mpc, seq.mpc, "t={threads}");
        }
    }

    #[test]
    fn rounds_are_four_per_iteration() {
        let g = generators::path(50);
        let result = g2_ruling_set_mpc_auto(&g).unwrap();
        // The path rules greedily from the low end: several iterations,
        // each exactly 4 rounds (plus the final quiescent check).
        assert!(result.mpc.rounds % 4 <= 1, "rounds = {}", result.mpc.rounds);
        assert!(result.size() >= 50 / 5, "R too small: {}", result.size());
    }

    #[test]
    fn budget_enforced() {
        let g = generators::star(64);
        let err = g2_ruling_set_mpc(&g, 64, Engine::Sequential).unwrap_err();
        assert!(matches!(err, MpcError::PreconditionViolated { .. }));
    }

    #[test]
    fn distributes_across_machines() {
        let g = generators::grid(10, 10);
        let result = g2_ruling_set_mpc(&g, 256, Engine::Sequential).unwrap();
        assert!(result.machines > 1, "{} machines", result.machines);
        assert_eq!(result.in_r, lex_first_g2_mis(&g));
        assert!(result.mpc.peak_memory_words <= 256);
        assert!(result.mpc.words > 0, "boundary traffic must be non-zero");
    }
}
