//! Property-based tests for the adversarial execution plane on the MPC
//! simulator: a no-fault adversary must reproduce the clean engines bit
//! for bit (outputs, metrics, errors), a seeded adversary must be
//! deterministic across engines and thread counts, and a recorded trace
//! must replay bit for bit — both for a plain machine program and for
//! the native G² ruling set.

use pga_graph::{generators, Graph};
use pga_mpc::{
    g2_ruling_set_mpc, g2_ruling_set_mpc_cfg, recommended_ruling_set_memory_words, FaultSpec,
    Machine, MachineId, MpcCtx, MpcError, MpcSimulator, ReliabilitySpec, RunConfig, WordSize,
};
use proptest::prelude::*;

/// A plain one-word payload.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Word(u64);
impl WordSize for Word {
    fn size_bits(&self, _id_bits: usize) -> usize {
        64
    }
    fn size_words(&self) -> usize {
        1
    }
}

/// All-to-all max gossip: every machine floods the largest value it has
/// seen and re-floods on improvement. Fault-tolerant by construction
/// (idempotent under duplication, quiesces under drops and crashes), so
/// adversarial schedules perturb its outputs without aborting it.
struct Gossip {
    best: u64,
    changed: bool,
    quiet: bool,
}

impl Machine for Gossip {
    type Msg = Word;
    type Output = u64;
    fn round(
        &mut self,
        ctx: &MpcCtx,
        inbox: &[(MachineId, Word)],
    ) -> Result<Vec<(MachineId, Word)>, MpcError> {
        for (_, m) in inbox {
            if m.0 > self.best {
                self.best = m.0;
                self.changed = true;
            }
        }
        let send = ctx.round == 0 || self.changed;
        self.changed = false;
        self.quiet = !send;
        if send {
            Ok((0..ctx.machines)
                .filter(|&j| j != ctx.id.index())
                .map(|j| (MachineId::from_index(j), Word(self.best)))
                .collect())
        } else {
            Ok(Vec::new())
        }
    }
    fn memory_words(&self) -> usize {
        4
    }
    fn is_done(&self, _ctx: &MpcCtx) -> bool {
        self.quiet
    }
    fn output(&self, _ctx: &MpcCtx) -> u64 {
        self.best
    }
}

fn gossip(m: usize) -> Vec<Gossip> {
    (0..m)
        .map(|i| Gossip {
            best: (i as u64) * 7 + 1,
            changed: false,
            quiet: false,
        })
        .collect()
}

/// A moderately hostile schedule: every fault class active, bounded
/// delays, a small crash budget.
fn hostile(seed: u64) -> FaultSpec {
    FaultSpec::seeded(seed)
        .drop(0.03)
        .duplicate(0.02)
        .delay(0.03, 3)
        .crash(0.02, 6)
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..22, any::<u64>()).prop_map(|(n, seed)| {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        generators::connected_gnp(n, 0.2, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `FaultSpec::none()` routes through the adversarial executor but
    /// must be indistinguishable from the clean MPC engines at every
    /// thread count.
    #[test]
    fn none_spec_is_bit_identical_to_clean_engines(m in 2usize..16) {
        let sim = MpcSimulator::new(256);
        let clean = sim.run(gossip(m)).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let cfg = RunConfig::new().parallel(threads).adversary(FaultSpec::none());
            let r = sim.run_cfg(gossip(m), &cfg).unwrap();
            prop_assert_eq!(&r.outputs, &clean.outputs, "threads {}", threads);
            prop_assert_eq!(&r.metrics, &clean.metrics, "threads {}", threads);
        }
    }

    /// `FaultSpec::none()` also reproduces the clean engines' *errors*:
    /// an exhausted round budget surfaces as the same `MpcError`.
    #[test]
    fn none_spec_reproduces_clean_round_limit_error(m in 3usize..16) {
        let sim = MpcSimulator::new(256);
        let clean = sim
            .run_cfg(gossip(m), &RunConfig::new().max_rounds(1))
            .unwrap_err();
        for threads in [1usize, 4] {
            let cfg = RunConfig::new()
                .parallel(threads)
                .max_rounds(1)
                .adversary(FaultSpec::none());
            let faulty = sim.run_cfg(gossip(m), &cfg).unwrap_err();
            prop_assert_eq!(&faulty, &clean, "threads {}", threads);
        }
    }

    /// The same `(seed, FaultSpec)` produces a bit-identical run at
    /// every engine and thread choice.
    #[test]
    fn seeded_faults_are_bit_identical_across_engines(m in 2usize..16, seed in any::<u64>()) {
        let sim = MpcSimulator::new(256);
        let spec = hostile(seed);
        let base = sim.run_cfg(
            gossip(m),
            &RunConfig::new().sequential().max_rounds(200).adversary(spec),
        );
        for threads in [1usize, 2, 4, 8] {
            let cfg = RunConfig::new().parallel(threads).max_rounds(200).adversary(spec);
            let r = sim.run_cfg(gossip(m), &cfg);
            match (&base, &r) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(&a.outputs, &b.outputs, "threads {}", threads);
                    prop_assert_eq!(&a.metrics, &b.metrics, "threads {}", threads);
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b, "threads {}", threads),
                _ => prop_assert!(false, "Ok/Err divergence at threads {}", threads),
            }
        }
    }

    /// Record-and-replay on the MPC plane: `run_replay` of a recorded
    /// trace reproduces the recorded run bit for bit, including on a
    /// different thread count.
    #[test]
    fn trace_replay_is_bit_identical(m in 2usize..16, seed in any::<u64>()) {
        let sim = MpcSimulator::new(256);
        let spec = hostile(seed);
        let cfg = RunConfig::new().sequential().max_rounds(200);
        let Ok((recorded, trace)) = sim.run_traced(gossip(m), spec, &cfg) else {
            let a = sim.run_traced(gossip(m), spec, &cfg).map(|_| ()).unwrap_err();
            let b = sim.run_traced(gossip(m), spec, &cfg).map(|_| ()).unwrap_err();
            prop_assert_eq!(a, b);
            return Ok(());
        };
        prop_assert_eq!(trace.spec, spec);
        for threads in [1usize, 4] {
            let replay_cfg = RunConfig::new().parallel(threads).max_rounds(200);
            let replayed = sim.run_replay(gossip(m), &trace, &replay_cfg).unwrap();
            prop_assert_eq!(&replayed.outputs, &recorded.outputs, "threads {}", threads);
            prop_assert_eq!(&replayed.metrics, &recorded.metrics, "threads {}", threads);
        }
    }

    /// With no adversary armed, the reliable (ARQ) executor reproduces
    /// the clean MPC engines' outputs, bit-identically across thread
    /// counts (metrics included).
    #[test]
    fn arq_without_faults_reproduces_clean_outputs(m in 2usize..16) {
        let sim = MpcSimulator::new(256);
        let clean = sim.run(gossip(m)).unwrap();
        let base = sim
            .run_cfg(gossip(m), &RunConfig::new().sequential().reliability(ReliabilitySpec::arq()))
            .unwrap();
        prop_assert_eq!(&base.outputs, &clean.outputs);
        for threads in [1usize, 2, 4, 8] {
            let cfg = RunConfig::new().parallel(threads).reliability(ReliabilitySpec::arq());
            let r = sim.run_cfg(gossip(m), &cfg).unwrap();
            prop_assert_eq!(&r.outputs, &clean.outputs, "threads {}", threads);
            prop_assert_eq!(&r.metrics, &base.metrics, "threads {}", threads);
        }
    }

    /// ARQ under drop-only faults (below the dead-link threshold)
    /// delivers the clean run's outputs bit-identically at threads
    /// {1, 2, 4, 8}, with replay-identical metrics.
    #[test]
    fn arq_drop_only_recovers_clean_outputs(m in 2usize..16, seed in any::<u64>()) {
        let sim = MpcSimulator::new(256);
        let clean = sim.run(gossip(m)).unwrap();
        let spec = FaultSpec::seeded(seed).drop(0.10);
        let base_cfg = RunConfig::new()
            .sequential()
            .max_rounds(5_000)
            .adversary(spec)
            .reliability(ReliabilitySpec::arq());
        let base = sim.run_cfg(gossip(m), &base_cfg).unwrap();
        prop_assert_eq!(&base.outputs, &clean.outputs);
        for threads in [1usize, 2, 4, 8] {
            let cfg = RunConfig::new()
                .parallel(threads)
                .max_rounds(5_000)
                .adversary(spec)
                .reliability(ReliabilitySpec::arq());
            let r = sim.run_cfg(gossip(m), &cfg).unwrap();
            prop_assert_eq!(&r.outputs, &clean.outputs, "threads {}", threads);
            prop_assert_eq!(&r.metrics, &base.metrics, "threads {}", threads);
        }
    }

    /// The native G² ruling set under ARQ with drop-only faults
    /// reproduces the clean ruling set exactly: the ghost-table
    /// exchange survives loss via retransmission.
    #[test]
    fn ruling_set_arq_drop_only_matches_clean(g in arb_graph(), seed in any::<u64>()) {
        let words = recommended_ruling_set_memory_words(&g);
        let clean = g2_ruling_set_mpc(&g, words, pga_mpc::Engine::Sequential).unwrap();
        let spec = FaultSpec::seeded(seed).drop(0.08);
        for threads in [1usize, 4] {
            let cfg = RunConfig::new()
                .parallel(threads)
                .max_rounds(20_000)
                .adversary(spec)
                .reliability(ReliabilitySpec::arq());
            let r = g2_ruling_set_mpc_cfg(&g, words, &cfg).unwrap();
            prop_assert_eq!(&r.in_r, &clean.in_r, "threads {}", threads);
        }
    }

    /// The `_cfg` ruling-set entry point under `FaultSpec::none()`
    /// reproduces the clean entry point bit for bit.
    #[test]
    fn ruling_set_none_spec_matches_clean(g in arb_graph()) {
        let words = recommended_ruling_set_memory_words(&g);
        let clean = g2_ruling_set_mpc(&g, words, pga_mpc::Engine::Sequential).unwrap();
        for threads in [1usize, 4] {
            let cfg = RunConfig::new().parallel(threads).adversary(FaultSpec::none());
            let r = g2_ruling_set_mpc_cfg(&g, words, &cfg).unwrap();
            prop_assert_eq!(&r.in_r, &clean.in_r, "threads {}", threads);
            prop_assert_eq!(&r.mpc, &clean.mpc, "threads {}", threads);
            prop_assert_eq!(r.machines, clean.machines, "threads {}", threads);
        }
    }

    /// The ruling set under a seeded adversary is deterministic across
    /// thread counts — degraded, possibly, but reproducibly so.
    #[test]
    fn ruling_set_faults_are_deterministic(g in arb_graph(), seed in any::<u64>()) {
        let words = recommended_ruling_set_memory_words(&g);
        let spec = FaultSpec::seeded(seed).drop(0.05).crash(0.02, 8);
        let base = g2_ruling_set_mpc_cfg(
            &g,
            words,
            &RunConfig::new().sequential().max_rounds(300).adversary(spec),
        );
        for threads in [2usize, 4] {
            let cfg = RunConfig::new().parallel(threads).max_rounds(300).adversary(spec);
            let r = g2_ruling_set_mpc_cfg(&g, words, &cfg);
            match (&base, &r) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(&a.in_r, &b.in_r, "threads {}", threads);
                    prop_assert_eq!(&a.mpc, &b.mpc, "threads {}", threads);
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b, "threads {}", threads),
                _ => prop_assert!(false, "Ok/Err divergence at threads {}", threads),
            }
        }
    }

    /// The ruling set under the full hostile schedule with ARQ plus
    /// phase timeouts armed: the fallback force-joins undecided
    /// vertices into R (RULED verdicts are truthful, so domination is
    /// preserved), the run always terminates, the result always
    /// dominates `G²`, and the degradation is deterministic across
    /// thread counts.
    #[test]
    fn ruling_set_timeout_fallback_stays_dominating(g in arb_graph(), seed in any::<u64>()) {
        let words = recommended_ruling_set_memory_words(&g);
        let spec = hostile(seed);
        let rel = ReliabilitySpec::arq().with_max_retries(3).with_phase_timeouts(2);
        let base_cfg = RunConfig::new()
            .sequential()
            .max_rounds(100_000)
            .adversary(spec)
            .reliability(rel);
        let base = g2_ruling_set_mpc_cfg(&g, words, &base_cfg).unwrap();
        prop_assert!(pga_graph::cover::is_dominating_set_on_square(&g, &base.in_r));
        for threads in [1usize, 4] {
            let cfg = RunConfig::new()
                .parallel(threads)
                .max_rounds(100_000)
                .adversary(spec)
                .reliability(rel);
            let r = g2_ruling_set_mpc_cfg(&g, words, &cfg).unwrap();
            prop_assert_eq!(&r.in_r, &base.in_r, "threads {}", threads);
            prop_assert_eq!(
                r.mpc.fault.degraded, base.mpc.fault.degraded,
                "threads {}", threads
            );
        }
    }
}
