//! Property-based tests: the CONGEST-to-MPC adapter must reproduce the
//! CONGEST reference engine bit for bit on random graphs, the MPC
//! engines must agree with each other, and the native ruling set must
//! match its sequential oracle.

use pga_congest::primitives::FloodMax;
use pga_congest::Simulator;
use pga_graph::{generators, Graph, NodeId};
use pga_mpc::{g2_ruling_set_mpc, lex_first_g2_mis, CongestOnMpc, Engine};
use proptest::prelude::*;

fn arb_connected() -> impl Strategy<Value = Graph> {
    (2usize..40, any::<u64>()).prop_map(|(n, seed)| {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        generators::connected_gnp(n, 0.12, &mut rng)
    })
}

fn arb_any_graph() -> impl Strategy<Value = Graph> {
    (1usize..40, any::<u64>()).prop_map(|(n, seed)| {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m_max = n * (n - 1) / 2;
        generators::gnm(n, m_max.min(2 * n) / 2, &mut rng)
    })
}

fn floodmax_states(n: usize) -> Vec<FloodMax> {
    (0..n)
        .map(|i| FloodMax::new(NodeId::from_index(i)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The adapter reproduces `Simulator::run` bit for bit — outputs and
    /// full CONGEST metrics (congestion profile included) — for FloodMax
    /// on random connected graphs, across memory budgets (machine
    /// counts) and both MPC engines.
    #[test]
    fn adapter_floodmax_bit_identical(g in arb_connected(), budget_scale in 0usize..3) {
        let n = g.num_nodes();
        let reference = Simulator::congest(&g).run(floodmax_states(n)).unwrap();
        let base = pga_mpc::recommended_memory_words(
            &g,
            pga_congest::default_bandwidth_bits(n),
        );
        let driver = CongestOnMpc::congest(&g).with_memory_words(base << budget_scale);
        for engine in [Engine::Sequential, Engine::Parallel { threads: 3 }] {
            let adapter = driver.run_with(floodmax_states(n), engine).unwrap();
            prop_assert_eq!(&adapter.outputs, &reference.outputs);
            prop_assert_eq!(&adapter.congest, &reference.metrics);
            prop_assert!(adapter.mpc.rounds == reference.metrics.rounds);
            prop_assert!(adapter.mpc.peak_memory_words <= base << budget_scale);
        }
    }

    /// The MPC ruling set equals the lexicographically-first MIS of G²
    /// on arbitrary (possibly disconnected) random graphs, on both
    /// engines.
    #[test]
    fn ruling_set_matches_sequential_oracle(g in arb_any_graph()) {
        let oracle = lex_first_g2_mis(&g);
        let s = pga_mpc::recommended_ruling_set_memory_words(&g);
        for engine in [Engine::Sequential, Engine::Parallel { threads: 2 }] {
            let result = g2_ruling_set_mpc(&g, s, engine).unwrap();
            prop_assert_eq!(&result.in_r, &oracle);
        }
        // R dominates the square — a valid alternative cover seed.
        prop_assert!(pga_graph::cover::is_dominating_set_on_square(&g, &oracle));
    }

    /// Shrinking the memory budget only changes the machine count, never
    /// the simulated run: more machines, same bits.
    #[test]
    fn adapter_invariant_under_partitioning(g in arb_connected()) {
        let n = g.num_nodes();
        let base = pga_mpc::recommended_memory_words(
            &g,
            pga_congest::default_bandwidth_bits(n),
        );
        let coarse = CongestOnMpc::congest(&g)
            .with_memory_words(4 * base)
            .run(floodmax_states(n))
            .unwrap();
        let fine = CongestOnMpc::congest(&g)
            .with_memory_words(base)
            .run(floodmax_states(n))
            .unwrap();
        prop_assert!(fine.machines >= coarse.machines);
        prop_assert_eq!(&fine.outputs, &coarse.outputs);
        prop_assert_eq!(&fine.congest, &coarse.congest);
    }
}
