//! Engine-behavior tests for the MPC simulator: budget enforcement,
//! termination, and bit-identity of the sequential and sharded
//! executors (and of both scheduling policies) across thread counts.

use pga_mpc::{
    low_space_words, Engine, Machine, MachineId, MpcCtx, MpcError, MpcSimulator, Scheduling,
    WordSize,
};

/// A plain word-counted payload.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Words(u64, usize);
impl WordSize for Words {
    fn size_bits(&self, _id_bits: usize) -> usize {
        64 * self.1
    }

    fn size_words(&self) -> usize {
        self.1
    }
}

/// Token ring: machine 0 emits a counter that each machine increments
/// and forwards; after a full lap machine 0 stops.
struct Ring {
    laps: usize,
    seen: u64,
    done: bool,
    mem: usize,
}

impl Machine for Ring {
    type Msg = Words;
    type Output = u64;
    fn round(
        &mut self,
        ctx: &MpcCtx,
        inbox: &[(MachineId, Words)],
    ) -> Result<Vec<(MachineId, Words)>, MpcError> {
        let next = MachineId::from_index((ctx.id.index() + 1) % ctx.machines);
        if ctx.id == MachineId(0) && ctx.round == 0 {
            return Ok(vec![(next, Words(1, 1))]);
        }
        let mut out = Vec::new();
        for (_, msg) in inbox {
            self.seen = msg.0;
            if ctx.id == MachineId(0) {
                self.laps -= 1;
                if self.laps == 0 {
                    self.done = true;
                    continue;
                }
            }
            out.push((next, Words(msg.0 + 1, 1)));
        }
        if ctx.id != MachineId(0) {
            self.done = true; // done-until-messaged; inbox re-activates
        }
        Ok(out)
    }
    fn memory_words(&self) -> usize {
        self.mem
    }
    fn is_done(&self, _ctx: &MpcCtx) -> bool {
        self.done
    }
    fn output(&self, _ctx: &MpcCtx) -> u64 {
        self.seen
    }
}

fn ring(m: usize, laps: usize) -> Vec<Ring> {
    (0..m)
        .map(|_| Ring {
            laps,
            seen: 0,
            done: false,
            mem: 4,
        })
        .collect()
}

#[test]
fn ring_completes_and_counts() {
    let report = MpcSimulator::new(64).run(ring(5, 1)).unwrap();
    assert_eq!(report.metrics.rounds, 6);
    assert_eq!(report.metrics.messages, 5);
    assert_eq!(report.outputs[0], 5);
    assert_eq!(report.metrics.peak_memory_words, 4);
    assert_eq!(report.metrics.io_profile.len(), report.metrics.rounds);
}

#[test]
fn parallel_matches_sequential_bit_identically() {
    let seq = MpcSimulator::new(64).run(ring(16, 3)).unwrap();
    for threads in [1, 2, 3, 5, 8] {
        let par = MpcSimulator::new(64)
            .run_parallel(ring(16, 3), threads)
            .unwrap();
        assert_eq!(par.outputs, seq.outputs, "t={threads}");
        assert_eq!(par.metrics, seq.metrics, "t={threads}");
    }
}

/// A ring whose machines declare wildly skewed memory footprints: the
/// balanced partition then draws uneven shard boundaries (heavy
/// machines get short ranges), which must not be observable in outputs,
/// metrics, or errors.
fn skewed_ring(m: usize, laps: usize) -> Vec<Ring> {
    (0..m)
        .map(|i| Ring {
            laps,
            seen: 0,
            done: false,
            // One dominant machine plus a geometric-ish tail, all within
            // the budget of 64 words.
            mem: if i == 0 { 60 } else { 1 + (i % 7) },
        })
        .collect()
}

#[test]
fn cost_balanced_sharding_stays_bit_identical() {
    let seq = MpcSimulator::new(64).run(skewed_ring(16, 3)).unwrap();
    for threads in [1, 2, 3, 5, 8] {
        let par = MpcSimulator::new(64)
            .run_parallel(skewed_ring(16, 3), threads)
            .unwrap();
        assert_eq!(par.outputs, seq.outputs, "t={threads}");
        assert_eq!(par.metrics, seq.metrics, "t={threads}");
    }
}

#[test]
fn shard_boundaries_balance_resident_words() {
    let sim = MpcSimulator::new(64);
    let machines = skewed_ring(16, 1);
    for threads in [1, 2, 4, 7] {
        let bounds = sim.shard_boundaries(&machines, threads);
        assert_eq!(*bounds.first().unwrap(), 0, "t={threads}");
        assert_eq!(*bounds.last().unwrap(), 16, "t={threads}");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "t={threads}");
        assert!(bounds.len() - 1 <= threads.max(1), "t={threads}");
    }
    // Machine 0 declares 60 of the ~120 total words, so at 4 threads it
    // must not share its shard with a proportional slice of the ring.
    let bounds = sim.shard_boundaries(&machines, 4);
    assert!(bounds[1] <= 2, "heavy machine's shard too wide: {bounds:?}");
}

#[test]
fn scheduling_policies_match_bit_identically() {
    // Most ring machines sit "done" between token visits, so the
    // active-set policy skips them; the run must not notice.
    let reference = MpcSimulator::new(64)
        .with_scheduling(Scheduling::FullSweep)
        .run(ring(16, 3))
        .unwrap();
    for scheduling in [Scheduling::FullSweep, Scheduling::ActiveSet] {
        let seq = MpcSimulator::new(64)
            .with_scheduling(scheduling)
            .run(ring(16, 3))
            .unwrap();
        assert_eq!(seq.outputs, reference.outputs, "{scheduling:?}");
        assert_eq!(seq.metrics, reference.metrics, "{scheduling:?}");
        for threads in [2, 5] {
            let par = MpcSimulator::new(64)
                .with_scheduling(scheduling)
                .run_parallel(ring(16, 3), threads)
                .unwrap();
            assert_eq!(par.outputs, reference.outputs, "{scheduling:?} t={threads}");
            assert_eq!(par.metrics, reference.metrics, "{scheduling:?} t={threads}");
        }
    }
}

#[test]
fn memory_violation_detected() {
    struct Hog;
    impl Machine for Hog {
        type Msg = Words;
        type Output = ();
        fn round(
            &mut self,
            _ctx: &MpcCtx,
            _inbox: &[(MachineId, Words)],
        ) -> Result<Vec<(MachineId, Words)>, MpcError> {
            Ok(Vec::new())
        }
        fn memory_words(&self) -> usize {
            1000
        }
        fn is_done(&self, _ctx: &MpcCtx) -> bool {
            true
        }
        fn output(&self, _ctx: &MpcCtx) {}
    }
    let err = MpcSimulator::new(64).run(vec![Hog, Hog]).unwrap_err();
    assert_eq!(
        err,
        MpcError::MemoryExceeded {
            machine: MachineId(0),
            used_words: 1000,
            limit_words: 64,
            round: 0
        }
    );
}

#[test]
fn send_volume_violation_detected() {
    struct Blaster {
        fired: bool,
    }
    impl Machine for Blaster {
        type Msg = Words;
        type Output = ();
        fn round(
            &mut self,
            ctx: &MpcCtx,
            _inbox: &[(MachineId, Words)],
        ) -> Result<Vec<(MachineId, Words)>, MpcError> {
            if ctx.id == MachineId(0) && !self.fired {
                self.fired = true;
                return Ok(vec![(MachineId(1), Words(0, 100))]);
            }
            Ok(Vec::new())
        }
        fn memory_words(&self) -> usize {
            1
        }
        fn is_done(&self, _ctx: &MpcCtx) -> bool {
            self.fired
        }
        fn output(&self, _ctx: &MpcCtx) {}
    }
    let err = MpcSimulator::new(64)
        .run(vec![Blaster { fired: false }, Blaster { fired: true }])
        .unwrap_err();
    assert!(matches!(
        err,
        MpcError::SendVolumeExceeded { words: 100, .. }
    ));
}

#[test]
fn recv_volume_violation_detected() {
    // Many machines each send S/2 words to machine 0: each send is
    // legal, the aggregate at the receiver is not.
    struct Shouter;
    impl Machine for Shouter {
        type Msg = Words;
        type Output = ();
        fn round(
            &mut self,
            ctx: &MpcCtx,
            _inbox: &[(MachineId, Words)],
        ) -> Result<Vec<(MachineId, Words)>, MpcError> {
            if ctx.round == 0 && ctx.id != MachineId(0) {
                return Ok(vec![(MachineId(0), Words(0, 32))]);
            }
            Ok(Vec::new())
        }
        fn memory_words(&self) -> usize {
            1
        }
        fn is_done(&self, ctx: &MpcCtx) -> bool {
            ctx.round > 0
        }
        fn output(&self, _ctx: &MpcCtx) {}
    }
    let err = MpcSimulator::new(64)
        .run((0..4).map(|_| Shouter).collect::<Vec<_>>())
        .unwrap_err();
    assert_eq!(
        err,
        MpcError::RecvVolumeExceeded {
            machine: MachineId(0),
            words: 96,
            limit_words: 64,
            round: 0
        }
    );
}

#[test]
fn illegal_machine_detected() {
    struct Stray;
    impl Machine for Stray {
        type Msg = Words;
        type Output = ();
        fn round(
            &mut self,
            ctx: &MpcCtx,
            _inbox: &[(MachineId, Words)],
        ) -> Result<Vec<(MachineId, Words)>, MpcError> {
            if ctx.id == MachineId(0) {
                return Ok(vec![(MachineId(9), Words(0, 1))]);
            }
            Ok(Vec::new())
        }
        fn memory_words(&self) -> usize {
            1
        }
        fn is_done(&self, _ctx: &MpcCtx) -> bool {
            false
        }
        fn output(&self, _ctx: &MpcCtx) {}
    }
    let err = MpcSimulator::new(64).run(vec![Stray, Stray]).unwrap_err();
    assert!(matches!(
        err,
        MpcError::IllegalMachine {
            to: MachineId(9),
            ..
        }
    ));
}

#[test]
fn round_limit_detected() {
    let err = MpcSimulator::new(64)
        .with_max_rounds(3)
        .run(ring(4, 1000))
        .unwrap_err();
    assert_eq!(err, MpcError::RoundLimitExceeded { limit: 3 });
}

#[test]
fn parallel_errors_match_sequential() {
    struct Stray {
        id_to_err: usize,
    }
    impl Machine for Stray {
        type Msg = Words;
        type Output = ();
        fn round(
            &mut self,
            ctx: &MpcCtx,
            _inbox: &[(MachineId, Words)],
        ) -> Result<Vec<(MachineId, Words)>, MpcError> {
            if ctx.id.index() == self.id_to_err {
                return Ok(vec![(MachineId(99), Words(0, 1))]);
            }
            Ok(Vec::new())
        }
        fn memory_words(&self) -> usize {
            1
        }
        fn is_done(&self, _ctx: &MpcCtx) -> bool {
            false
        }
        fn output(&self, _ctx: &MpcCtx) {}
    }
    let mk = || (0..8).map(|_| Stray { id_to_err: 6 }).collect::<Vec<_>>();
    let seq = MpcSimulator::new(64).run(mk()).unwrap_err();
    for threads in [2, 4] {
        let par = MpcSimulator::new(64)
            .run_parallel(mk(), threads)
            .unwrap_err();
        assert_eq!(par, seq, "t={threads}");
    }
}

#[test]
fn zero_machines_trivial() {
    let report = MpcSimulator::new(64).run(Vec::<Ring>::new()).unwrap();
    assert_eq!(report.metrics.rounds, 0);
    assert!(report.outputs.is_empty());
}

#[test]
fn low_space_words_scaling() {
    assert_eq!(low_space_words(0, 0.5), 64);
    assert_eq!(low_space_words(10_000, 0.5), 100);
    assert!(low_space_words(1_000_000, 0.6) > low_space_words(10_000, 0.6));
}

#[test]
fn run_with_dispatches_both_engines() {
    for engine in [
        Engine::Sequential,
        Engine::Parallel { threads: 3 },
        Engine::parallel_auto(),
    ] {
        let report = MpcSimulator::new(64).run_with(ring(8, 2), engine).unwrap();
        assert_eq!(report.outputs[0], 16, "{engine:?}");
    }
}
