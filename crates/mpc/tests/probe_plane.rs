//! Property-based tests for the telemetry plane at the MPC simulator
//! level: observer neutrality — attaching a probe leaves outputs,
//! metrics, and errors bit-identical at every thread count, clean or
//! under a seeded adversary — plus telemetry/metrics consistency.

use pga_mpc::{
    FaultSpec, Machine, MachineId, MpcCtx, MpcError, MpcSimulator, NoopProbe, RecordingProbe,
    RunConfig, WordSize,
};
use proptest::prelude::*;

/// A plain one-word payload.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Word(u64);
impl WordSize for Word {
    fn size_bits(&self, _id_bits: usize) -> usize {
        64
    }
    fn size_words(&self) -> usize {
        1
    }
}

/// All-to-all max gossip (the fault-plane suite's workhorse): idempotent
/// under duplication, quiesces under drops and crashes.
struct Gossip {
    best: u64,
    changed: bool,
    quiet: bool,
}

impl Machine for Gossip {
    type Msg = Word;
    type Output = u64;
    fn round(
        &mut self,
        ctx: &MpcCtx,
        inbox: &[(MachineId, Word)],
    ) -> Result<Vec<(MachineId, Word)>, MpcError> {
        for (_, m) in inbox {
            if m.0 > self.best {
                self.best = m.0;
                self.changed = true;
            }
        }
        let send = ctx.round == 0 || self.changed;
        self.changed = false;
        self.quiet = !send;
        if send {
            Ok((0..ctx.machines)
                .filter(|&j| j != ctx.id.index())
                .map(|j| (MachineId::from_index(j), Word(self.best)))
                .collect())
        } else {
            Ok(Vec::new())
        }
    }
    fn memory_words(&self) -> usize {
        4
    }
    fn is_done(&self, _ctx: &MpcCtx) -> bool {
        self.quiet
    }
    fn output(&self, _ctx: &MpcCtx) -> u64 {
        self.best
    }
}

fn gossip(m: usize) -> Vec<Gossip> {
    (0..m)
        .map(|i| Gossip {
            best: (i as u64) * 7 + 1,
            changed: false,
            quiet: false,
        })
        .collect()
}

/// A moderately hostile schedule: every fault class active, bounded
/// delays, a small crash budget.
fn hostile(seed: u64) -> FaultSpec {
    FaultSpec::seeded(seed)
        .drop(0.03)
        .duplicate(0.02)
        .delay(0.03, 3)
        .crash(0.02, 6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Observer neutrality on clean MPC runs, at every thread count —
    /// and the recorded telemetry agrees with the metrics.
    #[test]
    fn recording_probe_is_neutral_on_clean_runs(m in 2usize..16) {
        let sim = MpcSimulator::new(256);
        for threads in [1usize, 2, 4, 8] {
            let cfg = RunConfig::new().parallel(threads);
            let plain = sim.run_cfg_probed(gossip(m), &cfg, &NoopProbe).unwrap();
            let probe = RecordingProbe::new();
            let observed = sim.run_cfg_probed(gossip(m), &cfg, &probe).unwrap();
            prop_assert_eq!(&observed.outputs, &plain.outputs, "outputs, threads {}", threads);
            prop_assert_eq!(&observed.metrics, &plain.metrics, "metrics, threads {}", threads);

            let t = probe.into_telemetry();
            prop_assert!(t.completed);
            prop_assert_eq!(t.actors, m);
            prop_assert_eq!(t.rounds.len(), observed.metrics.rounds);
            let msgs: u64 = t.rounds.iter().map(|r| r.messages).sum();
            prop_assert_eq!(msgs, observed.metrics.messages);
            let words: u64 = t.rounds.iter().map(|r| r.volume).sum();
            prop_assert_eq!(words, observed.metrics.words);
        }
    }

    /// Observer neutrality under the hostile seeded adversary, at every
    /// thread count — whether the run converges or errors.
    #[test]
    fn recording_probe_is_neutral_under_faults(m in 3usize..16, seed in any::<u64>()) {
        let sim = MpcSimulator::new(256);
        for threads in [1usize, 2, 4, 8] {
            let cfg = RunConfig::new()
                .parallel(threads)
                .max_rounds(300)
                .adversary(hostile(seed));
            let plain = sim.run_cfg_probed(gossip(m), &cfg, &NoopProbe);
            let probe = RecordingProbe::new();
            let observed = sim.run_cfg_probed(gossip(m), &cfg, &probe);
            match (&plain, &observed) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(&a.outputs, &b.outputs, "outputs, threads {}", threads);
                    prop_assert_eq!(&a.metrics, &b.metrics, "metrics, threads {}", threads);
                    let t = probe.into_telemetry();
                    prop_assert!(t.completed);
                    prop_assert_eq!(&t.fault, &b.metrics.fault, "fault tally, threads {}", threads);
                }
                (Err(a), Err(b)) => {
                    prop_assert_eq!(a, b, "threads {}", threads);
                    prop_assert!(!probe.into_telemetry().completed);
                }
                _ => prop_assert!(false, "Ok/Err divergence at threads {}", threads),
            }
        }
    }

    /// Error neutrality: an exhausted round budget surfaces as the same
    /// `MpcError` with a probe attached.
    #[test]
    fn recording_probe_is_neutral_on_errors(m in 3usize..16) {
        let sim = MpcSimulator::new(256);
        let cfg = RunConfig::new().max_rounds(1);
        let plain = sim.run_cfg_probed(gossip(m), &cfg, &NoopProbe).unwrap_err();
        for threads in [1usize, 4] {
            let cfg = RunConfig::new().parallel(threads).max_rounds(1);
            let probe = RecordingProbe::new();
            let observed = sim.run_cfg_probed(gossip(m), &cfg, &probe).unwrap_err();
            prop_assert_eq!(&observed, &plain, "threads {}", threads);
            prop_assert!(!probe.into_telemetry().completed);
        }
    }
}
