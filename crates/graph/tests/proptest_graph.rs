//! Property-based tests for the graph substrate.

use pga_graph::bmm::{square_bmm, square_bmm_sharded};
use pga_graph::cover::{is_independent_set, is_vertex_cover, members, membership};
use pga_graph::power::{power, square, square_scalar, two_hop_neighborhood};
use pga_graph::traversal::{bfs_distances, connected_components, is_connected};
use pga_graph::{generators, Graph, GraphBuilder, NodeId};
use proptest::prelude::*;

/// A random edge set over `n ≤ 16` vertices.
fn arb_edges() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..16).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..40);
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Building from any edge list yields a simple graph: sorted unique
    /// neighbor lists, symmetric adjacency, consistent edge count.
    #[test]
    fn builder_produces_simple_graph((n, edges) in arb_edges()) {
        let g = Graph::from_edges(n, &edges);
        let mut count = 0;
        for v in g.nodes() {
            let nb = g.neighbors(v);
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]), "sorted unique");
            for &u in nb {
                prop_assert!(u != v, "no self-loops");
                prop_assert!(g.has_edge(v, u) && g.has_edge(u, v));
                count += 1;
            }
        }
        prop_assert_eq!(count, 2 * g.num_edges());
    }

    /// BFS distances satisfy the triangle property along edges.
    #[test]
    fn bfs_distance_lipschitz((n, edges) in arb_edges()) {
        let g = Graph::from_edges(n, &edges);
        let d = bfs_distances(&g, NodeId(0));
        for (u, v) in g.edges() {
            match (d[u.index()], d[v.index()]) {
                (Some(a), Some(b)) => {
                    prop_assert!(a.abs_diff(b) <= 1, "adjacent distances differ ≤ 1)");
                }
                (None, None) => {}
                _ => prop_assert!(false, "an edge cannot cross reachability"),
            }
        }
    }

    /// The square equals distance-filtering: {u,v} ∈ G² iff dist ≤ 2.
    #[test]
    fn square_is_distance_two((n, edges) in arb_edges()) {
        let g = Graph::from_edges(n, &edges);
        let g2 = square(&g);
        for u in g.nodes() {
            let d = bfs_distances(&g, u);
            for v in g.nodes() {
                if v <= u { continue; }
                let within2 = matches!(d[v.index()], Some(1) | Some(2));
                prop_assert_eq!(g2.has_edge(u, v), within2, "{:?}-{:?}", u, v);
            }
        }
    }

    /// Power composition: (G²)² = G⁴.
    #[test]
    fn square_of_square_is_fourth_power((n, edges) in arb_edges()) {
        let g = Graph::from_edges(n, &edges);
        prop_assert_eq!(square(&square(&g)), power(&g, 4));
    }

    /// Two-hop neighborhoods agree with the square's adjacency.
    #[test]
    fn two_hop_consistency((n, edges) in arb_edges()) {
        let g = Graph::from_edges(n, &edges);
        let g2 = square(&g);
        for v in g.nodes() {
            prop_assert_eq!(two_hop_neighborhood(&g, v), g2.neighbors(v).to_vec());
        }
    }

    /// Complement of any vertex cover is an independent set and vice versa.
    #[test]
    fn cover_independence_duality((n, edges) in arb_edges(), mask in any::<u32>()) {
        let g = Graph::from_edges(n, &edges);
        let set: Vec<bool> = (0..n).map(|i| mask >> (i % 32) & 1 == 1).collect();
        let comp: Vec<bool> = set.iter().map(|&b| !b).collect();
        prop_assert_eq!(is_vertex_cover(&g, &set), is_independent_set(&g, &comp));
    }

    /// Components partition the vertex set and are closed under edges.
    #[test]
    fn components_partition((n, edges) in arb_edges()) {
        let g = Graph::from_edges(n, &edges);
        let c = connected_components(&g);
        prop_assert!(c.component.iter().all(|&x| x < c.num_components));
        for (u, v) in g.edges() {
            prop_assert_eq!(c.component[u.index()], c.component[v.index()]);
        }
        let groups = c.groups();
        let total: usize = groups.iter().map(Vec::len).sum();
        prop_assert_eq!(total, n);
    }

    /// connected_gnp always yields connected graphs; square preserves
    /// connectivity.
    #[test]
    fn connectivity_preserved_by_square(seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = generators::connected_gnp(12, 0.05, &mut rng);
        prop_assert!(is_connected(&g));
        prop_assert!(is_connected(&square(&g)));
    }

    /// membership/members round-trip.
    #[test]
    fn membership_roundtrip(ids in proptest::collection::btree_set(0u32..20, 0..10)) {
        let ids: Vec<NodeId> = ids.into_iter().map(NodeId).collect();
        let mv = membership(20, &ids);
        prop_assert_eq!(members(&mv), ids);
    }

    /// Edge-list serialization round-trips.
    #[test]
    fn io_roundtrip((n, edges) in arb_edges()) {
        let g = Graph::from_edges(n, &edges);
        let text = pga_graph::io::to_edge_list(&g);
        prop_assert_eq!(pga_graph::io::parse_edge_list(&text).unwrap(), g);
    }

    /// GraphBuilder add_clique really makes a clique in the final graph.
    #[test]
    fn builder_clique(k in 1usize..7) {
        let mut b = GraphBuilder::new(k + 2);
        let nodes: Vec<NodeId> = (0..k).map(NodeId::from_index).collect();
        b.add_clique(&nodes);
        let g = b.build();
        prop_assert!(g.is_clique(&nodes));
        prop_assert_eq!(g.num_edges(), k * (k - 1) / 2);
    }

    /// CSR invariants hold for every generator family: offsets monotone
    /// with the sentinel shape, neighbor lists sorted and deduplicated,
    /// and the degree sum equal to `2m`.
    #[test]
    fn csr_invariants_across_generators(n in 2usize..24, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m_max = n * (n - 1) / 2;
        let graphs = vec![
            generators::path(n),
            generators::cycle(n.max(3)),
            generators::star(n),
            generators::complete(n.min(9)),
            generators::complete_bipartite(n / 2 + 1, n / 2 + 1),
            generators::grid(n / 2 + 1, 3),
            generators::caterpillar(n / 2 + 1, 2),
            generators::gnp(n, 0.2, &mut rng),
            generators::connected_gnp(n, 0.1, &mut rng),
            generators::gnm(n, m_max.min(2 * n) / 2, &mut rng),
            generators::connected_gnm(n, (n - 1).max(m_max.min(2 * n) / 2), &mut rng),
            generators::random_tree(n, &mut rng),
            generators::preferential_attachment(n, 2, &mut rng),
            generators::barabasi_albert(n, 3, seed),
            generators::clique_chain(n / 4 + 1, 4),
            generators::disjoint_union(&generators::path(n / 2), &generators::star(n / 2 + 1)),
            generators::planted_partition(n, n / 4 + 1, 0.6, 0.1, seed),
        ];
        for g in &graphs {
            let (offsets, targets) = g.csr();
            // Offsets: n + 1 entries, starting at 0, ending at |targets|,
            // monotone nondecreasing.
            prop_assert_eq!(offsets.len(), g.num_nodes() + 1, "{:?}", g);
            prop_assert_eq!(offsets[0], 0, "{:?}", g);
            prop_assert_eq!(*offsets.last().unwrap(), targets.len(), "{:?}", g);
            prop_assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "{:?}", g);
            // Degree sum = |targets| = 2m.
            prop_assert_eq!(targets.len(), 2 * g.num_edges(), "{:?}", g);
            prop_assert_eq!(g.degree_sum(), 2 * g.num_edges(), "{:?}", g);
            // Neighbor lists: sorted, deduplicated, in range, loop-free,
            // and symmetric.
            for v in g.nodes() {
                let nb = &targets[offsets[v.index()]..offsets[v.index() + 1]];
                prop_assert!(nb.windows(2).all(|w| w[0] < w[1]), "{:?} {:?}", g, v);
                for &u in nb {
                    prop_assert!(u.index() < g.num_nodes(), "{:?}", g);
                    prop_assert!(u != v, "self-loop in {:?}", g);
                    prop_assert!(g.neighbors(u).binary_search(&v).is_ok(), "asymmetry in {:?}", g);
                }
            }
        }
    }
}

/// The workload families the BMM kernel targets: random mass (gnm),
/// heavy-tailed degrees (Barabási–Albert), dense-blob-plus-path
/// (lollipop), and clustered/SBM (planted partition).
fn bmm_families(n: usize, seed: u64) -> Vec<Graph> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let m_max = n * (n - 1) / 2;
    vec![
        generators::gnm(n, (2 * n).min(m_max), &mut rng),
        generators::barabasi_albert(n, 3, seed),
        generators::gnm_lollipop(n / 2 + 2, n, n / 2, seed),
        generators::planted_partition(n, n / 16 + 1, 0.5, 0.02, seed),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The bitset BMM kernel is the scalar square, bit for bit: same
    /// CSR arrays, not just the same edge set.
    #[test]
    fn square_bmm_matches_scalar(n in 2usize..96, seed in any::<u64>()) {
        for g in bmm_families(n, seed) {
            let bmm = square_bmm(&g);
            let scalar = square_scalar(&g);
            prop_assert_eq!(bmm.csr(), scalar.csr());
            prop_assert_eq!(bmm, square(&g));
        }
    }

    /// The sharded kernel is the sequential kernel at every thread
    /// count: `balanced_partition` only moves work, never results.
    #[test]
    fn sharded_bmm_matches_sequential(n in 2usize..96, seed in any::<u64>()) {
        for g in bmm_families(n, seed) {
            let seq = square_bmm(&g);
            for threads in [1usize, 2, 4, 8] {
                let sharded = square_bmm_sharded(&g, threads);
                prop_assert_eq!(sharded.csr(), seq.csr(), "threads={}", threads);
            }
        }
    }
}
