//! Graph generators: deterministic families and seeded random models.
//!
//! These are the workloads used throughout the test suite and the benchmark
//! harness. All random generators take an explicit `&mut impl Rng`, so every
//! experiment in the workspace is reproducible from a seed.

use crate::{Graph, GraphBuilder, NodeId};
use rand::seq::SliceRandom;
use rand::{Rng, RngExt};

/// A path `0 - 1 - ... - (n-1)`.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(NodeId::from_index(i - 1), NodeId::from_index(i));
    }
    b.build()
}

/// A cycle on `n ≥ 3` vertices.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(NodeId::from_index(i), NodeId::from_index((i + 1) % n));
    }
    b.build()
}

/// A star: center `0` connected to leaves `1..n`.
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(NodeId(0), NodeId::from_index(i));
    }
    b.build()
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    let nodes: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
    b.add_clique(&nodes);
    b.build()
}

/// The complete bipartite graph `K_{a,b}` with sides `0..a` and `a..a+b`.
pub fn complete_bipartite(a: usize, b_size: usize) -> Graph {
    let mut b = GraphBuilder::new(a + b_size);
    for i in 0..a {
        for j in 0..b_size {
            b.add_edge(NodeId::from_index(i), NodeId::from_index(a + j));
        }
    }
    b.build()
}

/// A `rows × cols` grid graph.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut b = GraphBuilder::new(rows * cols);
    let id = |r: usize, c: usize| NodeId::from_index(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
        }
    }
    b.build()
}

/// A caterpillar: a spine path of length `spine` with `legs` pendant
/// vertices attached to each spine vertex.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let mut b = GraphBuilder::new(spine + spine * legs);
    for i in 1..spine {
        b.add_edge(NodeId::from_index(i - 1), NodeId::from_index(i));
    }
    for i in 0..spine {
        for l in 0..legs {
            b.add_edge(
                NodeId::from_index(i),
                NodeId::from_index(spine + i * legs + l),
            );
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)`: each of the `n choose 2` edges appears
/// independently with probability `p`.
pub fn gnp(n: usize, p: f64, rng: &mut impl Rng) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random::<f64>() < p {
                b.add_edge(NodeId::from_index(u), NodeId::from_index(v));
            }
        }
    }
    b.build()
}

/// A connected `G(n, p)`-like graph: a uniform random spanning tree plus
/// each remaining edge independently with probability `p`.
///
/// Guarantees connectivity, which many CONGEST algorithms (leader election,
/// BFS-tree pipelining) assume.
pub fn connected_gnp(n: usize, p: f64, rng: &mut impl Rng) -> Graph {
    assert!(n >= 1);
    let mut b = GraphBuilder::new(n);
    // Random tree via random attachment to an earlier vertex, after a
    // random relabeling so the tree is not biased toward low ids.
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(rng);
    for i in 1..n {
        let j = rng.random_range(0..i);
        b.add_edge(NodeId::from_index(perm[i]), NodeId::from_index(perm[j]));
    }
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random::<f64>() < p {
                b.add_edge(NodeId::from_index(u), NodeId::from_index(v));
            }
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct edges sampled uniformly.
///
/// Runs in expected `O(m)` time (rejection sampling), unlike [`gnp`] and
/// [`connected_gnp`] which enumerate all `n choose 2` pairs — use this
/// family for the large instances the benchmark harness pins (≥ 50k
/// vertices). Intended for sparse graphs; rejection sampling degrades as
/// `m` approaches `n(n-1)/2`.
///
/// # Panics
///
/// Panics if `m > n(n-1)/2`.
pub fn gnm(n: usize, m: usize, rng: &mut impl Rng) -> Graph {
    let possible = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(m <= possible, "m = {m} exceeds {possible} possible edges");
    let mut b = GraphBuilder::new(n);
    let mut seen = std::collections::HashSet::with_capacity(m);
    fill_random_edges(&mut b, &mut seen, n, m, rng);
    b.build()
}

/// Rejection-samples distinct random edges into `b` until `seen` holds
/// `m` of them. `seen` may be pre-seeded (e.g. with spanning-tree edges).
fn fill_random_edges(
    b: &mut GraphBuilder,
    seen: &mut std::collections::HashSet<(usize, usize)>,
    n: usize,
    m: usize,
    rng: &mut impl Rng,
) {
    while seen.len() < m {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            b.add_edge(NodeId::from_index(key.0), NodeId::from_index(key.1));
        }
    }
}

/// A connected `G(n, m)`-like graph: a uniform random recursive tree plus
/// `m - (n - 1)` further distinct edges sampled uniformly.
///
/// The `O(m)` counterpart of [`connected_gnp`]; guarantees connectivity
/// for the CONGEST algorithms that need it while scaling to the ≥ 50k-node
/// instances of the benchmark harness.
///
/// # Panics
///
/// Panics if `n == 0`, `m < n - 1`, or `m > n(n-1)/2`.
pub fn connected_gnm(n: usize, m: usize, rng: &mut impl Rng) -> Graph {
    assert!(n >= 1);
    assert!(m + 1 >= n, "m = {m} cannot connect {n} vertices");
    let possible = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(m <= possible, "m = {m} exceeds {possible} possible edges");
    let mut b = GraphBuilder::new(n);
    let mut seen = std::collections::HashSet::with_capacity(m);
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(rng);
    for i in 1..n {
        let j = rng.random_range(0..i);
        let (u, v) = (perm[i], perm[j]);
        seen.insert((u.min(v), u.max(v)));
        b.add_edge(NodeId::from_index(u), NodeId::from_index(v));
    }
    fill_random_edges(&mut b, &mut seen, n, m, rng);
    b.build()
}

/// A uniform random recursive tree on `n` vertices.
pub fn random_tree(n: usize, rng: &mut impl Rng) -> Graph {
    let mut b = GraphBuilder::new(n);
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(rng);
    for i in 1..n {
        let j = rng.random_range(0..i);
        b.add_edge(NodeId::from_index(perm[i]), NodeId::from_index(perm[j]));
    }
    b.build()
}

/// Barabási–Albert-style preferential attachment: each new vertex attaches
/// to `m` existing vertices chosen proportionally to degree.
///
/// Produces the heavy-tailed degree distributions under which the clique
/// structure of `G²` is most pronounced.
pub fn preferential_attachment(n: usize, m: usize, rng: &mut impl Rng) -> Graph {
    assert!(m >= 1, "attachment count must be positive");
    let mut b = GraphBuilder::new(n);
    if n == 0 {
        return b.build();
    }
    // Repeated-endpoint list: sampling uniformly from it is
    // degree-proportional sampling.
    let mut endpoints: Vec<usize> = vec![0];
    for v in 1..n {
        let mut targets = Vec::new();
        let k = m.min(v);
        let mut guard = 0;
        while targets.len() < k && guard < 100 * k {
            guard += 1;
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if t != v && !targets.contains(&t) {
                targets.push(t);
            }
        }
        // Fallback: deterministic fill for pathological small cases.
        let mut u = 0;
        while targets.len() < k {
            if u != v && !targets.contains(&u) {
                targets.push(u);
            }
            u += 1;
        }
        for &t in &targets {
            b.add_edge(NodeId::from_index(v), NodeId::from_index(t));
            endpoints.push(t);
            endpoints.push(v);
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment: vertex `v` attaches to
/// `min(k, v)` distinct earlier vertices chosen proportionally to degree.
///
/// The scalable heavy-tail counterpart of [`preferential_attachment`]:
/// sampling walks a repeated-endpoint array (picking a uniform entry is
/// degree-proportional sampling) and runs in expected `O(m)` time for
/// constant `k`, so it joins [`gnm`] / [`connected_gnm`] as a pinned
/// instance family of the benchmark harness (`bench_sim`, `bench_mpc`).
/// Every vertex attaches to at least one predecessor, so the graph is
/// always connected, and the edge count is exactly
/// `Σ_{v=1}^{n-1} min(k, v)`.
///
/// Takes the seed directly (the instance is pinned by `(n, k, seed)`
/// alone, with no dependence on prior draws from a shared generator).
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn barabasi_albert(n: usize, k: usize, seed: u64) -> Graph {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    assert!(k >= 1, "attachment count must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    if n == 0 {
        return b.build();
    }
    // Every edge endpoint is appended once; a uniform draw from this
    // array is exactly degree-proportional. A fresh vertex's own id is
    // absent until its edges are added, so `t == v` never occurs, and at
    // most half of all entries belong to any one vertex (each accepted
    // edge also appends the new vertex), so the duplicate-rejection loop
    // terminates in O(1) expected draws per edge.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * k * n);
    endpoints.push(0);
    for v in 1..n {
        let want = k.min(v);
        let mut targets: Vec<u32> = Vec::with_capacity(want);
        while targets.len() < want {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            b.add_edge(NodeId::from_index(v), NodeId(t));
            endpoints.push(t);
            endpoints.push(v as u32);
        }
    }
    b.build()
}

/// A "lollipop": a [`connected_gnm`] blob on vertices `0..blob_n` with
/// a path of `tail` extra vertices attached to blob vertex 0 at the
/// path's **largest** id (`blob_n + tail - 1`).
///
/// Because the global maximum id sits at the attachment point, a
/// FloodMax-style computation floods the blob within a few rounds and
/// then crawls down the path one hop per round — the blob is quiescent
/// for ~`tail` trailing rounds. This is the canonical quiescent-tail /
/// shard-skew instance family of the engine benches and parity tests.
///
/// Takes the seed directly (the instance is pinned by
/// `(blob_n, blob_m, tail, seed)` alone).
///
/// # Panics
///
/// Panics like [`connected_gnm`] if `blob_m` cannot connect (or exceed
/// the simple-graph capacity of) `blob_n` vertices.
pub fn gnm_lollipop(blob_n: usize, blob_m: usize, tail: usize, seed: u64) -> Graph {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let blob = connected_gnm(blob_n, blob_m, &mut rng);
    let n = blob_n + tail;
    let mut b = GraphBuilder::new(n);
    for (u, v) in blob.edges() {
        b.add_edge(u, v);
    }
    for i in blob_n..n.saturating_sub(1) {
        b.add_edge(NodeId::from_index(i), NodeId::from_index(i + 1));
    }
    if tail > 0 {
        b.add_edge(NodeId::from_index(n - 1), NodeId(0));
    }
    b.build()
}

/// Planted-partition (stochastic block model) graph: `n` vertices in `k`
/// contiguous clusters, each intra-cluster pair an edge with probability
/// `p_in` and each inter-cluster pair with probability `p_out`.
///
/// Cluster `c` covers a contiguous id range (sizes `⌈n/k⌉` for the first
/// `n mod k` clusters, `⌊n/k⌋` for the rest), so cluster membership of
/// vertex `v` is recoverable arithmetically and — with `p_in ≫ p_out` —
/// the rows of the adjacency matrix concentrate in `k` diagonal blocks.
/// This is the *clustered* workload class on which Boolean matrix
/// multiplication is fast (Lingas, arXiv 2405.16103): the bitset rows of
/// [`crate::bmm`] have few nonzero words, and the congested-clique
/// `clique_bmm` primitive ships them in `O(1)`-ish rounds.
///
/// Sampling skips geometrically through each pair block
/// (Batagelj–Brandes), so the expected running time is `O(m + k²)`
/// rather than `Θ(n²)`. Takes the seed directly (the instance is pinned
/// by `(n, k, p_in, p_out, seed)` alone), like [`barabasi_albert`] and
/// [`gnm_lollipop`].
///
/// # Panics
///
/// Panics if `k == 0` or a probability is outside `[0, 1]`.
pub fn planted_partition(n: usize, k: usize, p_in: f64, p_out: f64, seed: u64) -> Graph {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    assert!(k >= 1, "need at least one cluster");
    assert!((0.0..=1.0).contains(&p_in), "p_in must be a probability");
    assert!((0.0..=1.0).contains(&p_out), "p_out must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Contiguous cluster boundaries: starts[c]..starts[c + 1].
    let (base, extra) = (n / k, n % k);
    let mut starts = Vec::with_capacity(k + 1);
    starts.push(0usize);
    for c in 0..k {
        starts.push(starts[c] + base + usize::from(c < extra));
    }
    // Intra-cluster blocks: Batagelj–Brandes geometric skipping through
    // the triangular pair space of each cluster.
    for c in 0..k {
        let (lo, s) = (starts[c], starts[c + 1] - starts[c]);
        sample_triangular(&mut b, &mut rng, lo, s, p_in);
    }
    // Inter-cluster blocks: geometric skipping through each s_a × s_b
    // rectangular pair grid.
    for a in 0..k {
        for bb in (a + 1)..k {
            let (lo_a, s_a) = (starts[a], starts[a + 1] - starts[a]);
            let (lo_b, s_b) = (starts[bb], starts[bb + 1] - starts[bb]);
            sample_rectangular(&mut b, &mut rng, lo_a, s_a, lo_b, s_b, p_out);
        }
    }
    b.build()
}

/// Geometric skip length for per-pair probability `p`, given
/// `log1mp = ln(1 - p)` (caller guarantees `0 < p < 1`). The `f64 → u64`
/// cast saturates, so an extreme draw yields a skip past any block.
fn geometric_skip(rng: &mut impl Rng, log1mp: f64) -> u64 {
    let r: f64 = rng.random();
    ((1.0 - r).ln() / log1mp) as u64
}

/// Samples each pair `{lo + i, lo + j}`, `0 ≤ j < i < s`, with
/// probability `p` by geometric skipping over the linearized triangular
/// pair space (Batagelj–Brandes): index `t` maps to the pair whose
/// larger endpoint `i` satisfies `i(i-1)/2 ≤ t < i(i+1)/2`.
fn sample_triangular(b: &mut GraphBuilder, rng: &mut impl Rng, lo: usize, s: usize, p: f64) {
    if p <= 0.0 || s < 2 {
        return;
    }
    if p >= 1.0 {
        let nodes: Vec<NodeId> = (lo..lo + s).map(NodeId::from_index).collect();
        b.add_clique(&nodes);
        return;
    }
    let tri = |i: u64| i * (i - 1) / 2;
    let log1mp = (1.0 - p).ln();
    let total = tri(s as u64 + 1) - s as u64; // s(s-1)/2
    let mut t = geometric_skip(rng, log1mp);
    while t < total {
        // Invert t -> larger endpoint i via sqrt, then correct the
        // float estimate by at most a step in either direction.
        let mut i = ((1.0 + ((1 + 8 * t) as f64).sqrt()) / 2.0) as u64;
        while tri(i + 1) <= t {
            i += 1;
        }
        while tri(i) > t {
            i -= 1;
        }
        let j = t - tri(i);
        b.add_edge(
            NodeId::from_index(lo + i as usize),
            NodeId::from_index(lo + j as usize),
        );
        t = t
            .saturating_add(1)
            .saturating_add(geometric_skip(rng, log1mp));
    }
}

/// Samples each pair `{lo_a + i, lo_b + j}` of the `s_a × s_b` grid with
/// probability `p` by geometric skipping over the linearized grid.
fn sample_rectangular(
    b: &mut GraphBuilder,
    rng: &mut impl Rng,
    lo_a: usize,
    s_a: usize,
    lo_b: usize,
    s_b: usize,
    p: f64,
) {
    if p <= 0.0 || s_a == 0 || s_b == 0 {
        return;
    }
    if p >= 1.0 {
        for i in 0..s_a {
            for j in 0..s_b {
                b.add_edge(NodeId::from_index(lo_a + i), NodeId::from_index(lo_b + j));
            }
        }
        return;
    }
    let log1mp = (1.0 - p).ln();
    let total = (s_a as u64) * (s_b as u64);
    let mut t = geometric_skip(rng, log1mp);
    while t < total {
        b.add_edge(
            NodeId::from_index(lo_a + (t / s_b as u64) as usize),
            NodeId::from_index(lo_b + (t % s_b as u64) as usize),
        );
        t = t
            .saturating_add(1)
            .saturating_add(geometric_skip(rng, log1mp));
    }
}

/// The exact edge count of [`barabasi_albert`]`(n, k, _)`:
/// `Σ_{v=1}^{n-1} min(k, v)`.
pub fn barabasi_albert_edge_count(n: usize, k: usize) -> usize {
    (1..n).map(|v| k.min(v)).sum()
}

/// Disjoint union of `g` and `h`: vertices of `h` are shifted by
/// `g.num_nodes()`.
pub fn disjoint_union(g: &Graph, h: &Graph) -> Graph {
    let off = g.num_nodes();
    let mut b = GraphBuilder::new(off + h.num_nodes());
    for (u, v) in g.edges() {
        b.add_edge(u, v);
    }
    for (u, v) in h.edges() {
        b.add_edge(
            NodeId::from_index(u.index() + off),
            NodeId::from_index(v.index() + off),
        );
    }
    b.build()
}

/// A cluster graph: `k` disjoint cliques of size `s` with one path edge
/// linking consecutive cliques (vertex 0 of each clique).
///
/// A stress test for Algorithm 1's clique-harvesting phase: G² contains
/// even larger cliques around the connector vertices.
pub fn clique_chain(k: usize, s: usize) -> Graph {
    assert!(s >= 1);
    let mut b = GraphBuilder::new(k * s);
    for c in 0..k {
        let nodes: Vec<NodeId> = (0..s).map(|i| NodeId::from_index(c * s + i)).collect();
        b.add_clique(&nodes);
        if c + 1 < k {
            b.add_edge(NodeId::from_index(c * s), NodeId::from_index((c + 1) * s));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::connected_components;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_counts() {
        let g = path(10);
        assert_eq!(g.num_edges(), 9);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(path(1).num_edges(), 0);
        assert_eq!(path(0).num_nodes(), 0);
    }

    #[test]
    fn cycle_counts() {
        let g = cycle(8);
        assert_eq!(g.num_edges(), 8);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn cycle_too_small_panics() {
        cycle(2);
    }

    #[test]
    fn star_counts() {
        let g = star(7);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(NodeId(0)), 6);
        assert_eq!(g.max_degree(), 6);
    }

    #[test]
    fn complete_counts() {
        assert_eq!(complete(6).num_edges(), 15);
        assert_eq!(complete(1).num_edges(), 0);
    }

    #[test]
    fn complete_bipartite_counts() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.num_edges(), 12);
        assert_eq!(g.degree(NodeId(0)), 4);
        assert_eq!(g.degree(NodeId(3)), 3);
    }

    #[test]
    fn grid_counts() {
        let g = grid(3, 4);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn caterpillar_counts() {
        let g = caterpillar(4, 2);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 3 + 8);
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(gnp(10, 0.0, &mut rng).num_edges(), 0);
        assert_eq!(gnp(10, 1.0, &mut rng).num_edges(), 45);
    }

    #[test]
    fn gnp_expected_density_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gnp(100, 0.5, &mut rng);
        let m = g.num_edges() as f64;
        let expected = 4950.0 * 0.5;
        assert!((m - expected).abs() < 400.0, "m={m} far from {expected}");
    }

    #[test]
    fn connected_gnp_is_connected() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in [1usize, 2, 5, 40] {
            let g = connected_gnp(n, 0.02, &mut rng);
            assert_eq!(connected_components(&g).num_components, 1, "n={n}");
        }
    }

    #[test]
    fn gnm_exact_edge_count() {
        let mut rng = StdRng::seed_from_u64(7);
        for (n, m) in [(10, 0), (10, 45), (50, 120), (2, 1)] {
            let g = gnm(n, m, &mut rng);
            assert_eq!(g.num_nodes(), n);
            assert_eq!(g.num_edges(), m, "n={n} m={m}");
        }
    }

    #[test]
    #[should_panic(expected = "possible edges")]
    fn gnm_too_many_edges_panics() {
        let mut rng = StdRng::seed_from_u64(8);
        gnm(4, 7, &mut rng);
    }

    #[test]
    fn connected_gnm_connected_exact_m() {
        let mut rng = StdRng::seed_from_u64(9);
        for (n, m) in [(1, 0), (2, 1), (40, 39), (40, 100), (200, 700)] {
            let g = connected_gnm(n, m, &mut rng);
            assert_eq!(g.num_nodes(), n);
            assert_eq!(g.num_edges(), m, "n={n} m={m}");
            assert_eq!(connected_components(&g).num_components, 1, "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "cannot connect")]
    fn connected_gnm_too_few_edges_panics() {
        let mut rng = StdRng::seed_from_u64(10);
        connected_gnm(5, 3, &mut rng);
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = random_tree(25, &mut rng);
        assert_eq!(g.num_edges(), 24);
        assert_eq!(connected_components(&g).num_components, 1);
    }

    #[test]
    fn preferential_attachment_connected_and_sized() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = preferential_attachment(50, 2, &mut rng);
        assert_eq!(g.num_nodes(), 50);
        assert!(g.num_edges() >= 49, "must at least connect every vertex");
        assert_eq!(connected_components(&g).num_components, 1);
    }

    #[test]
    fn barabasi_albert_exact_m_connected() {
        for (n, k, seed) in [(1usize, 2usize, 0u64), (2, 1, 1), (50, 3, 7), (200, 8, 9)] {
            let g = barabasi_albert(n, k, seed);
            assert_eq!(g.num_nodes(), n);
            assert_eq!(
                g.num_edges(),
                barabasi_albert_edge_count(n, k),
                "n={n} k={k}"
            );
            if n >= 1 {
                assert_eq!(connected_components(&g).num_components, 1.min(n), "n={n}");
            }
        }
    }

    #[test]
    fn barabasi_albert_deterministic_in_seed() {
        let a = barabasi_albert(120, 3, 42);
        let b = barabasi_albert(120, 3, 42);
        let c = barabasi_albert(120, 3, 43);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should give different graphs");
    }

    #[test]
    fn barabasi_albert_heavy_tail() {
        // Preferential attachment concentrates degree: the busiest vertex
        // should beat the average by a wide margin.
        let g = barabasi_albert(2000, 2, 5);
        let avg = g.degree_sum() as f64 / g.num_nodes() as f64;
        assert!(
            g.max_degree() as f64 >= 4.0 * avg,
            "max degree {} vs avg {avg:.1}",
            g.max_degree()
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn barabasi_albert_zero_k_panics() {
        barabasi_albert(5, 0, 1);
    }

    #[test]
    fn gnm_lollipop_structure() {
        let g = gnm_lollipop(20, 40, 7, 11);
        assert_eq!(g.num_nodes(), 27);
        // Blob edges + 6 path edges + the attachment edge.
        assert_eq!(g.num_edges(), 40 + 6 + 1);
        assert_eq!(connected_components(&g).num_components, 1);
        // The path's largest id attaches to blob vertex 0.
        assert!(g.neighbors(NodeId(0)).contains(&NodeId::from_index(26)));
        // Interior tail vertices are degree 2.
        assert_eq!(g.degree(NodeId::from_index(22)), 2);
        // Pinned by the seed alone.
        assert_eq!(
            g.edges().collect::<Vec<_>>(),
            gnm_lollipop(20, 40, 7, 11).edges().collect::<Vec<_>>()
        );
        // A zero tail degenerates to the blob.
        assert_eq!(gnm_lollipop(20, 40, 0, 11).num_edges(), 40);
    }

    #[test]
    fn planted_partition_extremes() {
        // p_in = 1, p_out = 0: k disjoint cliques on the contiguous
        // cluster ranges.
        let g = planted_partition(12, 3, 1.0, 0.0, 1);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 3 * (4 * 3 / 2));
        assert_eq!(connected_components(&g).num_components, 3);
        assert!(g.has_edge(NodeId(0), NodeId(3)));
        assert!(!g.has_edge(NodeId(3), NodeId(4)));
        // p_in = 0, p_out = 1: complete multipartite.
        let h = planted_partition(9, 3, 0.0, 1.0, 1);
        assert_eq!(h.num_edges(), 3 * 9);
        assert!(!h.has_edge(NodeId(0), NodeId(1)));
        assert!(h.has_edge(NodeId(0), NodeId(3)));
        // Everything off: edgeless.
        assert_eq!(planted_partition(10, 2, 0.0, 0.0, 1).num_edges(), 0);
        // p = 1 everywhere: complete graph.
        assert_eq!(planted_partition(10, 3, 1.0, 1.0, 1).num_edges(), 45);
    }

    #[test]
    fn planted_partition_uneven_clusters_cover_all_ids() {
        // n = 11, k = 3: cluster sizes 4, 4, 3.
        let g = planted_partition(11, 3, 1.0, 0.0, 7);
        assert_eq!(g.num_nodes(), 11);
        assert_eq!(g.num_edges(), 6 + 6 + 3);
        assert_eq!(g.degree(NodeId(10)), 2);
        // More clusters than vertices degenerates gracefully.
        let h = planted_partition(2, 5, 1.0, 0.5, 7);
        assert_eq!(h.num_nodes(), 2);
    }

    #[test]
    fn planted_partition_deterministic_in_seed() {
        let a = planted_partition(300, 10, 0.3, 0.01, 42);
        let b = planted_partition(300, 10, 0.3, 0.01, 42);
        let c = planted_partition(300, 10, 0.3, 0.01, 43);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should give different graphs");
    }

    #[test]
    fn planted_partition_density_sane() {
        // Expected m = k·C(s,2)·p_in + C(k,2)·s²·p_out
        //            = 20·C(50,2)·0.2 + C(20,2)·2500·0.002 = 4900 + 950.
        let g = planted_partition(1000, 20, 0.2, 0.002, 3);
        let m = g.num_edges() as f64;
        assert!((m - 5850.0).abs() < 700.0, "m={m} far from 5850");
        // Intra-cluster degree dominates: vertex 0's neighbors are
        // mostly inside cluster 0 (ids 0..50).
        let intra = g
            .neighbors(NodeId(0))
            .iter()
            .filter(|v| v.index() < 50)
            .count();
        assert!(intra * 2 > g.degree(NodeId(0)), "clusters not planted");
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn planted_partition_zero_clusters_panics() {
        planted_partition(5, 0, 0.5, 0.1, 1);
    }

    #[test]
    fn disjoint_union_counts() {
        let g = disjoint_union(&path(3), &cycle(4));
        assert_eq!(g.num_nodes(), 7);
        assert_eq!(g.num_edges(), 2 + 4);
        assert_eq!(connected_components(&g).num_components, 2);
    }

    #[test]
    fn clique_chain_structure() {
        let g = clique_chain(3, 4);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 3 * 6 + 2);
        assert_eq!(connected_components(&g).num_components, 1);
    }
}
