//! Plain-text edge-list serialization.
//!
//! Format: first line `n m`, then one `u v` pair per line (0-based ids).
//! Lines starting with `#` are comments. This is the interchange format
//! the experiment harness uses to persist workloads.
//!
//! Parsing is **streaming**: [`EdgeListReader`] wraps any [`BufRead`]
//! source and yields edges one at a time from a reused line buffer, so a
//! `10⁷`–`10⁸`-edge file never has to sit in memory as text. The string
//! and file helpers ([`parse_edge_list`], [`read_edge_list`]) are thin
//! layers over the reader, and [`write_edge_list`] streams through a
//! [`BufWriter`] without materializing an `O(m)` string.
//!
//! Every failure mode is a typed error: malformed text is a
//! [`ParseError`], and the file-level helpers ([`read_edge_list`],
//! [`write_edge_list`]) wrap filesystem failures and parse failures in
//! [`EdgeListError`] instead of panicking.

use crate::{Graph, GraphBuilder, NodeId};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors from [`parse_edge_list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The header line `n m` is missing or malformed (this includes a
    /// vertex count too large for the 32-bit node-id space).
    BadHeader(String),
    /// An edge line is malformed or out of range.
    BadEdge {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// The edge count in the header does not match the body.
    CountMismatch {
        /// Edges declared in the header.
        declared: usize,
        /// Edges actually parsed.
        found: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader(h) => write!(f, "bad header line: {h:?}"),
            ParseError::BadEdge { line, content } => {
                write!(f, "bad edge on line {line}: {content:?}")
            }
            ParseError::CountMismatch { declared, found } => {
                write!(f, "header declares {declared} edges, found {found}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Errors from the file-level helpers [`read_edge_list`] and
/// [`write_edge_list`]: either the filesystem failed or the file's
/// content did not parse.
#[derive(Debug)]
pub enum EdgeListError {
    /// Reading or writing the file failed.
    Io(std::io::Error),
    /// The file's content is not a valid edge list.
    Parse(ParseError),
}

impl std::fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "edge-list I/O failed: {e}"),
            EdgeListError::Parse(e) => write!(f, "edge-list parse failed: {e}"),
        }
    }
}

impl std::error::Error for EdgeListError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EdgeListError::Io(e) => Some(e),
            EdgeListError::Parse(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for EdgeListError {
    fn from(e: std::io::Error) -> Self {
        EdgeListError::Io(e)
    }
}

impl From<ParseError> for EdgeListError {
    fn from(e: ParseError) -> Self {
        EdgeListError::Parse(e)
    }
}

/// Strips one trailing `\n` (or `\r\n`), mirroring what
/// [`str::lines`] yields for a physical line.
fn trim_newline(line: &str) -> &str {
    let line = line.strip_suffix('\n').unwrap_or(line);
    line.strip_suffix('\r').unwrap_or(line)
}

/// Streaming edge-list parser over any [`BufRead`] source.
///
/// The constructor consumes lines until it has parsed the `n m` header
/// (skipping blanks and `#` comments); the iterator then yields one
/// validated edge per non-comment line. The line buffer is reused, so
/// memory stays `O(longest line)` regardless of file size.
///
/// Error behavior matches [`parse_edge_list`] exactly: 1-based physical
/// line numbers (blanks and comments counted), a [`ParseError::BadEdge`]
/// for malformed or out-of-range endpoints, and a final
/// [`ParseError::CountMismatch`] item if the body disagrees with the
/// header. After yielding an error the iterator is fused (returns
/// `None`).
///
/// # Example
///
/// ```
/// use pga_graph::io::EdgeListReader;
///
/// let text = "3 2\n0 1\n1 2\n";
/// let mut r = EdgeListReader::new(text.as_bytes()).unwrap();
/// assert_eq!(r.num_nodes(), 3);
/// assert_eq!(r.declared_edges(), 2);
/// let edges: Result<Vec<_>, _> = r.by_ref().collect();
/// assert_eq!(edges.unwrap().len(), 2);
/// ```
pub struct EdgeListReader<R> {
    reader: R,
    /// Reused line buffer (cleared before every read).
    buf: String,
    /// 1-based number of the most recently read physical line.
    line_no: usize,
    num_nodes: usize,
    declared_edges: usize,
    /// Edges successfully yielded so far.
    found: usize,
    /// Set at end-of-input or on the first error; fuses the iterator.
    finished: bool,
}

impl<R: BufRead> EdgeListReader<R> {
    /// Opens a streaming parser, consuming input up to and including the
    /// `n m` header line.
    ///
    /// # Errors
    ///
    /// [`EdgeListError::Parse`] with [`ParseError::BadHeader`] if the
    /// header is missing, malformed, or declares more than `u32::MAX`
    /// vertices; [`EdgeListError::Io`] if the source fails.
    pub fn new(mut reader: R) -> Result<Self, EdgeListError> {
        let mut buf = String::new();
        let mut line_no = 0;
        let (num_nodes, declared_edges) = loop {
            buf.clear();
            if reader.read_line(&mut buf)? == 0 {
                return Err(ParseError::BadHeader(String::new()).into());
            }
            line_no += 1;
            let raw = trim_newline(&buf);
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let mut parts = raw.split_whitespace();
            let n: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| ParseError::BadHeader(raw.to_string()))?;
            let m: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| ParseError::BadHeader(raw.to_string()))?;
            // Node ids are u32 newtypes; a larger declared n would panic
            // in `NodeId::from_index` below, so reject it as a header
            // error.
            if n > u32::MAX as usize {
                return Err(ParseError::BadHeader(raw.to_string()).into());
            }
            break (n, m);
        };
        Ok(EdgeListReader {
            reader,
            buf,
            line_no,
            num_nodes,
            declared_edges,
            found: 0,
            finished: false,
        })
    }

    /// The vertex count `n` declared by the header.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The edge count `m` declared by the header.
    pub fn declared_edges(&self) -> usize {
        self.declared_edges
    }

    /// Drains the reader into a [`Graph`], feeding the builder in chunks
    /// so no intermediate `O(m)` edge vector is materialized beyond one
    /// bounded buffer.
    ///
    /// # Errors
    ///
    /// The first [`EdgeListError`] the stream produces.
    pub fn into_graph(mut self) -> Result<Graph, EdgeListError> {
        /// Edges buffered per [`GraphBuilder::add_edges`] call.
        const CHUNK_EDGES: usize = 1 << 16;
        let mut b = GraphBuilder::new(self.num_nodes);
        let mut chunk = Vec::with_capacity(CHUNK_EDGES.min(self.declared_edges.max(1)));
        for edge in &mut self {
            chunk.push(edge?);
            if chunk.len() >= CHUNK_EDGES {
                b.add_edges(chunk.drain(..));
            }
        }
        b.add_edges(chunk);
        Ok(b.build())
    }
}

impl<R: BufRead> Iterator for EdgeListReader<R> {
    type Item = Result<(NodeId, NodeId), EdgeListError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.finished {
            return None;
        }
        loop {
            self.buf.clear();
            match self.reader.read_line(&mut self.buf) {
                Ok(0) => {
                    self.finished = true;
                    if self.found != self.declared_edges {
                        return Some(Err(ParseError::CountMismatch {
                            declared: self.declared_edges,
                            found: self.found,
                        }
                        .into()));
                    }
                    return None;
                }
                Ok(_) => {}
                Err(e) => {
                    self.finished = true;
                    return Some(Err(e.into()));
                }
            }
            self.line_no += 1;
            let raw = trim_newline(&self.buf);
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let mut parts = raw.split_whitespace();
            let bad = ParseError::BadEdge {
                line: self.line_no,
                content: raw.to_string(),
            };
            let (u, v) = match (
                parts.next().and_then(|s| s.parse::<usize>().ok()),
                parts.next().and_then(|s| s.parse::<usize>().ok()),
            ) {
                (Some(u), Some(v)) if u < self.num_nodes && v < self.num_nodes => (u, v),
                _ => {
                    self.finished = true;
                    return Some(Err(bad.into()));
                }
            };
            self.found += 1;
            return Some(Ok((NodeId::from_index(u), NodeId::from_index(v))));
        }
    }
}

/// Reads and parses an edge-list file through a buffered streaming
/// reader (the file is never held in memory as text).
///
/// # Errors
///
/// [`EdgeListError::Io`] if the file cannot be read, [`EdgeListError::Parse`]
/// if its content is malformed.
pub fn read_edge_list(path: impl AsRef<Path>) -> Result<Graph, EdgeListError> {
    let file = std::fs::File::open(path)?;
    EdgeListReader::new(BufReader::new(file))?.into_graph()
}

/// Serializes `g` and writes it to `path` in the edge-list format,
/// streaming through a [`BufWriter`] (no `O(m)` intermediate string).
///
/// # Errors
///
/// [`EdgeListError::Io`] if the file cannot be written.
pub fn write_edge_list(path: impl AsRef<Path>, g: &Graph) -> Result<(), EdgeListError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    write_edge_list_to(&mut w, g)?;
    w.flush()?;
    Ok(())
}

/// Streams `g` in the edge-list format to an arbitrary [`Write`] sink.
///
/// # Errors
///
/// Any error the sink reports.
pub fn write_edge_list_to<W: Write>(w: &mut W, g: &Graph) -> std::io::Result<()> {
    writeln!(w, "{} {}", g.num_nodes(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "{} {}", u.0, v.0)?;
    }
    Ok(())
}

/// Serializes `g` to the edge-list format as an in-memory string.
///
/// Prefer [`write_edge_list`] for large graphs; this helper exists for
/// tests and small fixtures.
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = Vec::new();
    write_edge_list_to(&mut out, g).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("edge lists are ASCII")
}

/// Parses the edge-list format produced by [`to_edge_list`], via the
/// streaming [`EdgeListReader`].
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input.
pub fn parse_edge_list(text: &str) -> Result<Graph, ParseError> {
    // A `&[u8]` source is infallible and the input is valid UTF-8, so
    // every error the reader can produce here is a parse error.
    let unwrap_parse = |e: EdgeListError| match e {
        EdgeListError::Parse(p) => p,
        EdgeListError::Io(e) => unreachable!("in-memory edge-list read failed: {e}"),
    };
    EdgeListReader::new(text.as_bytes())
        .map_err(unwrap_parse)?
        .into_graph()
        .map_err(unwrap_parse)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip() {
        let g = generators::clique_chain(3, 4);
        let text = to_edge_list(&g);
        let parsed = parse_edge_list(&text).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn comments_and_blank_lines() {
        let text = "# a comment\n3 2\n\n0 1\n# another\n1 2\n";
        let g = parse_edge_list(text).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn bad_header() {
        assert!(matches!(
            parse_edge_list("oops\n"),
            Err(ParseError::BadHeader(_))
        ));
        assert!(matches!(parse_edge_list(""), Err(ParseError::BadHeader(_))));
    }

    #[test]
    fn bad_edge_and_range() {
        assert!(matches!(
            parse_edge_list("2 1\n0 x\n"),
            Err(ParseError::BadEdge { line: 2, .. })
        ));
        assert!(matches!(
            parse_edge_list("2 1\n0 5\n"),
            Err(ParseError::BadEdge { .. })
        ));
    }

    #[test]
    fn count_mismatch() {
        assert!(matches!(
            parse_edge_list("3 5\n0 1\n"),
            Err(ParseError::CountMismatch {
                declared: 5,
                found: 1
            })
        ));
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = Graph::empty(4);
        assert_eq!(parse_edge_list(&to_edge_list(&g)).unwrap(), g);
    }

    #[test]
    fn oversized_vertex_count_is_a_header_error_not_a_panic() {
        let text = format!("{} 0\n", (u32::MAX as u64) + 1);
        assert!(matches!(
            parse_edge_list(&text),
            Err(ParseError::BadHeader(_))
        ));
    }

    #[test]
    fn streaming_reader_yields_edges_and_header() {
        let text = "# hdr comment\n\n4 3\n0 1\n# mid comment\n1 2\n2 3\n";
        let mut r = EdgeListReader::new(text.as_bytes()).unwrap();
        assert_eq!(r.num_nodes(), 4);
        assert_eq!(r.declared_edges(), 3);
        let edges: Vec<_> = r.by_ref().map(|e| e.unwrap()).collect();
        assert_eq!(
            edges,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(2), NodeId(3)),
            ]
        );
        // Fused after end-of-input.
        assert!(r.next().is_none());
    }

    #[test]
    fn streaming_reader_line_numbers_count_comments() {
        // The bad edge sits on physical line 5 (comment/blank included).
        let text = "# c\n3 2\n\n0 1\nbroken\n";
        let mut r = EdgeListReader::new(text.as_bytes()).unwrap();
        assert!(r.next().unwrap().is_ok());
        match r.next().unwrap() {
            Err(EdgeListError::Parse(ParseError::BadEdge { line, content })) => {
                assert_eq!(line, 5);
                assert_eq!(content, "broken");
            }
            other => panic!("expected BadEdge, got {other:?}"),
        }
        // Fused after the error.
        assert!(r.next().is_none());
    }

    #[test]
    fn streaming_reader_count_mismatch_is_final_item() {
        let mut r = EdgeListReader::new("3 2\n0 1\n".as_bytes()).unwrap();
        assert!(r.next().unwrap().is_ok());
        assert!(matches!(
            r.next().unwrap(),
            Err(EdgeListError::Parse(ParseError::CountMismatch {
                declared: 2,
                found: 1
            }))
        ));
        assert!(r.next().is_none());
    }

    #[test]
    fn streaming_matches_string_parser() {
        let g = generators::grid(5, 7);
        let text = to_edge_list(&g);
        let via_reader = EdgeListReader::new(text.as_bytes())
            .unwrap()
            .into_graph()
            .unwrap();
        assert_eq!(via_reader, parse_edge_list(&text).unwrap());
        assert_eq!(via_reader, g);
    }

    #[test]
    fn write_to_sink_matches_to_edge_list() {
        let g = generators::clique_chain(2, 5);
        let mut out = Vec::new();
        write_edge_list_to(&mut out, &g).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), to_edge_list(&g));
    }

    #[test]
    fn file_roundtrip_and_typed_errors() {
        // Per-process filenames: parallel test runs on a shared host
        // must not race on the same temp paths.
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let path = dir.join(format!("pga_io_roundtrip_{pid}.edges"));
        let g = generators::grid(3, 4);
        write_edge_list(&path, &g).unwrap();
        assert_eq!(read_edge_list(&path).unwrap(), g);
        std::fs::remove_file(&path).unwrap();

        // Missing file: a typed I/O error with a source, not a panic.
        let err = read_edge_list(dir.join(format!("pga_io_missing_{pid}.edges"))).unwrap_err();
        assert!(matches!(err, EdgeListError::Io(_)));
        assert!(std::error::Error::source(&err).is_some());
        assert!(format!("{err}").contains("I/O"));

        // Malformed content: the parse error is preserved.
        let bad = dir.join(format!("pga_io_bad_content_{pid}.edges"));
        std::fs::write(&bad, "not an edge list\n").unwrap();
        let err = read_edge_list(&bad).unwrap_err();
        assert!(matches!(
            err,
            EdgeListError::Parse(ParseError::BadHeader(_))
        ));
        std::fs::remove_file(&bad).unwrap();
    }
}
