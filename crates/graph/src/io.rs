//! Plain-text edge-list serialization.
//!
//! Format: first line `n m`, then one `u v` pair per line (0-based ids).
//! Lines starting with `#` are comments. This is the interchange format
//! the experiment harness uses to persist workloads.

use crate::{Graph, GraphBuilder, NodeId};

/// Errors from [`parse_edge_list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The header line `n m` is missing or malformed.
    BadHeader(String),
    /// An edge line is malformed or out of range.
    BadEdge {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// The edge count in the header does not match the body.
    CountMismatch {
        /// Edges declared in the header.
        declared: usize,
        /// Edges actually parsed.
        found: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader(h) => write!(f, "bad header line: {h:?}"),
            ParseError::BadEdge { line, content } => {
                write!(f, "bad edge on line {line}: {content:?}")
            }
            ParseError::CountMismatch { declared, found } => {
                write!(f, "header declares {declared} edges, found {found}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes `g` to the edge-list format.
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = String::new();
    out.push_str(&format!("{} {}\n", g.num_nodes(), g.num_edges()));
    for (u, v) in g.edges() {
        out.push_str(&format!("{} {}\n", u.0, v.0));
    }
    out
}

/// Parses the edge-list format produced by [`to_edge_list`].
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input.
pub fn parse_edge_list(text: &str) -> Result<Graph, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty() && !l.trim_start().starts_with('#'));

    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseError::BadHeader(String::new()))?;
    let mut parts = header.split_whitespace();
    let n: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ParseError::BadHeader(header.to_string()))?;
    let m: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ParseError::BadHeader(header.to_string()))?;

    let mut b = GraphBuilder::new(n);
    let mut found = 0;
    for (idx, line) in lines {
        let mut parts = line.split_whitespace();
        let bad = || ParseError::BadEdge {
            line: idx + 1,
            content: line.to_string(),
        };
        let u: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
        let v: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
        if u >= n || v >= n {
            return Err(bad());
        }
        b.add_edge(NodeId::from_index(u), NodeId::from_index(v));
        found += 1;
    }
    if found != m {
        return Err(ParseError::CountMismatch { declared: m, found });
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip() {
        let g = generators::clique_chain(3, 4);
        let text = to_edge_list(&g);
        let parsed = parse_edge_list(&text).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn comments_and_blank_lines() {
        let text = "# a comment\n3 2\n\n0 1\n# another\n1 2\n";
        let g = parse_edge_list(text).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn bad_header() {
        assert!(matches!(
            parse_edge_list("oops\n"),
            Err(ParseError::BadHeader(_))
        ));
        assert!(matches!(parse_edge_list(""), Err(ParseError::BadHeader(_))));
    }

    #[test]
    fn bad_edge_and_range() {
        assert!(matches!(
            parse_edge_list("2 1\n0 x\n"),
            Err(ParseError::BadEdge { line: 2, .. })
        ));
        assert!(matches!(
            parse_edge_list("2 1\n0 5\n"),
            Err(ParseError::BadEdge { .. })
        ));
    }

    #[test]
    fn count_mismatch() {
        assert!(matches!(
            parse_edge_list("3 5\n0 1\n"),
            Err(ParseError::CountMismatch {
                declared: 5,
                found: 1
            })
        ));
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = Graph::empty(4);
        assert_eq!(parse_edge_list(&to_edge_list(&g)).unwrap(), g);
    }
}
