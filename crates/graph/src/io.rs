//! Plain-text edge-list serialization.
//!
//! Format: first line `n m`, then one `u v` pair per line (0-based ids).
//! Lines starting with `#` are comments. This is the interchange format
//! the experiment harness uses to persist workloads.
//!
//! Every failure mode is a typed error: malformed text is a
//! [`ParseError`], and the file-level helpers ([`read_edge_list`],
//! [`write_edge_list`]) wrap filesystem failures and parse failures in
//! [`EdgeListError`] instead of panicking.

use crate::{Graph, GraphBuilder, NodeId};
use std::path::Path;

/// Errors from [`parse_edge_list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The header line `n m` is missing or malformed (this includes a
    /// vertex count too large for the 32-bit node-id space).
    BadHeader(String),
    /// An edge line is malformed or out of range.
    BadEdge {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// The edge count in the header does not match the body.
    CountMismatch {
        /// Edges declared in the header.
        declared: usize,
        /// Edges actually parsed.
        found: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader(h) => write!(f, "bad header line: {h:?}"),
            ParseError::BadEdge { line, content } => {
                write!(f, "bad edge on line {line}: {content:?}")
            }
            ParseError::CountMismatch { declared, found } => {
                write!(f, "header declares {declared} edges, found {found}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Errors from the file-level helpers [`read_edge_list`] and
/// [`write_edge_list`]: either the filesystem failed or the file's
/// content did not parse.
#[derive(Debug)]
pub enum EdgeListError {
    /// Reading or writing the file failed.
    Io(std::io::Error),
    /// The file's content is not a valid edge list.
    Parse(ParseError),
}

impl std::fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "edge-list I/O failed: {e}"),
            EdgeListError::Parse(e) => write!(f, "edge-list parse failed: {e}"),
        }
    }
}

impl std::error::Error for EdgeListError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EdgeListError::Io(e) => Some(e),
            EdgeListError::Parse(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for EdgeListError {
    fn from(e: std::io::Error) -> Self {
        EdgeListError::Io(e)
    }
}

impl From<ParseError> for EdgeListError {
    fn from(e: ParseError) -> Self {
        EdgeListError::Parse(e)
    }
}

/// Reads and parses an edge-list file.
///
/// # Errors
///
/// [`EdgeListError::Io`] if the file cannot be read, [`EdgeListError::Parse`]
/// if its content is malformed.
pub fn read_edge_list(path: impl AsRef<Path>) -> Result<Graph, EdgeListError> {
    let text = std::fs::read_to_string(path)?;
    Ok(parse_edge_list(&text)?)
}

/// Serializes `g` and writes it to `path` in the edge-list format.
///
/// # Errors
///
/// [`EdgeListError::Io`] if the file cannot be written.
pub fn write_edge_list(path: impl AsRef<Path>, g: &Graph) -> Result<(), EdgeListError> {
    Ok(std::fs::write(path, to_edge_list(g))?)
}

/// Serializes `g` to the edge-list format.
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = String::new();
    out.push_str(&format!("{} {}\n", g.num_nodes(), g.num_edges()));
    for (u, v) in g.edges() {
        out.push_str(&format!("{} {}\n", u.0, v.0));
    }
    out
}

/// Parses the edge-list format produced by [`to_edge_list`].
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input.
pub fn parse_edge_list(text: &str) -> Result<Graph, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty() && !l.trim_start().starts_with('#'));

    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseError::BadHeader(String::new()))?;
    let mut parts = header.split_whitespace();
    let n: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ParseError::BadHeader(header.to_string()))?;
    let m: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ParseError::BadHeader(header.to_string()))?;
    // Node ids are u32 newtypes; a larger declared n would panic in
    // `NodeId::from_index` below, so reject it as a header error.
    if n > u32::MAX as usize {
        return Err(ParseError::BadHeader(header.to_string()));
    }

    let mut b = GraphBuilder::new(n);
    let mut found = 0;
    for (idx, line) in lines {
        let mut parts = line.split_whitespace();
        let bad = || ParseError::BadEdge {
            line: idx + 1,
            content: line.to_string(),
        };
        let u: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
        let v: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
        if u >= n || v >= n {
            return Err(bad());
        }
        b.add_edge(NodeId::from_index(u), NodeId::from_index(v));
        found += 1;
    }
    if found != m {
        return Err(ParseError::CountMismatch { declared: m, found });
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip() {
        let g = generators::clique_chain(3, 4);
        let text = to_edge_list(&g);
        let parsed = parse_edge_list(&text).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn comments_and_blank_lines() {
        let text = "# a comment\n3 2\n\n0 1\n# another\n1 2\n";
        let g = parse_edge_list(text).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn bad_header() {
        assert!(matches!(
            parse_edge_list("oops\n"),
            Err(ParseError::BadHeader(_))
        ));
        assert!(matches!(parse_edge_list(""), Err(ParseError::BadHeader(_))));
    }

    #[test]
    fn bad_edge_and_range() {
        assert!(matches!(
            parse_edge_list("2 1\n0 x\n"),
            Err(ParseError::BadEdge { line: 2, .. })
        ));
        assert!(matches!(
            parse_edge_list("2 1\n0 5\n"),
            Err(ParseError::BadEdge { .. })
        ));
    }

    #[test]
    fn count_mismatch() {
        assert!(matches!(
            parse_edge_list("3 5\n0 1\n"),
            Err(ParseError::CountMismatch {
                declared: 5,
                found: 1
            })
        ));
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = Graph::empty(4);
        assert_eq!(parse_edge_list(&to_edge_list(&g)).unwrap(), g);
    }

    #[test]
    fn oversized_vertex_count_is_a_header_error_not_a_panic() {
        let text = format!("{} 0\n", (u32::MAX as u64) + 1);
        assert!(matches!(
            parse_edge_list(&text),
            Err(ParseError::BadHeader(_))
        ));
    }

    #[test]
    fn file_roundtrip_and_typed_errors() {
        // Per-process filenames: parallel test runs on a shared host
        // must not race on the same temp paths.
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let path = dir.join(format!("pga_io_roundtrip_{pid}.edges"));
        let g = generators::grid(3, 4);
        write_edge_list(&path, &g).unwrap();
        assert_eq!(read_edge_list(&path).unwrap(), g);
        std::fs::remove_file(&path).unwrap();

        // Missing file: a typed I/O error with a source, not a panic.
        let err = read_edge_list(dir.join(format!("pga_io_missing_{pid}.edges"))).unwrap_err();
        assert!(matches!(err, EdgeListError::Io(_)));
        assert!(std::error::Error::source(&err).is_some());
        assert!(format!("{err}").contains("I/O"));

        // Malformed content: the parse error is preserved.
        let bad = dir.join(format!("pga_io_bad_content_{pid}.edges"));
        std::fs::write(&bad, "not an edge list\n").unwrap();
        let err = read_edge_list(&bad).unwrap_err();
        assert!(matches!(
            err,
            EdgeListError::Parse(ParseError::BadHeader(_))
        ));
        std::fs::remove_file(&bad).unwrap();
    }
}
