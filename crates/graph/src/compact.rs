//! Delta/varint-compressed CSR adjacency (cargo feature `compact`).
//!
//! A plain [`Graph`] stores adjacency as `2m` explicit `u32` targets.
//! [`CompactGraph`] stores each vertex's **sorted** neighbor list as a
//! LEB128 varint block: the first neighbor raw, then successive gaps
//! (`cur - prev`, always ≥ 1 after dedup). Sorted adjacency keeps gaps
//! small, so sparse `10⁷`–`10⁸`-edge instances shrink to roughly one or
//! two bytes per directed edge instead of four — the difference between
//! fitting on one box and not.
//!
//! The compact form is a *storage* representation: neighbor access is a
//! decoding iterator ([`CompactGraph::neighbors`]), not a slice, so the
//! simulators keep running on [`Graph`]. Convert with
//! [`CompactGraph::from_graph`] / [`CompactGraph::to_graph`]; the round
//! trip is exact.

use crate::{Graph, GraphBuilder, NodeId};

/// Appends `x` to `buf` in LEB128 (7 bits per byte, high bit = more).
fn push_varint(buf: &mut Vec<u8>, mut x: u32) {
    while x >= 0x80 {
        buf.push((x as u8 & 0x7f) | 0x80);
        x >>= 7;
    }
    buf.push(x as u8);
}

/// Decodes one LEB128 varint starting at `*pos`, advancing `*pos`.
fn read_varint(buf: &[u8], pos: &mut usize) -> u32 {
    let mut x: u32 = 0;
    let mut shift = 0;
    loop {
        let b = buf[*pos];
        *pos += 1;
        x |= u32::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return x;
        }
        shift += 7;
    }
}

/// An undirected simple graph in delta/varint-compressed CSR layout.
///
/// Structurally identical to [`Graph`] (same vertex set, same sorted
/// neighbor lists), but the `targets` array is replaced by per-vertex
/// varint blocks of first-value-then-gaps. See the [module
/// docs](self) for the trade-off.
///
/// # Example
///
/// ```
/// use pga_graph::{Graph, NodeId};
/// use pga_graph::compact::CompactGraph;
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
/// let c = CompactGraph::from_graph(&g);
/// assert_eq!(c.num_edges(), 4);
/// assert_eq!(c.degree(NodeId(2)), 3);
/// let n2: Vec<NodeId> = c.neighbors(NodeId(2)).collect();
/// assert_eq!(n2, g.neighbors(NodeId(2)));
/// assert_eq!(c.to_graph(), g);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct CompactGraph {
    /// `blocks[offsets[v]..offsets[v + 1]]` is the varint block of
    /// vertex `v`. Always has length `n + 1`.
    offsets: Vec<usize>,
    /// Varint-encoded neighbor blocks, concatenated in vertex order.
    blocks: Vec<u8>,
    /// Per-vertex degrees (kept explicit for `O(1)` access and exact
    /// iterator size hints).
    degrees: Vec<u32>,
    num_edges: usize,
}

impl CompactGraph {
    /// Compresses a [`Graph`] into the delta/varint layout.
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut degrees = Vec::with_capacity(n);
        let mut blocks = Vec::new();
        offsets.push(0);
        for v in g.nodes() {
            let list = g.neighbors(v);
            degrees.push(u32::try_from(list.len()).expect("degree exceeds u32::MAX"));
            let mut prev = 0;
            for (i, &u) in list.iter().enumerate() {
                // First neighbor raw, then strictly positive gaps.
                push_varint(&mut blocks, if i == 0 { u.0 } else { u.0 - prev });
                prev = u.0;
            }
            offsets.push(blocks.len());
        }
        CompactGraph {
            offsets,
            blocks,
            degrees,
            num_edges: g.num_edges(),
        }
    }

    /// Expands back into a plain [`Graph`]. Exact inverse of
    /// [`CompactGraph::from_graph`].
    pub fn to_graph(&self) -> Graph {
        let mut b = GraphBuilder::new(self.num_nodes());
        for v in 0..self.num_nodes() {
            let v = NodeId::from_index(v);
            // Each undirected edge appears in both endpoint blocks; add
            // it once from the lower endpoint.
            b.add_edges(self.neighbors(v).filter(|&u| v < u).map(|u| (v, u)));
        }
        b.build()
    }

    /// Number of vertices.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.degrees[v.index()] as usize
    }

    /// Maximum degree `Δ`, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        self.degrees.iter().copied().max().unwrap_or(0) as usize
    }

    /// Iterates over the sorted neighbors of `v`, decoding the varint
    /// block on the fly.
    pub fn neighbors(&self, v: NodeId) -> CompactNeighbors<'_> {
        CompactNeighbors {
            block: &self.blocks[self.offsets[v.index()]..self.offsets[v.index() + 1]],
            pos: 0,
            prev: 0,
            emitted: 0,
            len: self.degrees[v.index()],
        }
    }

    /// Whether `{u, v}` is an edge (`O(deg u)` decode; self-queries are
    /// `false`).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        // The block is sorted ascending, so stop at the first overshoot.
        for w in self.neighbors(u) {
            if w == v {
                return true;
            }
            if w > v {
                return false;
            }
        }
        false
    }

    /// Iterates over all vertices.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes()).map(NodeId::from_index)
    }

    /// Bytes of heap storage held by the compressed adjacency
    /// (`offsets` + `blocks` + `degrees`); compare against
    /// `2m * 4 + (n + 1) * 8` for the plain CSR.
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.blocks.len()
            + self.degrees.len() * std::mem::size_of::<u32>()
    }
}

impl std::fmt::Debug for CompactGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CompactGraph(n={}, m={}, {} block bytes)",
            self.num_nodes(),
            self.num_edges(),
            self.blocks.len()
        )
    }
}

/// Decoding iterator over one vertex's compressed neighbor block.
///
/// Yields neighbors in ascending order; implements
/// [`ExactSizeIterator`].
pub struct CompactNeighbors<'a> {
    block: &'a [u8],
    pos: usize,
    prev: u32,
    emitted: u32,
    len: u32,
}

impl Iterator for CompactNeighbors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.emitted == self.len {
            return None;
        }
        let delta = read_varint(self.block, &mut self.pos);
        self.prev = if self.emitted == 0 {
            delta
        } else {
            self.prev + delta
        };
        self.emitted += 1;
        Some(NodeId(self.prev))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = (self.len - self.emitted) as usize;
        (rest, Some(rest))
    }
}

impl ExactSizeIterator for CompactNeighbors<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn varint_roundtrip_boundaries() {
        let mut buf = Vec::new();
        let values = [0, 1, 127, 128, 255, 16_383, 16_384, u32::MAX - 1, u32::MAX];
        for &v in &values {
            push_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos), v);
        }
        assert_eq!(pos, buf.len());
    }

    /// The compact form must satisfy every invariant the plain CSR
    /// suite pins: consistent offsets, sorted per-vertex lists equal to
    /// the plain neighbors, degree/edge counts, and an exact round trip.
    fn assert_matches_plain(g: &Graph) {
        let c = CompactGraph::from_graph(g);
        assert_eq!(c.num_nodes(), g.num_nodes());
        assert_eq!(c.num_edges(), g.num_edges());
        assert_eq!(c.max_degree(), g.max_degree());
        assert_eq!(c.offsets.len(), c.num_nodes() + 1);
        assert_eq!(c.offsets[0], 0);
        assert_eq!(*c.offsets.last().unwrap(), c.blocks.len());
        assert!(c.offsets.windows(2).all(|w| w[0] <= w[1]));
        for v in g.nodes() {
            assert_eq!(c.degree(v), g.degree(v));
            let decoded: Vec<NodeId> = c.neighbors(v).collect();
            assert_eq!(decoded, g.neighbors(v), "neighbors of {v:?}");
            assert_eq!(c.neighbors(v).len(), g.degree(v));
        }
        assert_eq!(&c.to_graph(), g);
    }

    #[test]
    fn roundtrip_small_families() {
        assert_matches_plain(&Graph::empty(0));
        assert_matches_plain(&Graph::empty(7));
        assert_matches_plain(&generators::path(9));
        assert_matches_plain(&generators::star(12));
        assert_matches_plain(&generators::clique_chain(3, 5));
        assert_matches_plain(&generators::grid(4, 6));
    }

    #[test]
    fn roundtrip_random_graphs() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [10, 40, 90] {
            let g = generators::connected_gnp(n, 0.15, &mut rng);
            assert_matches_plain(&g);
        }
    }

    #[test]
    fn has_edge_matches_plain() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = generators::connected_gnp(25, 0.2, &mut rng);
        let c = CompactGraph::from_graph(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(c.has_edge(u, v), g.has_edge(u, v), "({u:?}, {v:?})");
            }
        }
    }

    #[test]
    fn compresses_sorted_adjacency() {
        // A grid has tiny gaps between consecutive neighbors, so blocks
        // should beat 4 bytes per directed edge comfortably.
        let g = generators::grid(40, 40);
        let c = CompactGraph::from_graph(&g);
        let plain_target_bytes = 2 * g.num_edges() * std::mem::size_of::<NodeId>();
        assert!(
            c.blocks.len() < plain_target_bytes / 2,
            "{} block bytes vs {} plain",
            c.blocks.len(),
            plain_target_bytes
        );
    }
}
