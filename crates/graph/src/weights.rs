//! Vertex weights for the weighted problem variants (MWVC, MWDS).

use crate::{Graph, NodeId};
use rand::{Rng, RngExt};

/// A vector of non-negative integer vertex weights.
///
/// The paper assumes every weight fits in `O(log n)` bits; `u64` is ample
/// for benchmark-scale graphs while keeping arithmetic exact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VertexWeights(Vec<u64>);

impl VertexWeights {
    /// Uniform weight 1 on `n` vertices (the unweighted case embedded in
    /// the weighted one).
    pub fn uniform(n: usize) -> Self {
        VertexWeights(vec![1; n])
    }

    /// Wraps an explicit weight vector.
    pub fn from_vec(w: Vec<u64>) -> Self {
        VertexWeights(w)
    }

    /// Uniformly random weights in `range` (inclusive lower, exclusive
    /// upper).
    pub fn random(n: usize, range: std::ops::Range<u64>, rng: &mut impl Rng) -> Self {
        VertexWeights((0..n).map(|_| rng.random_range(range.clone())).collect())
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether there are no vertices.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Weight of vertex `v`.
    #[inline]
    pub fn get(&self, v: NodeId) -> u64 {
        self.0[v.index()]
    }

    /// The raw weight slice.
    pub fn as_slice(&self) -> &[u64] {
        &self.0
    }

    /// Total weight of a membership-vector subset.
    pub fn subset_weight(&self, set: &[bool]) -> u64 {
        assert_eq!(set.len(), self.0.len());
        self.0
            .iter()
            .zip(set)
            .filter(|&(_, &m)| m)
            .map(|(&w, _)| w)
            .sum()
    }

    /// Total weight of all vertices.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Checks that the weight vector matches the graph size.
    pub fn matches(&self, g: &Graph) -> bool {
        self.0.len() == g.num_nodes()
    }
}

impl std::ops::Index<NodeId> for VertexWeights {
    type Output = u64;
    fn index(&self, v: NodeId) -> &u64 {
        &self.0[v.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_weights() {
        let w = VertexWeights::uniform(5);
        assert_eq!(w.total(), 5);
        assert_eq!(w.get(NodeId(3)), 1);
        assert_eq!(w[NodeId(0)], 1);
    }

    #[test]
    fn subset_weight() {
        let w = VertexWeights::from_vec(vec![2, 3, 5, 7]);
        assert_eq!(w.subset_weight(&[true, false, true, false]), 7);
        assert_eq!(w.subset_weight(&[false; 4]), 0);
        assert_eq!(w.total(), 17);
    }

    #[test]
    fn random_weights_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = VertexWeights::random(100, 1..10, &mut rng);
        assert!(w.as_slice().iter().all(|&x| (1..10).contains(&x)));
        assert_eq!(w.len(), 100);
    }
}
