//! BFS, connected components, distances and related traversal utilities.

use crate::{Graph, NodeId};
use std::collections::VecDeque;

/// BFS distances from `source`; `None` for unreachable vertices.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<Option<usize>> {
    let mut dist = vec![None; g.num_nodes()];
    let mut queue = VecDeque::new();
    dist[source.index()] = Some(0);
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()].expect("queued vertex has a distance");
        for &w in g.neighbors(v) {
            if dist[w.index()].is_none() {
                dist[w.index()] = Some(dv + 1);
                queue.push_back(w);
            }
        }
    }
    dist
}

/// A BFS tree rooted at `root`.
#[derive(Clone, Debug)]
pub struct BfsTree {
    /// The root vertex.
    pub root: NodeId,
    /// `parent[v]` is the BFS parent of `v`; `None` for the root and for
    /// vertices unreachable from the root.
    pub parent: Vec<Option<NodeId>>,
    /// `depth[v]` is the BFS distance from the root; `None` if unreachable.
    pub depth: Vec<Option<usize>>,
}

impl BfsTree {
    /// Height of the tree: maximum depth over reachable vertices.
    pub fn height(&self) -> usize {
        self.depth.iter().flatten().copied().max().unwrap_or(0)
    }

    /// Children lists derived from the parent array.
    pub fn children(&self) -> Vec<Vec<NodeId>> {
        let mut ch = vec![Vec::new(); self.parent.len()];
        for (i, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                ch[p.index()].push(NodeId::from_index(i));
            }
        }
        ch
    }
}

/// Builds a BFS tree from `root`, breaking ties toward smaller neighbor ids
/// (neighbor lists are sorted).
pub fn bfs_tree(g: &Graph, root: NodeId) -> BfsTree {
    let n = g.num_nodes();
    let mut parent = vec![None; n];
    let mut depth = vec![None; n];
    let mut queue = VecDeque::new();
    depth[root.index()] = Some(0);
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        let dv = depth[v.index()].expect("queued vertex has a depth");
        for &w in g.neighbors(v) {
            if depth[w.index()].is_none() {
                depth[w.index()] = Some(dv + 1);
                parent[w.index()] = Some(v);
                queue.push_back(w);
            }
        }
    }
    BfsTree {
        root,
        parent,
        depth,
    }
}

/// Result of a connected-components computation.
#[derive(Clone, Debug)]
pub struct Components {
    /// `component[v]` is the 0-based component index of `v`.
    pub component: Vec<usize>,
    /// Number of connected components.
    pub num_components: usize,
}

impl Components {
    /// The vertex sets of each component.
    pub fn groups(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.num_components];
        for (i, &c) in self.component.iter().enumerate() {
            out[c].push(NodeId::from_index(i));
        }
        out
    }
}

/// Computes connected components via repeated BFS.
pub fn connected_components(g: &Graph) -> Components {
    let n = g.num_nodes();
    let mut component = vec![usize::MAX; n];
    let mut num = 0;
    let mut queue = VecDeque::new();
    for s in 0..n {
        if component[s] != usize::MAX {
            continue;
        }
        component[s] = num;
        queue.push_back(NodeId::from_index(s));
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                if component[w.index()] == usize::MAX {
                    component[w.index()] = num;
                    queue.push_back(w);
                }
            }
        }
        num += 1;
    }
    Components {
        component,
        num_components: num,
    }
}

/// Whether `g` is connected. The empty graph counts as connected.
pub fn is_connected(g: &Graph) -> bool {
    g.num_nodes() == 0 || connected_components(g).num_components == 1
}

/// Eccentricity of `v`: maximum distance to a reachable vertex.
pub fn eccentricity(g: &Graph, v: NodeId) -> usize {
    bfs_distances(g, v).into_iter().flatten().max().unwrap_or(0)
}

/// Diameter of `g`: maximum eccentricity over all vertices.
///
/// Returns `None` for a disconnected graph. Runs all-pairs BFS, so intended
/// for benchmark-scale graphs.
pub fn diameter(g: &Graph) -> Option<usize> {
    if g.num_nodes() == 0 {
        return Some(0);
    }
    if !is_connected(g) {
        return None;
    }
    Some(
        g.nodes()
            .map(|v| eccentricity(g, v))
            .max()
            .expect("nonempty graph"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_distances_on_path() {
        let g = generators::path(5);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[2], None);
        assert_eq!(d[3], None);
    }

    #[test]
    fn bfs_tree_structure() {
        let g = generators::star(5);
        let t = bfs_tree(&g, NodeId(0));
        assert_eq!(t.height(), 1);
        assert_eq!(t.parent[3], Some(NodeId(0)));
        assert_eq!(t.parent[0], None);
        assert_eq!(t.children()[0].len(), 4);
    }

    #[test]
    fn bfs_tree_depths_match_distances() {
        let g = generators::grid(4, 5);
        let t = bfs_tree(&g, NodeId(7));
        let d = bfs_distances(&g, NodeId(7));
        assert_eq!(t.depth, d);
    }

    #[test]
    fn components_of_union() {
        let g = generators::disjoint_union(&generators::path(3), &generators::cycle(3));
        let c = connected_components(&g);
        assert_eq!(c.num_components, 2);
        let groups = c.groups();
        assert_eq!(groups[0].len() + groups[1].len(), 6);
    }

    #[test]
    fn connectivity_checks() {
        assert!(is_connected(&generators::complete(5)));
        assert!(is_connected(&Graph::empty(0)));
        assert!(is_connected(&Graph::empty(1)));
        assert!(!is_connected(&Graph::empty(2)));
    }

    #[test]
    fn diameter_of_families() {
        assert_eq!(diameter(&generators::path(6)), Some(5));
        assert_eq!(diameter(&generators::cycle(6)), Some(3));
        assert_eq!(diameter(&generators::complete(6)), Some(1));
        assert_eq!(diameter(&generators::star(6)), Some(2));
        assert_eq!(diameter(&Graph::empty(2)), None);
        assert_eq!(diameter(&Graph::empty(0)), Some(0));
    }

    #[test]
    fn eccentricity_center_vs_leaf() {
        let g = generators::path(7);
        assert_eq!(eccentricity(&g, NodeId(3)), 3);
        assert_eq!(eccentricity(&g, NodeId(0)), 6);
    }
}
