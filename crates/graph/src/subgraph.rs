//! Induced subgraphs with node-index mappings.

use crate::{Graph, GraphBuilder, NodeId};

/// An induced subgraph together with the mapping back to the host graph.
#[derive(Clone, Debug)]
pub struct InducedSubgraph {
    /// The subgraph with vertices relabeled `0..k`.
    pub graph: Graph,
    /// `to_host[i]` is the host-graph id of subgraph vertex `i`.
    pub to_host: Vec<NodeId>,
}

impl InducedSubgraph {
    /// Maps a subgraph vertex back to the host graph.
    pub fn host_id(&self, sub: NodeId) -> NodeId {
        self.to_host[sub.index()]
    }

    /// Lifts a membership vector over the subgraph into one over the host
    /// graph (vertices outside the subgraph are `false`).
    pub fn lift(&self, sub_set: &[bool], host_n: usize) -> Vec<bool> {
        assert_eq!(sub_set.len(), self.graph.num_nodes());
        let mut out = vec![false; host_n];
        for (i, &m) in sub_set.iter().enumerate() {
            if m {
                out[self.to_host[i].index()] = true;
            }
        }
        out
    }
}

/// Computes the subgraph of `g` induced by the vertex set `keep`
/// (membership vector).
pub fn induced_subgraph(g: &Graph, keep: &[bool]) -> InducedSubgraph {
    assert_eq!(
        keep.len(),
        g.num_nodes(),
        "membership vector length mismatch"
    );
    let mut to_host = Vec::new();
    let mut to_sub = vec![usize::MAX; g.num_nodes()];
    for v in g.nodes() {
        if keep[v.index()] {
            to_sub[v.index()] = to_host.len();
            to_host.push(v);
        }
    }
    let mut b = GraphBuilder::new(to_host.len());
    for (u, v) in g.edges() {
        let (su, sv) = (to_sub[u.index()], to_sub[v.index()]);
        if su != usize::MAX && sv != usize::MAX {
            b.add_edge(NodeId::from_index(su), NodeId::from_index(sv));
        }
    }
    InducedSubgraph {
        graph: b.build(),
        to_host,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::membership;
    use crate::generators;

    #[test]
    fn induced_subgraph_of_cycle() {
        let g = generators::cycle(6);
        let keep = membership(6, &[NodeId(0), NodeId(1), NodeId(2), NodeId(4)]);
        let s = induced_subgraph(&g, &keep);
        assert_eq!(s.graph.num_nodes(), 4);
        // Edges kept: (0,1), (1,2). Vertex 4 isolated.
        assert_eq!(s.graph.num_edges(), 2);
        assert_eq!(s.host_id(NodeId(3)), NodeId(4));
    }

    #[test]
    fn empty_selection() {
        let g = generators::complete(4);
        let s = induced_subgraph(&g, &[false; 4]);
        assert_eq!(s.graph.num_nodes(), 0);
        assert_eq!(s.graph.num_edges(), 0);
    }

    #[test]
    fn full_selection_is_identity() {
        let g = generators::grid(3, 3);
        let s = induced_subgraph(&g, &[true; 9]);
        assert_eq!(s.graph, g);
        for v in g.nodes() {
            assert_eq!(s.host_id(v), v);
        }
    }

    #[test]
    fn lift_roundtrip() {
        let g = generators::path(5);
        let keep = membership(5, &[NodeId(1), NodeId(2), NodeId(4)]);
        let s = induced_subgraph(&g, &keep);
        let sub_set = vec![true, false, true]; // host 1 and 4
        let lifted = s.lift(&sub_set, 5);
        assert_eq!(lifted, membership(5, &[NodeId(1), NodeId(4)]));
    }
}
