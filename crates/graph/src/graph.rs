//! The core [`Graph`] type: a compact, immutable, undirected simple graph.

use std::fmt;

/// Identifier of a vertex in a [`Graph`].
///
/// Node identifiers are dense indices `0..n`. The newtype prevents
/// accidentally mixing node indices with other integers (edge counts,
/// weights, round numbers, ...).
///
/// # Example
///
/// ```
/// use pga_graph::NodeId;
/// let v = NodeId(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a `NodeId` from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `i` does not fit into `u32`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("node index exceeds u32::MAX"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// An immutable, undirected simple graph with dense vertex indices.
///
/// Adjacency is stored in **compressed sparse row (CSR)** layout: one flat
/// `targets` array holding every neighbor list back to back, plus an
/// `offsets` array of length `n + 1` delimiting the per-vertex slices.
/// This keeps the whole structure in two contiguous allocations, so
/// neighbor scans are cache-friendly and the graph can be shared across
/// simulation threads without pointer chasing.
///
/// Neighbor lists are stored sorted, so adjacency queries
/// ([`Graph::has_edge`]) are `O(log deg)` and neighbor iteration is ordered.
/// Build one with [`Graph::from_edges`], [`GraphBuilder`], or a generator
/// from [`crate::generators`].
///
/// # Example
///
/// ```
/// use pga_graph::{Graph, NodeId};
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
/// assert_eq!(g.num_nodes(), 4);
/// assert_eq!(g.num_edges(), 4);
/// assert_eq!(g.degree(NodeId(2)), 3);
/// assert!(g.has_edge(NodeId(0), NodeId(2)));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v + 1]` is the slice of `targets` holding the
    /// sorted neighbors of vertex `v`. Always has length `n + 1`.
    offsets: Vec<usize>,
    /// All neighbor lists, concatenated in vertex order (length `2m`).
    targets: Vec<NodeId>,
    num_edges: usize,
}

impl Graph {
    /// Creates an edgeless graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
            num_edges: 0,
        }
    }

    /// Builds a graph on `n` vertices from an edge list.
    ///
    /// Duplicate edges and self-loops are ignored.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(NodeId(u), NodeId(v));
        }
        b.build()
    }

    /// Number of vertices.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v.index() + 1] - self.offsets[v.index()]
    }

    /// Maximum degree `Δ`, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| w[1] - w[0])
            .max()
            .unwrap_or(0)
    }

    /// The sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// The raw CSR arrays `(offsets, targets)`.
    ///
    /// `offsets` has length `n + 1`; the sorted neighbors of vertex `v`
    /// occupy `targets[offsets[v]..offsets[v + 1]]`. [`Graph::neighbors`]
    /// is a slice into exactly these arrays, so per-vertex access is
    /// already zero-copy; this accessor additionally exposes the two
    /// allocations whole, for tooling that wants to scan or export all
    /// adjacency in one pass (the bench harness reports their size).
    #[inline]
    pub fn csr(&self) -> (&[usize], &[NodeId]) {
        (&self.offsets, &self.targets)
    }

    /// Assembles a graph directly from prebuilt CSR arrays.
    ///
    /// The caller guarantees the CSR invariants: `offsets` has length
    /// `n + 1` with `offsets[0] == 0` and `offsets[n] == targets.len()`,
    /// each per-vertex slice is sorted, duplicate- and self-loop-free,
    /// and the adjacency relation is symmetric (so `targets.len()` is
    /// even). The invariants are `debug_assert`ed, not re-established:
    /// this is the zero-copy back door the bitset-BMM kernel uses to
    /// emit `G²` rows already in final layout, skipping the
    /// [`GraphBuilder`] sort/dedup pass entirely.
    pub(crate) fn from_csr_parts(offsets: Vec<usize>, targets: Vec<NodeId>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(offsets[0], 0);
        debug_assert_eq!(*offsets.last().unwrap(), targets.len());
        debug_assert_eq!(targets.len() % 2, 0);
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        #[cfg(debug_assertions)]
        for v in 0..offsets.len() - 1 {
            let row = &targets[offsets[v]..offsets[v + 1]];
            debug_assert!(row.windows(2).all(|w| w[0] < w[1]), "row {v} not sorted");
            debug_assert!(!row.contains(&NodeId::from_index(v)), "self-loop at {v}");
        }
        let num_edges = targets.len() / 2;
        Graph {
            offsets,
            targets,
            num_edges,
        }
    }

    /// Whether `{u, v}` is an edge. Self-queries return `false`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates over all vertices.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes()).map(NodeId::from_index)
    }

    /// Iterates over all edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Sum of all vertex degrees (twice the edge count).
    pub fn degree_sum(&self) -> usize {
        2 * self.num_edges
    }

    /// The closed neighborhood `N[v] = N(v) ∪ {v}` of `v`, sorted.
    pub fn closed_neighborhood(&self, v: NodeId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.degree(v) + 1);
        let mut inserted = false;
        for &u in self.neighbors(v) {
            if !inserted && v < u {
                out.push(v);
                inserted = true;
            }
            out.push(u);
        }
        if !inserted {
            out.push(v);
        }
        out
    }

    /// Returns the complement graph (no self-loops).
    ///
    /// Quadratic in `n`; intended for small graphs in tests and exact
    /// solvers.
    pub fn complement(&self) -> Graph {
        let n = self.num_nodes();
        let mut b = GraphBuilder::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                let (u, v) = (NodeId::from_index(u), NodeId::from_index(v));
                if !self.has_edge(u, v) {
                    b.add_edge(u, v);
                }
            }
        }
        b.build()
    }

    /// Checks whether the sorted vertex set `clique` induces a clique.
    pub fn is_clique(&self, clique: &[NodeId]) -> bool {
        for (i, &u) in clique.iter().enumerate() {
            for &v in &clique[i + 1..] {
                if !self.has_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }

    /// Counts triangles containing the edge `{u, v}` (common neighbors).
    pub fn common_neighbors(&self, u: NodeId, v: NodeId) -> Vec<NodeId> {
        let (a, b) = (self.neighbors(u), self.neighbors(v));
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.num_nodes(), self.num_edges())
    }
}

/// Incremental builder for [`Graph`].
///
/// Deduplicates edges and drops self-loops at [`GraphBuilder::build`] time.
///
/// # Example
///
/// ```
/// use pga_graph::{GraphBuilder, NodeId};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(NodeId(0), NodeId(1));
/// b.add_edge(NodeId(1), NodeId(0)); // duplicate, ignored
/// b.add_edge(NodeId(1), NodeId(1)); // self-loop, ignored
/// let g = b.build();
/// assert_eq!(g.num_edges(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    adj: Vec<Vec<NodeId>>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of vertices the built graph will have.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Appends `count` fresh vertices and returns the id of the first one.
    pub fn add_nodes(&mut self, count: usize) -> NodeId {
        let first = self.adj.len();
        self.adj.resize(self.adj.len() + count, Vec::new());
        NodeId::from_index(first)
    }

    /// Appends one fresh vertex and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.add_nodes(1)
    }

    /// Adds the undirected edge `{u, v}`. Self-loops are dropped silently.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            u.index() < self.adj.len() && v.index() < self.adj.len(),
            "edge ({u:?}, {v:?}) out of range for n={}",
            self.adj.len()
        );
        if u == v {
            return;
        }
        self.adj[u.index()].push(v);
        self.adj[v.index()].push(u);
    }

    /// Adds every edge from the iterator ([`GraphBuilder::add_edge`] for
    /// each pair).
    ///
    /// This is the chunked-feeding entry point the streaming edge-list
    /// reader uses: callers hand over edges in bounded batches instead of
    /// materializing the whole list.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range.
    pub fn add_edges(&mut self, edges: impl IntoIterator<Item = (NodeId, NodeId)>) {
        for (u, v) in edges {
            self.add_edge(u, v);
        }
    }

    /// Adds a path along the given vertex sequence.
    pub fn add_path(&mut self, nodes: &[NodeId]) {
        for w in nodes.windows(2) {
            self.add_edge(w[0], w[1]);
        }
    }

    /// Adds all `|S| choose 2` edges among `nodes` (a clique).
    pub fn add_clique(&mut self, nodes: &[NodeId]) {
        for (i, &u) in nodes.iter().enumerate() {
            for &v in &nodes[i + 1..] {
                self.add_edge(u, v);
            }
        }
    }

    /// Finalizes into an immutable [`Graph`], sorting and deduplicating
    /// neighbor lists and flattening them into the CSR layout.
    pub fn build(mut self) -> Graph {
        let mut m = 0;
        for list in &mut self.adj {
            list.sort_unstable();
            list.dedup();
            m += list.len();
        }
        debug_assert!(m % 2 == 0);
        let mut offsets = Vec::with_capacity(self.adj.len() + 1);
        let mut targets = Vec::with_capacity(m);
        offsets.push(0);
        for list in &self.adj {
            targets.extend_from_slice(list);
            offsets.push(targets.len());
        }
        Graph {
            offsets,
            targets,
            num_edges: m / 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(!g.has_edge(NodeId(0), NodeId(1)));
    }

    #[test]
    fn zero_node_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.nodes().count(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn from_edges_dedupes() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (1, 1)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(NodeId(0)), 1);
        assert_eq!(g.degree(NodeId(1)), 1);
        assert_eq!(g.degree(NodeId(2)), 0);
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(5, &[(2, 4), (2, 0), (2, 3), (2, 1)]);
        assert_eq!(
            g.neighbors(NodeId(2)),
            &[NodeId(0), NodeId(1), NodeId(3), NodeId(4)]
        );
    }

    #[test]
    fn edges_iterator_each_edge_once() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        for (u, v) in edges {
            assert!(u < v);
        }
    }

    #[test]
    fn closed_neighborhood_contains_self_sorted() {
        let g = Graph::from_edges(5, &[(2, 0), (2, 4)]);
        assert_eq!(
            g.closed_neighborhood(NodeId(2)),
            vec![NodeId(0), NodeId(2), NodeId(4)]
        );
        // isolated vertex
        assert_eq!(g.closed_neighborhood(NodeId(3)), vec![NodeId(3)]);
        // self smaller than all neighbors
        assert_eq!(g.closed_neighborhood(NodeId(0)), vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn complement_roundtrip() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3), (1, 4)]);
        let cc = g.complement().complement();
        assert_eq!(g, cc);
    }

    #[test]
    fn complement_edge_count() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)]);
        assert_eq!(g.complement().num_edges(), 5 * 4 / 2 - 2);
    }

    #[test]
    fn is_clique() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (2, 3)]);
        assert!(g.is_clique(&[NodeId(0), NodeId(1), NodeId(2)]));
        assert!(!g.is_clique(&[NodeId(0), NodeId(1), NodeId(3)]));
        assert!(g.is_clique(&[NodeId(3)]));
        assert!(g.is_clique(&[]));
    }

    #[test]
    fn common_neighbors() {
        let g = Graph::from_edges(5, &[(0, 2), (0, 3), (1, 2), (1, 3), (1, 4)]);
        assert_eq!(
            g.common_neighbors(NodeId(0), NodeId(1)),
            vec![NodeId(2), NodeId(3)]
        );
        assert!(g.common_neighbors(NodeId(2), NodeId(3)).len() == 2);
    }

    #[test]
    fn builder_helpers() {
        let mut b = GraphBuilder::new(0);
        let p0 = b.add_nodes(3);
        assert_eq!(p0, NodeId(0));
        let c0 = b.add_nodes(3);
        b.add_path(&[NodeId(0), NodeId(1), NodeId(2)]);
        b.add_clique(&[c0, NodeId(4), NodeId(5)]);
        let g = b.build();
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 2 + 3);
        assert!(g.is_clique(&[NodeId(3), NodeId(4), NodeId(5)]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_edge_out_of_range_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(5));
    }

    #[test]
    fn csr_layout_consistent() {
        let g = Graph::from_edges(5, &[(2, 4), (2, 0), (2, 3), (2, 1), (0, 4)]);
        let (offsets, targets) = g.csr();
        assert_eq!(offsets.len(), g.num_nodes() + 1);
        assert_eq!(offsets[0], 0);
        assert_eq!(*offsets.last().unwrap(), targets.len());
        assert_eq!(targets.len(), 2 * g.num_edges());
        for v in g.nodes() {
            assert_eq!(
                &targets[offsets[v.index()]..offsets[v.index() + 1]],
                g.neighbors(v)
            );
        }
        // Empty graph: offsets is the single-element [0] array.
        let empty = Graph::empty(0);
        let (offsets, targets) = empty.csr();
        assert_eq!(offsets, &[0]);
        assert!(targets.is_empty());
    }

    #[test]
    fn node_id_display_and_index() {
        let v = NodeId::from_index(7);
        assert_eq!(v.index(), 7);
        assert_eq!(format!("{v}"), "7");
        assert_eq!(format!("{v:?}"), "v7");
    }
}
