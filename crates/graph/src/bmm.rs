//! Bitset-blocked Boolean matrix multiplication: `G² = A ∨ A·A` over the
//! Boolean semiring.
//!
//! The adjacency matrix `A` of `G`, multiplied by itself over the Boolean
//! semiring `({0,1}, ∨, ∧)`, *is* the two-hop structure the paper's
//! problems are defined on: `(A·A)[u][v] = 1` iff `u` and `v` share a
//! neighbor, so `A ∨ A·A` (minus the diagonal) is exactly the square
//! `G²`. Following Lingas (arXiv 2405.16103), which observes that BMM is
//! fast precisely on *clustered* inputs, this module computes row `u` of
//! the product as a union of packed 64-bit row bitmaps:
//!
//! ```text
//! row(u) = N(u) ∨ ⋁_{v ∈ N(u)} N(v)        (then clear bit u)
//! ```
//!
//! accumulated into a single reusable `⌈n/64⌉`-word register with
//! *touched-word tracking*, so clearing and extraction cost `O(|row|)`
//! words rather than `O(n/64)` per vertex.
//!
//! Two row representations share the register:
//!
//! * **light rows** (`deg(v) <` [`HEAVY_DEGREE`]) scatter their sorted
//!   neighbor-id lists bit by bit — the degree-capped sparse path, and
//!   the common case on bounded-degree inputs;
//! * **heavy rows** are pre-packed once into dense word bitmaps plus a
//!   nonzero-word index, and are folded in with whole-word `OR`s — 64
//!   potential neighbors per instruction. On clustered (planted-partition)
//!   graphs the nonzero words of a row concentrate in the blocks of its
//!   own cluster, so these lists stay short.
//!
//! Because `G²` is symmetric and bits are emitted in ascending word/bit
//! order, each finished register *is* a sorted, deduplicated CSR row:
//! [`square_bmm`] writes rows straight into final CSR layout and skips
//! the [`crate::GraphBuilder`] sort/dedup pass entirely — the bulk of the
//! speedup over the scalar mark-array loop in [`crate::power::square_scalar`].
//!
//! [`square_bmm_sharded`] fans the independent rows out over
//! `std::thread::scope` workers along [`crate::balanced_partition`]
//! boundaries on the per-row work estimates; any contiguous partition
//! yields bit-identical output, so thread count never changes the graph.

use crate::partition::balanced_partition;
use crate::{Graph, NodeId};

/// Degree at or above which a row is pre-packed into a dense word bitmap
/// (with a nonzero-word index) and folded in by whole-word `OR`s instead
/// of per-bit scatter.
///
/// The dense cache costs `⌈n/64⌉` words per heavy vertex, and at most
/// `2m / HEAVY_DEGREE` vertices qualify, so the cache is bounded by
/// `m·n / (32·HEAVY_DEGREE)` bits — a few megabytes on the pinned bench
/// instances. Below the cap, scattering a sorted id list is cheaper than
/// touching every word of a mostly-empty bitmap.
pub const HEAVY_DEGREE: usize = 128;

/// Node count at and above which [`crate::power::square`] routes to the
/// bitset kernel instead of the scalar mark-array loop.
///
/// Below this size the scalar loop's working set fits in cache and the
/// register setup does not pay for itself; above it the word-packed
/// union wins by a widening margin (the CI speedup gate pins ≥ 1.5× at
/// `n = 60_000`).
pub const SQUARE_BMM_MIN_NODES: usize = 4096;

/// A reusable `⌈n/64⌉`-word Boolean row register with touched-word
/// tracking.
///
/// `set`/`or_word` record the index of every word that transitions from
/// zero, so `drain_sorted_into` and `clear` cost `O(touched)` instead
/// of `O(n/64)` — the property that makes one register amortize across
/// all `n` rows.
#[derive(Debug)]
pub struct RowRegister {
    words: Vec<u64>,
    touched: Vec<u32>,
}

impl RowRegister {
    /// Creates a zeroed register for row vectors over `n` columns.
    pub fn new(n: usize) -> Self {
        RowRegister {
            words: vec![0u64; n.div_ceil(64)],
            touched: Vec::new(),
        }
    }

    /// Sets bit `i`.
    #[inline]
    fn set(&mut self, i: usize) {
        let w = i >> 6;
        if self.words[w] == 0 {
            self.touched.push(w as u32);
        }
        self.words[w] |= 1u64 << (i & 63);
    }

    /// ORs a 64-column block into word `w`.
    #[inline]
    fn or_word(&mut self, w: usize, bits: u64) {
        if self.words[w] == 0 && bits != 0 {
            self.touched.push(w as u32);
        }
        self.words[w] |= bits;
    }

    /// Clears bit `i` (the diagonal knock-out; the word stays touched).
    #[inline]
    fn unset(&mut self, i: usize) {
        self.words[i >> 6] &= !(1u64 << (i & 63));
    }

    /// Number of set bits.
    fn count_ones(&self) -> usize {
        self.touched
            .iter()
            .map(|&w| self.words[w as usize].count_ones() as usize)
            .sum()
    }

    /// Appends the set bits to `out` in ascending order and zeroes the
    /// register, leaving it ready for the next row.
    fn drain_sorted_into(&mut self, out: &mut Vec<NodeId>) {
        self.touched.sort_unstable();
        for &wi in &self.touched {
            let base = (wi as usize) << 6;
            let mut w = self.words[wi as usize];
            while w != 0 {
                out.push(NodeId::from_index(base + w.trailing_zeros() as usize));
                w &= w - 1;
            }
            self.words[wi as usize] = 0;
        }
        self.touched.clear();
    }

    /// Zeroes the register without extracting.
    fn clear(&mut self) {
        for &wi in &self.touched {
            self.words[wi as usize] = 0;
        }
        self.touched.clear();
    }

    /// Accumulates the two-hop row of `u`: bits for `N(u)` and every
    /// `N(v)`, `v ∈ N(u)`, with the diagonal bit `u` cleared. The
    /// register must be empty (freshly created, drained, or cleared).
    fn accumulate_two_hop(&mut self, g: &Graph, heavy: &HeavyRows, u: NodeId) {
        for &v in g.neighbors(u) {
            self.set(v.index());
            match heavy.get(v) {
                Some(row) => {
                    for &wi in &row.nonzero {
                        self.or_word(wi as usize, row.words[wi as usize]);
                    }
                }
                None => {
                    for &w in g.neighbors(v) {
                        self.set(w.index());
                    }
                }
            }
        }
        self.unset(u.index());
    }
}

/// A pre-packed dense row: the full word bitmap of `N(v)` plus the
/// sorted indices of its nonzero words.
struct HeavyRow {
    words: Vec<u64>,
    nonzero: Vec<u32>,
}

/// Dense bitmaps for every vertex of degree ≥ [`HEAVY_DEGREE`], indexed
/// by vertex id (`u32::MAX` marks a light vertex). Read-only after
/// construction, so shards share one instance by reference.
struct HeavyRows {
    index: Vec<u32>,
    rows: Vec<HeavyRow>,
}

impl HeavyRows {
    fn build(g: &Graph) -> Self {
        let n = g.num_nodes();
        let words_len = n.div_ceil(64);
        let mut index = vec![u32::MAX; n];
        let mut rows = Vec::new();
        for v in g.nodes() {
            if g.degree(v) < HEAVY_DEGREE {
                continue;
            }
            let mut words = vec![0u64; words_len];
            let mut nonzero: Vec<u32> = Vec::new();
            for &u in g.neighbors(v) {
                let wi = u.index() >> 6;
                if words[wi] == 0 {
                    // Neighbors are sorted, so word indices arrive in
                    // nondecreasing order: nonzero is sorted for free.
                    nonzero.push(wi as u32);
                }
                words[wi] |= 1u64 << (u.index() & 63);
            }
            index[v.index()] = rows.len() as u32;
            rows.push(HeavyRow { words, nonzero });
        }
        HeavyRows { index, rows }
    }

    #[inline]
    fn get(&self, v: NodeId) -> Option<&HeavyRow> {
        let i = self.index[v.index()];
        if i == u32::MAX {
            None
        } else {
            Some(&self.rows[i as usize])
        }
    }
}

/// Estimated word-union work for row `u`: its own scatter plus one term
/// per neighbor (whole-word folds for heavy neighbors, per-bit scatter
/// for light ones). Drives the [`balanced_partition`] shard boundaries.
fn row_costs(g: &Graph, heavy: &HeavyRows) -> Vec<u64> {
    g.nodes()
        .map(|u| {
            let mut c = g.degree(u) as u64 + 1;
            for &v in g.neighbors(u) {
                c += match heavy.get(v) {
                    Some(row) => row.nonzero.len() as u64,
                    None => g.degree(v) as u64,
                };
            }
            c
        })
        .collect()
}

/// Emits the rows `lo..hi` of `G²` as `(per-row lengths, concatenated
/// sorted targets)`.
fn emit_rows(g: &Graph, heavy: &HeavyRows, lo: usize, hi: usize) -> (Vec<usize>, Vec<NodeId>) {
    let mut reg = RowRegister::new(g.num_nodes());
    let mut lens = Vec::with_capacity(hi - lo);
    let mut targets = Vec::new();
    for u in lo..hi {
        let before = targets.len();
        reg.accumulate_two_hop(g, heavy, NodeId::from_index(u));
        reg.drain_sorted_into(&mut targets);
        lens.push(targets.len() - before);
    }
    (lens, targets)
}

/// Computes the square `G²` with the bitset-blocked BMM kernel.
///
/// Produces a graph `==` to [`crate::power::square_scalar`] (same CSR
/// arrays bit for bit: rows come out sorted and deduplicated by
/// construction, and `G²`'s symmetry makes per-row emission globally
/// consistent). Runs in `O(Σ_v work(v))` where `work(v)` is
/// `deg(v)` whole-word folds for heavy neighbors and `deg` bit scatters
/// for light ones — at most `O(Σ_v deg(v)² / 1)` but a factor of up to
/// 64 cheaper on dense or clustered rows, and free of the builder's
/// global sort/dedup pass.
///
/// # Example
///
/// ```
/// use pga_graph::bmm::square_bmm;
/// use pga_graph::power::square_scalar;
/// use pga_graph::Graph;
///
/// let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
/// assert_eq!(square_bmm(&g), square_scalar(&g));
/// ```
pub fn square_bmm(g: &Graph) -> Graph {
    let n = g.num_nodes();
    let heavy = HeavyRows::build(g);
    let (lens, targets) = emit_rows(g, &heavy, 0, n);
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    for len in lens {
        offsets.push(offsets.last().unwrap() + len);
    }
    Graph::from_csr_parts(offsets, targets)
}

/// [`square_bmm`] with rows fanned out over `threads` scoped workers.
///
/// Shard boundaries come from [`balanced_partition`] over the per-row
/// work estimates, so a hub-heavy prefix does not serialize one worker.
/// Rows are independent and each shard emits its contiguous range in
/// order, so the concatenated result is **bit-identical** to the
/// sequential kernel for every thread count — `threads` is a wall-clock
/// knob, never a semantic one. `threads == 0` or `1` runs sequentially.
pub fn square_bmm_sharded(g: &Graph, threads: usize) -> Graph {
    let n = g.num_nodes();
    let t = threads.max(1).min(n.max(1));
    if t == 1 {
        return square_bmm(g);
    }
    let heavy = HeavyRows::build(g);
    let costs = row_costs(g, &heavy);
    let bounds = balanced_partition(&costs, t);
    let heavy_ref = &heavy;
    let shards: Vec<(Vec<usize>, Vec<NodeId>)> = std::thread::scope(|s| {
        let handles: Vec<_> = bounds
            .windows(2)
            .map(|w| {
                let (lo, hi) = (w[0], w[1]);
                s.spawn(move || emit_rows(g, heavy_ref, lo, hi))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bmm shard panicked"))
            .collect()
    });
    let total: usize = shards.iter().map(|(_, t)| t.len()).sum();
    let mut offsets = Vec::with_capacity(n + 1);
    let mut targets = Vec::with_capacity(total);
    offsets.push(0usize);
    for (lens, shard_targets) in shards {
        for len in lens {
            offsets.push(offsets.last().unwrap() + len);
        }
        targets.extend_from_slice(&shard_targets);
    }
    Graph::from_csr_parts(offsets, targets)
}

/// Returns every vertex's `G²` degree (`|N²(v)|`, excluding `v`)
/// without materializing the square.
///
/// One register pass per row with a popcount instead of bit extraction:
/// this is the centralized counterpart of the distributed two-hop size
/// estimator, and what [`crate::power::two_hop_degree`] delegates to for
/// single queries.
pub fn two_hop_sizes(g: &Graph) -> Vec<usize> {
    let heavy = HeavyRows::build(g);
    let mut reg = RowRegister::new(g.num_nodes());
    g.nodes()
        .map(|u| {
            reg.accumulate_two_hop(g, &heavy, u);
            let count = reg.count_ones();
            reg.clear();
            count
        })
        .collect()
}

/// A reusable scratch for repeated two-hop row queries on one graph.
///
/// Wraps a [`RowRegister`] plus the heavy-row cache so bulk callers
/// (exact estimators, validators) pay the `⌈n/64⌉`-word allocation and
/// the dense packing once instead of per query.
pub struct TwoHopScratch {
    reg: RowRegister,
    heavy: HeavyRows,
}

impl TwoHopScratch {
    /// Builds the scratch (register + heavy-row cache) for `g`.
    pub fn new(g: &Graph) -> Self {
        TwoHopScratch {
            reg: RowRegister::new(g.num_nodes()),
            heavy: HeavyRows::build(g),
        }
    }

    /// Appends the sorted `G²`-neighborhood of `v` (excluding `v`) to
    /// `out`. `g` must be the graph the scratch was built for.
    pub fn row_into(&mut self, g: &Graph, v: NodeId, out: &mut Vec<NodeId>) {
        debug_assert_eq!(self.heavy.index.len(), g.num_nodes());
        self.reg.accumulate_two_hop(g, &self.heavy, v);
        self.reg.drain_sorted_into(out);
    }

    /// The `G²` degree of `v` (excluding `v`).
    pub fn degree(&mut self, g: &Graph, v: NodeId) -> usize {
        debug_assert_eq!(self.heavy.index.len(), g.num_nodes());
        self.reg.accumulate_two_hop(g, &self.heavy, v);
        let count = self.reg.count_ones();
        self.reg.clear();
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::power::square_scalar;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn families() -> Vec<(String, Graph)> {
        let mut rng = StdRng::seed_from_u64(97);
        vec![
            ("empty".into(), Graph::empty(0)),
            ("single".into(), Graph::empty(1)),
            ("path".into(), generators::path(40)),
            ("cycle".into(), generators::cycle(33)),
            ("star".into(), generators::star(50)),
            ("complete".into(), generators::complete(20)),
            ("grid".into(), generators::grid(7, 9)),
            ("gnp".into(), generators::gnp(120, 0.07, &mut rng)),
            ("gnm".into(), generators::gnm(150, 400, &mut rng)),
            ("ba".into(), generators::barabasi_albert(200, 3, 5)),
            ("lollipop".into(), generators::gnm_lollipop(60, 300, 40, 9)),
            (
                "sbm".into(),
                generators::planted_partition(180, 6, 0.4, 0.01, 11),
            ),
        ]
    }

    #[test]
    fn square_bmm_matches_scalar_on_all_families() {
        for (name, g) in families() {
            let bmm = square_bmm(&g);
            let scalar = square_scalar(&g);
            assert_eq!(bmm, scalar, "family {name}");
            // `==` on Graph compares CSR arrays; also assert layout
            // equality explicitly for the bit-for-bit claim.
            assert_eq!(bmm.csr(), scalar.csr(), "family {name} CSR drift");
        }
    }

    #[test]
    fn sharded_matches_sequential_at_all_thread_counts() {
        for (name, g) in families() {
            let seq = square_bmm(&g);
            for threads in [1usize, 2, 3, 4, 8] {
                let sharded = square_bmm_sharded(&g, threads);
                assert_eq!(sharded.csr(), seq.csr(), "family {name} t={threads}");
            }
        }
    }

    #[test]
    fn heavy_row_path_is_exercised() {
        // A star center has degree n-1 >= HEAVY_DEGREE: its dense row
        // must be built and folded by whole-word ORs.
        let g = generators::star(HEAVY_DEGREE + 10);
        let heavy = HeavyRows::build(&g);
        assert!(heavy.get(NodeId(0)).is_some());
        assert!(heavy.get(NodeId(1)).is_none());
        assert_eq!(square_bmm(&g), square_scalar(&g));
    }

    #[test]
    fn two_hop_sizes_match_square_degrees() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::gnp(80, 0.1, &mut rng);
        let g2 = square_bmm(&g);
        let sizes = two_hop_sizes(&g);
        for v in g.nodes() {
            assert_eq!(sizes[v.index()], g2.degree(v));
        }
    }

    #[test]
    fn scratch_rows_match_square_rows() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = generators::gnm(90, 200, &mut rng);
        let g2 = square_bmm(&g);
        let mut scratch = TwoHopScratch::new(&g);
        let mut row = Vec::new();
        for v in g.nodes() {
            row.clear();
            scratch.row_into(&g, v, &mut row);
            assert_eq!(row.as_slice(), g2.neighbors(v));
            assert_eq!(scratch.degree(&g, v), g2.degree(v));
        }
    }

    #[test]
    fn register_drain_is_sorted_and_resets() {
        let mut reg = RowRegister::new(200);
        for i in [199usize, 0, 64, 63, 65, 128, 1] {
            reg.set(i);
        }
        let mut out = Vec::new();
        reg.drain_sorted_into(&mut out);
        let expect: Vec<NodeId> = [0usize, 1, 63, 64, 65, 128, 199]
            .into_iter()
            .map(NodeId::from_index)
            .collect();
        assert_eq!(out, expect);
        assert_eq!(reg.count_ones(), 0);
        assert!(reg.words.iter().all(|&w| w == 0));
    }
}
